"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments that lack the ``wheel`` package (pip then falls back to the
legacy ``setup.py develop`` code path).
"""

from setuptools import setup

setup()
