"""Observability quickstart: trace a two-worker fleet build, then read the report.

Run with::

    python examples/tracing_quickstart.py

The script (1) turns tracing on with :func:`repro.obs.configure` — one call,
everything downstream inherits it through the environment, (2) runs a small
two-worker :class:`~repro.execution.WorkCoordinator` fleet under a single
root span, with one cell crashing on purpose so the crash taxonomy has
something to say, (3) resumes the build to show fleet cache hits are
accounted as trials too, and (4) renders the offline report — the same text
``python -m repro.obs report <journal-dir>`` prints: the trace tree, the
critical path, per-worker fleet lanes and the crash taxonomy, all
reconstructed from the JSONL journal alone.
"""

from __future__ import annotations

import tempfile
import threading
import time

import repro.obs as obs
from repro.execution import ResultStore, WorkCoordinator
from repro.obs.report import build_traces, render_report

N_WORKERS = 2
N_CELLS = 12
CRASH_SEED = 5


def objective(cell: dict) -> float:
    time.sleep(0.01)  # stand-in for a real CV evaluation
    if cell["seed"] == CRASH_SEED:
        raise RuntimeError("injected crash (so the report has a taxonomy)")
    return cell["seed"] / 7.0


def main() -> None:
    journal = tempfile.mkdtemp(prefix="repro-obs-")
    obs.configure(journal)
    print(f"tracing to {journal}")

    cells = [
        {"dataset": f"D{i}", "algorithm": "alg", "seed": i} for i in range(N_CELLS)
    ]
    store_path = tempfile.mkdtemp(prefix="repro-store-") + "/knowledge"
    coordinators = [
        WorkCoordinator(ResultStore(store_path), worker_index=w, n_workers=N_WORKERS)
        for w in range(N_WORKERS)
    ]

    # One root span covers the whole build; each worker thread re-attaches
    # the root context (threads do not inherit it — forked workers would via
    # the REPRO_TRACE env var from obs.propagation_env()).
    with obs.span("quickstart.build") as root:
        def member(w: int) -> None:
            with obs.attach(root.context):
                coordinators[w].run("demo", cells, objective, crash_score=-1.0)

        threads = [threading.Thread(target=member, args=(w,)) for w in range(N_WORKERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Resume: every cell is already in the store, so this run is pure
        # fleet cache hits — visible in the report's trial summary.
        with obs.attach(root.context):
            WorkCoordinator(ResultStore(store_path)).run(
                "demo", cells, objective, crash_score=-1.0
            )
    print(f"fleet of {N_WORKERS} workers built {N_CELLS} cells under one trace")

    tree = build_traces(obs.read_events(journal))[root.trace_id]
    print(f"trace {root.trace_id}: coverage {tree.coverage() * 100:.1f}% of wall time")

    print()
    print(render_report(journal, trace_id=root.trace_id))
    print()
    print("tracing quickstart complete")


if __name__ == "__main__":
    main()
