"""Quickstart: fit Auto-Model on a small knowledge pool and answer a CASH query.

Run with::

    python examples/quickstart.py

The script (1) builds a small pool of knowledge datasets, (2) simulates the
research-paper corpus, (3) runs the DMD pipeline (Algorithms 1-4) to obtain
the decision model, and (4) asks the UDR (Algorithm 5) for an algorithm +
hyperparameter recommendation on a brand-new dataset.  Budgets are kept tiny
so the whole script finishes in about a minute on a laptop.
"""

from __future__ import annotations

from repro import AutoModel, DecisionMakingModelDesigner
from repro.datasets import knowledge_suite, make_gaussian_clusters
from repro.evaluation import format_key_values
from repro.learners import default_registry


def main() -> None:
    # 1. The knowledge pool: datasets that the (simulated) research papers
    #    report experiments on.  In the paper these are UCI datasets mined
    #    from 20 publications.
    knowledge_datasets = knowledge_suite(n_datasets=12, max_records=250, random_state=7)
    print(f"knowledge pool: {len(knowledge_datasets)} datasets")

    # 2-3. Fit Auto-Model.  A reduced catalogue and small GA budgets keep the
    #      offline DMD phase fast; the published defaults are group size 50
    #      and 100 epochs (see DecisionMakingModelDesigner's defaults).
    registry = default_registry().by_cost("cheap")
    dmd = DecisionMakingModelDesigner(
        feature_population=12,
        feature_generations=6,
        feature_max_evaluations=60,
        architecture_population=8,
        architecture_generations=3,
        architecture_max_evaluations=20,
        cv=3,
        random_state=0,
    )
    auto_model = AutoModel.fit_from_datasets(
        knowledge_datasets, registry=registry, dmd=dmd, max_records=200
    )
    print(format_key_values(
        {
            "knowledge pairs": auto_model.knowledge_size,
            "key features": ", ".join(auto_model.key_features),
            "architecture MSE": auto_model.dmd_result.architecture.mse,
        },
        title="\n== fitted Auto-Model ==",
    ))

    # 4. A brand-new task instance the user wants solved.
    user_dataset = make_gaussian_clusters(
        "user-task", n_records=300, n_numeric=8, n_categorical=2, n_classes=3,
        class_separation=1.5, random_state=123,
    )
    solution = auto_model.recommend(
        user_dataset, time_limit=20.0, max_evaluations=30, cv=3, tuning_max_records=200
    )
    print(format_key_values(solution.summary(), title="\n== CASH solution =="))
    print("\nselected hyperparameters:")
    for name, value in sorted(solution.config.items()):
        print(f"  {name} = {value}")


if __name__ == "__main__":
    main()
