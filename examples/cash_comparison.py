"""Auto-Model vs Auto-WEKA on the Table XI-style test datasets (Table X, small).

Run with::

    python examples/cash_comparison.py

This mirrors the paper's Section IV-B comparison: both tools answer the same
CASH queries under the same budget; the reported score is the cross-validation
accuracy of the returned (algorithm, hyperparameter) solution, and Auto-Model
is expected to win on most datasets at short budgets because it prunes the
search space to a single algorithm before tuning.
"""

from __future__ import annotations

from repro import AutoModel, DecisionMakingModelDesigner
from repro.baselines import AutoWekaBaseline
from repro.datasets import knowledge_suite, test_suite
from repro.evaluation import compare_tools, format_table
from repro.learners import default_registry


def main() -> None:
    registry = default_registry().by_cost("cheap")

    print("fitting Auto-Model on the knowledge pool ...")
    knowledge_datasets = knowledge_suite(n_datasets=12, max_records=220, random_state=11)
    dmd = DecisionMakingModelDesigner(
        feature_population=10, feature_generations=4, feature_max_evaluations=40,
        architecture_population=8, architecture_generations=3,
        architecture_max_evaluations=16, cv=3, random_state=0,
    )
    auto_model = AutoModel.fit_from_datasets(
        knowledge_datasets, registry=registry, dmd=dmd, max_records=180
    )
    print(f"  knowledge pairs: {auto_model.knowledge_size}")
    print(f"  key features   : {auto_model.key_features}")

    # A handful of Table XI-shaped test datasets (kept small for the example).
    targets = test_suite(max_records=250, max_numeric=20, random_state=5)[:5]

    tools = {
        "Auto-Model": auto_model.responder(cv=3, tuning_max_records=180),
        "Auto-Weka": AutoWekaBaseline(
            registry=registry, strategy="smac", cv=3, tuning_max_records=180, random_state=0
        ),
    }

    print("\nrunning both CASH tools under a short budget ...")
    result = compare_tools(
        tools,
        targets,
        time_limits=[15.0],
        max_evaluations=20,
        cv=5,
        registry=registry,
        eval_max_records=250,
    )
    print(format_table(result.table(), title="\nf(T, D) per dataset (higher is better)"))
    print("\nwins per tool:", result.win_counts())
    for name in tools:
        print(f"mean f({name}) = {result.mean_f_score(name):.3f}")


if __name__ == "__main__":
    main()
