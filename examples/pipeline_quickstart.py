"""Pipeline quickstart: messy dataset → pipeline CASH → tuned serving.

Run with::

    python examples/pipeline_quickstart.py

Real-world tabular data is messy — missing values, wildly different feature
scales, long-tail categories the training folds never saw.  Bare estimators
crash on it; Auto-Model with ``pipelines=True`` searches the whole modelling
recipe (imputer → scaler → encoder → estimator) as one configuration space,
so the tuned answer *includes* the preprocessing that makes the estimator
viable.  The script

1. builds a corrupted knowledge pool and shows a bare estimator failing on it,
2. fits a pipeline-backed Auto-Model (corpus → performance table → DMD),
3. answers a CASH query for a messy user dataset with a tuned pipeline, and
4. publishes the model and serves the same query over HTTP (missing values
   travel as JSON nulls).

Budgets are tiny so the whole script finishes in seconds.
"""

from __future__ import annotations

import json
import tempfile
import urllib.request

import numpy as np

from repro import AutoModel, DecisionMakingModelDesigner
from repro.datasets import corrupt, knowledge_suite, make_gaussian_clusters
from repro.learners import default_registry
from repro.service import ModelRegistry, RecommendationService, serve_in_thread

CATALOGUE = ["J48", "NaiveBayes", "IBk", "ZeroR", "OneR", "DecisionStump"]


def messy_dataset_to_json(dataset) -> dict:
    """The service's JSON wire format; missing numeric cells become nulls."""
    numeric = [
        [None if (isinstance(v, float) and v != v) else v for v in row]
        for row in dataset.numeric.tolist()
    ]
    return {
        "name": dataset.name,
        "task": dataset.task.value,
        "numeric": numeric,
        "categorical": [[str(v) for v in row] for row in dataset.categorical],
        "target": [str(v) for v in dataset.target],
    }


def main() -> None:
    # 1. A messy knowledge pool: half the suite is corrupted with MCAR
    #    missing values, scale skew and rare categories.
    knowledge_datasets = knowledge_suite(
        n_datasets=6, max_records=120, random_state=7, corrupt_fraction=0.5
    )
    user_dataset = corrupt(
        make_gaussian_clusters(
            "user-task", n_records=150, n_numeric=5, n_categorical=2,
            n_classes=3, random_state=42,
        ),
        missing_rate=0.25,
        rare_rate=0.1,
        scale_skew=1.0,
        random_state=43,
    )
    X, y = user_dataset.to_matrix()
    try:
        default_registry().build("J48", {}).fit(X, y)
        print("bare estimator unexpectedly survived the messy data")
    except ValueError as exc:
        print(f"bare estimator fails on messy data: {exc}")

    # 2. Fit the pipeline-backed Auto-Model (tiny DMD budgets).
    auto_model = AutoModel.fit_from_datasets(
        knowledge_datasets,
        registry=default_registry().subset(CATALOGUE),
        dmd=DecisionMakingModelDesigner(
            skip_feature_selection=True,
            architecture_population=4,
            architecture_generations=1,
            architecture_max_evaluations=4,
            cv=2,
            random_state=0,
        ),
        cv=2,
        max_records=100,
        pipelines=True,
    )
    print(f"fitted pipeline Auto-Model: {auto_model.describe()['pipelines']}")

    # 3. One CASH answer: algorithm + tuned *pipeline* configuration.
    solution = auto_model.recommend(
        user_dataset, time_limit=None, max_evaluations=15, cv=2
    )
    preprocessing = {
        key: value for key, value in solution.config.items()
        if not key.startswith("estimator:")
    }
    print(f"tuned pipeline: {solution.algorithm} cv_score={solution.cv_score:.3f}")
    print(f"preprocessing config: {preprocessing}")
    X_raw, y_raw = user_dataset.to_raw_matrix()
    accuracy = float(np.mean(solution.estimator.predict(X_raw) == y_raw))
    print(f"tuned pipeline training accuracy: {accuracy:.3f}")

    # 4. Publish + serve the same query over HTTP (nulls = missing values).
    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        version = registry.publish(auto_model, "pipelines", activate=True)
        print(f"published model 'pipelines' {version}")
        service = RecommendationService(registry, cv=2)
        server, _thread = serve_in_thread(service, port=0)
        try:
            host, port = server.server_address[:2]
            request = urllib.request.Request(
                f"http://{host}:{port}/recommend",
                data=json.dumps({"dataset": messy_dataset_to_json(user_dataset)}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                body = json.loads(response.read().decode())
            print(
                f"served recommendation: {body['algorithm']} "
                f"(config_source={body['config_source']}, "
                f"imputer_enabled={body['config'].get('imputer:enabled')})"
            )
            # An async refine job tunes the pipeline for this dataset and
            # persists the evaluations; the next identical request is then
            # answered with the tuned configuration from the store.
            job = service.fit_jobs.submit_refine(
                "pipelines", user_dataset, max_evaluations=12, cv=2
            )
            record = service.fit_jobs.wait(job, timeout=120)
            print(f"refine job finished: {record.status}")
            tuned = service.dispatcher.recommend(user_dataset, timeout=60)
            print(
                f"tuned serve: {tuned.algorithm} config_source={tuned.config_source} "
                f"tuned_score={None if tuned.tuned_score is None else round(tuned.tuned_score, 3)}"
            )
        finally:
            server.shutdown()
            service.close()
    print("pipeline quickstart complete")


if __name__ == "__main__":
    main()
