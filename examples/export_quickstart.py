"""Export quickstart: tune a pipeline, compile it, predict with no numpy.

Run with::

    python examples/export_quickstart.py

A tuned pipeline is only useful where it can run.  The export compiler turns
a fitted pipeline (or a registry version's decision model) into dependency-free
artifacts: a JSON weights document replayed by a tiny pure-python interpreter,
and a single generated source file that predicts with nothing but the standard
library.  The script

1. fits a pipeline-backed Auto-Model on a messy knowledge pool,
2. answers a CASH query and compiles the tuned pipeline to an artifact with
   byte-identical predictions,
3. writes the standalone module and runs it as a bare subprocess (no repro
   package, no numpy on its path), and
4. publishes the model and exports the registry version's decision model via
   ``ModelRegistry.export`` — the same operation behind
   ``GET /models/<name>/export`` and ``python -m repro.service export``.

Budgets are tiny so the whole script finishes in seconds.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import AutoModel, DecisionMakingModelDesigner
from repro.datasets import corrupt, knowledge_suite, make_gaussian_clusters
from repro.export import compile_model, export_document, save_artifact, write_source
from repro.learners import default_registry
from repro.service import ModelRegistry

CATALOGUE = ["J48", "NaiveBayes", "IBk", "ZeroR", "OneR", "DecisionStump"]


def main() -> None:
    # 1. A small messy knowledge pool and a pipeline-backed Auto-Model.
    knowledge_datasets = knowledge_suite(
        n_datasets=6, max_records=100, random_state=7, corrupt_fraction=0.5
    )
    auto_model = AutoModel.fit_from_datasets(
        knowledge_datasets,
        registry=default_registry().subset(CATALOGUE),
        dmd=DecisionMakingModelDesigner(
            skip_feature_selection=True,
            architecture_population=4,
            architecture_generations=1,
            architecture_max_evaluations=4,
            cv=2,
            random_state=0,
        ),
        cv=2,
        max_records=80,
        pipelines=True,
    )

    # 2. Tune a pipeline for a messy query dataset, then compile it.
    user_dataset = corrupt(
        make_gaussian_clusters(
            "user-task", n_records=120, n_numeric=4, n_categorical=2,
            n_classes=3, random_state=42,
        ),
        missing_rate=0.2,
        random_state=43,
    )
    solution = auto_model.recommend(
        user_dataset, time_limit=None, max_evaluations=8, cv=2
    )
    print(f"tuned pipeline: {solution.algorithm} cv_score={solution.cv_score:.3f}")

    X_raw, _ = user_dataset.to_raw_matrix()
    exported = compile_model(solution.estimator)
    live = solution.estimator.predict(X_raw).tolist()
    assert exported.predict(X_raw.tolist()) == live
    print(f"compiled artifact predictions byte-identical on {len(live)} rows")

    with tempfile.TemporaryDirectory() as tmp:
        # 3. The standalone module: runs on a bare python installation.
        document = export_document(solution.estimator)
        artifact_path = save_artifact(document, Path(tmp) / "pipeline.export.json")
        module_path = write_source(document, Path(tmp) / "exported_pipeline.py")
        print(f"artifact: {artifact_path.name} ({artifact_path.stat().st_size} bytes)")

        rows = [
            [None if (isinstance(v, float) and v != v) else v for v in row]
            for row in X_raw[:5].tolist()
        ]
        rows_path = Path(tmp) / "rows.json"
        rows_path.write_text(json.dumps(rows), encoding="utf-8")
        completed = subprocess.run(
            [sys.executable, str(module_path), str(rows_path)],
            capture_output=True, text=True, timeout=120,
            env={"PATH": os.environ.get("PATH", "")},  # no PYTHONPATH: stdlib only
        )
        predictions = json.loads(completed.stdout)
        assert predictions == live[:5]
        print(f"standalone module predicted {predictions} with no numpy import")

        # 4. Registry export: the decision model behind a published version.
        registry = ModelRegistry(Path(tmp) / "registry")
        registry.publish(auto_model, "quickstart", activate=True)
        info = registry.export("quickstart")
        print(
            f"registry export: {info['name']} {info['version']} -> "
            f"{Path(info['module']).name} (labels: {', '.join(info['labels'])})"
        )
        meta_row = auto_model.decision_model.extractor.transform(user_dataset)
        from repro.export import load_artifact

        decision = load_artifact(info["artifact"])
        chosen = decision.predict([np.asarray(meta_row, dtype=float).ravel().tolist()])[0]
        print(f"decision-model artifact selects: {chosen}")
    print("export quickstart complete")


if __name__ == "__main__":
    main()
