"""Compare the four HPO techniques of Section II on one tuning problem.

Run with::

    python examples/hpo_techniques.py

Grid Search and Random Search ignore past observations; the Genetic Algorithm
and Bayesian Optimization exploit them.  The script tunes a RandomForest on a
synthetic dataset under an identical evaluation budget and prints the best
cross-validation accuracy each technique reaches, plus the adaptive GA-vs-BO
choice Auto-Model's UDR would make for this problem.
"""

from __future__ import annotations

from repro.datasets import make_hypercube_rules
from repro.evaluation import format_table
from repro.hpo import (
    BayesianOptimization,
    Budget,
    GeneticAlgorithm,
    GridSearch,
    HPOProblem,
    RandomSearch,
    choose_hpo_technique,
)
from repro.learners import default_registry
from repro.learners.validation import cross_val_accuracy


def main() -> None:
    registry = default_registry()
    spec = registry.get("RandomForest")
    dataset = make_hypercube_rules(
        "hpo-demo", n_records=200, n_numeric=8, n_classes=3, noise=0.2, random_state=0
    )
    X, y = dataset.to_matrix()

    def objective(config: dict) -> float:
        return cross_val_accuracy(spec.build(config), X, y, cv=3, random_state=0)

    problem = HPOProblem(spec.space, objective, name="tune-random-forest")
    budget_evaluations = 16

    optimizers = {
        "GridSearch": GridSearch(resolution=3),
        "RandomSearch": RandomSearch(random_state=0),
        "GeneticAlgorithm": GeneticAlgorithm(population_size=10, n_generations=10, random_state=0),
        "BayesianOptimization": BayesianOptimization(n_initial=6, random_state=0),
    }

    rows = []
    for name, optimizer in optimizers.items():
        result = optimizer.optimize(problem, Budget(max_evaluations=budget_evaluations))
        rows.append(
            {
                "technique": name,
                "best_cv_accuracy": result.best_score,
                "evaluations": result.n_evaluations,
                "elapsed_s": result.elapsed,
            }
        )
    print(format_table(rows, title=f"tuning RandomForest, budget = {budget_evaluations} evaluations"))

    chosen = choose_hpo_technique(spec.space, objective)
    print(f"\nUDR's adaptive rule would pick: {chosen.name}")
    print("(cheap per-evaluation cost -> GA; expensive evaluations -> BO)")


if __name__ == "__main__":
    main()
