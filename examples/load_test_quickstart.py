"""Load-testing quickstart: a pre-forked pool under synthetic traffic.

Run with::

    python examples/load_test_quickstart.py

The script (1) fits and publishes a small Auto-Model, (2) boots a
pre-forked :class:`ServicePool` — two worker processes accepting on one
ephemeral port, each running the full serving stack, (3) drives a mixed
request schedule at it with the stdlib :class:`LoadGenerator`, promoting
a new model version mid-run, and (4) reads back the pool-wide
``/metrics`` aggregate to show that the server-side tally matches what
the clients measured.  Budgets are tiny so the whole script finishes in
seconds.
"""

from __future__ import annotations

import http.client
import json
import tempfile
import threading
import time

from repro import AutoModel, DecisionMakingModelDesigner
from repro.datasets import knowledge_suite, make_gaussian_clusters
from repro.learners import default_registry
from repro.service import LoadGenerator, LoadOp, ModelRegistry, ServicePool


def dataset_to_json(dataset) -> dict:
    """A Dataset in the service's JSON wire format."""
    return {
        "name": dataset.name,
        "task": dataset.task.value,
        "numeric": dataset.numeric.tolist(),
        "categorical": [[str(v) for v in row] for row in dataset.categorical],
        "target": [str(v) for v in dataset.target],
    }


def http_json(pool, method: str, path: str, body: dict | None = None) -> dict:
    conn = http.client.HTTPConnection(pool.host, pool.port, timeout=60)
    try:
        conn.request(
            method, path,
            body=json.dumps(body).encode("utf-8") if body is not None else None,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return json.loads(response.read())
    finally:
        conn.close()


def main() -> None:
    # 1. Train one small model, publish it twice: v0001 goes live, v0002
    #    stays on standby for the mid-run hot swap.
    knowledge_datasets = knowledge_suite(n_datasets=5, max_records=100, random_state=3)
    auto_model = AutoModel.fit_from_datasets(
        knowledge_datasets,
        registry=default_registry().subset(
            ["J48", "NaiveBayes", "IBk", "ZeroR", "OneR", "DecisionStump"]
        ),
        dmd=DecisionMakingModelDesigner(
            skip_feature_selection=True,
            architecture_population=4,
            architecture_generations=1,
            architecture_max_evaluations=4,
            cv=2,
            random_state=0,
        ),
        cv=2,
        max_records=80,
    )
    registry_dir = tempfile.mkdtemp(prefix="repro-registry-")
    registry = ModelRegistry(registry_dir)
    registry.publish(auto_model, "loadtest")                  # v0001, live
    standby = registry.publish(auto_model, "loadtest")        # v0002, standby
    print(f"published model 'loadtest' v0001 (live) and {standby} (standby)")

    # 2. A pre-forked pool: two worker processes, one listening address,
    #    bounded admission queues, shared metrics directory.
    pool = ServicePool(
        registry_dir, n_workers=2, max_queue_depth=256, flush_interval=0.2
    )
    pool.start()
    print(f"pool serving on {pool.url} with {len(pool.worker_pids)} workers")

    try:
        # 3. A deterministic mixed schedule: recommendations over three
        #    distinct datasets plus health checks, from 4 client threads
        #    over persistent keep-alive connections.
        queries = [
            make_gaussian_clusters(
                f"traffic-{i}", n_records=200, n_numeric=5, n_categorical=1,
                n_classes=2, random_state=400 + i,
            )
            for i in range(3)
        ]
        ops = [
            LoadOp(
                "POST", "/recommend",
                {"dataset": dataset_to_json(q), "model": "loadtest"},
                weight=3, name="POST /recommend",
            )
            for q in queries
        ] + [LoadOp("GET", "/healthz", weight=1)]
        generator = LoadGenerator(
            pool.host, pool.port, ops, n_clients=4, requests_per_client=15
        )

        report_box: dict = {}
        runner = threading.Thread(target=lambda: report_box.update(r=generator.run()))
        runner.start()
        generator.wait_until(generator.total_requests // 2, timeout=120)
        http_json(pool, "POST", "/models/promote",
                  {"name": "loadtest", "version": standby})
        print(f"promoted {standby} mid-run (half the traffic already served)")
        runner.join()
        report = report_box["r"]

        print(
            f"load run: {report.n_requests} requests, "
            f"{report.throughput_rps:.1f} req/s, "
            f"p50 {report.latency_ms(0.50):.1f} ms, "
            f"p99 {report.latency_ms(0.99):.1f} ms, "
            f"failed {report.n_failed}"
        )

        # 4. The pool-wide /metrics aggregate reconciles with the client tally.
        time.sleep(0.8)  # let both workers flush their final payloads
        metrics = http_json(pool, "GET", "/metrics")
        server_side = metrics["http"]["endpoints"]["POST /recommend"]["n_requests"]
        client_side = report.by_route["POST /recommend"]["n_requests"]
        print(
            f"metrics: scope={metrics['scope']}, workers={len(metrics['workers'])}, "
            f"server counted {server_side} /recommend, clients sent {client_side}"
        )
        assert report.n_failed == 0, "requests failed during the hot swap"
        assert server_side == client_side, "client/server tallies diverged"
    finally:
        pool.stop()
    print("load test quickstart complete")


if __name__ == "__main__":
    main()
