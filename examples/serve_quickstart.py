"""Serving quickstart: train, promote into a registry, query over HTTP, refine.

Run with::

    python examples/serve_quickstart.py

The script (1) fits a small Auto-Model, (2) publishes it into a versioned
model registry, (3) boots the HTTP/JSON serving front end on an ephemeral
port, (4) asks for a recommendation over the wire, and (5) submits an async
refine job — once it completes, the same request is answered with the tuned
configuration instead of the catalogue default.  Budgets are tiny so the
whole script finishes in seconds.
"""

from __future__ import annotations

import json
import tempfile
import time
import urllib.request

from repro import AutoModel, DecisionMakingModelDesigner
from repro.datasets import knowledge_suite, make_gaussian_clusters
from repro.learners import default_registry
from repro.service import ModelRegistry, RecommendationService, serve_in_thread


def dataset_to_json(dataset) -> dict:
    """A Dataset in the service's JSON wire format."""
    return {
        "name": dataset.name,
        "task": dataset.task.value,
        "numeric": dataset.numeric.tolist(),
        "categorical": [[str(v) for v in row] for row in dataset.categorical],
        "target": [str(v) for v in dataset.target],
    }


def main() -> None:
    # 1. Train a small Auto-Model (tiny budgets; see examples/quickstart.py
    #    for the full offline pipeline walk-through).
    knowledge_datasets = knowledge_suite(n_datasets=6, max_records=120, random_state=7)
    auto_model = AutoModel.fit_from_datasets(
        knowledge_datasets,
        registry=default_registry().subset(
            ["J48", "NaiveBayes", "IBk", "ZeroR", "OneR", "DecisionStump"]
        ),
        dmd=DecisionMakingModelDesigner(
            skip_feature_selection=True,
            architecture_population=4,
            architecture_generations=1,
            architecture_max_evaluations=4,
            cv=2,
            random_state=0,
        ),
        cv=2,
        max_records=80,
    )

    # 2. Publish it into a versioned registry (the first publish is promoted
    #    automatically; later versions go live only via an explicit promote).
    registry_dir = tempfile.mkdtemp(prefix="repro-registry-")
    registry = ModelRegistry(registry_dir)
    version = registry.publish(auto_model, "quickstart")
    print(f"published model 'quickstart' {version} -> {registry_dir}")

    # 3. Boot the serving subsystem: batched dispatcher + async job queue
    #    behind a stdlib HTTP server on an ephemeral port.
    service = RecommendationService(registry, max_wait_ms=1.0)
    server, _ = serve_in_thread(service)
    base = f"http://127.0.0.1:{server.server_address[1]}"
    print(f"serving on {base}")

    def get(path: str) -> dict:
        with urllib.request.urlopen(base + path, timeout=30) as resp:
            return json.loads(resp.read())

    def post(path: str, body: dict) -> dict:
        request = urllib.request.Request(
            base + path,
            data=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=120) as resp:
            return json.loads(resp.read())

    print("health:", get("/healthz")["status"])

    # 4. A recommendation over the wire: the decision model picks the
    #    algorithm in one (micro-batched) forward pass.
    user_dataset = make_gaussian_clusters(
        "user-task", n_records=150, n_numeric=6, n_categorical=2, n_classes=3,
        class_separation=1.5, random_state=123,
    )
    query = {"dataset": dataset_to_json(user_dataset), "model": "quickstart"}
    first = post("/recommend", query)
    print(
        f"recommendation: {first['algorithm']} ({first['config_source']} config, "
        f"model {first['model']}@{first['version']})"
    )

    # 5. Refine asynchronously: a background UDR tuning run persists into the
    #    served version's result store; serving is never blocked.
    job = post("/jobs", {"kind": "refine", **query, "max_evaluations": 6})
    print(f"refine job {job['job_id']} submitted ({job['status']})")
    while True:
        record = get(f"/jobs/{job['job_id']}")
        if record["status"] in ("done", "failed"):
            break
        time.sleep(0.1)
    print(f"refine job finished: {record['status']}")

    refined = post("/recommend", query)
    print(
        f"refined recommendation: {refined['algorithm']} "
        f"({refined['config_source']} config, cv score "
        f"{record['result']['cv_score'] if record['status'] == 'done' else 'n/a'})"
    )

    server.shutdown()
    server.server_close()
    service.close()
    print("serving quickstart complete")


if __name__ == "__main__":
    main()
