"""Distributed knowledge building quickstart: a worker fleet over one store.

Run with::

    python examples/distributed_quickstart.py

The script (1) boots the HTTP store server over a sqlite-WAL result store —
the shared substrate a real fleet would point at from other hosts, (2) runs
a two-worker fleet of :class:`~repro.execution.WorkCoordinator` members that
build one performance table cooperatively (leased claims, work stealing),
(3) shows that every worker ends up with the identical table while each cell
was executed exactly once, and (4) reruns the build to show it resumes from
the store instead of recomputing.  Budgets are tiny so the whole script
finishes in seconds; for a cross-host fleet, serve the store with
``python -m repro.service store-serve`` and hand every worker
``ResultStore("http://host:port")``.
"""

from __future__ import annotations

import tempfile
import threading

import numpy as np

from repro.datasets import make_gaussian_clusters
from repro.evaluation import PerformanceTable
from repro.execution import ResultStore, WorkCoordinator
from repro.learners import default_registry
from repro.service import StoreService, serve_store_in_thread

N_WORKERS = 2
CATALOGUE = ["J48", "NaiveBayes", "OneR", "ZeroR", "DecisionStump", "Logistic"]


def main() -> None:
    datasets = [
        make_gaussian_clusters(
            f"fleet-D{i}", n_records=120, n_numeric=4, n_classes=2,
            random_state=10 + i,
        )
        for i in range(4)
    ]
    registry = default_registry().subset(CATALOGUE)
    n_cells = len(datasets) * len(registry)

    # 1. One authoritative store, served over HTTP.  sqlite-WAL underneath:
    #    many writers, zero lost updates.
    authority = ResultStore(
        tempfile.mkdtemp(prefix="repro-store-") + "/knowledge", backend="sqlite"
    )
    server, _ = serve_store_in_thread(StoreService(authority))
    url = "http://{}:{}".format(*server.server_address[:2])
    print(f"store server on {url}")

    # 2. The fleet: every worker runs the *same* table build over its own
    #    HTTP-backed store client; the coordinator shards the cells.
    coordinators = [
        WorkCoordinator(
            ResultStore(url), worker_index=w, n_workers=N_WORKERS,
            lease_seconds=30.0,
        )
        for w in range(N_WORKERS)
    ]
    tables: list[PerformanceTable | None] = [None] * N_WORKERS

    def member(w: int) -> None:
        tables[w] = PerformanceTable.compute(
            datasets, registry=registry, cv=2, max_records=100,
            coordinator=coordinators[w],
        )

    threads = [threading.Thread(target=member, args=(w,)) for w in range(N_WORKERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    executed = sum(c.stats.n_executed for c in coordinators)
    stolen = sum(c.stats.n_stolen for c in coordinators)
    print(f"fleet of {N_WORKERS} workers built {n_cells} cells")
    print(f"cells executed across the fleet: {executed} "
          f"({executed - n_cells} duplicated, {stolen} stolen)")
    identical = all(
        t is not None and np.array_equal(t.scores, tables[0].scores) for t in tables
    )
    print(f"tables identical across workers: {identical}")

    # 3. Rerun: the knowledge is already in the store, so a fresh fleet
    #    member resumes instead of recomputing — same table, zero executions.
    rerun = WorkCoordinator(ResultStore(url))
    again = PerformanceTable.compute(
        datasets, registry=registry, cv=2, max_records=100, coordinator=rerun,
    )
    print(f"resume: {rerun.stats.n_resumed} cells already in the store, "
          f"{rerun.stats.n_executed} executed")
    print(f"resumed table identical: {np.array_equal(again.scores, tables[0].scores)}")

    best = tables[0].best_algorithm(datasets[0].name)
    print(f"best algorithm on {datasets[0].name}: {best}")

    server.shutdown()
    server.server_close()
    authority.close()


if __name__ == "__main__":
    main()
