"""Regression quickstart: the Auto-Model loop on a continuous target.

The same knowledge-driven pipeline as ``examples/quickstart.py`` — simulate a
paper corpus, train the decision model, answer a user demand — but with
``task="regression"``: the catalogue is the regressor family (ridge/lasso,
SVR, k-NN, forests, gradient boosting, MLP, dummy), datasets carry continuous
targets, and every objective is unstratified-CV R² instead of stratified-CV
accuracy.

Run from the repo root::

    PYTHONPATH=src python examples/regression_quickstart.py
"""

from repro import AutoModel
from repro.core import DecisionMakingModelDesigner
from repro.datasets import make_friedman, regression_suite
from repro.learners import default_regression_registry


def main() -> None:
    # 1. A pool of synthetic regression task instances (linear, Friedman,
    #    piecewise families) plays the role of the knowledge datasets.
    knowledge_datasets = regression_suite(
        n_datasets=9, min_records=80, max_records=200, random_state=11
    )

    # 2. One argument opens the regression workload: corpus simulation,
    #    performance table (CV R² cells), DMD and UDR all follow the task.
    auto_model = AutoModel(task="regression").fit_from_datasets(
        knowledge_datasets,
        registry=default_regression_registry().by_cost("cheap", "moderate"),
        dmd=DecisionMakingModelDesigner(
            feature_population=8,
            feature_generations=3,
            feature_max_evaluations=25,
            architecture_population=6,
            architecture_generations=2,
            architecture_max_evaluations=8,
            cv=2,
            random_state=0,
        ),
        cv=2,
        max_records=150,
    )
    print("fitted:", auto_model.describe())

    # 3. Ask the UDR for a regressor + tuned hyperparameters on a new task.
    user_dataset = make_friedman(
        "user-regression-task", n_records=250, n_numeric=8, n_categorical=1,
        random_state=123,
    )
    solution = auto_model.recommend(
        user_dataset, time_limit=20.0, max_evaluations=25, cv=3,
        tuning_max_records=200,
    )
    print("recommended:", solution.summary())  # cv_score is mean CV R²

    # 4. The returned estimator is fitted on the full dataset and ready to use.
    X, _ = user_dataset.to_matrix()
    predictions = solution.estimator.predict(X[:5])
    print("first predictions:", [round(float(p), 3) for p in predictions])


if __name__ == "__main__":
    main()
