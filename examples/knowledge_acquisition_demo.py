"""Walk through Algorithm 1 on a hand-written corpus (the paper's Fig. 2 example).

Run with::

    python examples/knowledge_acquisition_demo.py

The corpus below recreates the structure of Fig. 2: five papers report partial,
partly contradictory comparisons of classifiers on the Wine dataset.  The demo
prints the intermediate information network (direct relations, BFS closure,
conflict resolution) and the resulting piece of knowledge (Wine, best
algorithm), then shows how the same machinery scales to a generated corpus.
"""

from __future__ import annotations

from repro.corpus import Experience, ExperienceSet, Paper, reliability_index
from repro.core.knowledge import KnowledgeAcquisition


def build_fig2_corpus() -> ExperienceSet:
    """Five papers with Table I metadata, reporting experiments on Wine."""
    papers = [
        Paper("lee2008", "A comparison study of classification algorithms",
              level="C", paper_type="Journal", influence_factor=1.1, annual_citations=12),
        Paper("wang2011", "Novel evolutionary algorithms for supervised classification",
              level="B", paper_type="Journal", influence_factor=2.3, annual_citations=20),
        Paper("esmaelian2016", "A novel classification method (UTADIS + PSO-GA)",
              level="B", paper_type="Journal", influence_factor=3.8, annual_citations=25),
        Paper("zhang2017", "An up-to-date comparison of state-of-the-art classification algorithms",
              level="A", paper_type="Journal", influence_factor=4.3, annual_citations=60),
        Paper("morente2017", "Improving supervised learning classification methods",
              level="A", paper_type="Journal", influence_factor=8.4, annual_citations=30),
    ]
    corpus = ExperienceSet(papers=papers)
    # Partial, fragmented comparisons on the same instance (Wine), including a
    # conflict: lee2008 claims LDA beats BayesNet, zhang2017 the opposite.
    corpus.add(Experience("lee2008", "Wine", "LDA", ("BayesNet", "J48", "IBk")))
    corpus.add(Experience("wang2011", "Wine", "RandomForest", ("J48", "LibSVM", "OneR")))
    corpus.add(Experience("esmaelian2016", "Wine", "J48", ("LibSVM", "OneR", "NaiveBayes")))
    corpus.add(Experience("zhang2017", "Wine", "BayesNet", ("LDA", "RandomForest", "LibSVM")))
    corpus.add(Experience("morente2017", "Wine", "BayesNet", ("J48", "IBk", "NaiveBayes")))
    return corpus


def main() -> None:
    corpus = build_fig2_corpus()

    ranking = reliability_index(corpus.papers)
    print("paper reliability ranking (higher = more reliable):")
    for paper_id, weight in sorted(ranking.items(), key=lambda item: item[1]):
        paper = corpus.paper(paper_id)
        print(f"  {weight}: {paper_id:14s} level={paper.level} IF={paper.influence_factor}")

    acquisition = KnowledgeAcquisition(min_algorithms=5)
    network = acquisition.analyze_instance("Wine", corpus)
    assert network is not None

    print("\noptimal-algorithm candidates (OACs):", network.candidates)
    print("\ndirect performance relations (winner -> loser, weight = reliability):")
    for winner, loser, data in network.direct.edges(data=True):
        print(f"  {winner:13s} -> {loser:13s} (weight {data['weight']})")
    print("\nresolved information network after BFS closure + conflict resolution:")
    for winner, loser, data in network.resolved.edges(data=True):
        print(f"  {winner:13s} -> {loser:13s} (weight {data['weight']})")
    print("\nin-degree-0 candidates:", network.sources())
    print("comparison experience per candidate:", network.comparison_experience)

    pair = acquisition.select_optimal(network)
    print(f"\n=> knowledge acquired: ({pair.instance}, {pair.algorithm}) "
          f"with {pair.evidence} algorithms proven inferior")


if __name__ == "__main__":
    main()
