"""End-to-end regression workloads: the acceptance path for the task-type PR.

``AutoModel(task="regression").fit_from_datasets(...)`` → ``recommend(...)``
must run the whole knowledge-driven loop (corpus → performance table → DMD →
UDR tuning) over a synthetic regression suite, while classification behaviour
stays byte-identical (fingerprint/context assertions live in
tests/execution/test_task_objectives.py).
"""

import numpy as np
import pytest

from repro import AutoModel, TaskType
from repro.baselines import AutoWekaBaseline, RandomCASH, SingleBestBaseline
from repro.core import DecisionMakingModelDesigner, UserDemandResponser
from repro.core.udr import CASHSolution
from repro.corpus import CorpusConfig, generate_corpus
from repro.datasets import make_friedman, regression_suite
from repro.evaluation import PerformanceTable


@pytest.fixture(scope="module")
def fast_dmd() -> DecisionMakingModelDesigner:
    return DecisionMakingModelDesigner(
        feature_population=6,
        feature_generations=2,
        feature_max_evaluations=12,
        architecture_population=4,
        architecture_generations=1,
        architecture_max_evaluations=4,
        cv=2,
        random_state=0,
    )


@pytest.fixture(scope="module")
def regression_performance(regression_knowledge_datasets, small_regression_registry):
    return PerformanceTable.compute(
        regression_knowledge_datasets,
        registry=small_regression_registry,
        tune=False,
        cv=2,
        max_records=80,
        random_state=0,
        task="regression",
    )


@pytest.fixture(scope="module")
def regression_automodel(
    regression_knowledge_datasets, small_regression_registry, regression_performance, fast_dmd
):
    return AutoModel(task="regression").fit_from_datasets(
        regression_knowledge_datasets,
        registry=small_regression_registry,
        dmd=fast_dmd,
        performance=regression_performance,
        cv=2,
        max_records=80,
    )


@pytest.fixture(scope="module")
def user_regression_dataset():
    return make_friedman(
        "user-reg", n_records=120, n_numeric=6, n_categorical=1, random_state=99
    )


class TestRegressionPerformanceTable:
    def test_table_is_r2_scored(self, regression_performance, small_regression_registry):
        assert regression_performance.metadata["task"] == "regression"
        assert regression_performance.metadata["metric"] == "r2"
        assert regression_performance.algorithms == small_regression_registry.names
        # R² cells are bounded above by 1 and the dummy sits near 0.
        assert np.all(regression_performance.scores <= 1.0 + 1e-9)
        for name in regression_performance.datasets:
            assert abs(regression_performance.score("DummyRegressor", name)) < 0.35

    def test_best_algorithm_beats_dummy(self, regression_performance):
        for name in regression_performance.datasets:
            assert regression_performance.p_max(name) > regression_performance.score(
                "DummyRegressor", name
            )

    def test_task_mismatch_rejected(self, knowledge_datasets, small_regression_registry):
        with pytest.raises(ValueError, match="task"):
            PerformanceTable.compute(
                knowledge_datasets[:2],
                registry=small_regression_registry,
                cv=2,
                max_records=60,
                task="regression",
            )


class TestRegressionCorpus:
    def test_corpus_generation_clamps_to_small_catalogues(
        self, regression_knowledge_datasets
    ):
        """A catalogue smaller than min_algorithms_per_paper must not crash:
        papers simply compare the whole catalogue (regression's cheap subset
        has only 5 members, below the default per-paper minimum of 6)."""
        from repro.learners import default_regression_registry

        cheap = default_regression_registry().by_cost("cheap")
        assert len(cheap) < CorpusConfig().min_algorithms_per_paper
        corpus, _ = generate_corpus(
            regression_knowledge_datasets[:3],
            registry=cheap,
            config=CorpusConfig(n_papers=3, random_state=0),
            cv=2,
            max_records=60,
            task="regression",
        )
        assert len(corpus.papers) == 3
        for experience in corpus:
            assert experience.best_algorithm in cheap.names

    def test_generate_corpus_regression(
        self, regression_knowledge_datasets, small_regression_registry, regression_performance
    ):
        config = CorpusConfig(
            n_papers=8, min_datasets_per_paper=2, max_datasets_per_paper=4,
            min_algorithms_per_paper=3, max_algorithms_per_paper=5, random_state=0,
        )
        corpus, table = generate_corpus(
            regression_knowledge_datasets,
            registry=small_regression_registry,
            config=config,
            performance=regression_performance,
            task="regression",
        )
        assert table is regression_performance
        assert len(corpus.papers) == 8
        best_algorithms = {e.best_algorithm for e in corpus}
        assert best_algorithms.issubset(set(small_regression_registry.names))


class TestRegressionDMD:
    def test_dmd_task_guard_rejects_mixed_pools(
        self, regression_knowledge_datasets, small_regression_registry,
        regression_performance, knowledge_datasets,
    ):
        from repro.corpus import generate_corpus

        corpus, _ = generate_corpus(
            regression_knowledge_datasets,
            registry=small_regression_registry,
            performance=regression_performance,
            task="regression",
        )
        # A classification dataset smuggled into the lookup under a corpus
        # instance name must be caught by the DMD's task guard.
        lookup = {d.name: d for d in regression_knowledge_datasets}
        poisoned = dict(lookup)
        victim = next(iter(lookup))
        poisoned[victim] = knowledge_datasets[0]
        dmd = DecisionMakingModelDesigner(
            skip_feature_selection=True, architecture_population=4,
            architecture_generations=1, architecture_max_evaluations=4,
            cv=2, random_state=0, task="regression",
        )
        with pytest.raises(ValueError, match="task"):
            dmd.run(corpus, poisoned)


class TestRegressionAutoModel:
    def test_unfitted_shell_carries_task(self):
        shell = AutoModel(task="regression")
        assert shell.task is TaskType.REGRESSION
        assert "DummyRegressor" in shell.registry.names
        with pytest.raises(ValueError, match="unfitted"):
            _ = shell.decision_model

    def test_construction_without_task_still_rejected(self):
        with pytest.raises(ValueError):
            AutoModel()

    def test_shell_with_fresh_cache_dir_fits_and_restores(
        self, regression_knowledge_datasets, small_regression_registry,
        regression_performance, fast_dmd, tmp_path,
    ):
        cache = tmp_path / "reg-cache"
        fitted = AutoModel(task="regression", cache_dir=cache).fit_from_datasets(
            regression_knowledge_datasets,
            registry=small_regression_registry,
            dmd=fast_dmd,
            performance=regression_performance,
            cv=2,
            max_records=80,
        )
        assert fitted.task is TaskType.REGRESSION
        assert (cache / "decision_model.json").exists()
        restored = AutoModel(cache_dir=cache, task="regression")
        assert restored.describe()["restored_from_cache"]
        sample = regression_knowledge_datasets[0]
        assert restored.decision_model.select(sample) == fitted.decision_model.select(
            sample
        )
        # A bare restore (no task argument) adopts the saved task — a
        # regression cache must never pair with the classifier registry.
        bare = AutoModel(cache_dir=cache)
        assert bare.task is TaskType.REGRESSION
        assert set(bare.registry.names) == set(small_regression_registry.names) or (
            "DummyRegressor" in bare.registry.names
        )
        # An explicitly mismatched task is rejected, not silently loaded.
        with pytest.raises(ValueError, match="regression decision"):
            AutoModel.load(cache, task="classification")

    def test_dmd_default_guard_on_fit(self, regression_knowledge_datasets,
                                      small_regression_registry, knowledge_datasets):
        # AutoModel.fit with the DEFAULT DMD must reject a lookup whose
        # datasets carry the wrong task type.
        from repro.corpus import generate_corpus

        corpus, _ = generate_corpus(
            knowledge_datasets[:4],
            registry=None,  # classification catalogue
            config=CorpusConfig(n_papers=6, random_state=0),
            cv=2,
            max_records=60,
        )
        lookup = {d.name: d for d in knowledge_datasets[:4]}
        with pytest.raises(ValueError, match="task"):
            AutoModel.fit(corpus, lookup, registry=small_regression_registry,
                          task="regression")

    def test_fit_from_datasets_produces_regression_model(self, regression_automodel):
        assert regression_automodel.task is TaskType.REGRESSION
        description = regression_automodel.describe()
        assert description["task"] == "regression"
        assert description["knowledge_pairs"] >= 3
        labels = set(regression_automodel.decision_model.labels)
        assert labels.issubset(set(regression_automodel.registry.names))

    def test_recommend_full_loop(self, regression_automodel, user_regression_dataset):
        solution = regression_automodel.recommend(
            user_regression_dataset,
            time_limit=None,
            max_evaluations=8,
            cv=2,
            tuning_max_records=80,
        )
        assert isinstance(solution, CASHSolution)
        assert solution.algorithm in regression_automodel.registry.names
        assert regression_automodel.registry.space(solution.algorithm).validate(
            solution.config
        )
        # R² is bounded above by 1; the tuned pick should not be worse than a
        # catastrophic fit.
        assert -1.0 <= solution.cv_score <= 1.0
        assert solution.n_evaluations > 0
        assert solution.estimator is not None
        predictions = solution.estimator.predict(
            user_regression_dataset.to_matrix()[0]
        )
        assert predictions.shape == (user_regression_dataset.n_records,)

    def test_udr_tuning_beats_or_matches_dummy(
        self, regression_automodel, user_regression_dataset
    ):
        solution = regression_automodel.recommend(
            user_regression_dataset,
            time_limit=None,
            max_evaluations=8,
            cv=2,
            tuning_max_records=80,
        )
        assert solution.cv_score > -0.5

    def test_responder_store_context_tagged_with_task(
        self, regression_automodel, user_regression_dataset
    ):
        responder = regression_automodel.responder(cv=2, tuning_max_records=60)
        assert responder.task == "regression"
        spec, engine = responder._make_engine(user_regression_dataset, "Ridge")
        assert engine.store_context.endswith("-taskregression-metricr2")


class TestRegressionBaselines:
    def test_autoweka_runs_on_regression(
        self, small_regression_registry, user_regression_dataset
    ):
        baseline = AutoWekaBaseline(
            registry=small_regression_registry,
            strategy="random",
            cv=2,
            tuning_max_records=60,
            random_state=0,
            task="regression",
        )
        result = baseline.run(
            user_regression_dataset, time_limit=None, max_evaluations=6
        )
        assert result.algorithm in small_regression_registry.names
        assert -1.0 <= result.cv_score <= 1.0

    def test_random_cash_runs_on_regression(
        self, small_regression_registry, user_regression_dataset
    ):
        baseline = RandomCASH(
            registry=small_regression_registry,
            cv=2,
            tuning_max_records=60,
            random_state=0,
            task="regression",
        )
        result = baseline.run(
            user_regression_dataset, time_limit=None, max_evaluations=5
        )
        assert result.algorithm in small_regression_registry.names

    def test_single_best_runs_on_regression(
        self, regression_performance, small_regression_registry, user_regression_dataset
    ):
        baseline = SingleBestBaseline(
            regression_performance,
            registry=small_regression_registry,
            cv=2,
            tuning_max_records=60,
            random_state=0,
            task="regression",
        )
        result = baseline.run(
            user_regression_dataset, time_limit=None, max_evaluations=5
        )
        assert result.algorithm in small_regression_registry.names
        assert result.algorithm != "DummyRegressor"


class TestRegressionUDRDirect:
    def test_udr_with_custom_metric(self, regression_automodel, user_regression_dataset):
        responder = UserDemandResponser(
            model=regression_automodel.decision_model,
            registry=regression_automodel.registry,
            cv=2,
            tuning_max_records=60,
            random_state=0,
            task="regression",
            metric="rmse",
        )
        solution = responder.respond(
            user_regression_dataset, time_limit=None, max_evaluations=5,
            fit_final_estimator=False,
        )
        # Oriented scores: RMSE is negated, so the best score is <= 0.
        assert solution.cv_score <= 0.0
