"""Tests for paper metadata, experiences, the corpus generator and serialisation."""

import numpy as np
import pytest

from repro.corpus import (
    CorpusConfig,
    CorpusGenerator,
    Experience,
    ExperienceSet,
    Paper,
    corpus_from_dict,
    corpus_to_dict,
    load_corpus,
    rank_papers,
    reliability_index,
    save_corpus,
)


def make_paper(pid="p1", **kwargs) -> Paper:
    defaults = dict(level="B", paper_type="Journal", influence_factor=2.0, annual_citations=10)
    defaults.update(kwargs)
    return Paper(paper_id=pid, **defaults)


class TestPaper:
    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            make_paper(level="E")

    def test_invalid_type_rejected(self):
        with pytest.raises(ValueError):
            make_paper(paper_type="Workshop")

    def test_negative_metrics_rejected(self):
        with pytest.raises(ValueError):
            make_paper(influence_factor=-1.0)
        with pytest.raises(ValueError):
            make_paper(annual_citations=-1)

    def test_reliability_ordering_follows_table_i(self):
        # Level dominates type, which dominates influence factor, which
        # dominates citations (Table I priorities).
        level_a = make_paper("a", level="A", paper_type="Conference", influence_factor=0.0)
        level_b = make_paper("b", level="B", paper_type="Journal", influence_factor=9.0)
        journal = make_paper("c", level="C", paper_type="Journal", influence_factor=0.1)
        conference = make_paper("d", level="C", paper_type="Conference", influence_factor=5.0)
        high_if = make_paper("e", level="D", influence_factor=7.0, annual_citations=0)
        low_if = make_paper("f", level="D", influence_factor=1.0, annual_citations=999)

        ranked = rank_papers([level_b, low_if, conference, journal, high_if, level_a])
        # Ascending reliability: the most reliable paper is last.
        assert ranked[-1].paper_id == "a"
        assert ranked[-2].paper_id == "b"
        index = reliability_index([level_a, level_b, journal, conference, high_if, low_if])
        assert index["a"] > index["b"] > index["c"] > index["d"] > index["e"] > index["f"]


class TestExperience:
    def test_best_cannot_be_among_others(self):
        with pytest.raises(ValueError):
            Experience("p1", "wine", "J48", ("J48", "NaiveBayes"))

    def test_algorithms_property_puts_best_first(self):
        experience = Experience("p1", "wine", "J48", ("NaiveBayes",))
        assert experience.algorithms == ("J48", "NaiveBayes")

    def test_empty_fields_rejected(self):
        with pytest.raises(ValueError):
            Experience("", "wine", "J48", ())
        with pytest.raises(ValueError):
            Experience("p1", "", "J48", ())


class TestExperienceSet:
    def test_requires_known_paper(self):
        corpus = ExperienceSet()
        with pytest.raises(ValueError):
            corpus.add(Experience("ghost", "wine", "J48", ()))

    def test_duplicate_paper_rejected(self):
        corpus = ExperienceSet(papers=[make_paper("p1")])
        with pytest.raises(ValueError):
            corpus.add_paper(make_paper("p1"))

    def test_instances_algorithms_and_related(self):
        corpus = ExperienceSet(papers=[make_paper("p1"), make_paper("p2")])
        corpus.add(Experience("p1", "wine", "J48", ("NaiveBayes", "IBk")))
        corpus.add(Experience("p2", "wine", "NaiveBayes", ("J48",)))
        corpus.add(Experience("p2", "iris", "IBk", ("ZeroR",)))
        assert corpus.instances() == ["wine", "iris"]
        assert set(corpus.algorithms()) == {"J48", "NaiveBayes", "IBk", "ZeroR"}
        assert len(corpus.related_to("wine")) == 2
        assert len(corpus) == 3

    def test_merge_combines_without_duplicating_papers(self):
        a = ExperienceSet(papers=[make_paper("p1")])
        a.add(Experience("p1", "wine", "J48", ()))
        b = ExperienceSet(papers=[make_paper("p1"), make_paper("p2")])
        b.add(Experience("p2", "iris", "IBk", ()))
        merged = a.merge(b)
        assert len(merged) == 2
        assert len(merged.papers) == 2


class TestCorpusGenerator:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            CorpusConfig(n_papers=0)
        with pytest.raises(ValueError):
            CorpusConfig(min_algorithms_per_paper=1)
        with pytest.raises(ValueError):
            CorpusConfig(min_datasets_per_paper=5, max_datasets_per_paper=3)

    def test_generated_corpus_structure(self, small_performance):
        config = CorpusConfig(n_papers=10, random_state=1)
        corpus = CorpusGenerator(small_performance, config).generate()
        assert len(corpus.papers) == 10
        assert len(corpus) >= 10
        # Every experience refers to datasets/algorithms of the performance table.
        for experience in corpus:
            assert experience.instance in small_performance.datasets
            assert experience.best_algorithm in small_performance.algorithms

    def test_reliable_papers_report_true_winners_more_often(self, small_performance):
        config = CorpusConfig(n_papers=30, base_noise=0.0, unreliable_noise=0.5, random_state=2)
        corpus = CorpusGenerator(small_performance, config).generate()
        agreement = {True: [], False: []}
        for experience in corpus:
            paper = corpus.paper(experience.paper_id)
            reliable = paper.extra["reliability"] > 0.5
            observed_pool = experience.algorithms
            true_best = max(observed_pool, key=lambda a: small_performance.score(a, experience.instance))
            agreement[reliable].append(experience.best_algorithm == true_best)
        if agreement[True] and agreement[False]:
            assert np.mean(agreement[True]) >= np.mean(agreement[False]) - 0.05

    def test_generation_deterministic(self, small_performance):
        config = CorpusConfig(n_papers=5, random_state=3)
        a = CorpusGenerator(small_performance, config).generate()
        b = CorpusGenerator(small_performance, config).generate()
        assert [e.instance for e in a] == [e.instance for e in b]
        assert [e.best_algorithm for e in a] == [e.best_algorithm for e in b]


class TestSerialization:
    def test_roundtrip_dict(self, small_corpus):
        payload = corpus_to_dict(small_corpus)
        restored = corpus_from_dict(payload)
        assert len(restored) == len(small_corpus)
        assert len(restored.papers) == len(small_corpus.papers)
        assert restored.instances() == small_corpus.instances()

    def test_roundtrip_file(self, small_corpus, tmp_path):
        path = tmp_path / "corpus.json"
        save_corpus(small_corpus, path)
        restored = load_corpus(path)
        assert [e.best_algorithm for e in restored] == [e.best_algorithm for e in small_corpus]
