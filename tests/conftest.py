"""Shared fixtures: small synthetic datasets and reduced registries.

Everything here is deliberately tiny so the full test suite runs in minutes:
the catalogue is restricted to its cheap members where a full catalogue is not
the point of the test, and GA/BO budgets are expressed in evaluations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus import CorpusConfig, generate_corpus
from repro.datasets import (
    Dataset,
    make_categorical_rules,
    make_friedman,
    make_gaussian_clusters,
    make_hypercube_rules,
    make_linear_response,
    make_nonlinear_manifold,
    make_piecewise_response,
)
from repro.evaluation import PerformanceTable
from repro.learners import default_registry, default_regression_registry

# A small but heterogeneous algorithm subset used across integration tests.
SMALL_CATALOGUE = [
    "J48",
    "SimpleCart",
    "RandomTree",
    "NaiveBayes",
    "BayesNet",
    "IBk",
    "KStar",
    "Logistic",
    "LDA",
    "OneR",
    "ZeroR",
    "HyperPipes",
    "VFI",
    "DecisionStump",
]


@pytest.fixture(scope="session")
def small_registry():
    return default_registry().subset(SMALL_CATALOGUE)


@pytest.fixture(scope="session")
def blobs_dataset() -> Dataset:
    return make_gaussian_clusters(
        "blobs", n_records=180, n_numeric=6, n_categorical=2, n_classes=3,
        class_separation=2.5, random_state=0,
    )


@pytest.fixture(scope="session")
def rules_dataset() -> Dataset:
    return make_hypercube_rules(
        "rules", n_records=200, n_numeric=6, n_categorical=0, n_classes=3, random_state=1
    )


@pytest.fixture(scope="session")
def rings_dataset() -> Dataset:
    return make_nonlinear_manifold(
        "rings", n_records=180, n_numeric=4, n_categorical=0, n_classes=2, random_state=2
    )


@pytest.fixture(scope="session")
def categorical_dataset() -> Dataset:
    return make_categorical_rules(
        "cats", n_records=180, n_numeric=2, n_categorical=6, n_classes=3, random_state=3
    )


@pytest.fixture(scope="session")
def simple_xy(blobs_dataset) -> tuple[np.ndarray, np.ndarray]:
    return blobs_dataset.to_matrix()


@pytest.fixture(scope="session")
def binary_xy() -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(0)
    n = 160
    X = rng.normal(size=(n, 5))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    return X, y


@pytest.fixture(scope="session")
def knowledge_datasets() -> list[Dataset]:
    """Eight small, varied datasets playing the role of the knowledge pool."""
    datasets = []
    makers = [
        make_gaussian_clusters,
        make_hypercube_rules,
        make_nonlinear_manifold,
        make_categorical_rules,
    ]
    for i in range(8):
        maker = makers[i % len(makers)]
        datasets.append(
            maker(
                f"KD{i}",
                n_records=120,
                n_numeric=5,
                n_categorical=2,
                n_classes=2 + (i % 2),
                random_state=100 + i,
            )
        )
    return datasets


@pytest.fixture(scope="session")
def small_performance(knowledge_datasets, small_registry) -> PerformanceTable:
    return PerformanceTable.compute(
        knowledge_datasets,
        registry=small_registry,
        tune=False,
        cv=3,
        max_records=100,
        random_state=0,
    )


@pytest.fixture(scope="session")
def small_corpus(knowledge_datasets, small_registry, small_performance):
    config = CorpusConfig(
        n_papers=12,
        min_datasets_per_paper=3,
        max_datasets_per_paper=6,
        min_algorithms_per_paper=6,
        max_algorithms_per_paper=10,
        random_state=0,
    )
    corpus, table = generate_corpus(
        knowledge_datasets,
        registry=small_registry,
        config=config,
        performance=small_performance,
    )
    return corpus


@pytest.fixture(scope="session")
def dataset_lookup(knowledge_datasets):
    return {d.name: d for d in knowledge_datasets}


# -- regression fixtures -------------------------------------------------------------

# Cheap regressor subset used where the full catalogue is not the point.
SMALL_REGRESSION_CATALOGUE = [
    "Ridge",
    "Lasso",
    "KNeighborsRegressor",
    "RegressionTree",
    "GradientBoosting",
    "DummyRegressor",
]


@pytest.fixture(scope="session")
def small_regression_registry():
    return default_regression_registry().subset(SMALL_REGRESSION_CATALOGUE)


@pytest.fixture(scope="session")
def linear_regression_dataset() -> Dataset:
    return make_linear_response(
        "lin-reg", n_records=150, n_numeric=5, n_categorical=1, informative=3,
        noise=0.1, random_state=0,
    )


@pytest.fixture(scope="session")
def regression_xy(linear_regression_dataset) -> tuple[np.ndarray, np.ndarray]:
    return linear_regression_dataset.to_matrix()


@pytest.fixture(scope="session")
def regression_knowledge_datasets() -> list[Dataset]:
    """Six small regression datasets playing the role of the knowledge pool."""
    makers = [make_linear_response, make_friedman, make_piecewise_response]
    datasets = []
    for i in range(6):
        maker = makers[i % len(makers)]
        datasets.append(
            maker(
                f"RD{i}",
                n_records=100,
                n_numeric=5,
                n_categorical=1,
                random_state=200 + i,
            )
        )
    return datasets
