"""WorkCoordinator tests: partitioning, stealing, leases, resume, interop.

The coordinator's contract is that any number of workers — threads here,
processes/hosts in production — can run the same cell list over a shared
store and (a) every cell ends up recorded exactly once, (b) duplicated
effort is bounded by lease races, (c) a crashed worker's cells are requeued
after its lease expires, and (d) the store image is byte-compatible with
the serial engine path.
"""

import threading
import time

import numpy as np
import pytest

from repro.datasets import make_gaussian_clusters
from repro.evaluation import PerformanceTable
from repro.execution import (
    EvaluationEngine,
    ResultStore,
    WorkCoordinator,
    claims_context,
    config_fingerprint,
    fingerprint_key,
)
from repro.learners import default_registry


def _cells(n: int) -> list[dict]:
    return [{"dataset": f"D{i}", "algorithm": "alg", "seed": i} for i in range(n)]


def _objective(cell: dict) -> float:
    return cell["seed"] / 7.0


class TestSingleWorker:
    def test_runs_every_cell_and_returns_scores(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        coordinator = WorkCoordinator(store)
        cells = _cells(9)
        scores = coordinator.run("ctx", cells, _objective)
        assert len(scores) == 9
        for cell in cells:
            assert scores[WorkCoordinator.cell_key(cell)] == cell["seed"] / 7.0
        assert coordinator.stats.n_executed == 9
        assert coordinator.stats.n_stolen == 0

    def test_results_are_persisted_with_configs(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        WorkCoordinator(store).run("ctx", _cells(3), _objective)
        fresh = ResultStore(tmp_path / "s")
        best_config, best_score = fresh.top_k("ctx", 1)[0]
        assert best_score == 2 / 7.0
        assert best_config["seed"] == 2

    def test_resume_skips_finished_cells(self, tmp_path):
        cells = _cells(6)
        WorkCoordinator(ResultStore(tmp_path / "s")).run("ctx", cells[:4], _objective)
        resumed = WorkCoordinator(ResultStore(tmp_path / "s"))
        scores = resumed.run("ctx", cells, _objective)
        assert len(scores) == 6
        assert resumed.stats.n_resumed == 4
        assert resumed.stats.n_executed == 2

    def test_crash_scores_are_recorded_not_raised(self, tmp_path):
        def crashing(cell):
            if cell["seed"] == 1:
                raise RuntimeError("boom")
            return 1.0

        coordinator = WorkCoordinator(ResultStore(tmp_path / "s"))
        scores = coordinator.run("ctx", _cells(3), crashing, crash_score=-0.5)
        assert scores[WorkCoordinator.cell_key(_cells(3)[1])] == -0.5
        assert coordinator.stats.n_crashes == 1
        # A rerun does not re-pay the crash: the crash score is knowledge too.
        rerun = WorkCoordinator(ResultStore(tmp_path / "s"))
        rerun.run("ctx", _cells(3), crashing, crash_score=-0.5)
        assert rerun.stats.n_executed == 0

    def test_duplicate_cells_rejected(self, tmp_path):
        coordinator = WorkCoordinator(ResultStore(tmp_path / "s"))
        with pytest.raises(ValueError, match="distinct"):
            coordinator.run("ctx", [_cells(1)[0], _cells(1)[0]], _objective)

    def test_validation(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        with pytest.raises(ValueError):
            WorkCoordinator(store, n_workers=0)
        with pytest.raises(ValueError):
            WorkCoordinator(store, worker_index=2, n_workers=2)
        with pytest.raises(ValueError):
            WorkCoordinator(store, lease_seconds=0)


class TestFleet:
    def test_two_workers_split_the_work(self, tmp_path):
        cells = _cells(20)

        def slow_objective(cell):
            time.sleep(0.01)
            return _objective(cell)

        coordinators = [
            WorkCoordinator(
                ResultStore(tmp_path / "s"), worker_index=w, n_workers=2,
                lease_seconds=10.0,
            )
            for w in range(2)
        ]
        results = [None, None]

        def run(w):
            results[w] = coordinators[w].run("ctx", cells, slow_objective)

        threads = [threading.Thread(target=run, args=(w,)) for w in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert results[0] == results[1]
        assert len(results[0]) == 20
        # Leases keep duplicated effort near zero on a healthy fleet.
        total = sum(c.stats.n_executed for c in coordinators)
        assert 20 <= total <= 24
        assert all(c.stats.n_executed >= 6 for c in coordinators)

    def test_lone_worker_steals_absent_partners_cells(self, tmp_path):
        # A fleet of 3 is declared but only worker 0 shows up: it must
        # finish everything, crossing into the missing workers' partitions.
        coordinator = WorkCoordinator(
            ResultStore(tmp_path / "s"), worker_index=0, n_workers=3
        )
        scores = coordinator.run("ctx", _cells(9), _objective)
        assert len(scores) == 9
        assert coordinator.stats.n_executed == 9
        assert coordinator.stats.n_stolen == 6

    def test_expired_lease_is_requeued(self, tmp_path):
        # A "crashed" worker left a lease behind; once it expires the cell
        # must be re-run, not orphaned.
        store = ResultStore(tmp_path / "s")
        cells = _cells(2)
        key = WorkCoordinator.cell_key(cells[1])
        store.put_key(claims_context("ctx"), key, time.time() + 0.4)
        coordinator = WorkCoordinator(store, poll_interval=0.05)
        t0 = time.monotonic()
        scores = coordinator.run("ctx", cells, _objective)
        assert len(scores) == 2
        assert time.monotonic() - t0 >= 0.2  # had to wait the lease out
        assert coordinator.stats.n_claim_skips >= 1
        assert coordinator.stats.n_executed == 2

    def test_timeout_when_cell_never_finishes(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        cells = _cells(1)
        key = WorkCoordinator.cell_key(cells[0])
        store.put_key(claims_context("ctx"), key, time.time() + 60.0)
        coordinator = WorkCoordinator(store, poll_interval=0.02, timeout=0.3)
        with pytest.raises(TimeoutError, match="pending"):
            coordinator.run("ctx", cells, _objective)

    def test_claims_live_in_a_sidecar_context(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        WorkCoordinator(store).run("ctx", _cells(3), _objective)
        assert claims_context("ctx") == "ctx#claims"
        fresh = ResultStore(tmp_path / "s")
        assert fresh.size("ctx") == 3
        assert fresh.size(claims_context("ctx")) == 3  # leases persisted apart
        # top_k of the real context is unpolluted by lease records.
        assert all("seed" in cfg for cfg, _ in fresh.top_k("ctx", 3))


class TestEngineInterop:
    def test_coordinator_resumes_engine_results(self, tmp_path):
        cells = _cells(5)
        store = ResultStore(tmp_path / "s")
        engine = EvaluationEngine(
            _objective, store=store, store_context="ctx", warm_start=True
        )
        engine.evaluate_many(cells)
        coordinator = WorkCoordinator(ResultStore(tmp_path / "s"))
        scores = coordinator.run("ctx", cells, _objective)
        assert coordinator.stats.n_executed == 0  # engine already paid for all
        for cell in cells:
            key = fingerprint_key(config_fingerprint(cell))
            assert scores[key] == _objective(cell)

    def test_engine_warm_starts_from_coordinator_results(self, tmp_path):
        cells = _cells(5)
        WorkCoordinator(ResultStore(tmp_path / "s")).run("ctx", cells, _objective)
        engine = EvaluationEngine(
            _objective,
            store=ResultStore(tmp_path / "s"),
            store_context="ctx",
            warm_start=True,
        )
        outcomes = engine.evaluate_many(cells)
        assert engine.stats.n_executions == 0
        assert engine.stats.n_store_hits == 5
        assert [o.score for o in outcomes] == [_objective(c) for c in cells]


class TestPerformanceTableIntegration:
    @pytest.fixture(scope="class")
    def tiny_datasets(self):
        return [
            make_gaussian_clusters(
                f"coord-D{i}", n_records=60, n_numeric=3, n_categorical=0,
                n_classes=2, random_state=40 + i,
            )
            for i in range(2)
        ]

    @pytest.fixture(scope="class")
    def tiny_registry(self):
        return default_registry().subset(["ZeroR", "OneR", "DecisionStump"])

    def test_coordinated_table_identical_to_serial(
        self, tmp_path, tiny_datasets, tiny_registry
    ):
        serial = PerformanceTable.compute(
            tiny_datasets, registry=tiny_registry, cv=2, max_records=50
        )
        coordinator = WorkCoordinator(ResultStore(tmp_path / "fleet"))
        coordinated = PerformanceTable.compute(
            tiny_datasets, registry=tiny_registry, cv=2, max_records=50,
            coordinator=coordinator,
        )
        assert coordinated.algorithms == serial.algorithms
        assert coordinated.datasets == serial.datasets
        np.testing.assert_array_equal(coordinated.scores, serial.scores)
        assert "coordinator" in coordinated.metadata

    def test_second_fleet_run_resumes_from_store(
        self, tmp_path, tiny_datasets, tiny_registry
    ):
        first = WorkCoordinator(ResultStore(tmp_path / "fleet"))
        PerformanceTable.compute(
            tiny_datasets, registry=tiny_registry, cv=2, max_records=50,
            coordinator=first,
        )
        second = WorkCoordinator(ResultStore(tmp_path / "fleet"))
        table = PerformanceTable.compute(
            tiny_datasets, registry=tiny_registry, cv=2, max_records=50,
            coordinator=second,
        )
        assert second.stats.n_executed == 0
        assert second.stats.n_resumed == len(table.datasets) * len(table.algorithms)
