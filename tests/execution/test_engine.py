"""Tests for the unified trial-execution engine.

Covers the acceptance properties of the subsystem: cache determinism (same
fingerprint → same score, no re-evaluation), parallel-vs-serial score parity
under a fixed ``random_state``, and budget exhaustion mid-batch.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.execution import (
    Budget,
    EvaluationEngine,
    FoldPlan,
    ResultStore,
    config_fingerprint,
    estimator_engine,
)
from repro.hpo import Budget as HPOBudget
from repro.hpo import GeneticAlgorithm, HPOProblem, RandomSearch
from repro.hpo.selector import HPOTechniqueSelector
from repro.hpo.space import CategoricalParam, ConfigSpace, FloatParam, IntParam
from repro.learners import cross_val_accuracy
from repro.learners.tree import DecisionStump


def quadratic_space() -> ConfigSpace:
    return ConfigSpace([FloatParam("x", -5.0, 5.0), FloatParam("y", -5.0, 5.0)])


def quadratic(config: dict) -> float:
    return -((config["x"] - 1.0) ** 2) - (config["y"] + 2.0) ** 2


class CountingObjective:
    """Objective that counts how many real executions it performs."""

    def __init__(self, fn=quadratic):
        self.fn = fn
        self.calls = 0

    def __call__(self, config):
        self.calls += 1
        return self.fn(config)


class TestFingerprint:
    def test_key_order_does_not_matter(self):
        assert config_fingerprint({"a": 1, "b": 2.5}) == config_fingerprint({"b": 2.5, "a": 1})

    def test_numpy_scalars_equal_python_scalars(self):
        assert config_fingerprint({"k": np.int64(3)}) == config_fingerprint({"k": 3})

    def test_distinct_floats_do_not_collide(self):
        a = config_fingerprint({"x": 0.1})
        b = config_fingerprint({"x": 0.1 + 1e-12})
        assert a != b


class TestCacheDeterminism:
    def test_repeat_config_is_not_re_evaluated(self):
        objective = CountingObjective()
        engine = EvaluationEngine(objective)
        config = {"x": 0.5, "y": 1.0}
        first = engine.evaluate(config)
        second = engine.evaluate(config)
        assert objective.calls == 1
        assert second.cached and not first.cached
        assert second.score == first.score
        assert engine.stats.hit_rate > 0.0

    def test_cache_disabled_re_evaluates(self):
        objective = CountingObjective()
        engine = EvaluationEngine(objective, cache=False)
        config = {"x": 0.5, "y": 1.0}
        engine.evaluate(config)
        engine.evaluate(config)
        assert objective.calls == 2

    def test_crashes_are_cached_and_counted(self):
        objective = CountingObjective(fn=lambda c: 1 / 0)
        engine = EvaluationEngine(objective)
        outcome = engine.evaluate({"x": 0.0, "y": 0.0})
        repeat = engine.evaluate({"x": 0.0, "y": 0.0})
        assert outcome.score == float("-inf") and outcome.crashed
        assert repeat.cached and repeat.score == float("-inf")
        assert objective.calls == 1
        assert engine.stats.n_crashes == 1
        assert engine.stats.last_error is not None

    def test_seeding_prepopulates_cache(self):
        engine = EvaluationEngine(CountingObjective())
        engine.seed({"x": 1.0, "y": -2.0}, 0.0)
        outcome = engine.evaluate({"x": 1.0, "y": -2.0})
        assert outcome.cached and outcome.score == 0.0

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            EvaluationEngine(quadratic, backend="gpu")
        with pytest.raises(ValueError):
            EvaluationEngine(quadratic, n_workers=0)


class TestBatchEvaluation:
    def _configs(self, n: int, seed: int = 0) -> list[dict]:
        rng = np.random.default_rng(seed)
        space = quadratic_space()
        return [space.sample(rng) for _ in range(n)]

    def test_results_in_input_order(self):
        configs = self._configs(12)
        engine = EvaluationEngine(quadratic, n_workers=4)
        outcomes = engine.evaluate_many(configs)
        for config, outcome in zip(configs, outcomes):
            assert outcome.score == pytest.approx(quadratic(config))

    def test_parallel_matches_serial_scores(self):
        configs = self._configs(20, seed=3)
        serial = EvaluationEngine(quadratic, n_workers=1).evaluate_many(configs)
        parallel = EvaluationEngine(quadratic, n_workers=4).evaluate_many(configs)
        assert [o.score for o in serial] == [o.score for o in parallel]

    def test_budget_exhaustion_mid_batch(self):
        configs = self._configs(10)
        engine = EvaluationEngine(quadratic, n_workers=1)
        budget = Budget(max_evaluations=4)
        outcomes = engine.evaluate_many(configs, budget=budget)
        assert sum(o is not None for o in outcomes) == 4
        assert outcomes[4:] == [None] * 6  # skipped items are a suffix
        assert budget.exhausted()
        assert budget.evaluations == 4

    def test_time_budget_skips_everything_when_spent(self):
        engine = EvaluationEngine(quadratic)
        budget = Budget(time_limit=0.0)
        budget.start()
        outcomes = engine.evaluate_many(self._configs(5), budget=budget)
        assert outcomes == [None] * 5

    def test_in_batch_duplicates_execute_once(self):
        objective = CountingObjective()
        engine = EvaluationEngine(objective, n_workers=1)
        config = {"x": 2.0, "y": 2.0}
        outcomes = engine.evaluate_many([config, dict(config), dict(config)])
        assert objective.calls == 1
        assert [o.score for o in outcomes] == [quadratic(config)] * 3
        assert [o.cached for o in outcomes] == [False, True, True]

    def test_crash_score_configurable(self):
        engine = EvaluationEngine(lambda c: 1 / 0, crash_score=0.0)
        outcomes = engine.evaluate_many([{"x": 1}, {"x": 2}])
        assert [o.score for o in outcomes] == [0.0, 0.0]
        assert engine.stats.n_crashes == 2

    def test_unpicklable_objective_falls_back_to_threads(self):
        data = np.arange(4)
        engine = EvaluationEngine(lambda c: float(data.sum()), n_workers=2, backend="process")
        assert engine.backend == "thread"
        outcomes = engine.evaluate_many([{"a": 1}, {"a": 2}])
        assert [o.score for o in outcomes] == [6.0, 6.0]
        # The silent degradation is surfaced in the reported statistics.
        assert engine.stats.as_dict()["backend_fallback_from"] == "process"

    def test_stats_accumulate(self):
        engine = EvaluationEngine(quadratic, n_workers=2)
        engine.evaluate_many(self._configs(6))
        stats = engine.stats
        assert stats.n_executions == 6
        assert stats.n_batches == 1
        assert stats.largest_batch == 6
        assert stats.evals_per_second > 0
        payload = stats.as_dict()
        assert payload["n_evaluations"] == 6
        assert payload["backend"] == "thread"


class TestOptimizerIntegration:
    def test_parallel_ga_matches_serial_ga(self):
        """Score parity: identical trajectories at any worker count."""

        def run(n_workers: int):
            engine = EvaluationEngine(quadratic, n_workers=n_workers)
            problem = HPOProblem(quadratic_space(), engine=engine)
            optimizer = GeneticAlgorithm(
                population_size=10, n_generations=5, random_state=7
            )
            return optimizer.optimize(problem, HPOBudget(max_evaluations=60))

        serial = run(1)
        parallel = run(4)
        assert [t.score for t in serial.trials] == [t.score for t in parallel.trials]
        assert serial.best_config == parallel.best_config
        assert serial.best_score == parallel.best_score

    def test_ga_duplicate_configs_hit_cache_with_identical_scores(self):
        """Acceptance: cache hit rate > 0 on a GA run with duplicate configs,
        scores identical to the uncached (serial) path."""
        space = ConfigSpace(
            [IntParam("k", 1, 4), CategoricalParam("mode", ["a", "b"])]
        )

        def objective(config):
            return config["k"] + (1.0 if config["mode"] == "a" else 0.0)

        def run(cache: bool):
            counting = CountingObjective(fn=objective)
            engine = EvaluationEngine(counting, cache=cache)
            problem = HPOProblem(space, engine=engine)
            ga = GeneticAlgorithm(population_size=8, n_generations=6, random_state=0)
            result = ga.optimize(problem, HPOBudget(max_evaluations=48))
            return result, engine, counting

        cached_result, cached_engine, counting = run(cache=True)
        uncached_result, _, uncached_counting = run(cache=False)
        # GA elites repeat across generations, so the cache must fire ...
        assert cached_engine.stats.n_cache_hits > 0
        assert cached_engine.stats.hit_rate > 0.0
        assert counting.calls < uncached_counting.calls  # measurable saving
        # ... without changing a single score along the trajectory.
        assert [t.score for t in cached_result.trials] == [
            t.score for t in uncached_result.trials
        ]
        assert cached_result.best_score == uncached_result.best_score

    def test_serial_target_score_stops_at_first_hit(self):
        """On a serial engine the GA keeps the seed's per-evaluation early
        stop: nothing past the first target-reaching config is evaluated."""
        objective = CountingObjective(fn=lambda c: 1.0)
        problem = HPOProblem(quadratic_space(), engine=EvaluationEngine(objective))
        ga = GeneticAlgorithm(
            population_size=10, n_generations=5, target_score=0.5, random_state=0
        )
        result = ga.optimize(problem, HPOBudget(max_evaluations=100))
        assert objective.calls == 1
        assert result.n_evaluations == 1

    def test_engine_reuses_executor_across_batches(self):
        engine = EvaluationEngine(quadratic, n_workers=2)
        engine.evaluate_many([{"x": 0.0, "y": 0.0}, {"x": 1.0, "y": 1.0}])
        first = engine._executor
        engine.evaluate_many([{"x": 2.0, "y": 2.0}, {"x": 3.0, "y": 3.0}])
        assert engine._executor is first is not None
        engine.close()
        assert engine._executor is None

    def test_trials_flag_cached_evaluations(self):
        space = ConfigSpace([CategoricalParam("mode", ["a", "b"])])
        engine = EvaluationEngine(lambda c: 1.0 if c["mode"] == "a" else 0.0)
        problem = HPOProblem(space, engine=engine)
        result = RandomSearch(random_state=0).optimize(problem, HPOBudget(max_evaluations=6))
        assert any(t.cached for t in result.trials)
        assert result.engine_stats["n_cache_hits"] > 0


class TestBudgetSemantics:
    def test_clock_starts_at_optimize_not_construction(self):
        """The seed's Budget started its clock in __post_init__, so setup time
        leaked into OptimizationResult.elapsed.  The engine/optimize entry now
        owns the start."""
        budget = HPOBudget(max_evaluations=5)
        time.sleep(0.05)
        problem = HPOProblem(quadratic_space(), quadratic)
        result = RandomSearch(random_state=0).optimize(problem, budget)
        assert result.elapsed < 0.05

    def test_start_keeps_prior_evaluations(self):
        budget = Budget(max_evaluations=10)
        budget.record_evaluation()
        budget.record_evaluation()
        budget.start()
        assert budget.evaluations == 2
        assert budget.remaining_evaluations() == 8

    def test_restart_resets_everything(self):
        budget = Budget(max_evaluations=3)
        for _ in range(3):
            budget.record_evaluation()
        assert budget.exhausted()
        budget.restart()
        assert not budget.exhausted()
        assert budget.evaluations == 0

    def test_unstarted_budget_reports_zero_elapsed(self):
        assert Budget().elapsed == 0.0


class TestSelectorSeeding:
    def _space(self):
        return ConfigSpace([FloatParam("x", 0.0, 1.0)])

    def test_probes_charge_budget_and_seed_cache(self):
        objective = CountingObjective(fn=lambda c: c["x"])
        engine = EvaluationEngine(objective)
        budget = Budget(max_evaluations=10)
        selector = HPOTechniqueSelector(time_threshold=10.0, n_probes=2, random_state=0)
        selector.select(self._space(), engine=engine, budget=budget)
        assert budget.evaluations == 2  # probes are no longer off-the-books
        assert objective.calls == 2  # probes bypass cache reads for real timings
        default = self._space().default_configuration()
        assert engine.cached_score(default) is not None  # ... but seed it

    def test_optimizer_reuses_probe_result_as_anchor_trial(self):
        engine = EvaluationEngine(lambda c: c["x"])
        budget = Budget(max_evaluations=8)
        selector = HPOTechniqueSelector(time_threshold=10.0, n_probes=1, random_state=0)
        optimizer = selector.select(self._space(), engine=engine, budget=budget)
        problem = HPOProblem(self._space(), engine=engine)
        result = optimizer.optimize(problem, budget)
        # GA evaluates the default configuration first: it must be a cache hit.
        assert result.trials[0].cached
        assert len(result.trials) + 1 <= 9  # probe counted against the budget


class TestStoreIntegration:
    """The engine's write-through persistence tier (satellite hardening sweep)."""

    def test_write_through_persists_every_execution(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        engine = EvaluationEngine(quadratic, store=store, name="wt")
        configs = [{"x": float(i), "y": 0.0} for i in range(5)]
        engine.evaluate_many(configs)
        assert store.stats.writes == 5
        reopened = ResultStore(tmp_path / "s")
        for config in configs:
            assert reopened.get("wt", config_fingerprint(config)) == quadratic(config)

    def test_thread_parallel_duplicates_write_once_in_order(self, tmp_path):
        """Satellite acceptance: thread-parallel evaluate_many over duplicate
        configs → exactly one store write per fingerprint, deterministic
        input-aligned ordering."""
        store = ResultStore(tmp_path / "s")
        objective = CountingObjective()
        engine = EvaluationEngine(objective, n_workers=4, store=store, name="dup")
        distinct = [{"x": float(i), "y": float(-i)} for i in range(4)]
        batch = [dict(distinct[i % 4]) for i in range(20)]  # 5 copies each
        outcomes = engine.evaluate_many(batch)
        assert [o.score for o in outcomes] == [quadratic(c) for c in batch]
        assert objective.calls == 4
        assert store.stats.writes == 4  # one line per fingerprint
        assert store.stats.duplicate_writes == 0
        # Deterministic ordering: a repeat run returns the same aligned scores.
        repeat = engine.evaluate_many(batch)
        assert [o.score for o in repeat] == [o.score for o in outcomes]
        assert store.stats.writes == 4  # still nothing new on disk

    def test_racing_engine_threads_write_each_fingerprint_once(self, tmp_path):
        """Concurrent evaluate_many calls (no shared wave) still produce one
        store line per fingerprint thanks to idempotent puts."""
        store = ResultStore(tmp_path / "s")
        engine = EvaluationEngine(quadratic, store=store, name="race")
        configs = [{"x": float(i % 3), "y": 1.0} for i in range(9)]
        barrier = threading.Barrier(4)
        results: list[list] = [[] for _ in range(4)]

        def run(slot: int) -> None:
            barrier.wait()
            results[slot] = engine.evaluate_many(configs)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = [quadratic(c) for c in configs]
        for outcome_list in results:
            assert [o.score for o in outcome_list] == expected
        assert store.stats.writes == 3  # three distinct fingerprints, ever
        reopened = ResultStore(tmp_path / "s")
        assert reopened.size("race") == 3
        assert reopened.stats.corrupt_records == 0

    def test_warm_start_replays_prior_run(self, tmp_path):
        objective = CountingObjective()
        cold = EvaluationEngine(objective, store=ResultStore(tmp_path / "s"), name="e")
        configs = [{"x": float(i), "y": 2.0} for i in range(6)]
        cold_scores = [o.score for o in cold.evaluate_many(configs)]
        warm_objective = CountingObjective()
        warm = EvaluationEngine(
            warm_objective,
            store=ResultStore(tmp_path / "s"),
            warm_start=True,
            name="e",
        )
        warm_scores = [o.score for o in warm.evaluate_many(configs)]
        assert warm_scores == cold_scores
        assert warm_objective.calls == 0
        assert warm.stats.n_store_hits == 6
        assert warm.stats.n_executions == 0
        assert warm.stats.as_dict()["n_store_hits"] == 6

    def test_warm_start_off_by_default_even_with_store(self, tmp_path):
        EvaluationEngine(quadratic, store=ResultStore(tmp_path / "s"), name="e").evaluate(
            {"x": 1.0, "y": 1.0}
        )
        objective = CountingObjective()
        second = EvaluationEngine(objective, store=ResultStore(tmp_path / "s"), name="e")
        second.evaluate({"x": 1.0, "y": 1.0})
        assert objective.calls == 1  # store present but not read
        assert second.stats.n_store_hits == 0

    def test_store_contexts_do_not_leak_across_engines(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        EvaluationEngine(quadratic, store=store, name="a").evaluate({"x": 0.0, "y": 0.0})
        objective = CountingObjective()
        other = EvaluationEngine(objective, store=store, warm_start=True, name="b")
        other.evaluate({"x": 0.0, "y": 0.0})
        assert objective.calls == 1  # context "b" never saw context "a"'s score


class TestWarmStartEquivalence:
    """Satellite acceptance: with a pre-populated store the optimizer result
    is score-identical to the cold run under the same seed — just cheaper."""

    def _run_ga(self, store, warm: bool):
        objective = CountingObjective()
        engine = EvaluationEngine(
            objective, store=store, warm_start=warm, name="ga-ws"
        )
        problem = HPOProblem(quadratic_space(), engine=engine)
        optimizer = GeneticAlgorithm(population_size=8, n_generations=5, random_state=11)
        result = optimizer.optimize(problem, HPOBudget(max_evaluations=40))
        return result, engine, objective

    def test_ga_warm_run_is_score_identical_and_free(self, tmp_path):
        cold, cold_engine, cold_objective = self._run_ga(
            ResultStore(tmp_path / "s"), warm=False
        )
        warm, warm_engine, warm_objective = self._run_ga(
            ResultStore(tmp_path / "s"), warm=True
        )
        assert [t.score for t in warm.trials] == [t.score for t in cold.trials]
        assert warm.best_config == cold.best_config
        assert warm.best_score == cold.best_score
        # Same logical trajectory, zero objective calls the second time round.
        assert warm_objective.calls == 0
        assert warm_engine.stats.n_executions == 0
        assert warm_engine.stats.n_store_hits > 0
        assert warm_engine.stats.n_evaluations == cold_engine.stats.n_evaluations
        assert cold_objective.calls == cold_engine.stats.n_executions

    def test_warm_start_seeding_promotes_prior_best(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        best = {"x": 1.0, "y": -2.0}  # the quadratic's optimum
        store.put("rs", config_fingerprint(best), quadratic(best), config=best)
        engine = EvaluationEngine(quadratic, store=store, warm_start=True, name="rs")
        problem = HPOProblem(quadratic_space(), engine=engine)
        optimizer = RandomSearch(random_state=0, warm_start=3)
        result = optimizer.optimize(problem, HPOBudget(max_evaluations=10))
        # Trial 0 is the default anchor; trial 1 re-ranks the stored best.
        assert result.trials[1].config == best
        assert result.trials[1].cached
        assert result.best_score == quadratic(best)

    def test_seeding_strips_foreign_keys_and_invalid_configs(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        good = {"x": 0.5, "y": 0.5, "__budget__": 27.0}  # fidelity key rides along
        bad = {"x": 99.0, "y": 0.0}  # out of the space's domain
        store.put("sel", config_fingerprint(good), 1.0, config=good)
        store.put("sel", config_fingerprint(bad), 2.0, config=bad)
        engine = EvaluationEngine(quadratic, store=store, warm_start=True, name="sel")
        problem = HPOProblem(quadratic_space(), engine=engine)
        optimizer = RandomSearch(random_state=0, warm_start=5)
        seeds = optimizer._warm_start_configs(problem)
        assert seeds == [{"x": 0.5, "y": 0.5}]


class TestFoldPlan:
    def test_scores_match_cross_val_accuracy(self, binary_xy):
        X, y = binary_xy
        plan = FoldPlan.stratified(y, cv=4, random_state=3)
        stump = DecisionStump()
        assert plan.score(stump, X, y) == pytest.approx(
            cross_val_accuracy(stump, X, y, cv=4, random_state=3)
        )

    def test_estimator_engine_scores_match_direct_cv(self, binary_xy):
        X, y = binary_xy
        engine = estimator_engine(
            lambda config: DecisionStump(), X, y, cv=4, random_state=3
        )
        outcome = engine.evaluate({})
        assert outcome.score == pytest.approx(
            cross_val_accuracy(DecisionStump(), X, y, cv=4, random_state=3)
        )

    def test_build_crash_scores_crash_score(self, binary_xy):
        X, y = binary_xy

        def build(config):
            raise RuntimeError("cannot build")

        engine = estimator_engine(build, X, y, cv=3, random_state=0)
        assert engine.evaluate({}).score == float("-inf")
        assert engine.stats.n_crashes == 1
