"""One conformance suite, three backends.

Every :class:`StoreBackend` implementation (JSONL shards, sqlite WAL, the
HTTP store server/client pair) must honour the same ``ResultStore``
contract: exact score round-trips (including NaN/-inf), idempotent
duplicate skips, config preservation and backfill, cross-instance
visibility through ``refresh``, merge-safe compaction under a concurrent
writer, and zero lost writes under thread stress.  The suite is
parametrised so a new backend gets the whole battery for free.
"""

import math
import threading

import pytest

from repro.execution import ResultStore
from repro.execution.cache import config_fingerprint
from repro.service.store_server import StoreService, serve_store_in_thread

BACKENDS = ("jsonl", "sqlite", "http")


def _fp(i: int) -> tuple:
    return config_fingerprint({"x": i})


@pytest.fixture(params=BACKENDS)
def store_env(request, tmp_path):
    """``(kind, factory)`` where each ``factory()`` is a writer on one shared
    substrate — separate instances model separate processes/hosts."""
    kind = request.param
    if kind == "http":
        authority = ResultStore(tmp_path / "authority", backend="sqlite")
        server, _ = serve_store_in_thread(StoreService(authority))
        url = "http://{}:{}".format(*server.server_address[:2])
        yield kind, lambda: ResultStore(url)
        server.shutdown()
        server.server_close()
        authority.close()
    else:
        yield kind, lambda: ResultStore(tmp_path / "store", backend=kind)


class TestConformance:
    def test_roundtrip_exact_scores(self, store_env):
        kind, make = store_env
        store = make()
        values = [0.5, -1.0, 0.1 + 0.2, 1e-300, float("nan"), float("-inf")]
        for i, value in enumerate(values):
            assert store.put("ctx", _fp(i), value)
        fresh = make()
        for i, value in enumerate(values):
            got = fresh.get("ctx", _fp(i))
            if math.isnan(value):
                assert math.isnan(got)
            else:
                assert got == value  # bit-exact, not approx

    def test_missing_key_is_a_miss(self, store_env):
        _, make = store_env
        store = make()
        assert store.get("ctx", _fp(999)) is None
        assert store.stats.misses == 1

    def test_duplicate_put_is_skipped_and_counted(self, store_env):
        _, make = store_env
        store = make()
        assert store.put("ctx", _fp(1), 0.5, config={"x": 1})
        assert not store.put("ctx", _fp(1), 0.5, config={"x": 1})
        assert store.stats.writes == 1
        assert store.stats.duplicate_writes == 1

    def test_superseding_put_updates_score(self, store_env):
        _, make = store_env
        store = make()
        store.put("ctx", _fp(1), 0.5)
        assert store.put("ctx", _fp(1), 0.75)
        assert store.get("ctx", _fp(1)) == 0.75
        assert make().get("ctx", _fp(1)) == 0.75

    def test_superseding_put_without_config_keeps_config(self, store_env):
        _, make = store_env
        store = make()
        store.put("ctx", _fp(1), 0.5, config={"x": 1})
        store.put("ctx", _fp(1), 0.9)  # score-only supersede
        assert make().top_k("ctx") == [({"x": 1}, 0.9)]

    def test_equal_score_reput_backfills_missing_config(self, store_env):
        # The bug-1 contract, enforced on every backend: a score-only record
        # must accept the config a later equal-score put finally carries.
        _, make = store_env
        store = make()
        store.put("ctx", _fp(1), 0.5)
        assert store.top_k("ctx") == []
        assert store.put("ctx", _fp(1), 0.5, config={"x": 1})
        assert store.top_k("ctx") == [({"x": 1}, 0.5)]
        assert make().top_k("ctx") == [({"x": 1}, 0.5)]

    def test_top_k_orders_and_requires_configs(self, store_env):
        _, make = store_env
        store = make()
        for i, score in enumerate([0.3, 0.9, 0.6]):
            store.put("ctx", _fp(i), score, config={"x": i})
        store.put("ctx", _fp(7), 1.0)  # no config: never seeds
        store.put("ctx", _fp(8), float("nan"), config={"x": 8})  # not finite
        top = make().top_k("ctx", k=2)
        assert [score for _, score in top] == [0.9, 0.6]
        assert [config["x"] for config, _ in top] == [1, 2]

    def test_contexts_listing(self, store_env):
        _, make = store_env
        store = make()
        store.put("alpha", _fp(1), 0.1)
        store.put("beta", _fp(1), 0.2)
        assert store.contexts() == ["alpha", "beta"]
        assert make().contexts() == ["alpha", "beta"]

    def test_cross_instance_visibility_via_refresh(self, store_env):
        _, make = store_env
        writer, reader = make(), make()
        assert reader.size("ctx") == 0  # reader has loaded (and cached) empty
        writer.put("ctx", _fp(1), 0.5)
        assert reader.get("ctx", _fp(1)) is None  # served from cached image
        reader.refresh("ctx")
        assert reader.get("ctx", _fp(1)) == 0.5

    def test_compact_merges_concurrent_writer(self, store_env):
        # The bug-3 contract, enforced on every backend: records another
        # instance wrote after this one loaded must survive its compaction.
        _, make = store_env
        a, b = make(), make()
        a.put("ctx", _fp(1), 0.5)
        a.compact("ctx")  # a's image of ctx is now loaded and cached
        b.refresh("ctx")
        b.put("ctx", _fp(2), 0.7)
        a.compact("ctx")
        final = make()
        assert final.get("ctx", _fp(1)) == 0.5
        assert final.get("ctx", _fp(2)) == 0.7

    def test_compact_preserves_everything(self, store_env):
        _, make = store_env
        store = make()
        for i in range(10):
            store.put("ctx", _fp(i), float(i), config={"x": i})
        for i in range(5):
            store.put("ctx", _fp(i), float(i) + 100.0)  # supersede half
        store.compact("ctx")
        fresh = make()
        for i in range(10):
            expected = float(i) + (100.0 if i < 5 else 0.0)
            assert fresh.get("ctx", _fp(i)) == expected
        assert fresh.top_k("ctx", k=1)[0][0] == {"x": 4}

    def test_threaded_writers_zero_lost_writes(self, store_env):
        _, make = store_env
        store = make()
        n_threads, per_thread = 4, 25
        start = threading.Barrier(n_threads)

        def writer(worker: int) -> None:
            start.wait()
            base = worker * per_thread
            for i in range(base, base + per_thread):
                store.put("ctx", _fp(i), i / 7.0, config={"x": i})

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        fresh = make()
        for i in range(n_threads * per_thread):
            assert fresh.get("ctx", _fp(i)) == i / 7.0
        assert store.stats.write_errors == 0

    def test_describe_names_the_backend(self, store_env):
        kind, make = store_env
        assert make().describe()["backend"] == kind


class TestHttpBackendDegradation:
    """A dead server must degrade like a corrupt shard, never raise."""

    def test_unreachable_server_counts_errors(self):
        store = ResultStore("http://127.0.0.1:9")  # discard port: nothing listens
        assert store.get("ctx", _fp(1)) is None
        assert store.stats.load_errors == 1
        assert not store.put("ctx", _fp(1), 0.5)
        assert store.stats.write_errors == 1
        assert store.contexts() == []

    def test_compact_failure_is_counted_not_raised(self):
        store = ResultStore("http://127.0.0.1:9")
        store.put("ctx", _fp(1), 0.5)  # fails, image stays empty
        assert store.compact("ctx") == 0


class TestBackendSelection:
    def test_http_root_autoselects_http_backend(self):
        assert ResultStore("http://example.invalid:1").backend.name == "http"

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store backend"):
            ResultStore(tmp_path, backend="etcd")

    def test_http_name_without_url_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="http"):
            ResultStore(tmp_path, backend="http")

    def test_backend_instance_passthrough(self, tmp_path):
        from repro.execution import SqliteBackend

        store = ResultStore(tmp_path, backend="sqlite")
        backend = store.backend
        assert isinstance(backend, SqliteBackend)
        again = ResultStore(tmp_path, backend=backend)
        assert again.backend is backend

    def test_sqlite_shard_path_unsupported(self, tmp_path):
        store = ResultStore(tmp_path, backend="sqlite")
        with pytest.raises(NotImplementedError):
            store.shard_path("ctx")

    def test_sqlite_version_isolation(self, tmp_path):
        # A database written by another format version reads as empty —
        # and fresh writes live in their own table, so neither poisons the other.
        old = ResultStore(tmp_path, backend="sqlite", format_version=99)
        old.put("ctx", _fp(1), 0.25)
        new = ResultStore(tmp_path, backend="sqlite")
        assert new.get("ctx", _fp(1)) is None
        new.put("ctx", _fp(1), 0.75)
        assert ResultStore(tmp_path, backend="sqlite").get("ctx", _fp(1)) == 0.75
        old.refresh()
        assert old.get("ctx", _fp(1)) == 0.25
