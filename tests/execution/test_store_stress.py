"""Stress tests: ResultStore compaction racing concurrent writers.

Interleaves ``append``-style ``put`` traffic from several threads with
repeated ``compact`` calls and asserts that no record is lost (in memory *and*
after a cold reload from disk) and that the hit/miss statistics stay
consistent with the observed lookups.  The multi-process battery below then
hammers one context from N real processes through each store backend — the
distributed-fleet write pattern — and demands zero lost writes and identical
final scores.
"""

import multiprocessing
import threading

import pytest

from repro.execution import ResultStore
from repro.execution.cache import config_fingerprint
from repro.service.store_server import StoreService, serve_store_in_thread

_FORK = multiprocessing.get_context("fork")


def _fingerprint(i: int) -> tuple:
    return config_fingerprint({"x": i, "flag": i % 3 == 0})


class TestCompactionUnderWriters:
    N_WRITERS = 4
    RECORDS_PER_WRITER = 120
    N_COMPACTIONS = 25

    def _expected_scores(self) -> dict[int, float]:
        return {
            i: float(i) / 7.0
            for i in range(self.N_WRITERS * self.RECORDS_PER_WRITER)
        }

    def test_no_records_lost_and_stats_consistent(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        context = "stress-ctx"
        expected = self._expected_scores()
        start = threading.Barrier(self.N_WRITERS + 1)
        errors: list[BaseException] = []

        def writer(worker: int) -> None:
            try:
                start.wait()
                base = worker * self.RECORDS_PER_WRITER
                for i in range(base, base + self.RECORDS_PER_WRITER):
                    store.put(context, _fingerprint(i), expected[i], config={"x": i})
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        def compactor() -> None:
            try:
                start.wait()
                for _ in range(self.N_COMPACTIONS):
                    store.compact(context)
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(self.N_WRITERS)
        ]
        threads.append(threading.Thread(target=compactor))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors

        # Every record is present in memory with its exact score.
        assert store.size(context) == len(expected)
        for i, score in expected.items():
            assert store.get(context, _fingerprint(i)) == score
        # Stats: the verification loop above did len(expected) hits, no misses,
        # and the writers did exactly one (non-duplicate) write per record.
        assert store.stats.hits == len(expected)
        assert store.stats.misses == 0
        assert store.stats.writes == len(expected)
        assert store.stats.write_errors == 0

        # And a cold reload from disk sees the same complete image.
        reloaded = ResultStore(tmp_path / "store")
        assert reloaded.size(context) == len(expected)
        for i, score in expected.items():
            assert reloaded.get(context, _fingerprint(i)) == score
        assert reloaded.stats.corrupt_records == 0
        assert reloaded.stats.version_skips == 0

    def test_superseding_writes_survive_concurrent_compaction(self, tmp_path):
        """Re-puts with new scores race compaction; latest score must win."""
        store = ResultStore(tmp_path / "store")
        context = "supersede-ctx"
        n_keys = 40
        rounds = 5
        start = threading.Barrier(3)
        errors: list[BaseException] = []

        def rewriter() -> None:
            try:
                start.wait()
                for round_number in range(1, rounds + 1):
                    for i in range(n_keys):
                        store.put(
                            context, _fingerprint(i), float(round_number), config={"x": i}
                        )
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def compactor() -> None:
            try:
                start.wait()
                for _ in range(15):
                    store.compact(context)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=rewriter), threading.Thread(target=compactor)]
        for thread in threads:
            thread.start()
        start.wait()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors

        final = ResultStore(tmp_path / "store")
        assert final.size(context) == n_keys
        for i in range(n_keys):
            assert final.get(context, _fingerprint(i)) == float(rounds)

    def test_compaction_reclaims_dead_lines_after_churn(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        context = "churn-ctx"
        for round_number in range(1, 4):
            for i in range(30):
                store.put(context, _fingerprint(i), float(round_number))
        path = store.shard_path(context)
        lines_before = sum(1 for _ in path.open())
        reclaimed = store.compact(context)
        lines_after = sum(1 for _ in path.open())
        assert reclaimed == 60  # two dead lines per key
        assert lines_after == 31  # header + one line per live key
        assert lines_before - lines_after == 60

    def test_hit_miss_rates_after_mixed_traffic(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        context = "ratio-ctx"
        for i in range(10):
            store.put(context, _fingerprint(i), float(i))
        hits = sum(store.get(context, _fingerprint(i)) is not None for i in range(10))
        misses = sum(
            store.get(context, _fingerprint(i)) is None for i in range(10, 15)
        )
        assert (hits, misses) == (10, 5)
        assert store.stats.hits == 10
        assert store.stats.misses == 5
        assert store.stats.hit_rate == pytest.approx(10 / 15)

    def test_concurrent_writers_of_same_key_write_once(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        context = "idempotent-ctx"
        start = threading.Barrier(6)

        def writer() -> None:
            start.wait()
            for i in range(50):
                store.put(context, _fingerprint(i), float(i))

        threads = [threading.Thread(target=writer) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)

        path = store.shard_path(context)
        data_lines = [line for line in path.read_text().splitlines() if '"k"' in line]
        assert len(data_lines) == 50  # one line per key despite 6 racing writers
        assert store.stats.duplicate_writes == 5 * 50


def _process_writer(target, backend, worker, per_worker, context, n_shared, queue):
    """One fleet process: write a disjoint slice plus the shared keys.

    Module-level so the fork context can run it; each process builds its own
    ResultStore (its own backend connection) against the shared substrate.
    """
    try:
        store = ResultStore(target, backend=backend)
        base = worker * per_worker
        for i in range(base, base + per_worker):
            store.put(context, _fingerprint(i), i / 7.0, config={"x": i})
        for i in range(n_shared):
            # Every process writes these — cross-process idempotence traffic.
            store.put(context, _fingerprint(90_000 + i), float(i))
        queue.put(("ok", worker, store.stats.write_errors))
        store.close()
    except BaseException as exc:  # pragma: no cover - surfaced in the parent
        queue.put(("error", worker, repr(exc)))


class TestMultiProcessWriters:
    """N real processes, one context, every backend: zero lost writes."""

    N_PROCS = 4
    PER_PROC = 40
    N_SHARED = 10

    def _run_fleet(self, target, backend):
        queue = _FORK.Queue()
        procs = [
            _FORK.Process(
                target=_process_writer,
                args=(target, backend, w, self.PER_PROC, "mp-ctx", self.N_SHARED, queue),
            )
            for w in range(self.N_PROCS)
        ]
        for proc in procs:
            proc.start()
        results = [queue.get(timeout=90) for _ in procs]
        for proc in procs:
            proc.join(timeout=90)
        failures = [r for r in results if r[0] != "ok"]
        assert not failures, failures
        assert all(write_errors == 0 for _, _, write_errors in results)

    def _assert_complete(self, target, backend):
        final = ResultStore(target, backend=backend)
        expected = {i: i / 7.0 for i in range(self.N_PROCS * self.PER_PROC)}
        expected.update({90_000 + i: float(i) for i in range(self.N_SHARED)})
        assert final.size("mp-ctx") == len(expected)
        for i, score in expected.items():
            assert final.get("mp-ctx", _fingerprint(i)) == score
        assert final.stats.corrupt_records == 0
        # And the image survives a compaction + another cold reload.
        final.compact("mp-ctx")
        again = ResultStore(target, backend=backend)
        for i, score in expected.items():
            assert again.get("mp-ctx", _fingerprint(i)) == score

    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_local_backends_zero_lost_writes(self, tmp_path, backend):
        target = tmp_path / "store"
        self._run_fleet(target, backend)
        self._assert_complete(target, backend)

    def test_http_backend_zero_lost_writes(self, tmp_path):
        authority = ResultStore(tmp_path / "authority", backend="sqlite")
        server, _ = serve_store_in_thread(StoreService(authority))
        url = "http://{}:{}".format(*server.server_address[:2])
        try:
            self._run_fleet(url, "jsonl")  # backend name ignored for URLs
            self._assert_complete(url, "jsonl")
        finally:
            server.shutdown()
            server.server_close()
            authority.close()
