"""The engine's zero-copy data plane.

The process backend must ship each dataset/fold payload to each worker at most
once per (dataset, fold-plan) — via the pool initializer — while per-trial
submits pickle only the light config machinery.  ``EngineStats`` accounts for
both sides: ``data_plane_payloads`` counts blocks seeded into the pool and
``data_plane_hits`` counts trials whose worker re-bound the payload from its
process-local registry instead of receiving it in the submit.
"""

import pickle

import numpy as np
import pytest

from repro.execution import EvaluationEngine, estimator_engine
from repro.execution import dataplane
from repro.execution.objectives import CrossValObjective, cross_val_objective
from repro.learners import default_registry


class TreeBuilder:
    """Module-level (hence picklable) config -> estimator factory."""

    def __call__(self, config):
        return default_registry().get("J48").build(config)


def _configs(n: int, seed: int = 0) -> list[dict]:
    space = default_registry().get("J48").space
    rng = np.random.default_rng(seed)
    return [space.sample(rng) for _ in range(n)]


# ---------------------------------------------------------------------------
# Fingerprint + registry primitives
# ---------------------------------------------------------------------------

def test_fingerprint_is_content_addressed():
    X = np.arange(12, dtype=np.float64).reshape(4, 3)
    y = np.array([0, 1, 0, 1])
    key = dataplane.fingerprint({"X": X, "y": y})
    assert key == dataplane.fingerprint({"X": X.copy(), "y": y.copy()})
    X2 = X.copy()
    X2[0, 0] += 1.0
    assert key != dataplane.fingerprint({"X": X2, "y": y})
    # dtype participates: same bytes under a different view must not collide.
    assert key != dataplane.fingerprint({"X": X.astype(np.float32), "y": y})


def test_fingerprint_handles_object_matrices():
    X = np.array([["a", 1.5], [None, 2.5]], dtype=object)
    key = dataplane.fingerprint({"X": X})
    assert key == dataplane.fingerprint({"X": X.copy()})
    X2 = X.copy()
    X2[0, 0] = "b"
    assert key != dataplane.fingerprint({"X": X2})


def test_register_and_local_block_roundtrip():
    arrays = {"X": np.ones((2, 2)), "y": np.zeros(2)}
    key = dataplane.fingerprint(arrays)
    try:
        assert dataplane.local_block(key) is None
        dataplane.register(key, arrays)
        assert dataplane.local_block(key) is arrays
        assert key in dataplane.registered_keys()
    finally:
        dataplane._LOCAL.pop(key, None)


# ---------------------------------------------------------------------------
# Objective pickling: heavy vs light
# ---------------------------------------------------------------------------

def test_detached_pickle_drops_the_matrices(simple_xy):
    X, y = simple_xy
    objective = cross_val_objective(TreeBuilder(), X, y, cv=3, random_state=0)
    heavy = len(pickle.dumps(objective))
    objective.detach_payload = True
    light = len(pickle.dumps(objective))
    payload = sum(len(pickle.dumps(a)) for a in objective.payload().values())
    assert light < heavy - payload // 2  # the matrices really left the pickle
    clone = pickle.loads(pickle.dumps(objective))
    assert clone._X is None and clone._y is None
    assert clone.plane_attached is False


def test_unseeded_detached_copy_raises_instead_of_recomputing(simple_xy):
    X, y = simple_xy
    objective = cross_val_objective(TreeBuilder(), X, y, cv=3, random_state=0)
    objective.detach_payload = True
    clone = pickle.loads(pickle.dumps(objective))
    with pytest.raises(RuntimeError, match="not registered"):
        clone({})


def test_seeded_detached_copy_rebinds_and_reports_attachment(simple_xy):
    X, y = simple_xy
    objective = cross_val_objective(TreeBuilder(), X, y, cv=3, random_state=0)
    objective.detach_payload = True
    clone = pickle.loads(pickle.dumps(objective))
    try:
        dataplane.register(objective.data_key, objective.payload())
        score = clone(_configs(1)[0])
        assert np.isfinite(score)
        assert clone.plane_attached is True
        # Re-pickling a bound copy stays light and resets the flag.
        again = pickle.loads(pickle.dumps(clone))
        assert again._X is None and again.plane_attached is False
    finally:
        dataplane._LOCAL.pop(objective.data_key, None)


# ---------------------------------------------------------------------------
# End-to-end through the engine's process backend
# ---------------------------------------------------------------------------

def test_process_backend_ships_payload_once_and_scores_identically(simple_xy):
    X, y = simple_xy
    configs = _configs(6)

    serial = estimator_engine(
        TreeBuilder(), X, y, cv=3, random_state=0, name="dp-serial"
    )
    serial_scores = [o.score for o in serial.evaluate_many(configs)]

    parallel = estimator_engine(
        TreeBuilder(), X, y, cv=3, random_state=0,
        n_workers=2, backend="process", name="dp-process",
    )
    with parallel:
        parallel_scores = [o.score for o in parallel.evaluate_many(configs)]
        stats = parallel.stats
        assert parallel.backend == "process"  # no silent thread fallback
        assert serial_scores == parallel_scores  # bit-identical, not approx
        # One payload block seeded via the pool initializer; every executed
        # trial re-bound it worker-locally — no submit carried dataset bytes.
        assert stats.data_plane_payloads == 1
        assert stats.data_plane_hits == stats.n_executions == len(configs)

        # A second batch reuses the pool: the payload is NOT shipped again.
        more = _configs(4, seed=1)
        parallel.evaluate_many(more)
        stats = parallel.stats
        assert stats.data_plane_payloads == 1
        assert stats.data_plane_hits == stats.n_executions

    as_dict = parallel.stats.as_dict()
    assert as_dict["data_plane_payloads"] == 1
    assert as_dict["data_plane_hits"] == parallel.stats.n_executions


def test_serial_engine_never_activates_the_plane(simple_xy):
    X, y = simple_xy
    engine = estimator_engine(TreeBuilder(), X, y, cv=3, random_state=0)
    engine.evaluate_many(_configs(3))
    stats = engine.stats
    assert stats.data_plane_payloads == 0
    assert stats.data_plane_hits == 0
    assert "data_plane_payloads" not in stats.as_dict()
    assert engine.objective.detach_payload is False


def test_plane_blocks_requires_the_objective_protocol(simple_xy):
    X, y = simple_xy

    def closure_objective(config):  # no data_key/payload/detach_payload
        return 0.0

    engine = EvaluationEngine(closure_objective, n_workers=2, backend="thread")
    assert engine._plane_blocks() is None
    cv = CrossValObjective(TreeBuilder(), X, y, cv=3, random_state=0)
    plane = EvaluationEngine(cv, n_workers=2, backend="process")
    blocks = plane._plane_blocks()
    assert blocks is not None and set(blocks) == {cv.data_key}
