"""Determinism of the engine's parallel paths.

``evaluate_many(n_workers > 1)`` must produce scores bit-identical to serial
execution on the same :class:`FoldPlan`, for both the thread backend and the
*process* backend (which needs a picklable objective — built here as a
module-level callable class), for both task types.
"""

import numpy as np
import pytest

from repro.execution import Budget, EvaluationEngine, FoldPlan
from repro.learners import default_registry, default_regression_registry
from repro.learners.metrics import resolve_scorer


class PicklableCVObjective:
    """A process-safe CV objective: state is plain data, lookup is by name.

    Everything needed to score a configuration (the fold plan's index arrays,
    the data matrices, the algorithm name) pickles cleanly, so the engine's
    process backend accepts it instead of falling back to threads.
    """

    def __init__(self, algorithm: str, task: str, X, y, cv: int, random_state: int):
        self.algorithm = algorithm
        self.task = task
        self.X = np.asarray(X, dtype=np.float64)
        self.y = np.asarray(y)
        self.plan = FoldPlan.for_task(self.y, task=task, cv=cv, random_state=random_state)
        self.scorer = resolve_scorer(None, task)

    def _spec(self):
        registry = (
            default_regression_registry() if self.task == "regression" else default_registry()
        )
        return registry.get(self.algorithm)

    def __call__(self, config: dict) -> float:
        estimator = self._spec().build(config)
        return self.plan.score(
            estimator, self.X, self.y,
            scoring=self.scorer, error_score=self.scorer.error_score,
        )


def _configs(task: str, algorithm: str, n: int, seed: int = 0) -> list[dict]:
    registry = default_regression_registry() if task == "regression" else default_registry()
    space = registry.get(algorithm).space
    rng = np.random.default_rng(seed)
    configs = [space.sample(rng) for _ in range(n - 1)]
    # Include a duplicate so the in-batch dedup path is exercised too.
    configs.append(dict(configs[0]))
    return configs


def _case(task: str, simple_xy, regression_xy):
    if task == "regression":
        X, y = regression_xy
        return PicklableCVObjective("RegressionTree", task, X, y, cv=3, random_state=0)
    X, y = simple_xy
    return PicklableCVObjective("J48", task, X, y, cv=3, random_state=0)


@pytest.mark.parametrize("task", ["classification", "regression"])
@pytest.mark.parametrize("backend", ["thread", "process"])
def test_parallel_scores_bit_identical_to_serial(task, backend, simple_xy, regression_xy):
    objective = _case(task, simple_xy, regression_xy)
    algorithm = objective.algorithm
    configs = _configs(task, algorithm, n=8)

    serial = EvaluationEngine(objective, n_workers=1, name="serial")
    serial_scores = [o.score for o in serial.evaluate_many(configs)]

    parallel = EvaluationEngine(objective, n_workers=3, backend=backend, name=backend)
    with parallel:
        parallel_scores = [o.score for o in parallel.evaluate_many(configs)]

    # The process backend must actually have run as processes (the objective
    # is picklable by construction), not silently fallen back.
    assert parallel.backend == backend
    assert serial_scores == parallel_scores  # bit-identical, not approx


@pytest.mark.parametrize("task", ["classification", "regression"])
def test_parallel_budget_cutoff_is_deterministic(task, simple_xy, regression_xy):
    objective = _case(task, simple_xy, regression_xy)
    configs = _configs(task, objective.algorithm, n=10)

    def run(n_workers: int):
        engine = EvaluationEngine(objective, n_workers=n_workers, backend="thread")
        with engine:
            budget = Budget(max_evaluations=6)
            budget.start()
            return engine.evaluate_many(configs, budget=budget)

    serial_outcomes = run(1)
    parallel_outcomes = run(3)
    assert [o is None for o in serial_outcomes] == [o is None for o in parallel_outcomes]
    assert [o.score for o in serial_outcomes if o is not None] == [
        o.score for o in parallel_outcomes if o is not None
    ]


def test_process_backend_repeat_run_is_reproducible(regression_xy):
    X, y = regression_xy
    objective = PicklableCVObjective("Ridge", "regression", X, y, cv=3, random_state=0)
    configs = _configs("regression", "Ridge", n=6)
    runs = []
    for _ in range(2):
        engine = EvaluationEngine(objective, n_workers=2, backend="process")
        with engine:
            runs.append([o.score for o in engine.evaluate_many(configs)])
    assert runs[0] == runs[1]
