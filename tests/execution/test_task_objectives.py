"""Task-aware objectives, and the classification-unchanged guarantees.

The regression tentpole must not perturb classification behaviour: store
contexts, cache fingerprints and scores for classification runs are asserted
here to match the historical (pre-task-abstraction) formats and values.
"""

import numpy as np
import pytest

from repro.execution import (
    FoldPlan,
    cross_val_objective,
    estimator_engine,
    objective_context_suffix,
)
from repro.execution.cache import config_fingerprint
from repro.learners import default_regression_registry, default_registry
from repro.learners.metrics import SCORERS, resolve_scorer
from repro.learners.validation import plain_folds, stratified_folds


class TestObjectiveContextSuffix:
    def test_classification_default_is_empty(self):
        assert objective_context_suffix() == ""
        assert objective_context_suffix("classification", None) == ""

    def test_regression_default_names_task_and_metric(self):
        assert objective_context_suffix("regression") == "-taskregression-metricr2"

    def test_explicit_metric_always_tagged(self):
        assert (
            objective_context_suffix("classification", "balanced_accuracy")
            == "-taskclassification-metricbalanced_accuracy"
        )
        assert objective_context_suffix("regression", "rmse") == "-taskregression-metricrmse"


class TestClassificationUnchanged:
    """Classification runs must keep their historical fingerprints and scores."""

    def test_udr_store_context_format_unchanged(self, blobs_dataset):
        from repro.core.udr import UserDemandResponser

        responder = UserDemandResponser.__new__(UserDemandResponser)
        responder.tuning_max_records = 400
        responder.cv = 5
        responder.random_state = 0
        responder.registry = default_registry()  # bare catalogue: no pipeline suffix
        context = responder._store_context(blobs_dataset, "J48")
        # The exact pre-task-abstraction format, no task/metric/pipeline suffix.
        assert context == (
            f"udr-J48-blobs-{blobs_dataset.n_records}x{blobs_dataset.n_attributes}"
            "-sub400-cv5-rs0"
        )

    def test_estimator_engine_classification_context_has_no_suffix(self, simple_xy):
        X, y = simple_xy
        spec = default_registry().get("ZeroR")
        engine = estimator_engine(
            spec.build, X, y, cv=3, random_state=0, store_context="my-context"
        )
        assert engine.store_context == "my-context"

    def test_estimator_engine_regression_context_gets_suffix(self, regression_xy):
        X, y = regression_xy
        spec = default_regression_registry().get("Ridge")
        engine = estimator_engine(
            spec.build, X, y, cv=3, random_state=0,
            store_context="my-context", task="regression",
        )
        assert engine.store_context == "my-context-taskregression-metricr2"

    def test_classification_objective_scores_identical_to_foldplan(self, simple_xy):
        X, y = simple_xy
        spec = default_registry().get("NaiveBayes")
        objective = cross_val_objective(spec.build, X, y, cv=3, random_state=0)
        plan = FoldPlan.stratified(y, cv=3, random_state=0)
        config = spec.default_config()
        assert objective(config) == plan.score(spec.build(config), X, y)

    def test_config_fingerprints_do_not_change_with_task_plumbing(self):
        # The fingerprint is a pure function of the configuration; the task
        # lives in the context, never in the key.
        config = {"max_depth": 5, "min_samples_leaf": 2}
        assert config_fingerprint(config) == config_fingerprint(dict(config))

    def test_performance_table_context_format_unchanged(
        self, knowledge_datasets, small_registry, tmp_path
    ):
        from repro.execution import ResultStore

        store = ResultStore(tmp_path / "store")
        from repro.evaluation import PerformanceTable

        PerformanceTable.compute(
            knowledge_datasets[:1],
            registry=small_registry.subset(["ZeroR"]),
            cv=2,
            max_records=50,
            random_state=0,
            store=store,
        )
        contexts = store.contexts()
        assert contexts == ["performance-table-tuneFalse-cv2-sub50-evals0-rs0"]


class TestRegressionObjective:
    def test_regression_objective_uses_plain_folds(self, regression_xy):
        X, y = regression_xy
        spec = default_regression_registry().get("Ridge")
        objective = cross_val_objective(
            spec.build, X, y, cv=4, random_state=0, task="regression"
        )
        plan = objective.fold_plan
        assert plan.metadata.get("stratified") is False
        expected = plain_folds(y, cv=4, random_state=0)
        assert len(plan.folds) == len(expected)
        for (train_a, test_a), (train_b, test_b) in zip(plan.folds, expected):
            np.testing.assert_array_equal(train_a, train_b)
            np.testing.assert_array_equal(test_a, test_b)

    def test_regression_objective_maximizes_r2(self, regression_xy):
        X, y = regression_xy
        registry = default_regression_registry()
        ridge = cross_val_objective(
            registry.get("Ridge").build, X, y, cv=3, random_state=0, task="regression"
        )
        dummy = cross_val_objective(
            registry.get("DummyRegressor").build, X, y, cv=3, random_state=0,
            task="regression",
        )
        assert ridge({"alpha": 1.0}) > dummy({"strategy": "mean"})

    def test_rmse_metric_is_negated(self, regression_xy):
        X, y = regression_xy
        spec = default_regression_registry().get("Ridge")
        objective = cross_val_objective(
            spec.build, X, y, cv=3, random_state=0, task="regression", metric="rmse"
        )
        score = objective({"alpha": 1.0})
        assert score < 0.0  # oriented: greater is better, so -RMSE

    def test_stratified_folds_would_degenerate_on_continuous_targets(self, regression_xy):
        # The motivation for task-aware folds: stratifying a continuous target
        # treats every value as its own class (singleton strata).
        _, y = regression_xy
        strat = stratified_folds(y, cv=5, random_state=0)
        assert len(strat) == 0  # singleton strata leave no usable folds at all
        plain = plain_folds(y, cv=5, random_state=0)
        assert len(plain) == 5

    def test_unknown_task_rejected(self, regression_xy):
        X, y = regression_xy
        spec = default_regression_registry().get("Ridge")
        with pytest.raises(ValueError, match="unknown task"):
            cross_val_objective(spec.build, X, y, task="ranking")


class TestScorers:
    def test_every_scorer_is_oriented_greater_is_better(self):
        y_true = np.array([1.0, 2.0, 3.0, 4.0])
        good = y_true.copy()
        bad = y_true + 10.0
        for name in ("r2", "rmse", "mae"):
            scorer = SCORERS[name]
            assert scorer(y_true, good) > scorer(y_true, bad), name

    def test_error_scores(self):
        assert SCORERS["accuracy"].error_score == 0.0
        # Metrics unbounded below (R², negated RMSE/MAE): hugely negative but
        # FINITE — a crash must rank beneath every genuinely-fitted score
        # (even a diverging R² of -10) without poisoning means with -inf.
        for name in ("r2", "rmse", "mae"):
            assert SCORERS[name].error_score == -1e12
            assert np.isfinite(SCORERS[name].error_score)

    def test_crash_never_outranks_working_configs_on_error_metrics(self, regression_xy):
        from repro.evaluation.performance import evaluate_algorithm
        from repro.datasets import make_linear_response
        from repro.learners import default_regression_registry

        dataset = make_linear_response("crash-rank", n_records=80, n_numeric=4,
                                       random_state=0)
        registry = default_regression_registry()
        working = evaluate_algorithm(
            registry, "Ridge", dataset, cv=2, max_records=60, random_state=0,
            task="regression", metric="rmse",
        )
        crashed = evaluate_algorithm(
            registry, "Ridge", dataset, config={"alpha": -1.0},  # build-time crash
            cv=2, max_records=60, random_state=0, task="regression", metric="rmse",
        )
        assert np.isfinite(crashed)
        assert crashed < working  # the crash can never win the table

    def test_classification_with_custom_metric_keeps_stratified_folds(self, blobs_dataset):
        from repro.evaluation.performance import evaluate_algorithm
        from repro.learners import default_registry
        from repro.learners.metrics import SCORERS
        from repro.learners.validation import cross_val_score_folds, stratified_folds

        registry = default_registry()
        score = evaluate_algorithm(
            registry, "NaiveBayes", blobs_dataset, cv=3, max_records=None,
            random_state=0, metric="balanced_accuracy",
        )
        X, y = blobs_dataset.to_matrix()
        folds = stratified_folds(y, cv=3, random_state=0)
        expected = cross_val_score_folds(
            registry.build("NaiveBayes"), X, y, folds,
            SCORERS["balanced_accuracy"], error_score=0.0,
        ).mean()
        assert score == float(expected)

    def test_resolve_scorer_defaults_per_task(self):
        assert resolve_scorer(None, "classification").name == "accuracy"
        assert resolve_scorer(None, "regression").name == "r2"
        with pytest.raises(ValueError, match="unknown metric"):
            resolve_scorer("nope", "regression")

    def test_resolve_scorer_rejects_cross_task_metrics(self):
        # RMSE over label-encoded classes (or accuracy over floats) is
        # numerically plausible nonsense; it must raise, not silently score.
        with pytest.raises(ValueError, match="regression metric"):
            resolve_scorer("rmse", "classification")
        with pytest.raises(ValueError, match="classification metric"):
            resolve_scorer("accuracy", "regression")
        # Caller-constructed Scorer instances are trusted as-is.
        custom = SCORERS["rmse"]
        assert resolve_scorer(custom, "classification") is custom

    def test_task_strings_are_normalised_everywhere(self, regression_xy):
        X, y = regression_xy
        # Case/whitespace variants resolve instead of silently falling back
        # to classification stratification.
        plan = FoldPlan.for_task(y, task=" Regression ", cv=4, random_state=0)
        assert plan.metadata.get("stratified") is False
        with pytest.raises(ValueError, match="unknown task"):
            FoldPlan.for_task(y, task="bogus")
