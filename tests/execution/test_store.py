"""Tests for the persistent result store.

The acceptance property of the subsystem is *graceful degradation*: whatever
happens to the shard files — truncation, garbage, format-version drift,
concurrent writers — loading must degrade to cache misses, never crash, and
round-trips of healthy data must be exact.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.execution import ResultStore, config_fingerprint, fingerprint_key
from repro.execution.store import FORMAT_VERSION


def fp(**config):
    return config_fingerprint(config)


@pytest.fixture()
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "results")


class TestRoundTrip:
    def test_put_get_within_instance(self, store):
        assert store.put("ctx", fp(x=1.5), 0.75, config={"x": 1.5})
        assert store.get("ctx", fp(x=1.5)) == 0.75
        assert store.stats.hits == 1 and store.stats.writes == 1

    def test_round_trip_across_instances(self, tmp_path):
        first = ResultStore(tmp_path / "s")
        configs = [{"x": 0.1 * i, "kind": f"k{i}"} for i in range(10)]
        for i, config in enumerate(configs):
            first.put("ctx", config_fingerprint(config), i / 10.0, config=config)
        second = ResultStore(tmp_path / "s")
        for i, config in enumerate(configs):
            assert second.get("ctx", config_fingerprint(config)) == i / 10.0
        assert second.size("ctx") == 10

    def test_float_keys_are_exact(self, tmp_path):
        """repr-based fingerprints survive the disk round trip bit-for-bit."""
        first = ResultStore(tmp_path / "s")
        first.put("ctx", fp(x=0.1), 1.0)
        second = ResultStore(tmp_path / "s")
        assert second.get("ctx", fp(x=0.1)) == 1.0
        assert second.get("ctx", fp(x=0.1 + 1e-12)) is None

    def test_nonfinite_scores_round_trip(self, tmp_path):
        first = ResultStore(tmp_path / "s")
        first.put("ctx", fp(a=1), float("-inf"))
        first.put("ctx", fp(a=2), float("nan"))
        second = ResultStore(tmp_path / "s")
        assert second.get("ctx", fp(a=1)) == float("-inf")
        assert np.isnan(second.get("ctx", fp(a=2)))

    def test_contexts_are_isolated(self, store):
        store.put("ctx-a", fp(x=1), 1.0)
        assert store.get("ctx-b", fp(x=1)) is None

    def test_idempotent_put_writes_once(self, store):
        assert store.put("ctx", fp(x=1), 0.5)
        assert not store.put("ctx", fp(x=1), 0.5)
        assert store.stats.writes == 1
        assert store.stats.duplicate_writes == 1

    def test_superseding_put_latest_wins(self, tmp_path):
        first = ResultStore(tmp_path / "s")
        first.put("ctx", fp(x=1), 0.5)
        first.put("ctx", fp(x=1), 0.9)  # different score appends
        assert first.get("ctx", fp(x=1)) == 0.9
        second = ResultStore(tmp_path / "s")
        assert second.get("ctx", fp(x=1)) == 0.9

    def test_non_json_config_degrades_to_scoreless_config(self, store):
        store.put("ctx", fp(x=1), 0.5, config={"x": object()})
        assert store.get("ctx", fp(x=1)) == 0.5  # score still stored
        assert store.top_k("ctx") == []  # but it cannot seed a warm start

    def test_numpy_config_values_are_jsonified(self, tmp_path):
        first = ResultStore(tmp_path / "s")
        config = {"n": np.int64(3), "lr": np.float64(0.25), "flag": np.bool_(True)}
        first.put("ctx", config_fingerprint(config), 0.8, config=config)
        second = ResultStore(tmp_path / "s")
        (loaded, score), = second.top_k("ctx", 1)
        assert score == 0.8
        assert config_fingerprint(loaded) == config_fingerprint(config)

    def test_fingerprint_key_is_canonical(self):
        assert fingerprint_key(fp(a=1, b=2.5)) == fingerprint_key(fp(b=2.5, a=1))


class TestTopK:
    def test_best_first_finite_only(self, store):
        for i, score in enumerate([0.2, 0.9, float("-inf"), 0.5, float("nan")]):
            store.put("ctx", fp(i=i), score, config={"i": i})
        ranked = store.top_k("ctx", 3)
        assert [score for _, score in ranked] == [0.9, 0.5, 0.2]
        assert [config["i"] for config, _ in ranked] == [1, 3, 0]

    def test_k_larger_than_store(self, store):
        store.put("ctx", fp(i=0), 0.1, config={"i": 0})
        assert len(store.top_k("ctx", 99)) == 1
        assert store.top_k("missing", 5) == []


class TestFaultInjection:
    def _populated(self, tmp_path, n=6) -> ResultStore:
        store = ResultStore(tmp_path / "s")
        for i in range(n):
            store.put("ctx", fp(i=i), i / 10.0, config={"i": i})
        return store

    def test_truncated_tail_degrades_to_miss(self, tmp_path):
        store = self._populated(tmp_path)
        path = store.shard_path("ctx")
        raw = path.read_bytes()
        path.write_bytes(raw[:-15])  # chop mid-way through the last record
        reopened = ResultStore(tmp_path / "s")
        assert reopened.get("ctx", fp(i=5)) is None  # the mangled record
        assert reopened.get("ctx", fp(i=0)) == 0.0  # healthy prefix intact
        assert reopened.stats.corrupt_records >= 1

    def test_garbage_file_degrades_to_all_misses(self, tmp_path):
        store = self._populated(tmp_path)
        store.shard_path("ctx").write_bytes(b"\x00\xffnot json at all\n{half")
        reopened = ResultStore(tmp_path / "s")
        for i in range(6):
            assert reopened.get("ctx", fp(i=i)) is None
        assert reopened.stats.corrupt_records > 0

    def test_interleaved_garbage_lines_are_skipped(self, tmp_path):
        store = self._populated(tmp_path, n=3)
        path = store.shard_path("ctx")
        lines = path.read_text().splitlines()
        lines.insert(2, '{"k": 42, "s": "not-a-score"}')  # wrong field types
        lines.insert(3, "%%%% torn write %%%%")
        path.write_text("\n".join(lines) + "\n")
        reopened = ResultStore(tmp_path / "s")
        assert reopened.get("ctx", fp(i=0)) == 0.0
        assert reopened.get("ctx", fp(i=2)) == 0.2
        assert reopened.stats.corrupt_records == 2

    def test_format_version_mismatch_ignores_shard(self, tmp_path):
        old = ResultStore(tmp_path / "s", format_version=FORMAT_VERSION + 1)
        old.put("ctx", fp(i=0), 0.5, config={"i": 0})
        current = ResultStore(tmp_path / "s")
        assert current.get("ctx", fp(i=0)) is None  # miss, not a crash
        assert current.stats.version_skips == 1
        # ... and the foreign shard file is left untouched on disk.
        assert old.shard_path("ctx").exists()

    def test_headerless_shard_is_ignored(self, tmp_path):
        store = self._populated(tmp_path, n=2)
        path = store.shard_path("ctx")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[1:]) + "\n")  # drop the header
        reopened = ResultStore(tmp_path / "s")
        assert reopened.get("ctx", fp(i=0)) is None
        assert reopened.stats.version_skips == 1

    def test_missing_root_is_created(self, tmp_path):
        store = ResultStore(tmp_path / "deep" / "nested" / "dir")
        store.put("ctx", fp(i=0), 1.0)
        assert store.get("ctx", fp(i=0)) == 1.0

    def test_empty_file_is_fine(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.shard_path("ctx").touch()
        assert store.get("ctx", fp(i=0)) is None


class TestConcurrentWriters:
    def test_parallel_disjoint_writers_all_land(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        errors: list[Exception] = []

        def writer(base: int) -> None:
            try:
                for i in range(25):
                    key = base * 100 + i
                    store.put("ctx", fp(i=key), key / 1000.0, config={"i": key})
            except Exception as exc:  # pragma: no cover - the test's point
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(b,)) for b in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert store.stats.writes == 100
        reopened = ResultStore(tmp_path / "s")
        assert reopened.size("ctx") == 100
        assert reopened.stats.corrupt_records == 0

    def test_racing_same_key_writes_once(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        barrier = threading.Barrier(8)

        def writer() -> None:
            barrier.wait()
            store.put("ctx", fp(i=7), 0.7, config={"i": 7})

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.stats.writes == 1
        assert store.stats.duplicate_writes == 7
        path = store.shard_path("ctx")
        data_lines = [l for l in path.read_text().splitlines() if '"k"' in l]
        assert len(data_lines) == 1


class TestCompaction:
    def test_compact_drops_superseded_lines(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        for round_ in range(5):
            for i in range(4):
                store.put("ctx", fp(i=i), round_ + i / 10.0, config={"i": i})
        path = store.shard_path("ctx")
        lines_before = len(path.read_text().splitlines())
        reclaimed = store.compact("ctx")
        lines_after = len(path.read_text().splitlines())
        assert reclaimed == 16  # 20 appends, 4 live keys
        assert lines_after == 1 + 4  # header + live records
        assert lines_before > lines_after
        reopened = ResultStore(tmp_path / "s")
        for i in range(4):
            assert reopened.get("ctx", fp(i=i)) == 4 + i / 10.0

    def test_compact_all_contexts_via_disk_discovery(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put("a", fp(i=0), 0.1, config={"i": 0})
        store.put("a", fp(i=0), 0.2)
        store.put("b", fp(i=1), 0.3)
        fresh = ResultStore(tmp_path / "s")  # nothing loaded in memory yet
        assert set(fresh.contexts()) == {"a", "b"}
        assert fresh.compact() == 1
        assert fresh.get("a", fp(i=0)) == 0.2

    def test_compacted_shard_keeps_configs(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put("ctx", fp(i=3), 0.9, config={"i": 3})
        store.compact("ctx")
        reopened = ResultStore(tmp_path / "s")
        assert reopened.top_k("ctx", 1) == [({"i": 3}, 0.9)]


class TestShardLayout:
    def test_one_shard_per_context(self, store):
        store.put("ctx one/with:odd chars", fp(i=0), 0.1)
        store.put("ctx two", fp(i=0), 0.2)
        shards = list(store.root.glob("*.jsonl"))
        assert len(shards) == 2

    def test_header_carries_version_and_context(self, store):
        store.put("my-ctx", fp(i=0), 0.1)
        header = json.loads(store.shard_path("my-ctx").read_text().splitlines()[0])
        assert header["format_version"] == FORMAT_VERSION
        assert header["context"] == "my-ctx"


class TestConfigBackfillRegression:
    """An equal-score re-put must backfill a missing config, not skip it.

    The historical idempotence check treated *any* equal-score re-put as a
    duplicate, so the first config ever offered for a score-only record was
    dropped on the floor — and ``top_k`` warm-start seeding permanently lost
    that configuration.
    """

    def test_equal_score_reput_with_config_appends(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put("ctx", fp(i=1), 0.5)  # score-only (e.g. seeded from a peer)
        assert store.put("ctx", fp(i=1), 0.5, config={"i": 1})  # must append
        assert store.stats.writes == 2
        assert store.top_k("ctx") == [({"i": 1}, 0.5)]
        # The backfilled config is durable, not just an in-memory patch.
        reopened = ResultStore(tmp_path / "s")
        assert reopened.top_k("ctx") == [({"i": 1}, 0.5)]

    def test_equal_score_reput_without_config_still_skipped(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put("ctx", fp(i=1), 0.5, config={"i": 1})
        assert not store.put("ctx", fp(i=1), 0.5)  # nothing new to add
        assert not store.put("ctx", fp(i=1), 0.5, config={"i": 1})  # true dup
        assert store.stats.duplicate_writes == 2
        assert store.stats.writes == 1

    def test_nan_score_config_backfill(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put("ctx", fp(i=1), float("nan"))
        assert store.put("ctx", fp(i=1), float("nan"), config={"i": 1})
        image_configs = ResultStore(tmp_path / "s")
        assert np.isnan(image_configs.get("ctx", fp(i=1)))


class TestForeignVersionPoisoningRegression:
    """Writes behind a foreign-version header must survive a reload.

    Historically a version-mismatched shard kept ``header_on_disk=False``,
    so the next put appended a *second* (current-version) header plus data
    to the same file — and reload discarded those fresh writes because the
    first header had already condemned the whole shard.  Writes must rotate
    to a sidecar shard instead.
    """

    def test_writes_after_foreign_shard_survive_reload(self, tmp_path):
        foreign = ResultStore(tmp_path / "s", format_version=FORMAT_VERSION + 1)
        foreign.put("ctx", fp(i=0), 0.25, config={"i": 0})
        store = ResultStore(tmp_path / "s")
        assert store.get("ctx", fp(i=0)) is None  # foreign data stays invisible
        assert store.put("ctx", fp(i=0), 0.75, config={"i": 0})
        # The write went somewhere a reload actually reads.
        reopened = ResultStore(tmp_path / "s")
        assert reopened.get("ctx", fp(i=0)) == 0.75
        assert reopened.top_k("ctx") == [({"i": 0}, 0.75)]

    def test_foreign_shard_is_not_modified(self, tmp_path):
        foreign = ResultStore(tmp_path / "s", format_version=FORMAT_VERSION + 1)
        foreign.put("ctx", fp(i=0), 0.25)
        primary = foreign.shard_path("ctx")
        before = primary.read_bytes()
        store = ResultStore(tmp_path / "s")
        store.put("ctx", fp(i=1), 0.5)
        assert primary.read_bytes() == before  # rotated, never appended to
        # The foreign store still reads its own data cleanly.
        foreign_again = ResultStore(tmp_path / "s", format_version=FORMAT_VERSION + 1)
        assert foreign_again.get("ctx", fp(i=0)) == 0.25

    def test_sidecar_rotation_chains(self, tmp_path):
        # Two foreign versions in a row: the current store rotates past both.
        v2 = ResultStore(tmp_path / "s", format_version=FORMAT_VERSION + 1)
        v2.put("ctx", fp(i=0), 0.1)
        v3 = ResultStore(tmp_path / "s", format_version=FORMAT_VERSION + 2)
        v3.put("ctx", fp(i=0), 0.2)  # lands in the .r1 sidecar
        store = ResultStore(tmp_path / "s")
        store.put("ctx", fp(i=0), 0.3)  # must rotate past primary AND .r1
        assert ResultStore(tmp_path / "s").get("ctx", fp(i=0)) == 0.3

    def test_compaction_repairs_into_the_sidecar(self, tmp_path):
        foreign = ResultStore(tmp_path / "s", format_version=FORMAT_VERSION + 1)
        foreign.put("ctx", fp(i=0), 0.25)
        store = ResultStore(tmp_path / "s")
        for round_ in range(3):
            store.put("ctx", fp(i=1), float(round_))
        assert store.compact("ctx") == 2
        reopened = ResultStore(tmp_path / "s")
        assert reopened.get("ctx", fp(i=1)) == 2.0
        assert reopened.get("ctx", fp(i=0)) is None


class TestCompactLostUpdateRegression:
    """Compaction must merge on-disk state, not rewrite from memory.

    Historically ``compact`` rewrote the shard from this process's in-memory
    image, silently deleting every line other processes appended after this
    process loaded the shard.
    """

    def test_concurrent_process_writes_survive_compaction(self, tmp_path):
        ours = ResultStore(tmp_path / "s")
        ours.put("ctx", fp(i=0), 0.1, config={"i": 0})  # loads + caches ctx
        theirs = ResultStore(tmp_path / "s")  # a second process
        theirs.put("ctx", fp(i=1), 0.2, config={"i": 1})
        theirs.put("ctx", fp(i=0), 0.9)  # also supersedes our key
        ours.compact("ctx")
        final = ResultStore(tmp_path / "s")
        assert final.get("ctx", fp(i=1)) == 0.2  # their new key survived
        assert final.get("ctx", fp(i=0)) == 0.9  # their supersede won
        assert final.top_k("ctx", 2) == [({"i": 0}, 0.9), ({"i": 1}, 0.2)]

    def test_compaction_still_reclaims_dead_lines(self, tmp_path):
        ours = ResultStore(tmp_path / "s")
        for round_ in range(4):
            ours.put("ctx", fp(i=0), float(round_))
        theirs = ResultStore(tmp_path / "s")
        theirs.put("ctx", fp(i=1), 0.5)
        reclaimed = ours.compact("ctx")
        assert reclaimed == 3  # our 4 lines for one key, minus the live one
        lines = ours.shard_path("ctx").read_text().splitlines()
        assert len(lines) == 1 + 2  # header + both live keys

    def test_memory_only_records_survive_compaction(self, tmp_path):
        # The flip side: records we wrote that a racing compactor's disk
        # re-read cannot see yet (because *it* rewrote first) must be folded
        # back in from memory, not dropped.
        ours = ResultStore(tmp_path / "s")
        ours.put("ctx", fp(i=0), 0.1)
        theirs = ResultStore(tmp_path / "s")
        theirs.put("ctx", fp(i=1), 0.2)
        theirs.compact("ctx")
        ours.compact("ctx")
        final = ResultStore(tmp_path / "s")
        assert final.get("ctx", fp(i=0)) == 0.1
        assert final.get("ctx", fp(i=1)) == 0.2
