"""Job lifecycle tests: the generic JobQueue and the serving FitJobQueue."""

import threading
import time

import pytest

from repro.core.dmd import DecisionMakingModelDesigner
from repro.execution import JobQueue
from repro.learners import default_registry
from repro.service import FitJobQueue, RecommendationDispatcher


class TestJobQueue:
    def test_lifecycle_queued_running_done(self):
        queue = JobQueue(n_workers=1, name="t")
        release = threading.Event()
        started = threading.Event()

        def work():
            started.set()
            release.wait(10)
            return {"answer": 42}

        job_id = queue.submit("demo", work, detail={"who": "test"})
        assert queue.get(job_id).status in ("queued", "running")
        started.wait(10)
        assert queue.get(job_id).status == "running"
        release.set()
        record = queue.wait(job_id, timeout=10)
        assert record.status == "done"
        assert record.result == {"answer": 42}
        assert record.detail == {"who": "test"}
        assert record.started_at >= record.submitted_at
        assert record.finished_at >= record.started_at
        queue.shutdown()

    def test_crash_containment(self):
        queue = JobQueue(n_workers=1, name="t")

        def boom():
            raise RuntimeError("exploded on purpose")

        failed = queue.wait(queue.submit("bad", boom), timeout=10)
        assert failed.status == "failed"
        assert "exploded on purpose" in failed.error
        # The worker survived the crash and still runs jobs.
        ok = queue.wait(queue.submit("good", lambda: "fine"), timeout=10)
        assert ok.status == "done" and ok.result == "fine"
        assert queue.stats.n_failed == 1 and queue.stats.n_done == 1
        queue.shutdown()

    def test_fifo_order_and_parallel_workers(self):
        queue = JobQueue(n_workers=2, name="t")
        seen: list[int] = []
        lock = threading.Lock()

        def work(i):
            with lock:
                seen.append(i)
            return i

        ids = [queue.submit("n", lambda i=i: work(i)) for i in range(6)]
        records = [queue.wait(job_id, timeout=10) for job_id in ids]
        assert [r.result for r in records] == list(range(6))
        assert sorted(seen) == list(range(6))
        queue.shutdown()

    def test_cancel_queued_job(self):
        queue = JobQueue(n_workers=1, name="t")
        release = threading.Event()
        blocker = queue.submit("hold", lambda: release.wait(10))
        victim = queue.submit("victim", lambda: "never")
        assert queue.cancel(victim) is True
        release.set()
        assert queue.wait(victim, timeout=10).status == "cancelled"
        assert queue.wait(blocker, timeout=10).status == "done"
        # A job that already ran cannot be cancelled.
        assert queue.cancel(blocker) is False
        queue.shutdown()

    def test_jobs_listing_and_filters(self):
        queue = JobQueue(n_workers=1, name="t")
        done_id = queue.submit("a", lambda: 1)
        queue.wait(done_id, timeout=10)
        queue.wait(queue.submit("b", lambda: 1 / 0), timeout=10)
        assert {r.status for r in queue.jobs()} == {"done", "failed"}
        assert [r.kind for r in queue.jobs(status="failed")] == ["b"]
        with pytest.raises(ValueError):
            queue.jobs(status="bogus")
        with pytest.raises(KeyError):
            queue.get("t-9999")
        queue.shutdown()

    def test_shutdown_rejects_new_jobs(self):
        queue = JobQueue(n_workers=1, name="t")
        queue.shutdown()
        with pytest.raises(RuntimeError):
            queue.submit("late", lambda: None)

    def test_as_dict_is_json_safe(self):
        import json

        queue = JobQueue(n_workers=1, name="t")
        record = queue.wait(queue.submit("obj", lambda: object()), timeout=10)
        payload = record.as_dict()
        json.dumps(payload)  # rich results degrade to repr, never crash
        assert payload["status"] == "done"
        queue.shutdown()


class TestFitJobQueue:
    def test_refine_job_makes_tuned_config_servable(
        self, registry, clf_model, clf_dataset
    ):
        registry.publish(clf_model, "clf")
        jobs = FitJobQueue(registry, n_workers=1)
        job_id = jobs.submit_refine("clf", clf_dataset, max_evaluations=4)
        record = jobs.wait(job_id, timeout=120)
        assert record.status == "done", record.error
        assert record.result["model"] == "clf"
        assert record.result["algorithm"] == "J48"
        assert record.result["n_evaluations"] > 0
        # The refined configuration is now served instead of the default.
        with RecommendationDispatcher(registry, batching=False) as dispatcher:
            rec = dispatcher.recommend(clf_dataset, model="clf")
        assert rec.config_source == "tuned-store"
        assert rec.config == record.result["config"]
        jobs.shutdown()

    def test_refine_failure_is_contained(self, registry, clf_model, reg_dataset):
        registry.publish(clf_model, "clf")
        jobs = FitJobQueue(registry, n_workers=1)
        # A regression dataset against a classification model crashes the
        # tuning pipeline; the job fails, the queue survives.
        record = jobs.wait(
            jobs.submit_refine("clf", reg_dataset, max_evaluations=3), timeout=120
        )
        assert record.status == "failed"
        assert record.error
        assert jobs.stats()["n_failed"] == 1
        jobs.shutdown()

    def test_refine_unknown_model_fails_cleanly(self, registry, clf_dataset):
        jobs = FitJobQueue(registry, n_workers=1)
        record = jobs.wait(
            jobs.submit_refine("ghost", clf_dataset, max_evaluations=2), timeout=60
        )
        assert record.status == "failed"
        assert "ghost" in record.error
        jobs.shutdown()

    def test_fit_job_publishes_and_promotes(self, registry, knowledge_datasets):
        jobs = FitJobQueue(registry, n_workers=1)
        dmd = DecisionMakingModelDesigner(
            skip_feature_selection=True,
            architecture_population=4,
            architecture_generations=1,
            architecture_max_evaluations=4,
            cv=2,
            random_state=0,
        )
        catalogue = default_registry().subset(["J48", "NaiveBayes", "IBk", "ZeroR", "OneR", "DecisionStump"])
        job_id = jobs.submit_fit(
            "fitted",
            knowledge_datasets,
            dmd=dmd,
            algorithm_registry=catalogue,
            cv=2,
            max_records=60,
        )
        record = jobs.wait(job_id, timeout=600)
        assert record.status == "done", record.error
        assert record.result["version"] == "v0001"
        assert record.result["promoted"] is True
        servable = registry.resolve("fitted")
        assert servable.version == "v0001"
        assert set(servable.model.decision_model.labels) <= set(catalogue.names)
        jobs.shutdown()

    def test_fit_job_requires_datasets(self, registry):
        jobs = FitJobQueue(registry)
        with pytest.raises(ValueError):
            jobs.submit_fit("empty", [])
        jobs.shutdown()


class TestWaitPruneRaceRegression:
    """``wait`` must return the final snapshot even when a concurrent submit
    prunes the finished job between the event firing and the table lookup.

    Historically the waiter crashed with ``KeyError`` — rare with a big
    ``max_finished_jobs``, routine once many coordinator workers funnel
    through one queue.
    """

    def test_wait_returns_snapshot_after_prune(self):
        queue = JobQueue(n_workers=1, name="t", max_finished_jobs=0)
        job_id = queue.submit("demo", lambda: 41)
        event = queue._events[job_id]
        original_wait = event.wait

        def racing_wait(timeout=None):
            done = original_wait(timeout)
            # The waiter has woken but not yet read the table: a concurrent
            # submit prunes every finished record (bound is zero).
            queue.submit("interloper", lambda: None)
            assert job_id not in queue._jobs
            return done

        event.wait = racing_wait
        record = queue.wait(job_id, timeout=10)
        assert record.status == "done"
        assert record.result == 41
        # The record really is gone from the table — only wait() recovers it.
        with pytest.raises(KeyError):
            queue.get(job_id)
        queue.shutdown()

    def test_wait_snapshot_for_failed_job_after_prune(self):
        queue = JobQueue(n_workers=1, name="t", max_finished_jobs=0)
        job_id = queue.submit("demo", lambda: 1 / 0)
        event = queue._events[job_id]
        original_wait = event.wait

        def racing_wait(timeout=None):
            done = original_wait(timeout)
            queue.submit("interloper", lambda: None)
            return done

        event.wait = racing_wait
        record = queue.wait(job_id, timeout=10)
        assert record.status == "failed"
        assert "ZeroDivisionError" in record.error
        queue.shutdown()

    def test_wait_unknown_job_still_raises(self):
        queue = JobQueue(n_workers=1, name="t")
        with pytest.raises(KeyError):
            queue.wait("t-9999", timeout=0.1)
        queue.shutdown()


class TestJobHistoryBound:
    def test_finished_jobs_are_pruned(self):
        queue = JobQueue(n_workers=1, name="t", max_finished_jobs=3)
        ids = [queue.submit("n", lambda i=i: i) for i in range(6)]
        for job_id in ids:
            queue.wait(job_id, timeout=10)
        queue.submit("trigger", lambda: None)  # pruning happens on submit
        remaining = {record.job_id for record in queue.jobs()}
        # Only the newest finished records (plus the trigger) survive.
        assert len(remaining) <= 5
        assert ids[0] not in remaining
        assert ids[-1] in remaining
        queue.shutdown()
