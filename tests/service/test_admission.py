"""Admission control: bounded queues, 429 + Retry-After, overload recovery.

Determinism comes from blocking the decision model's ``scores_many`` on a
:class:`threading.Event` (the registry's LRU serves every resolve from the
same AutoModel instance, so the patch reaches the serve thread): with the
serve loop provably stuck, the pending queue's occupancy is exact — no
sleeps, no timing races.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import (
    DispatcherOverloaded,
    ModelRegistry,
    RecommendationDispatcher,
    RecommendationService,
    serve_in_thread,
)

from _helpers import dataset_payload


class _Blocker:
    """Patch ``scores_many`` so the first ``n_blocked`` calls wait on a gate."""

    def __init__(self, decision_model, n_blocked: int = 1):
        self.gate = threading.Event()
        self.entered = threading.Event()
        self._original = decision_model.scores_many
        self._decision_model = decision_model
        self._remaining = n_blocked
        self._lock = threading.Lock()
        decision_model.scores_many = self._wrapped

    def _wrapped(self, datasets):
        with self._lock:
            blocked = self._remaining > 0
            self._remaining -= 1
        if blocked:
            self.entered.set()
            assert self.gate.wait(timeout=30), "test gate never opened"
        return self._original(datasets)

    def restore(self):
        self.gate.set()
        self._decision_model.scores_many = self._original


@pytest.fixture
def served(registry, clf_model):
    registry.publish(clf_model, "clf")
    return registry


@pytest.fixture
def blocker(served):
    block = _Blocker(served.resolve("clf").model.decision_model)
    yield block
    block.restore()


class TestDispatcherAdmission:
    def test_invalid_depth_rejected(self, served):
        with pytest.raises(ValueError, match="max_queue_depth"):
            RecommendationDispatcher(served, max_queue_depth=0)

    def test_unbounded_by_default(self, served, clf_dataset):
        with RecommendationDispatcher(served, batching=False) as dispatcher:
            assert dispatcher.max_queue_depth is None
            for _ in range(5):
                dispatcher.recommend(clf_dataset, model="clf")
            assert dispatcher.stats.n_shed == 0

    def test_overflow_shed_immediately_with_retry_after(
        self, served, blocker, clf_dataset
    ):
        with RecommendationDispatcher(
            served, max_queue_depth=1, max_wait_ms=1.0
        ) as dispatcher:
            first_result = {}

            def first_request():
                first_result["rec"] = dispatcher.recommend(
                    clf_dataset, model="clf", timeout=30
                )

            thread = threading.Thread(target=first_request)
            thread.start()
            assert blocker.entered.wait(timeout=10)  # serve thread is stuck
            assert dispatcher.queue_depth == 1

            with pytest.raises(DispatcherOverloaded) as excinfo:
                dispatcher.recommend(clf_dataset, model="clf")
            assert 0.05 <= excinfo.value.retry_after <= 5.0
            assert dispatcher.stats.n_shed == 1

            # The queue drains and recovers: the blocked request completes,
            # depth returns to zero, and new requests are admitted again.
            blocker.gate.set()
            thread.join(timeout=10)
            assert first_result["rec"].algorithm == "J48"
            assert dispatcher.queue_depth == 0
            assert dispatcher.recommend(clf_dataset, model="clf").algorithm == "J48"
            assert dispatcher.stats.n_shed == 1  # no further shedding

    def test_inline_mode_also_bounded(self, served, blocker, clf_dataset):
        with RecommendationDispatcher(
            served, batching=False, max_queue_depth=1
        ) as dispatcher:
            thread = threading.Thread(
                target=lambda: dispatcher.recommend(clf_dataset, model="clf")
            )
            thread.start()
            assert blocker.entered.wait(timeout=10)
            with pytest.raises(DispatcherOverloaded):
                dispatcher.recommend(clf_dataset, model="clf")
            blocker.gate.set()
            thread.join(timeout=10)

    def test_stale_requests_shed_by_age(self, served, blocker, clf_dataset):
        with RecommendationDispatcher(
            served, max_queue_depth=8, max_wait_ms=1.0, max_queue_delay_ms=50.0
        ) as dispatcher:
            results, errors = [], []

            def request():
                try:
                    results.append(dispatcher.recommend(clf_dataset, model="clf", timeout=30))
                except Exception as exc:  # noqa: BLE001 — collected for assertions
                    errors.append(exc)

            # First request occupies the serve thread (blocked in the model).
            first = threading.Thread(target=request)
            first.start()
            assert blocker.entered.wait(timeout=10)
            # Second request enqueues behind it and ages past the delay bound
            # while the serve thread is provably stuck.
            second = threading.Thread(target=request)
            second.start()
            time.sleep(0.2)  # > max_queue_delay, serve thread still blocked
            blocker.gate.set()
            first.join(timeout=10)
            second.join(timeout=10)

            assert len(results) == 1 and results[0].algorithm == "J48"
            assert len(errors) == 1 and isinstance(errors[0], DispatcherOverloaded)
            assert "max_queue_delay" in str(errors[0])
            assert dispatcher.stats.n_shed == 1
            assert dispatcher.stats.n_errors == 0  # shed is not an error
            assert dispatcher.queue_depth == 0

    def test_queue_gauges_in_snapshot(self, served, clf_dataset):
        with RecommendationDispatcher(
            served, batching=False, max_queue_depth=4
        ) as dispatcher:
            dispatcher.recommend(clf_dataset, model="clf")
            snap = dispatcher.stats_snapshot()
            assert snap["max_queue_depth"] == 4
            assert snap["queue_depth"] == 0
            assert snap["max_queue_depth_seen"] == 1
            assert snap["batch_size_histogram"] == {"1": 1}


class TestHTTPOverload:
    @pytest.fixture
    def overloaded_service(self, served):
        service = RecommendationService(served, max_queue_depth=1, max_wait_ms=1.0)
        server, _ = serve_in_thread(service)
        yield service, server.server_address[1]
        server.shutdown()
        server.server_close()
        service.close()

    def _post(self, port, path, body, timeout=30):
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}",
            data=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        return urllib.request.urlopen(request, timeout=timeout)

    def test_429_with_retry_after_header(
        self, overloaded_service, blocker, clf_dataset
    ):
        service, port = overloaded_service
        body = {"dataset": dataset_payload(clf_dataset), "model": "clf"}

        first_status = []
        first = threading.Thread(
            target=lambda: first_status.append(self._post(port, "/recommend", body).status)
        )
        first.start()
        assert blocker.entered.wait(timeout=10)

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(port, "/recommend", body)
        assert excinfo.value.code == 429
        retry_after = excinfo.value.headers["Retry-After"]
        assert retry_after is not None and float(retry_after) > 0
        assert "overloaded" in json.loads(excinfo.value.read())["error"]

        blocker.gate.set()
        first.join(timeout=10)
        assert first_status == [200]  # the admitted request was never harmed

        # The shed request is visible in the service's own metrics.
        snap = service.metrics.snapshot()
        assert snap["endpoints"]["POST /recommend"]["n_shed"] == 1
        assert service.dispatcher.stats.n_shed == 1

    @pytest.fixture
    def roomy_service(self, served):
        # Depth 4: a waiting request is ADMITTED (not shed) so its own
        # dispatcher timeout is what expires — the 503 path, not the 429 one.
        service = RecommendationService(served, max_queue_depth=4, max_wait_ms=1.0)
        server, _ = serve_in_thread(service)
        yield service, server.server_address[1]
        server.shutdown()
        server.server_close()
        service.close()

    def test_client_timeout_maps_to_503(self, roomy_service, blocker, clf_dataset):
        service, port = roomy_service
        body = {
            "dataset": dataset_payload(clf_dataset),
            "model": "clf",
            "timeout": 0.05,
        }
        # Occupy the serve thread so the request's dispatcher wait expires.
        occupier_status = []
        occupier = threading.Thread(
            target=lambda: occupier_status.append(
                self._post(
                    port, "/recommend",
                    {"dataset": dataset_payload(clf_dataset), "model": "clf"},
                ).status
            )
        )
        occupier.start()
        assert blocker.entered.wait(timeout=10)

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(port, "/recommend", body)
        assert excinfo.value.code == 503
        assert excinfo.value.headers["Retry-After"] is not None

        blocker.gate.set()
        occupier.join(timeout=10)
        assert occupier_status == [200]
