"""Serving-layer export surfaces: registry method, HTTP route, CLI subcommand.

``ModelRegistry.export`` compiles a version's decision model into artifacts
next to that version directory; the ``GET /models/<name>/export`` route and
``python -m repro.service export`` expose the same operation.  The exported
artifact must select the same algorithm as the live decision model for any
meta-feature row.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.export import load_artifact
from repro.service import RecommendationService, serve_in_thread
from repro.service.__main__ import main as service_main
from repro.service.http import route_label

from _helpers import constant_automodel


def _live_choices(model, rows: np.ndarray) -> list[str]:
    scores = model.decision_model.regressor.predict(rows)
    return [model.decision_model.labels[i] for i in np.argmax(scores, axis=1)]


class TestRegistryExport:
    def test_export_writes_artifacts_next_to_version(self, registry, clf_model):
        version = registry.publish(clf_model, "demo")
        info = registry.export("demo")
        assert info["name"] == "demo" and info["version"] == version
        artifact = Path(info["artifact"])
        module = Path(info["module"])
        version_dir = registry._version_dir("demo", version)
        assert artifact.parent == version_dir / "export"
        assert artifact.exists() and module.exists()
        assert info["labels"] == list(clf_model.decision_model.labels)

    def test_exported_artifact_matches_live_decision_model(self, registry, clf_model):
        registry.publish(clf_model, "demo")
        exported = load_artifact(registry.export("demo")["artifact"])
        rows = np.random.default_rng(0).normal(size=(12, 5))
        assert exported.predict(rows.tolist()) == _live_choices(clf_model, rows)

    def test_export_pins_a_version(self, registry, clf_model, clf_model_alt):
        registry.publish(clf_model, "demo", activate=True)
        registry.publish(clf_model_alt, "demo", activate=True)
        info = registry.export("demo", "v0001")
        assert info["version"] == "v0001"
        exported = load_artifact(info["artifact"])
        rows = np.zeros((3, 5))
        assert exported.predict(rows.tolist()) == _live_choices(clf_model, rows)

    def test_export_unknown_model_raises(self, registry):
        with pytest.raises(KeyError):
            registry.export("nope")


class TestExportRoute:
    @pytest.fixture
    def served(self, registry, clf_model):
        registry.publish(clf_model, "demo")
        service = RecommendationService(registry, batching=False)
        server, _ = serve_in_thread(service)
        base = f"http://127.0.0.1:{server.server_address[1]}"
        yield base
        server.shutdown()
        server.server_close()
        service.close()

    def test_route_label_folds_model_name(self):
        assert route_label("/models/demo/export") == "/models/{name}/export"
        assert route_label("/models/other/export?version=v0001") == "/models/{name}/export"

    def test_get_export_compiles_artifacts(self, served):
        with urllib.request.urlopen(f"{served}/models/demo/export") as response:
            payload = json.loads(response.read())
        assert payload["name"] == "demo" and payload["version"] == "v0001"
        assert Path(payload["artifact"]).exists()
        assert Path(payload["module"]).exists()

    def test_get_export_honours_version_query(self, served):
        url = f"{served}/models/demo/export?version=v0001"
        with urllib.request.urlopen(url) as response:
            assert json.loads(response.read())["version"] == "v0001"

    def test_get_export_unknown_model_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{served}/models/missing/export")
        assert excinfo.value.code == 404

    def test_get_export_unknown_version_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{served}/models/demo/export?version=v9999")
        assert excinfo.value.code == 404


class TestExportCli:
    def test_export_subcommand_prints_info(self, registry, clf_model, capsys):
        registry.publish(clf_model, "demo")
        rc = service_main(["export", "demo", "--registry", str(registry.root)])
        assert rc == 0
        info = json.loads(capsys.readouterr().out)
        assert info["name"] == "demo"
        assert Path(info["artifact"]).exists()

    def test_export_subcommand_unknown_model_fails(self, registry, capsys):
        rc = service_main(["export", "ghost", "--registry", str(registry.root)])
        assert rc == 1
        assert "ghost" in capsys.readouterr().err
