"""Smoke tests of the command-line entry points, run as real subprocesses.

These are the tests the CI ``service-smoke`` job runs: boot the server on an
ephemeral port via ``python -m repro.service serve``, issue ``/healthz`` and
``/recommend`` requests over the socket, and check ``python -m repro``.
"""

import json
import os
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro import __version__
from repro.service import ModelRegistry

from _helpers import constant_automodel, dataset_payload

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


class TestPackageEntryPoint:
    def test_version_flag(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            capture_output=True, text=True, env=_env(), timeout=120,
        )
        assert out.returncode == 0
        assert out.stdout.strip() == __version__

    def test_default_report(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True, text=True, env=_env(), timeout=120,
        )
        assert out.returncode == 0
        assert __version__ in out.stdout
        assert "classification:" in out.stdout and "regression:" in out.stdout
        assert "J48" in out.stdout and "Ridge" in out.stdout
        assert "model registry:" in out.stdout
        assert "python -m repro.service serve" in out.stdout


class TestServiceCLI:
    def test_models_listing(self, tmp_path, clf_model):
        root = tmp_path / "registry"
        ModelRegistry(root).publish(clf_model, "clf")
        out = subprocess.run(
            [sys.executable, "-m", "repro.service", "models", "--registry", str(root)],
            capture_output=True, text=True, env=_env(), timeout=120,
        )
        assert out.returncode == 0
        listing = json.loads(out.stdout)
        assert listing["models"][0]["name"] == "clf"
        assert listing["models"][0]["current_version"] == "v0001"

    def test_serve_boot_healthz_recommend(self, tmp_path, clf_model, clf_dataset):
        root = tmp_path / "registry"
        ModelRegistry(root).publish(clf_model, "clf")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.service", "serve",
                "--registry", str(root), "--port", "0", "--max-wait-ms", "1",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=_env(),
        )
        try:
            line = proc.stdout.readline()
            assert "repro-service listening on http://" in line, line
            port = int(line.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])

            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=30
            ) as resp:
                health = json.loads(resp.read())
            assert health["status"] == "ok"

            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/recommend",
                data=json.dumps(
                    {"dataset": dataset_payload(clf_dataset), "model": "clf"}
                ).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as resp:
                rec = json.loads(resp.read())
            assert rec["algorithm"] == "J48"
            assert rec["model"] == "clf" and rec["version"] == "v0001"
            assert proc.poll() is None  # still serving
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - cleanup path
                proc.kill()
                proc.wait(timeout=10)

    def test_serve_multiprocess_pool(self, tmp_path, clf_model, clf_dataset):
        """``serve --workers 2`` boots a pre-forked pool behind one port."""
        root = tmp_path / "registry"
        ModelRegistry(root).publish(clf_model, "clf")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.service", "serve",
                "--registry", str(root), "--port", "0", "--workers", "2",
                "--max-queue-depth", "64", "--max-wait-ms", "1",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=_env(),
        )
        try:
            line = proc.stdout.readline()
            assert "repro-service listening on http://" in line, line
            assert "workers: 2" in line
            port = int(line.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])

            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/recommend",
                data=json.dumps(
                    {"dataset": dataset_payload(clf_dataset), "model": "clf"}
                ).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as resp:
                rec = json.loads(resp.read())
            assert rec["algorithm"] == "J48"

            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=30
            ) as resp:
                metrics = json.loads(resp.read())
            assert metrics["scope"] == "pool"
            assert len(metrics["workers"]) >= 1
            assert proc.poll() is None  # parent still supervising
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - cleanup path
                proc.kill()
                proc.wait(timeout=10)

    def test_serve_rejects_unknown_command(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro.service", "frobnicate"],
            capture_output=True, text=True, env=_env(), timeout=120,
        )
        assert out.returncode != 0
