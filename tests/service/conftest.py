"""Fixtures for the serving-subsystem tests (helpers live in _helpers.py)."""

from __future__ import annotations

import pytest

from repro.core.automodel import AutoModel
from repro.datasets import Dataset, make_friedman, make_gaussian_clusters
from repro.service import ModelRegistry

from _helpers import constant_automodel


@pytest.fixture
def registry(tmp_path) -> ModelRegistry:
    return ModelRegistry(tmp_path / "registry")


@pytest.fixture
def clf_model() -> AutoModel:
    return constant_automodel(["J48", "NaiveBayes", "IBk"], "J48")


@pytest.fixture
def clf_model_alt() -> AutoModel:
    return constant_automodel(["J48", "NaiveBayes", "IBk"], "NaiveBayes")


@pytest.fixture
def reg_model() -> AutoModel:
    return constant_automodel(["Ridge", "RegressionTree"], "Ridge", task="regression")


@pytest.fixture
def clf_dataset() -> Dataset:
    return make_gaussian_clusters(
        "clf-query", n_records=80, n_numeric=4, n_categorical=1, n_classes=2,
        random_state=0,
    )


@pytest.fixture
def reg_dataset() -> Dataset:
    return make_friedman(
        "reg-query", n_records=80, n_numeric=5, n_categorical=0, random_state=1
    )
