"""RecommendationDispatcher: batching, correctness, concurrency, hot-swap."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.metafeatures.extractor import feature_cache
from repro.service import ModelRegistry, RecommendationDispatcher

from _helpers import constant_automodel


@pytest.fixture
def served_registry(registry, clf_model, reg_model) -> ModelRegistry:
    registry.publish(clf_model, "clf")
    registry.publish(reg_model, "reg")
    return registry


class TestSingleRequests:
    def test_inline_recommendation_matches_decision_model(
        self, served_registry, clf_model, clf_dataset
    ):
        with RecommendationDispatcher(served_registry, batching=False) as dispatcher:
            rec = dispatcher.recommend(clf_dataset, model="clf")
        assert rec.algorithm == clf_model.decision_model.select(clf_dataset)
        assert rec.model == "clf"
        assert rec.version == "v0001"
        assert rec.config_source == "default"
        assert rec.ranking[0] == rec.algorithm
        assert set(rec.scores) == set(clf_model.decision_model.labels)

    def test_batched_recommendation_same_answer(self, served_registry, clf_dataset):
        with RecommendationDispatcher(served_registry, max_wait_ms=1.0) as dispatcher:
            rec = dispatcher.recommend(clf_dataset, model="clf")
        assert rec.algorithm == "J48"

    def test_task_routing(self, served_registry, clf_dataset, reg_dataset):
        with RecommendationDispatcher(served_registry, batching=False) as dispatcher:
            assert dispatcher.recommend(clf_dataset, model="clf").algorithm == "J48"
            assert dispatcher.recommend(reg_dataset, model="reg").algorithm == "Ridge"

    def test_task_mismatch_fails_that_request_only(
        self, served_registry, clf_dataset, reg_dataset
    ):
        with RecommendationDispatcher(served_registry, batching=False) as dispatcher:
            with pytest.raises(ValueError, match="serves classification"):
                dispatcher.recommend(reg_dataset, model="clf")
            # The dispatcher still works after the contained error.
            assert dispatcher.recommend(clf_dataset, model="clf").algorithm == "J48"
            assert dispatcher.stats.n_errors == 1

    def test_unknown_model_raises_keyerror(self, served_registry, clf_dataset):
        with RecommendationDispatcher(served_registry, batching=False) as dispatcher:
            with pytest.raises(KeyError):
                dispatcher.recommend(clf_dataset, model="nope")

    def test_pinned_version_served(
        self, served_registry, clf_model_alt, clf_dataset
    ):
        v2 = served_registry.publish(clf_model_alt, "clf")
        with RecommendationDispatcher(served_registry, batching=False) as dispatcher:
            pinned = dispatcher.recommend(clf_dataset, model="clf", version=v2)
            live = dispatcher.recommend(clf_dataset, model="clf")
        assert pinned.algorithm == "NaiveBayes" and pinned.version == v2
        assert live.algorithm == "J48" and live.version == "v0001"

    def test_closed_dispatcher_rejects_requests(self, served_registry, clf_dataset):
        dispatcher = RecommendationDispatcher(served_registry)
        dispatcher.close()
        with pytest.raises(RuntimeError):
            dispatcher.recommend(clf_dataset, model="clf")


class TestBatching:
    def test_recommend_many_single_forward_pass(self, served_registry, clf_dataset):
        datasets = [clf_dataset.subsample(40 + i, random_state=i) for i in range(6)]
        with RecommendationDispatcher(served_registry, batching=False) as dispatcher:
            recs = dispatcher.recommend_many(datasets, model="clf")
            assert dispatcher.stats.forward_passes == 1
        assert [r.algorithm for r in recs] == ["J48"] * 6
        assert all(r.batch_size == 6 for r in recs)

    def test_mixed_model_batch_grouped_per_snapshot(
        self, served_registry, clf_dataset, reg_dataset
    ):
        pendings = [(clf_dataset, "clf"), (reg_dataset, "reg"), (clf_dataset, "clf")]
        with RecommendationDispatcher(served_registry, batching=False) as dispatcher:
            # Build one explicit batch containing both models.
            from repro.service.dispatcher import _Pending

            batch = [_Pending(d, m, None) for d, m in pendings]
            dispatcher._process_batch(batch)
            assert dispatcher.stats.forward_passes == 2  # one per model group
        assert [p.result.algorithm for p in batch] == ["J48", "Ridge", "J48"]

    def test_concurrent_requests_get_micro_batched(self, served_registry, clf_dataset):
        datasets = [clf_dataset.subsample(30 + i, random_state=i) for i in range(24)]
        with RecommendationDispatcher(
            served_registry, max_batch_size=32, max_wait_ms=25.0
        ) as dispatcher:
            with ThreadPoolExecutor(max_workers=24) as pool:
                recs = list(
                    pool.map(lambda d: dispatcher.recommend(d, model="clf"), datasets)
                )
            stats = dispatcher.stats
        assert all(r.algorithm == "J48" for r in recs)
        assert stats.n_requests == 24
        # The whole burst must have been served in far fewer forward passes
        # than requests (micro-batching), with at least one real batch.
        assert stats.largest_batch >= 4
        assert stats.forward_passes < 24

    def test_feature_cache_serves_repeat_queries(self, served_registry, clf_dataset):
        feature_cache.clear()
        feature_cache.reset_stats()
        with RecommendationDispatcher(served_registry, batching=False) as dispatcher:
            dispatcher.recommend(clf_dataset, model="clf")
            hits_before = feature_cache.stats.hits
            dispatcher.recommend(clf_dataset, model="clf")
        assert feature_cache.stats.hits >= hits_before + 5
        assert dispatcher.stats.as_dict()["feature_cache"]["hits"] > 0


class TestHotSwap:
    def test_swap_is_atomic_under_hammering(
        self, served_registry, clf_model_alt, clf_dataset
    ):
        """Threaded clients during a promote see old-or-new, never a mix.

        Model v0001 always recommends J48, v0002 always NaiveBayes, so any
        torn state shows up as a (version, algorithm) pair that belongs to
        neither model.
        """
        v2 = served_registry.publish(clf_model_alt, "clf")
        expected = {("v0001", "J48"), (v2, "NaiveBayes")}
        observed: list[tuple[str, str]] = []
        errors: list[Exception] = []
        observed_lock = threading.Lock()
        start_barrier = threading.Barrier(9)
        swapped = threading.Event()

        with RecommendationDispatcher(
            served_registry, max_batch_size=8, max_wait_ms=2.0
        ) as dispatcher:
            def hammer():
                try:
                    start_barrier.wait()
                    for _ in range(30):
                        rec = dispatcher.recommend(clf_dataset, model="clf", timeout=30.0)
                        with observed_lock:
                            observed.append((rec.version, rec.algorithm))
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            def swap():
                start_barrier.wait()
                served_registry.promote("clf", v2)
                swapped.set()

            threads = [threading.Thread(target=hammer) for _ in range(8)]
            threads.append(threading.Thread(target=swap))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert not errors
        assert swapped.is_set()
        assert len(observed) == 240  # zero failed requests
        assert set(observed) <= expected
        # The swap actually happened mid-traffic: the new version was served.
        assert (v2, "NaiveBayes") in set(observed)

    def test_rollback_serves_previous_version_again(
        self, served_registry, clf_model_alt, clf_dataset
    ):
        v2 = served_registry.publish(clf_model_alt, "clf", activate=True)
        with RecommendationDispatcher(served_registry, batching=False) as dispatcher:
            assert dispatcher.recommend(clf_dataset, model="clf").version == v2
            served_registry.rollback("clf")
            after = dispatcher.recommend(clf_dataset, model="clf")
        assert after.version == "v0001"
        assert after.algorithm == "J48"


class TestTunedConfigServing:
    def test_tuned_store_config_is_served(self, served_registry, clf_dataset):
        """A tuning result persisted into the version's store is served."""
        servable = served_registry.resolve("clf")
        responder = servable.model.responder(cv=5, tuning_max_records=400)
        solution = responder.respond(
            clf_dataset, time_limit=None, max_evaluations=4, fit_final_estimator=False
        )
        with RecommendationDispatcher(served_registry, batching=False) as dispatcher:
            rec = dispatcher.recommend(clf_dataset, model="clf")
        assert rec.algorithm == solution.algorithm
        assert rec.config_source == "tuned-store"
        assert rec.tuned_score is not None
        assert rec.config == solution.config

    def test_suggest_configs_off_serves_defaults(self, served_registry, clf_dataset):
        servable = served_registry.resolve("clf")
        responder = servable.model.responder(cv=5, tuning_max_records=400)
        responder.respond(
            clf_dataset, time_limit=None, max_evaluations=4, fit_final_estimator=False
        )
        with RecommendationDispatcher(
            served_registry, batching=False, suggest_configs=False
        ) as dispatcher:
            rec = dispatcher.recommend(clf_dataset, model="clf")
        assert rec.config_source == "default"


class TestAbandonedRequests:
    def test_abandoned_pending_is_skipped(self, served_registry, clf_dataset):
        from repro.service.dispatcher import _Pending

        with RecommendationDispatcher(served_registry, batching=False) as dispatcher:
            kept = _Pending(clf_dataset, "clf", None)
            gone = _Pending(clf_dataset, "clf", None)
            gone.abandoned = True  # what a timed-out recommend() leaves behind
            dispatcher._process_batch([kept, gone])
        assert kept.result is not None
        assert gone.result is None and not gone.event.is_set()


class TestMetricRouting:
    def test_dispatcher_metric_reads_matching_refine_shard(
        self, served_registry, clf_dataset
    ):
        """A refine run under metric X is served by a metric-X dispatcher only."""
        servable = served_registry.resolve("clf")
        responder = servable.model.responder(
            cv=5, tuning_max_records=400, metric="f1"
        )
        solution = responder.respond(
            clf_dataset, time_limit=None, max_evaluations=4, fit_final_estimator=False
        )
        with RecommendationDispatcher(
            served_registry, batching=False, metric="f1"
        ) as matching:
            rec = matching.recommend(clf_dataset, model="clf")
        assert rec.config_source == "tuned-store"
        assert rec.config == solution.config
        with RecommendationDispatcher(served_registry, batching=False) as default:
            rec_default = default.recommend(clf_dataset, model="clf")
        assert rec_default.config_source == "default"


class TestServeLoopSurvival:
    def test_poison_request_does_not_kill_the_serve_thread(
        self, served_registry, clf_dataset
    ):
        """An object that explodes inside the serve loop fails only its caller."""

        class Bomb:
            name = "bomb"

            @property
            def task(self):
                raise RuntimeError("boom in the serve loop")

        with RecommendationDispatcher(
            served_registry, max_batch_size=4, max_wait_ms=1.0
        ) as dispatcher:
            with pytest.raises(Exception):
                dispatcher.recommend(Bomb(), model="clf", timeout=10.0)
            # The serve thread survived and keeps answering.
            rec = dispatcher.recommend(clf_dataset, model="clf", timeout=10.0)
        assert rec.algorithm == "J48"

    def test_recommend_many_return_errors_keeps_good_results(
        self, served_registry, clf_dataset, reg_dataset
    ):
        with RecommendationDispatcher(served_registry, batching=False) as dispatcher:
            results = dispatcher.recommend_many(
                [clf_dataset, reg_dataset, clf_dataset], model="clf",
                return_errors=True,
            )
        assert results[0].algorithm == "J48"
        assert isinstance(results[1], ValueError)  # task mismatch, in place
        assert results[2].algorithm == "J48"
