"""Pre-forked ServicePool: sockets, supervision, cross-process propagation."""

import http.client
import json
import os
import signal
import time

import pytest

from repro.service import ModelRegistry, ServicePool, reuse_port_supported

from _helpers import dataset_payload

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="ServicePool requires os.fork"
)


@pytest.fixture
def pool_registry(tmp_path, clf_model):
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish(clf_model, "clf")  # v0001, promoted
    return registry


def _request(pool, method, path, body=None):
    conn = http.client.HTTPConnection(pool.host, pool.port, timeout=30)
    try:
        conn.request(
            method,
            path,
            body=json.dumps(body).encode("utf-8") if body is not None else None,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _recommend_body(dataset, model="clf"):
    return {"dataset": dataset_payload(dataset), "model": model}


class TestPoolLifecycle:
    def test_rejects_zero_workers(self, pool_registry):
        with pytest.raises(ValueError):
            ServicePool(pool_registry.root, n_workers=0)

    def test_serves_requests_across_workers(self, pool_registry, clf_dataset):
        with ServicePool(pool_registry.root, n_workers=2) as pool:
            assert len(pool.worker_pids) == 2
            assert pool.port > 0
            status, health = _request(pool, "GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
            for _ in range(4):
                status, rec = _request(
                    pool, "POST", "/recommend", _recommend_body(clf_dataset)
                )
                assert status == 200
                assert rec["algorithm"] == "J48"
                assert rec["version"] == "v0001"

    def test_stop_terminates_workers_and_frees_port(self, pool_registry):
        pool = ServicePool(pool_registry.root, n_workers=2).start()
        pids = list(pool.worker_pids)
        metrics_path = pool.metrics_path
        pool.stop()
        assert pool.worker_pids == []
        for pid in pids:
            # After stop() every worker is reaped: the pid is gone (or at
            # least no longer our child).
            with pytest.raises(OSError):
                os.kill(pid, 0)
        assert not metrics_path.exists()  # pool-owned metrics dir removed
        with pytest.raises(OSError):
            conn = http.client.HTTPConnection("127.0.0.1", pool.port, timeout=2)
            conn.request("GET", "/healthz")
            conn.getresponse()

    def test_fallback_mode_serves_without_reuseport(self, pool_registry, clf_dataset):
        pool = ServicePool(pool_registry.root, n_workers=2)
        pool.reuse_port = False  # force the fork-after-bind path
        with pool:
            status, rec = _request(
                pool, "POST", "/recommend", _recommend_body(clf_dataset)
            )
            assert status == 200 and rec["algorithm"] == "J48"

    def test_reuse_port_probe_is_boolean(self):
        assert isinstance(reuse_port_supported(), bool)


class TestCrossProcessPropagation:
    def test_promote_through_one_worker_reaches_all(
        self, pool_registry, clf_model_alt, clf_dataset
    ):
        v2 = pool_registry.publish(clf_model_alt, "clf")  # standby, not promoted
        with ServicePool(pool_registry.root, n_workers=2) as pool:
            # Promote lands on ONE worker; the GENERATION token file must
            # carry it to the sibling. Hammer with fresh connections so both
            # workers answer some of the follow-up traffic.
            status, _ = _request(
                pool, "POST", "/models/promote", {"name": "clf", "version": v2}
            )
            assert status == 200
            answers = set()
            for _ in range(10):
                status, rec = _request(
                    pool, "POST", "/recommend", _recommend_body(clf_dataset)
                )
                assert status == 200
                answers.add((rec["algorithm"], rec["version"]))
            assert answers == {("NaiveBayes", v2)}

    def test_publish_from_parent_process_is_listable(
        self, pool_registry, clf_model_alt
    ):
        with ServicePool(pool_registry.root, n_workers=2) as pool:
            # The workers already cached their listings; a publish from the
            # parent (a different process) must invalidate them.
            v2 = pool_registry.publish(clf_model_alt, "clf")
            status, listing = _request(pool, "GET", "/models")
            assert status == 200
            (entry,) = listing["models"]
            assert v2 in entry["versions"]


class TestPoolMetrics:
    def test_metrics_aggregate_over_all_workers(self, pool_registry, clf_dataset):
        with ServicePool(pool_registry.root, n_workers=2, flush_interval=0.1) as pool:
            n = 8
            for _ in range(n):
                status, _ = _request(
                    pool, "POST", "/recommend", _recommend_body(clf_dataset)
                )
                assert status == 200
            time.sleep(0.5)  # let every worker's flusher publish its tally
            status, metrics = _request(pool, "GET", "/metrics")
            assert status == 200
            assert metrics["scope"] == "pool"
            assert len(metrics["workers"]) == 2
            recommend = metrics["http"]["endpoints"]["POST /recommend"]
            assert recommend["n_requests"] == n
            assert recommend["n_ok"] == n
            assert recommend["latency"]["count"] == n
            assert recommend["latency"]["p99_ms"] >= recommend["latency"]["p50_ms"] > 0
            assert metrics["dispatcher"]["n_requests"] == n
            assert metrics["registry"]["models"] == 1  # max across workers, not 2


class TestSupervision:
    def test_killed_worker_is_respawned_and_serves(self, pool_registry, clf_dataset):
        with ServicePool(pool_registry.root, n_workers=2) as pool:
            victim = pool.worker_pids[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                pids = pool.worker_pids
                if len(pids) == 2 and victim not in pids:
                    break
                time.sleep(0.05)
            pids = pool.worker_pids
            assert len(pids) == 2 and victim not in pids
            # The respawned capacity serves real traffic again.
            for _ in range(4):
                status, rec = _request(
                    pool, "POST", "/recommend", _recommend_body(clf_dataset)
                )
                assert status == 200 and rec["algorithm"] == "J48"

    def test_repeated_crashes_back_off_but_recover(self, pool_registry):
        with ServicePool(
            pool_registry.root, n_workers=1, respawn_backoff=0.05
        ) as pool:
            for _ in range(2):
                victim = pool.worker_pids[0]
                os.kill(victim, signal.SIGKILL)
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    pids = pool.worker_pids
                    if pids and victim not in pids:
                        break
                    time.sleep(0.05)
            status, _ = _request(pool, "GET", "/healthz")
            assert status == 200
