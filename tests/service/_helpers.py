"""Shared helpers for the serving-subsystem tests (importable module).

``constant_automodel`` builds a servable :class:`AutoModel` without any
training: an MLP with zero weights and a biased output layer always ranks a
chosen algorithm first.  That keeps registry/dispatcher/HTTP tests fast and
— crucially for the hot-swap tests — makes every model's behaviour exactly
predictable, so a torn old/new mix is detectable.
"""
from __future__ import annotations

import numpy as np

from repro.core.architecture_search import DecisionModel
from repro.core.automodel import AutoModel
from repro.datasets import Dataset
from repro.learners.neural import MLPNetwork, MLPRegressor
from repro.metafeatures.extractor import FeatureExtractor

CONSTANT_FEATURES = ["f1", "f2", "f3", "f9", "f18"]


def constant_automodel(
    labels: list[str], best: str, task: str = "classification"
) -> AutoModel:
    """A servable AutoModel whose decision model always ranks ``best`` first.

    The regressor is a real (persistable) MLPRegressor with zeroed weights
    and a one-hot output bias, so the full save/load/serve path is exercised
    while selections stay deterministic.
    """
    n_features = len(CONSTANT_FEATURES)
    regressor = MLPRegressor(
        hidden_layer=1, hidden_layer_size=4, activation="identity", max_iter=1
    )
    network = MLPNetwork(layer_sizes=[4], task="regression", activation="identity")
    network.weights_ = [np.zeros((n_features, 4)), np.zeros((4, len(labels)))]
    bias = np.zeros(len(labels))
    bias[labels.index(best)] = 1.0
    network.biases_ = [np.zeros(4), bias]
    regressor.network_ = network
    regressor.n_outputs_ = len(labels)
    regressor._mean = np.zeros(n_features)
    regressor._scale = np.ones(n_features)
    model = DecisionModel(
        regressor=regressor,
        labels=list(labels),
        extractor=FeatureExtractor(CONSTANT_FEATURES, normalize=False),
        architecture={"hidden_layer": 1, "hidden_layer_size": 4},
    )
    return AutoModel(model=model, task=task)


def dataset_payload(dataset: Dataset) -> dict:
    """The JSON wire format of a dataset (mirrors ``dataset_from_json``)."""
    payload: dict = {
        "name": dataset.name,
        "task": dataset.task.value,
        "target": [
            float(v) if dataset.is_regression else str(v) for v in dataset.target
        ],
    }
    if dataset.n_numeric:
        payload["numeric"] = dataset.numeric.tolist()
    if dataset.n_categorical:
        payload["categorical"] = [
            [str(v) for v in row] for row in dataset.categorical
        ]
    return payload
