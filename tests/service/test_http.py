"""End-to-end HTTP serving: the acceptance path for the serving-subsystem PR.

Two real AutoModels (one classification, one regression — trained with small
budgets) are promoted into one registry and served over actual HTTP sockets:
≥50 concurrent mixed-task requests with correct task routing, a version
hot-swap mid-traffic with zero failed requests, and async refine/fit jobs
whose results become servable without a restart.
"""

import json
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import AutoModel, DecisionMakingModelDesigner
from repro.datasets import make_friedman, make_gaussian_clusters
from repro.service import ModelRegistry, RecommendationService, serve_in_thread

from _helpers import dataset_payload


@pytest.fixture(scope="module")
def fast_dmd_kwargs() -> dict:
    return dict(
        skip_feature_selection=True,
        architecture_population=4,
        architecture_generations=1,
        architecture_max_evaluations=4,
        cv=2,
        random_state=0,
    )


@pytest.fixture(scope="module")
def trained_clf(knowledge_datasets, small_registry, fast_dmd_kwargs) -> AutoModel:
    return AutoModel.fit_from_datasets(
        knowledge_datasets,
        registry=small_registry,
        dmd=DecisionMakingModelDesigner(**fast_dmd_kwargs),
        cv=2,
        max_records=60,
    )


@pytest.fixture(scope="module")
def trained_reg(
    regression_knowledge_datasets, small_regression_registry, fast_dmd_kwargs
) -> AutoModel:
    return AutoModel(task="regression").fit_from_datasets(
        regression_knowledge_datasets,
        registry=small_regression_registry,
        dmd=DecisionMakingModelDesigner(**fast_dmd_kwargs),
        cv=2,
        max_records=60,
    )


@pytest.fixture(scope="module")
def serving(tmp_path_factory, trained_clf, trained_reg):
    """One registry serving both trained models over a live HTTP socket."""
    registry = ModelRegistry(tmp_path_factory.mktemp("serving") / "registry")
    registry.publish(trained_clf, "clf")          # v0001, promoted
    registry.publish(trained_clf, "clf")          # v0002, standby for hot-swap
    registry.publish(trained_reg, "reg")
    service = RecommendationService(registry, max_batch_size=16, max_wait_ms=2.0)
    server, _thread = serve_in_thread(service)
    port = server.server_address[1]
    yield registry, service, port
    server.shutdown()
    server.server_close()
    service.close()


def _get(port: int, path: str) -> dict:
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=30) as resp:
        return json.loads(resp.read())


def _post(port: int, path: str, body: dict) -> dict:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as resp:
        return json.loads(resp.read())


def _clf_query(i: int):
    return make_gaussian_clusters(
        f"clf-q{i}", n_records=50 + i, n_numeric=4, n_categorical=1, n_classes=2,
        random_state=1000 + i,
    )


def _reg_query(i: int):
    return make_friedman(
        f"reg-q{i}", n_records=50 + i, n_numeric=5, n_categorical=0,
        random_state=2000 + i,
    )


class TestHealthAndListing:
    def test_healthz(self, serving):
        _, _, port = serving
        health = _get(port, "/healthz")
        assert health["status"] == "ok"
        assert health["registry"]["models"] == 2
        assert "dispatcher" in health and "jobs" in health

    def test_models_listing_routes_tasks(self, serving):
        _, _, port = serving
        listing = {m["name"]: m for m in _get(port, "/models")["models"]}
        assert listing["clf"]["task"] == "classification"
        assert listing["reg"]["task"] == "regression"
        assert listing["clf"]["current_version"] == "v0001"
        assert listing["clf"]["versions"] == ["v0001", "v0002"]


class TestConcurrentMixedTraffic:
    def test_fifty_plus_concurrent_mixed_requests(self, serving, trained_clf, trained_reg):
        """≥50 concurrent mixed-task requests, all answered with correct routing."""
        _, _, port = serving
        requests = []
        for i in range(28):
            requests.append(("clf", dataset_payload(_clf_query(i))))
        for i in range(28):
            requests.append(("reg", dataset_payload(_reg_query(i))))

        def hit(entry):
            model, payload = entry
            return model, _post(port, "/recommend", {"dataset": payload, "model": model})

        with ThreadPoolExecutor(max_workers=28) as pool:
            results = list(pool.map(hit, requests))

        assert len(results) == 56
        for model, rec in results:
            assert rec["model"] == model
            if model == "clf":
                assert rec["task"] == "classification"
                assert rec["algorithm"] in trained_clf.registry.names
            else:
                assert rec["task"] == "regression"
                assert rec["algorithm"] in trained_reg.registry.names
            assert rec["ranking"][0] == rec["algorithm"]

    def test_hot_swap_mid_traffic_zero_failures(self, serving):
        """Promote v0002 while traffic is in flight: every request succeeds."""
        registry, _, port = serving
        payloads = [dataset_payload(_clf_query(100 + i)) for i in range(12)]
        failures: list[Exception] = []
        versions: list[str] = []

        def hammer(payload):
            try:
                for _ in range(5):
                    rec = _post(port, "/recommend", {"dataset": payload, "model": "clf"})
                    versions.append(rec["version"])
            except Exception as exc:  # noqa: BLE001
                failures.append(exc)

        with ThreadPoolExecutor(max_workers=13) as pool:
            futures = [pool.submit(hammer, p) for p in payloads]
            time.sleep(0.05)
            swap = _post(port, "/models/promote", {"name": "clf", "version": "v0002"})
            for future in futures:
                future.result()

        assert not failures
        assert len(versions) == 60
        assert set(versions) <= {"v0001", "v0002"}
        assert swap["current_version"] == "v0002"
        assert "v0002" in set(versions)
        # Leave the fixture as it was found.
        _post(port, "/models/rollback", {"name": "clf"})
        assert registry.current_version("clf") == "v0001"


class TestErrorHandling:
    def _status(self, port, path, body=None) -> tuple[int, dict]:
        try:
            if body is None:
                with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=30) as r:
                    return r.status, json.loads(r.read())
            return 200, _post(port, path, body)
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_unknown_path_404(self, serving):
        _, _, port = serving
        status, payload = self._status(port, "/nope")
        assert status == 404 and "error" in payload

    def test_unknown_model_404(self, serving):
        _, _, port = serving
        status, payload = self._status(
            port, "/recommend", {"dataset": dataset_payload(_clf_query(0)), "model": "ghost"}
        )
        assert status == 404 and "ghost" in payload["error"]

    def test_task_mismatch_400(self, serving):
        _, _, port = serving
        status, payload = self._status(
            port, "/recommend", {"dataset": dataset_payload(_reg_query(0)), "model": "clf"}
        )
        assert status == 400 and "serves classification" in payload["error"]

    def test_malformed_dataset_400(self, serving):
        _, _, port = serving
        status, payload = self._status(port, "/recommend", {"dataset": {"target": []}})
        assert status == 400

    def test_invalid_json_body_400(self, serving):
        _, _, port = serving
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/recommend",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_unknown_job_kind_400(self, serving):
        _, _, port = serving
        status, payload = self._status(port, "/jobs", {"kind": "bake"})
        assert status == 400 and "bake" in payload["error"]


def _wait_for_job(port: int, job_id: str, timeout: float = 300.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = _get(port, f"/jobs/{job_id}")
        if record["status"] in ("done", "failed"):
            return record
        time.sleep(0.1)
    raise TimeoutError(f"job {job_id} did not finish within {timeout}s")


class TestAsyncJobsOverHTTP:
    def test_refine_job_result_becomes_servable(self, serving):
        """Async refine: once the job is done, /recommend serves the tuned config."""
        _, _, port = serving
        query = dataset_payload(_clf_query(500))
        job = _post(
            port,
            "/jobs",
            {"kind": "refine", "model": "clf", "dataset": query, "max_evaluations": 4},
        )
        assert job["status"] in ("queued", "running")
        record = _wait_for_job(port, job["job_id"])
        assert record["status"] == "done", record["error"]
        rec = _post(port, "/recommend", {"dataset": query, "model": "clf"})
        assert rec["config_source"] == "tuned-store"
        assert rec["algorithm"] == record["result"]["algorithm"]
        assert rec["config"] == record["result"]["config"]
        listing = _get(port, "/jobs?status=done")
        assert record["job_id"] in {r["job_id"] for r in listing["jobs"]}

    def test_fit_job_trains_and_serves_new_model(self, serving, knowledge_datasets):
        """Async fit: a model trained over HTTP is promoted and servable."""
        _, _, port = serving
        job = _post(
            port,
            "/jobs",
            {
                "kind": "fit",
                "model": "clf-http",
                "datasets": [dataset_payload(d) for d in knowledge_datasets[:5]],
                "algorithms": ["J48", "NaiveBayes", "IBk", "ZeroR", "OneR", "DecisionStump"],
                "cv": 2,
                "max_records": 50,
                "dmd": {
                    "skip_feature_selection": True,
                    "architecture_population": 4,
                    "architecture_generations": 1,
                    "architecture_max_evaluations": 4,
                    "cv": 2,
                    "random_state": 0,
                },
            },
        )
        record = _wait_for_job(port, job["job_id"])
        assert record["status"] == "done", record["error"]
        assert record["result"]["promoted"] is True
        rec = _post(
            port,
            "/recommend",
            {"dataset": dataset_payload(_clf_query(600)), "model": "clf-http"},
        )
        assert rec["model"] == "clf-http"
        assert rec["version"] == record["result"]["version"]
        assert rec["algorithm"] in {
            "J48", "NaiveBayes", "IBk", "ZeroR", "OneR", "DecisionStump"
        }


class TestReviewRegressionFixes:
    """HTTP status-code regressions caught in review."""

    def _status(self, port, path, body) -> tuple[int, dict]:
        try:
            return 200, _post(port, path, body)
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_invalid_model_name_promote_is_400_not_500(self, serving):
        _, _, port = serving
        status, payload = self._status(
            port, "/models/promote", {"name": "..", "version": "v0001"}
        )
        assert status == 400 and "invalid model name" in payload["error"]
        status, _ = self._status(port, "/models/rollback", {"name": "a b"})
        assert status == 400

    def test_traversal_fit_job_name_rejected_at_submission(self, serving):
        _, _, port = serving
        status, payload = self._status(
            port,
            "/jobs",
            {
                "kind": "fit",
                "model": "..",
                "datasets": [dataset_payload(_clf_query(0))],
            },
        )
        assert status == 400 and "invalid model name" in payload["error"]
        status, payload = self._status(
            port,
            "/jobs",
            {"kind": "refine", "model": "..", "dataset": dataset_payload(_clf_query(0))},
        )
        assert status == 400 and "invalid model name" in payload["error"]

    def test_malformed_timeout_is_400(self, serving):
        _, _, port = serving
        status, payload = self._status(
            port,
            "/recommend",
            {"dataset": dataset_payload(_clf_query(0)), "model": "clf",
             "timeout": None},
        )
        assert status == 400 and "timeout" in payload["error"]

    def test_unknown_task_in_fit_job_is_400(self, serving):
        _, _, port = serving
        status, payload = self._status(
            port,
            "/jobs",
            {
                "kind": "fit",
                "model": "taskcheck",
                "datasets": [dataset_payload(_clf_query(0))],
                "task": "bogus",
            },
        )
        assert status == 400 and "bogus" in payload["error"]

    def test_anonymous_dataset_gets_content_derived_name(self, serving):
        """Same data without a name shares store contexts across submissions."""
        _, _, port = serving
        payload = dataset_payload(_clf_query(700))
        payload.pop("name")
        first = _post(port, "/recommend", {"dataset": payload, "model": "clf"})
        second = _post(port, "/recommend", {"dataset": payload, "model": "clf"})
        assert first["dataset"].startswith("ds-")
        assert first["dataset"] == second["dataset"]
        assert first["fingerprint"] == second["fingerprint"]


class TestKeepAliveAndMetrics:
    def test_http11_keepalive_reuses_one_connection(self, serving):
        """HTTP/1.1 + Content-Length framing: many requests, one socket."""
        import http.client

        _, _, port = serving
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            sock_ids = set()
            for i in range(5):
                conn.request(
                    "POST",
                    "/recommend",
                    body=json.dumps(
                        {"dataset": dataset_payload(_clf_query(i)), "model": "clf"}
                    ).encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                assert response.version == 11  # server speaks HTTP/1.1
                assert response.getheader("Content-Length") is not None
                body = json.loads(response.read())
                assert response.status == 200 and body["model"] == "clf"
                sock_ids.add(id(conn.sock))
            # http.client only reopens the socket if the server closed it;
            # one id across all requests proves the connection survived.
            assert len(sock_ids) == 1
        finally:
            conn.close()

    def test_error_responses_also_keep_the_connection_alive(self, serving):
        import http.client

        _, _, port = serving
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            conn.request("GET", "/nope")
            response = conn.getresponse()
            assert response.status == 404
            response.read()
            sock_before = id(conn.sock)
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 200
            response.read()
            assert id(conn.sock) == sock_before
        finally:
            conn.close()

    def test_metrics_endpoint_process_scope(self, serving):
        _, service, port = serving
        _post(port, "/recommend", {"dataset": dataset_payload(_clf_query(90)), "model": "clf"})
        metrics = _get(port, "/metrics")
        assert metrics["scope"] == "process"
        assert len(metrics["workers"]) == 1
        http_metrics = metrics["http"]
        assert http_metrics["n_requests"] >= 1
        recommend = http_metrics["endpoints"]["POST /recommend"]
        assert recommend["n_ok"] >= 1
        assert recommend["latency"]["count"] >= 1
        assert recommend["latency"]["p99_ms"] >= recommend["latency"]["p50_ms"]
        assert "qps" in http_metrics
        # The lower tiers ride along: dispatcher, registry and job queues.
        assert metrics["dispatcher"]["n_requests"] >= 1
        assert "batch_size_histogram" in metrics["dispatcher"]
        assert metrics["registry"]["models"] >= 1
        assert "n_submitted" in metrics["jobs"]
        # /healthz carries the live queue gauges too.
        health = _get(port, "/healthz")
        assert "queue_depth" in health["dispatcher"]
        assert "max_queue_depth_seen" in health["dispatcher"]
