"""Serving metrics: reservoirs, per-endpoint counters, cross-worker merge."""

import json
import threading

import pytest

from repro.service import (
    LatencyReservoir,
    LoadGenerator,
    LoadOp,
    MetricsDirectory,
    ServiceMetrics,
    aggregate_worker_payloads,
    route_label,
)
from repro.service.metrics import quantile


class TestQuantile:
    def test_empty_is_none(self):
        # No samples means no quantile — never a fabricated 0.0 "latency".
        assert quantile([], 0.5) is None

    def test_single_sample(self):
        assert quantile([7.0], 0.99) == 7.0

    def test_median_interpolates(self):
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_extremes(self):
        values = [float(v) for v in range(100)]
        assert quantile(values, 0.0) == 0.0
        assert quantile(values, 1.0) == 99.0

    def test_order_independent(self):
        assert quantile([3.0, 1.0, 2.0], 0.5) == 2.0


class TestLatencyReservoir:
    def test_exact_below_capacity(self):
        reservoir = LatencyReservoir(size=100)
        for value in [0.010, 0.020, 0.030]:
            reservoir.add(value)
        summary = reservoir.summary()
        assert summary["count"] == 3
        assert summary["mean_ms"] == pytest.approx(20.0)
        assert summary["max_ms"] == pytest.approx(30.0)
        assert summary["p50_ms"] == pytest.approx(20.0)

    def test_bounded_memory_above_capacity(self):
        reservoir = LatencyReservoir(size=16)
        for i in range(10_000):
            reservoir.add(i / 1000.0)
        assert len(reservoir.samples) == 16
        assert reservoir.count == 10_000
        # Total/max are exact even though the sample is bounded.
        assert reservoir.max_value == pytest.approx(9.999)
        assert reservoir.summary()["count"] == 10_000

    def test_quantiles_track_the_stream(self):
        reservoir = LatencyReservoir(size=256, seed=1)
        for i in range(5_000):
            reservoir.add(i / 5_000.0)  # uniform on [0, 1)
        summary = reservoir.summary()
        assert 350.0 < summary["p50_ms"] < 650.0
        assert summary["p95_ms"] > summary["p50_ms"]

    def test_empty_reservoir_reports_none_not_zero(self):
        summary = LatencyReservoir(size=8).summary()
        assert summary["count"] == 0
        for key in ("mean_ms", "max_ms", "p50_ms", "p95_ms", "p99_ms"):
            assert summary[key] is None

    def test_single_sample_is_every_percentile(self):
        reservoir = LatencyReservoir(size=8)
        reservoir.add(0.007)
        summary = reservoir.summary()
        for key in ("mean_ms", "max_ms", "p50_ms", "p95_ms", "p99_ms"):
            assert summary[key] == pytest.approx(7.0)

    def test_exactly_at_capacity_keeps_every_sample(self):
        reservoir = LatencyReservoir(size=4)
        for value in (0.001, 0.002, 0.003, 0.004):
            reservoir.add(value)
        assert sorted(reservoir.samples) == [0.001, 0.002, 0.003, 0.004]
        summary = reservoir.summary()
        assert summary["count"] == 4
        assert summary["p50_ms"] == pytest.approx(2.5)
        assert summary["p99_ms"] == pytest.approx(3.97)

    def test_samples_travel_in_summary(self):
        reservoir = LatencyReservoir()
        reservoir.add(0.005)
        summary = reservoir.summary(include_samples=True)
        assert summary["samples_ms"] == [5.0]
        assert "samples_ms" not in reservoir.summary()


class TestRouteLabel:
    def test_known_routes_pass_through(self):
        assert route_label("/healthz") == "/healthz"
        assert route_label("/recommend") == "/recommend"
        assert route_label("/metrics") == "/metrics"

    def test_job_ids_collapse(self):
        assert route_label("/jobs/fit-0001") == "/jobs/{id}"
        assert route_label("/jobs/anything-else") == "/jobs/{id}"

    def test_query_string_stripped(self):
        assert route_label("/jobs?status=done") == "/jobs"

    def test_unknown_paths_share_one_label(self):
        assert route_label("/favicon.ico") == "(unknown)"
        assert route_label("/" + "x" * 500) == "(unknown)"


class TestServiceMetrics:
    def test_outcome_classification(self):
        metrics = ServiceMetrics(worker_id="t")
        for status in (200, 200, 404, 429, 500, 0):
            metrics.observe("POST", "/recommend", status, 0.001)
        snap = metrics.snapshot()
        endpoint = snap["endpoints"]["POST /recommend"]
        assert endpoint["n_requests"] == 6
        assert endpoint["n_ok"] == 2
        assert endpoint["n_client_errors"] == 1
        assert endpoint["n_shed"] == 1
        assert endpoint["n_failed"] == 2  # 500 and transport-level 0
        assert snap["n_requests"] == 6

    def test_endpoints_tracked_separately(self):
        metrics = ServiceMetrics()
        metrics.observe("GET", "/healthz", 200, 0.001)
        metrics.observe("POST", "/recommend", 200, 0.010)
        snap = metrics.snapshot()
        assert set(snap["endpoints"]) == {"GET /healthz", "POST /recommend"}

    def test_snapshot_is_json_safe(self):
        metrics = ServiceMetrics(worker_id=3)
        metrics.observe("GET", "/models", 200, 0.002)
        json.dumps(metrics.snapshot(include_samples=True))

    def test_qps_window_counts_recent_requests(self):
        metrics = ServiceMetrics(qps_window=60)
        for _ in range(120):
            metrics.observe("GET", "/healthz", 200, 0.0)
        snap = metrics.snapshot()
        assert snap["qps"]["window_60s"] == pytest.approx(2.0)
        assert snap["qps"]["lifetime"] > 0

    def test_thread_safe_under_concurrent_observe(self):
        metrics = ServiceMetrics()

        def hammer():
            for _ in range(500):
                metrics.observe("POST", "/recommend", 200, 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.snapshot()["n_requests"] == 4_000


class TestMetricsDirectory:
    def test_write_read_round_trip(self, tmp_path):
        store = MetricsDirectory(tmp_path / "metrics")
        store.write("w0", {"http": {"n_requests": 3}})
        store.write("w1", {"http": {"n_requests": 5}})
        payloads = store.read_all()
        assert len(payloads) == 2
        assert sum(p["http"]["n_requests"] for p in payloads) == 8

    def test_rewrite_replaces_not_appends(self, tmp_path):
        store = MetricsDirectory(tmp_path)
        store.write("w0", {"n": 1})
        store.write("w0", {"n": 2})
        assert store.read_all() == [{"n": 2}]

    def test_corrupt_file_skipped(self, tmp_path):
        store = MetricsDirectory(tmp_path)
        store.write("w0", {"n": 1})
        (tmp_path / "worker-bad.json").write_text("{torn", encoding="utf-8")
        assert store.read_all() == [{"n": 1}]


def _worker_payload(worker_id, n_requests, samples_ms, n_shed=0, batches=None):
    latency = {
        "count": len(samples_ms),
        "mean_ms": sum(samples_ms) / len(samples_ms) if samples_ms else None,
        "max_ms": max(samples_ms) if samples_ms else None,
        "p50_ms": None, "p95_ms": None, "p99_ms": None,
        "samples_ms": list(samples_ms),
    }
    return {
        "http": {
            "worker_id": worker_id,
            "pid": 1000 + hash(worker_id) % 100,
            "started_at": 0.0,
            "uptime_seconds": 10.0,
            "n_requests": n_requests,
            "n_ok": n_requests - n_shed,
            "n_shed": n_shed,
            "n_client_errors": 0,
            "n_failed": 0,
            "qps": {"lifetime": n_requests / 10.0, "window_60s": 1.0},
            "endpoints": {
                "POST /recommend": {
                    "n_requests": n_requests,
                    "n_ok": n_requests - n_shed,
                    "n_shed": n_shed,
                    "n_client_errors": 0,
                    "n_failed": 0,
                    "latency": latency,
                }
            },
        },
        "dispatcher": {
            "n_requests": n_requests,
            "n_batches": len(batches or []),
            "n_batched_requests": sum(batches or []),
            "largest_batch": max(batches or [0]),
            "mean_batch_size": 0.0,
            "batch_size_histogram": {},
        },
        "registry": {"models": 2, "model_loads": 1, "model_cache_hits": n_requests},
        "jobs": {"n_submitted": 1, "depth": 0},
    }


class TestAggregation:
    def test_counters_sum_across_workers(self):
        merged = aggregate_worker_payloads(
            [_worker_payload("w0", 10, [1.0] * 5), _worker_payload("w1", 30, [3.0] * 5)]
        )
        assert merged["http"]["n_requests"] == 40
        assert merged["registry"]["model_cache_hits"] == 40
        assert merged["jobs"]["n_submitted"] == 2
        assert len(merged["workers"]) == 2

    def test_quantiles_merge_over_sample_union_not_averaged(self):
        # One fast worker, one slow worker: averaging per-worker p50s would
        # give 5.5ms; the union of samples has a true p50 of 5.5 only when
        # counts match — skew the counts to tell union from average apart.
        fast = _worker_payload("w0", 90, [1.0] * 90)
        slow = _worker_payload("w1", 10, [10.0] * 10)
        merged = aggregate_worker_payloads([fast, slow])
        latency = merged["http"]["endpoints"]["POST /recommend"]["latency"]
        assert latency["count"] == 100
        assert latency["p50_ms"] == pytest.approx(1.0)  # union-dominated by fast
        assert latency["max_ms"] == pytest.approx(10.0)
        assert latency["mean_ms"] == pytest.approx(1.9)

    def test_gauges_take_max_and_ratios_recomputed(self):
        a = _worker_payload("w0", 8, [1.0], batches=[4, 4])
        b = _worker_payload("w1", 6, [1.0], batches=[6])
        merged = aggregate_worker_payloads([a, b])
        assert merged["dispatcher"]["largest_batch"] == 6
        # mean batch size = (8 + 6) / 3 batches, not an average of means.
        assert merged["dispatcher"]["mean_batch_size"] == pytest.approx(4.67, abs=0.01)
        assert merged["registry"]["models"] == 2  # max, not 4

    def test_shed_counts_aggregate(self):
        merged = aggregate_worker_payloads(
            [_worker_payload("w0", 10, [1.0], n_shed=3), _worker_payload("w1", 10, [1.0])]
        )
        assert merged["http"]["n_shed"] == 3

    def test_single_payload_keeps_shape(self):
        merged = aggregate_worker_payloads([_worker_payload("w0", 5, [2.0] * 5)])
        assert merged["http"]["n_requests"] == 5
        assert "POST /recommend" in merged["http"]["endpoints"]
        json.dumps(merged)


class TestLoadGenerator:
    def test_schedule_is_deterministic_and_weighted(self):
        ops = [
            LoadOp("POST", "/recommend", {"x": 1}, weight=3),
            LoadOp("GET", "/healthz", weight=1),
        ]
        gen_a = LoadGenerator("127.0.0.1", 1, ops, n_clients=2, requests_per_client=20)
        gen_b = LoadGenerator("127.0.0.1", 1, ops, n_clients=2, requests_per_client=20)
        assert gen_a._plans == gen_b._plans
        assert gen_a.total_requests == 40
        flat = [entry for plan in gen_a._plans for entry in plan]
        recommends = sum(1 for entry in flat if entry[1] == "/recommend")
        assert recommends == 30  # 3:1 weighting holds exactly

    def test_bodies_pre_encoded_once(self):
        op = LoadOp("POST", "/recommend", {"dataset": {"target": [1, 2]}})
        gen = LoadGenerator("127.0.0.1", 1, [op], n_clients=1, requests_per_client=3)
        bodies = {id(entry[2]) for plan in gen._plans for entry in plan}
        assert len(bodies) == 1  # same bytes object reused, no per-request dumps

    def test_rejects_empty_schedule(self):
        with pytest.raises(ValueError):
            LoadGenerator("127.0.0.1", 1, [], n_clients=1, requests_per_client=1)

    def test_run_against_live_server(self, registry, clf_model, clf_dataset):
        from _helpers import dataset_payload
        from repro.service import RecommendationService, serve_in_thread

        registry.publish(clf_model, "clf")
        service = RecommendationService(registry)
        server, _ = serve_in_thread(service)
        try:
            ops = [
                LoadOp("POST", "/recommend",
                       {"dataset": dataset_payload(clf_dataset), "model": "clf"},
                       weight=2),
                LoadOp("GET", "/healthz"),
            ]
            gen = LoadGenerator(
                "127.0.0.1", server.server_address[1], ops,
                n_clients=2, requests_per_client=6,
            )
            report = gen.run()
            assert report.n_requests == 12
            assert report.n_ok == 12
            assert report.n_failed == 0
            assert gen.completed == 12
            assert report.throughput_rps > 0
            assert report.latency_ms(0.99) >= report.latency_ms(0.50)
            # Client-side tallies reconcile with server-side metrics.
            snap = service.metrics.snapshot()
            assert snap["n_requests"] == 12
            assert snap["endpoints"]["POST /recommend"]["n_ok"] == 8
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_metrics_reconcile_with_tracing_enabled(
        self, registry, clf_model, clf_dataset, tmp_path
    ):
        """The load-smoke bar with the obs journal on: same zero-failure
        reconciliation, plus /metrics reporting the traced request spans."""
        import time

        import repro.obs as obs
        from _helpers import dataset_payload
        from repro.service import RecommendationService, serve_in_thread

        registry.publish(clf_model, "clf")
        service = RecommendationService(registry)
        server, _ = serve_in_thread(service)
        obs.configure(tmp_path / "journal")
        try:
            ops = [
                LoadOp("POST", "/recommend",
                       {"dataset": dataset_payload(clf_dataset), "model": "clf"},
                       weight=2),
                LoadOp("GET", "/healthz"),
            ]
            gen = LoadGenerator(
                "127.0.0.1", server.server_address[1], ops,
                n_clients=2, requests_per_client=6,
            )
            report = gen.run()
            assert report.n_requests == 12
            assert report.n_failed == 0
            snap = service.metrics.snapshot()
            assert snap["n_requests"] == 12
            # Request spans land in the journal just after each response, so
            # give the handler threads a moment before reconciling.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                events = service.metrics_response().get("events", {})
                if events.get("span", 0) >= 12:
                    break
                time.sleep(0.01)
            assert events["span"] >= 12  # one service.request span per request
        finally:
            obs.disable()
            server.shutdown()
            server.server_close()
            service.close()
