"""ModelRegistry: versioning, atomic promote/rollback, manifests, the LRU."""

import json
import threading

import pytest

from repro.core.persistence import read_decision_model_manifest
from repro.service import ModelRegistry

from _helpers import constant_automodel


class TestPublishAndVersions:
    def test_first_publish_creates_v1_and_promotes(self, registry, clf_model):
        version = registry.publish(clf_model, "clf")
        assert version == "v0001"
        assert registry.versions("clf") == ["v0001"]
        assert registry.current_version("clf") == "v0001"

    def test_versions_are_monotonic(self, registry, clf_model, clf_model_alt):
        registry.publish(clf_model, "clf")
        second = registry.publish(clf_model_alt, "clf")
        assert second == "v0002"
        assert registry.versions("clf") == ["v0001", "v0002"]

    def test_later_publish_does_not_auto_promote(self, registry, clf_model, clf_model_alt):
        registry.publish(clf_model, "clf")
        registry.publish(clf_model_alt, "clf")
        assert registry.current_version("clf") == "v0001"

    def test_publish_activate_promotes_immediately(self, registry, clf_model, clf_model_alt):
        registry.publish(clf_model, "clf")
        version = registry.publish(clf_model_alt, "clf", activate=True)
        assert registry.current_version("clf") == version

    def test_invalid_names_rejected(self, registry, clf_model):
        for bad in ("", "a/b", "a b", "../x"):
            with pytest.raises(ValueError):
                registry.publish(clf_model, bad)

    def test_names_lists_only_models_with_versions(self, registry, clf_model, reg_model):
        registry.publish(clf_model, "clf")
        registry.publish(reg_model, "reg")
        (registry.root / "empty-dir").mkdir()
        assert registry.names() == ["clf", "reg"]

    def test_import_cache_dir_discovers_saved_automodel(self, registry, clf_model, tmp_path):
        cache = tmp_path / "trained"
        clf_model.save(cache)
        version = registry.import_cache_dir(cache, "imported")
        assert registry.current_version("imported") == version
        manifest = registry.manifest("imported", version)
        assert manifest["metadata"]["source"] == str(cache)


class TestManifests:
    def test_manifest_carries_provenance_and_model_info(self, registry, reg_model):
        version = registry.publish(reg_model, "reg", metadata={"owner": "team-a"})
        manifest = registry.manifest("reg", version)
        assert manifest["task"] == "regression"
        assert manifest["labels"] == ["Ridge", "RegressionTree"]
        assert manifest["metadata"]["registry_name"] == "reg"
        assert manifest["metadata"]["version"] == version
        assert manifest["metadata"]["owner"] == "team-a"
        assert manifest["metadata"]["published_at"] > 0

    def test_manifest_reads_without_deserializing_weights(self, registry, clf_model):
        version = registry.publish(clf_model, "clf")
        path = registry.root / "clf" / "versions" / version / "decision_model.json"
        manifest = read_decision_model_manifest(path)
        assert manifest["key_features"] == clf_model.decision_model.extractor.feature_names
        assert manifest["format_version"] == 1

    def test_describe_lists_everything(self, registry, clf_model, reg_model):
        registry.publish(clf_model, "clf")
        registry.publish(reg_model, "reg")
        listing = {entry["name"]: entry for entry in registry.describe()}
        assert listing["clf"]["task"] == "classification"
        assert listing["reg"]["task"] == "regression"
        assert listing["clf"]["current_version"] == "v0001"

    def test_unknown_version_raises(self, registry, clf_model):
        registry.publish(clf_model, "clf")
        with pytest.raises(KeyError):
            registry.manifest("clf", "v9999")


class TestPromoteRollback:
    def test_promote_unknown_version_raises(self, registry, clf_model):
        registry.publish(clf_model, "clf")
        with pytest.raises(KeyError):
            registry.promote("clf", "v0042")

    def test_rollback_flips_to_previous(self, registry, clf_model, clf_model_alt):
        registry.publish(clf_model, "clf")
        v2 = registry.publish(clf_model_alt, "clf", activate=True)
        assert registry.current_version("clf") == v2
        assert registry.rollback("clf") == "v0001"
        assert registry.current_version("clf") == "v0001"

    def test_rollback_without_history_raises(self, registry, clf_model):
        registry.publish(clf_model, "clf")
        with pytest.raises(KeyError):
            registry.rollback("clf")

    def test_pointer_is_never_torn_under_concurrent_promotes(self, registry, clf_model, clf_model_alt):
        v1 = registry.publish(clf_model, "clf")
        v2 = registry.publish(clf_model_alt, "clf")
        stop = threading.Event()
        errors: list[Exception] = []

        def flip():
            while not stop.is_set():
                registry.promote("clf", v2)
                registry.promote("clf", v1)

        def read():
            try:
                for _ in range(300):
                    pointer = json.loads(
                        (registry.root / "clf" / "CURRENT.json").read_text()
                    )
                    assert pointer["version"] in (v1, v2)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        flipper = threading.Thread(target=flip)
        readers = [threading.Thread(target=read) for _ in range(4)]
        flipper.start()
        for reader in readers:
            reader.start()
        for reader in readers:
            reader.join()
        stop.set()
        flipper.join()
        assert not errors


class TestResolveAndCache:
    def test_resolve_returns_consistent_snapshot(self, registry, clf_model, clf_dataset):
        registry.publish(clf_model, "clf")
        servable = registry.resolve("clf")
        assert servable.name == "clf"
        assert servable.version == "v0001"
        assert servable.model.decision_model.select(clf_dataset) == "J48"

    def test_resolve_single_model_without_name(self, registry, clf_model):
        registry.publish(clf_model, "only")
        assert registry.resolve().name == "only"

    def test_resolve_ambiguous_without_name_raises(self, registry, clf_model, reg_model):
        registry.publish(clf_model, "a")
        registry.publish(reg_model, "b")
        with pytest.raises(KeyError):
            registry.resolve()

    def test_resolve_unpromoted_model_raises(self, registry, clf_model):
        registry.publish(clf_model, "clf", activate=False)
        with pytest.raises(KeyError):
            registry.resolve("clf")

    def test_lru_serves_repeat_resolves_from_memory(self, registry, clf_model):
        registry.publish(clf_model, "clf")
        first = registry.resolve("clf").model
        second = registry.resolve("clf").model
        assert first is second
        assert registry.model_loads == 1
        assert registry.model_cache_hits == 1

    def test_lru_evicts_beyond_capacity(self, tmp_path, clf_model):
        small = ModelRegistry(tmp_path / "small", max_cached_models=2)
        for name in ("a", "b", "c"):
            small.publish(clf_model, name)
            small.resolve(name)
        assert small.stats()["cached_models"] == 2
        # "a" was evicted; resolving it again is a fresh load.
        loads_before = small.model_loads
        small.resolve("a")
        assert small.model_loads == loads_before + 1

    def test_round_trip_preserves_selection(self, registry, reg_model, reg_dataset):
        registry.publish(reg_model, "reg")
        restored = registry.resolve("reg").model
        assert restored.task.value == "regression"
        assert restored.decision_model.select(reg_dataset) == "Ridge"


class TestNameTraversal:
    def test_dot_names_rejected_everywhere(self, registry, clf_model):
        """'.' / '..' pass a pure character check but would escape the root."""
        for bad in (".", "..", "..."):
            with pytest.raises(ValueError):
                registry.publish(clf_model, bad)
            with pytest.raises(ValueError):
                registry.promote(bad, "v0001")
        # Nothing leaked outside (or into) the registry root.
        assert list(registry.root.parent.glob("versions")) == []
        assert registry.names() == []


class TestRegistryRobustness:
    def test_stray_directories_are_skipped_not_fatal(self, registry, clf_model):
        registry.publish(clf_model, "clf")
        (registry.root / "my model backup").mkdir()  # invalid name, hand-dropped
        assert registry.names() == ["clf"]
        assert registry.stats()["models"] == 1
        assert [e["name"] for e in registry.describe()] == ["clf"]

    def test_publish_carries_result_store_forward(self, registry, clf_model, tmp_path, clf_dataset):
        """Tuned configurations in the source store stay servable after publish."""
        cache = tmp_path / "offline"
        clf_model.save(cache)
        from repro.core.automodel import AutoModel

        offline = AutoModel.load(cache)
        responder = offline.responder(cv=5, tuning_max_records=400)
        solution = responder.respond(
            clf_dataset, time_limit=None, max_evaluations=4, fit_final_estimator=False
        )
        version = registry.import_cache_dir(cache, "warm")
        servable = registry.resolve("warm", version)
        tuned = servable.model.responder(cv=5, tuning_max_records=400).tuned_best(
            clf_dataset, solution.algorithm
        )
        assert tuned and tuned[0][0] == solution.config


class TestGenerationCaching:
    def test_steady_state_listing_never_rescans(self, registry, clf_model):
        registry.publish(clf_model, "clf")
        registry.names()
        registry.versions("clf")
        scans = registry.stats()["listing_scans"]
        for _ in range(20):
            registry.names()
            registry.versions("clf")
            registry.current_version("clf")
        assert registry.stats()["listing_scans"] == scans  # all cache hits

    def test_own_mutations_invalidate_the_cache(self, registry, clf_model, reg_model):
        registry.publish(clf_model, "clf")
        assert registry.names() == ["clf"]
        registry.publish(reg_model, "reg")
        assert registry.names() == ["clf", "reg"]

    def test_sibling_process_publish_is_visible(self, registry, clf_model, reg_model):
        """A second registry instance stands in for a sibling worker process."""
        registry.publish(clf_model, "clf")
        assert registry.names() == ["clf"]
        sibling = type(registry)(registry.root)
        sibling.publish(reg_model, "reg")
        # No refresh() call: the GENERATION token alone carries the change.
        assert registry.names() == ["clf", "reg"]
        assert registry.versions("reg") == ["v0001"]

    def test_sibling_process_promote_is_visible(self, registry, clf_model, clf_model_alt):
        registry.publish(clf_model, "clf")
        v2 = registry.publish(clf_model_alt, "clf")  # standby
        assert registry.current_version("clf") == "v0001"
        sibling = type(registry)(registry.root)
        sibling.promote("clf", v2)
        assert registry.current_version("clf") == v2

    def test_generation_token_changes_on_every_mutation(self, registry, clf_model):
        tokens = [registry.generation()]
        registry.publish(clf_model, "clf")          # publish (+auto-promote)
        tokens.append(registry.generation())
        v2 = registry.publish(clf_model, "clf")
        tokens.append(registry.generation())
        registry.promote("clf", v2)
        tokens.append(registry.generation())
        registry.rollback("clf")
        tokens.append(registry.generation())
        assert len(set(tokens)) == len(tokens)  # strictly fresh every time

    def test_out_of_band_edits_need_refresh(self, registry, clf_model, tmp_path):
        import shutil

        registry.publish(clf_model, "clf")
        assert registry.names() == ["clf"]
        # A copy dropped in behind the registry's back (no token bump) ...
        shutil.copytree(registry.root / "clf", registry.root / "smuggled")
        assert registry.names() == ["clf"]  # ... is invisible to the cache
        registry.refresh()
        assert registry.names() == ["clf", "smuggled"]
