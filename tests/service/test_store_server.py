"""Store-server route tests: payloads, validation, admission, CLI boot.

The store server is the network edge of the distributed knowledge loop, so
its wire contract gets the same treatment as the recommendation service:
every route exercised over a real socket, every 4xx path pinned, saturation
returning ``429 + Retry-After``, and the ``store-serve`` CLI booted as a
subprocess and spoken to through a ``ResultStore("http://...")`` client.
"""

import json
import os
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.execution import ResultStore
from repro.service import StoreService, serve_store_in_thread
from repro.service.store_server import store_route_label

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _get(port: int, path: str) -> dict:
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=30) as resp:
        return json.loads(resp.read())


def _post(port: int, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as resp:
        return json.loads(resp.read())


def _post_error(port: int, path: str, data: bytes) -> urllib.error.HTTPError:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        headers={"Content-Type": "application/json"},
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=30)
    return excinfo.value


@pytest.fixture()
def served_store(tmp_path):
    store = ResultStore(tmp_path / "authority", backend="sqlite")
    store.put_key("ctx", "k1", 0.5, {"algorithm": "J48"})
    store.put_key("ctx", "k2", float("nan"))
    server, _thread = serve_store_in_thread(StoreService(store))
    port = server.server_address[1]
    yield store, port
    server.shutdown()
    server.server_close()
    store.close()


class TestRoutes:
    def test_healthz(self, served_store):
        _store, port = served_store
        health = _get(port, "/healthz")
        assert health["status"] == "ok"
        assert health["store"]["backend"] == "sqlite"
        assert health["uptime_seconds"] >= 0

    def test_contexts(self, served_store):
        _store, port = served_store
        assert _get(port, "/store/contexts") == {"contexts": ["ctx"]}

    def test_image_scores_travel_as_repr(self, served_store):
        _store, port = served_store
        image = _post(port, "/store/image", {"context": "ctx"})
        assert image["scores"]["k1"] == "0.5"
        assert image["scores"]["k2"] == "nan"  # strict JSON can't carry NaN
        assert image["configs"]["k1"] == {"algorithm": "J48"}
        assert image["configs"]["k2"] is None

    def test_image_of_unknown_context_is_empty(self, served_store):
        _store, port = served_store
        image = _post(port, "/store/image", {"context": "nope"})
        assert image["scores"] == {} and image["configs"] == {}

    def test_put_lands_in_the_authority(self, served_store):
        store, port = served_store
        out = _post(
            port, "/store/put",
            {"context": "ctx", "key": "k3", "score": "0.75", "config": {"x": 1}},
        )
        assert out["appended"] is True
        assert store.get_key("ctx", "k3") == 0.75
        # Idempotence crosses the wire too.
        again = _post(
            port, "/store/put", {"context": "ctx", "key": "k3", "score": "0.75"}
        )
        assert again["appended"] is False

    def test_compact(self, served_store):
        _store, port = served_store
        out = _post(port, "/store/compact", {"context": "ctx"})
        assert out["reclaimed"] >= 0
        assert _post(port, "/store/compact", {})["context"] is None

    def test_metrics_count_store_routes(self, served_store):
        _store, port = served_store
        _get(port, "/healthz")
        _post(port, "/store/image", {"context": "ctx"})
        metrics = _get(port, "/metrics")
        assert "POST /store/image" in metrics["http"]["endpoints"]
        assert metrics["http"]["n_requests"] >= 2

    def test_unknown_paths_404(self, served_store):
        _store, port = served_store
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(port, "/store/everything")
        assert excinfo.value.code == 404
        assert _post_error(port, "/store/everything", b"{}").code == 404

    def test_route_label_bounds_cardinality(self):
        assert store_route_label("/store/put?x=1") == "/store/put"
        assert store_route_label("/store/anything-else") == "(unknown)"


class TestValidation:
    def test_image_needs_string_context(self, served_store):
        _store, port = served_store
        error = _post_error(port, "/store/image", json.dumps({"context": 7}).encode())
        assert error.code == 400

    def test_put_needs_key_and_score(self, served_store):
        _store, port = served_store
        base = {"context": "ctx"}
        for bad in (
            base,  # no key
            {**base, "key": ""},  # empty key
            {**base, "key": "k", "score": "not-a-float"},
            {**base, "key": "k", "score": None},
            {**base, "key": "k", "score": "1.0", "config": "not-an-object"},
        ):
            error = _post_error(port, "/store/put", json.dumps(bad).encode())
            assert error.code == 400, bad

    def test_invalid_json_body_400(self, served_store):
        _store, port = served_store
        assert _post_error(port, "/store/image", b"{not json").code == 400


class TestAdmission:
    def test_saturated_server_returns_429_with_retry_after(self, tmp_path):
        store = ResultStore(tmp_path / "authority", backend="sqlite")
        service = StoreService(store, max_inflight=1)
        server, _thread = serve_store_in_thread(service)
        port = server.server_address[1]
        release = threading.Event()
        entered = threading.Event()
        original = service.contexts_payload

        def stalled():
            entered.set()
            release.wait(timeout=30)
            return original()

        service.contexts_payload = stalled
        try:
            blocker = threading.Thread(
                target=lambda: _get(port, "/store/contexts"), daemon=True
            )
            blocker.start()
            assert entered.wait(timeout=30)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(port, "/store/contexts")
            assert excinfo.value.code == 429
            assert float(excinfo.value.headers["Retry-After"]) >= 0
        finally:
            release.set()
            blocker.join(timeout=30)
            server.shutdown()
            server.server_close()
            store.close()


class TestStoreServeCLI:
    def test_boot_and_round_trip_through_http_backend(self, tmp_path):
        root = tmp_path / "authority"
        seed = ResultStore(root, backend="sqlite")
        seed.put_key("cli-ctx", "k1", 0.25, {"algorithm": "OneR"})
        seed.close()
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.service", "store-serve",
                "--root", str(root), "--backend", "sqlite", "--port", "0",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=_env(),
        )
        try:
            line = proc.stdout.readline()
            assert "repro-store listening on http://" in line, line
            url = line.split("listening on ", 1)[1].split()[0]

            client = ResultStore(url)
            assert client.describe()["backend"] == "http"
            assert client.get_key("cli-ctx", "k1") == 0.25
            assert client.put_key("cli-ctx", "k2", 0.9, {"algorithm": "ZeroR"})
            assert client.top_k("cli-ctx", 1)[0][1] == 0.9

            # A second, independent client sees the first client's write.
            other = ResultStore(url)
            assert other.get_key("cli-ctx", "k2") == 0.9
            assert proc.poll() is None  # still serving
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - cleanup path
                proc.kill()
                proc.wait(timeout=10)
