"""Tests for the Dataset container, synthetic generators and suites."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    CONCEPT_FAMILIES,
    Dataset,
    TEST_SUITE_SPECS,
    knowledge_suite,
    make_dataset,
    make_gaussian_clusters,
)
from repro.datasets import test_suite as build_test_suite


class TestDatasetContainer:
    def test_shape_properties(self, blobs_dataset):
        assert blobs_dataset.n_records == 180
        assert blobs_dataset.n_numeric == 6
        assert blobs_dataset.n_categorical == 2
        assert blobs_dataset.n_attributes == 8
        assert blobs_dataset.n_classes == 3

    def test_to_matrix_is_numeric_and_aligned(self, blobs_dataset):
        X, y = blobs_dataset.to_matrix()
        assert X.shape[0] == len(y) == blobs_dataset.n_records
        assert X.dtype == np.float64
        assert set(np.unique(y)) == set(range(blobs_dataset.n_classes))

    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(ValueError):
            Dataset("bad", np.zeros((5, 2)), np.zeros((4, 1), dtype=object), np.zeros(5))

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            Dataset("bad", np.zeros((0, 2)), np.zeros((0, 0), dtype=object), np.zeros(0))

    def test_dataset_without_attributes_rejected(self):
        with pytest.raises(ValueError):
            Dataset("bad", np.zeros((3, 0)), np.zeros((3, 0), dtype=object), np.zeros(3))

    def test_subsample_is_stratified_and_smaller(self, blobs_dataset):
        sub = blobs_dataset.subsample(60, random_state=0)
        assert sub.n_records <= 70
        assert sub.n_classes == blobs_dataset.n_classes

    def test_subsample_noop_when_large_enough(self, blobs_dataset):
        assert blobs_dataset.subsample(10_000) is blobs_dataset

    def test_take_preserves_blocks(self, blobs_dataset):
        subset = blobs_dataset.take(np.arange(10))
        assert subset.n_records == 10
        assert subset.n_numeric == blobs_dataset.n_numeric

    def test_train_test_split_partitions(self, blobs_dataset):
        train, test = blobs_dataset.train_test_split(test_size=0.3, random_state=0)
        assert train.n_records + test.n_records == blobs_dataset.n_records
        assert test.n_classes == blobs_dataset.n_classes

    def test_summary_layout(self, blobs_dataset):
        summary = blobs_dataset.summary()
        assert summary["records"] == 180
        assert summary["classes"] == 3


class TestSyntheticGenerators:
    @pytest.mark.parametrize("family", sorted(CONCEPT_FAMILIES))
    def test_family_produces_requested_shape(self, family):
        dataset = make_dataset(
            family,
            name=f"shape_{family}",
            n_records=120,
            n_numeric=5,
            n_categorical=3,
            n_classes=3,
            random_state=0,
        )
        assert dataset.n_records >= 110  # families may round class sizes slightly
        assert dataset.n_numeric == 5
        assert dataset.n_categorical == 3
        assert dataset.n_classes == 3

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            make_dataset("no_such_family", name="x")

    def test_generation_is_deterministic(self):
        a = make_gaussian_clusters("a", n_records=50, random_state=7)
        b = make_gaussian_clusters("b", n_records=50, random_state=7)
        np.testing.assert_allclose(a.numeric, b.numeric)
        np.testing.assert_array_equal(a.target, b.target)

    def test_different_seeds_differ(self):
        a = make_gaussian_clusters("a", n_records=50, random_state=1)
        b = make_gaussian_clusters("b", n_records=50, random_state=2)
        assert not np.allclose(a.numeric, b.numeric)

    def test_every_class_present(self):
        for family in CONCEPT_FAMILIES:
            dataset = make_dataset(
                family, name="c", n_records=100, n_numeric=4, n_categorical=2,
                n_classes=4, random_state=3,
            )
            assert dataset.n_classes == 4

    @given(st.integers(0, 1000), st.integers(2, 5))
    @settings(max_examples=15, deadline=None)
    def test_generators_are_valid_datasets(self, seed, n_classes):
        dataset = make_gaussian_clusters(
            "prop", n_records=80, n_numeric=4, n_categorical=1,
            n_classes=n_classes, random_state=seed,
        )
        X, y = dataset.to_matrix()
        assert np.all(np.isfinite(X))
        assert len(np.unique(y)) == n_classes


class TestSuites:
    def test_test_suite_matches_table_xi_shapes(self):
        suite = build_test_suite(max_records=300, max_numeric=20)
        assert len(suite) == 21
        by_name = {d.name: d for d in suite}
        for symbol, paper_name, records, n_num, n_cat, n_classes, _family in TEST_SUITE_SPECS:
            dataset = by_name[symbol]
            assert dataset.metadata["paper_name"] == paper_name
            assert dataset.n_classes == n_classes
            assert dataset.n_categorical == n_cat
            assert dataset.n_numeric == min(n_num, 20)
            assert dataset.n_records <= max(300, n_classes * 8)

    def test_test_suite_full_scale_record_counts(self):
        suite = build_test_suite(max_records=None, max_numeric=None, random_state=1)
        by_name = {d.name: d for d in suite}
        assert by_name["D1"].n_records == 108
        assert by_name["D12"].n_records == 1372

    def test_knowledge_suite_size_and_diversity(self):
        pool = knowledge_suite(n_datasets=12, random_state=0)
        assert len(pool) == 12
        families = {d.metadata["family"] for d in pool}
        assert len(families) >= 4

    def test_knowledge_suite_invalid_size(self):
        with pytest.raises(ValueError):
            knowledge_suite(n_datasets=0)


class TestCorruption:
    """The messy-data corruption layer feeding pipeline search."""

    def _clean(self):
        return make_dataset(
            "gaussian_clusters", "c", n_records=150, n_numeric=5,
            n_categorical=3, n_classes=3, random_state=0,
        )

    def test_missing_rate_injects_nans_into_numeric_only(self):
        from repro.datasets import corrupt

        clean = self._clean()
        messy = corrupt(clean, missing_rate=0.2, random_state=1)
        fraction = np.isnan(messy.numeric).mean()
        assert 0.1 < fraction < 0.3
        assert np.array_equal(messy.target, clean.target)
        assert np.array_equal(messy.categorical, clean.categorical)

    def test_rare_rate_introduces_fresh_categories(self):
        from repro.datasets import corrupt

        clean = self._clean()
        messy = corrupt(clean, missing_rate=0.0, rare_rate=0.2, random_state=2)
        clean_values = set(clean.categorical.ravel().tolist())
        new_values = set(messy.categorical.ravel().tolist()) - clean_values
        assert new_values and all(str(v).startswith("rare_") for v in new_values)
        assert np.array_equal(messy.numeric, clean.numeric)

    def test_scale_skew_rescales_columns(self):
        from repro.datasets import corrupt

        clean = self._clean()
        messy = corrupt(clean, missing_rate=0.0, scale_skew=2.0, random_state=3)
        ratios = np.abs(messy.numeric).mean(axis=0) / np.abs(clean.numeric).mean(axis=0)
        assert ratios.max() / ratios.min() > 5.0  # genuinely different scales

    def test_corruption_is_deterministic_and_metadata_tagged(self):
        from repro.datasets import corrupt

        clean = self._clean()
        a = corrupt(clean, missing_rate=0.15, rare_rate=0.1, random_state=9)
        b = corrupt(clean, missing_rate=0.15, rare_rate=0.1, random_state=9)
        assert a.fingerprint == b.fingerprint
        assert a.metadata["corrupted"]["source"] == "c"
        assert a.task == clean.task

    def test_invalid_rates_raise(self):
        from repro.datasets import corrupt

        clean = self._clean()
        with pytest.raises(ValueError):
            corrupt(clean, missing_rate=1.5)
        with pytest.raises(ValueError):
            corrupt(clean, rare_rate=-0.1)
        with pytest.raises(ValueError):
            corrupt(clean, scale_skew=-1.0)

    def test_knowledge_suite_corrupt_fraction(self):
        from repro.datasets import knowledge_suite as suite

        clean_pool = suite(n_datasets=6, random_state=7)
        messy_pool = suite(n_datasets=6, random_state=7, corrupt_fraction=0.5)
        assert [d.name for d in messy_pool] == [d.name for d in clean_pool]
        corrupted = [d for d in messy_pool if "corrupted" in d.metadata]
        assert len(corrupted) == 3
        # The untouched share is byte-identical to the historical pool.
        for clean, messy in zip(clean_pool, messy_pool):
            if "corrupted" not in messy.metadata:
                assert messy.fingerprint == clean.fingerprint


class TestMatrixEncoding:
    """to_matrix / to_raw_matrix and the deprecated hard-wired encode path."""

    def _mixed(self, with_nans=False):
        dataset = make_dataset(
            "gaussian_clusters", "m", n_records=60, n_numeric=3,
            n_categorical=2, n_classes=2, random_state=4,
        )
        if with_nans:
            from repro.datasets import corrupt

            dataset = corrupt(dataset, missing_rate=0.3, random_state=5)
        return dataset

    def test_to_matrix_identical_to_legacy_composition_on_clean_data(self):
        from repro.learners.preprocessing import OneHotEncoder, SimpleImputer

        dataset = self._mixed()
        X, y = dataset.to_matrix()
        legacy = np.hstack([
            SimpleImputer().fit_transform(dataset.numeric),
            OneHotEncoder().fit_transform(dataset.categorical),
        ])
        assert np.array_equal(X, legacy)  # byte-identical, imputation was a no-op

    def test_to_matrix_preserves_nans_for_bare_estimators(self):
        dataset = self._mixed(with_nans=True)
        X, _ = dataset.to_matrix()
        assert np.isnan(X).any()  # imputation is a pipeline step now

    def test_to_raw_matrix_layout_matches_to_matrix(self):
        dataset = self._mixed(with_nans=True)
        X_raw, y_raw = dataset.to_raw_matrix()
        X_enc, y_enc = dataset.to_matrix()
        assert X_raw.dtype == object
        assert X_raw.shape == (dataset.n_records, dataset.n_attributes)
        assert np.array_equal(y_raw, y_enc)
        # Numeric block first, original values preserved.
        raw_numeric = X_raw[:, : dataset.n_numeric].astype(np.float64)
        assert np.array_equal(
            np.nan_to_num(raw_numeric), np.nan_to_num(dataset.numeric)
        )
        assert X_raw[0, dataset.n_numeric] == dataset.categorical[0, 0]

    def test_to_raw_matrix_numeric_only_is_float(self):
        dataset = make_gaussian_clusters("num", n_records=40, n_numeric=4, random_state=0)
        X, y = dataset.to_raw_matrix()
        assert X.dtype == np.float64 and X.shape == (40, 4)

    def test_encode_mixed_matrix_shim_warns_and_matches_legacy_output(self):
        from repro.learners.preprocessing import (
            OneHotEncoder,
            SimpleImputer,
            encode_mixed_matrix,
        )

        dataset = self._mixed()
        with pytest.warns(DeprecationWarning):
            X, encoder = encode_mixed_matrix(dataset.numeric, dataset.categorical)
        legacy = np.hstack([
            SimpleImputer().fit_transform(dataset.numeric),
            OneHotEncoder().fit_transform(dataset.categorical),
        ])
        assert np.array_equal(X, legacy)
        assert encoder is not None and encoder.n_output_features_ > 0
