"""Acceptance path for the pipeline PR.

A corrupted dataset (missing values + unseen/rare categories + scale skew)
that crash-scores with every bare estimator must complete the full
knowledge-driven loop — corpus → performance table → DMD → UDR → HTTP
``/recommend`` — returning a tuned *pipeline*, while bare-estimator
fingerprints, store contexts and scores stay byte-identical.
"""

import json
import urllib.request

import numpy as np
import pytest

from repro import AutoModel
from repro.core import DecisionMakingModelDesigner
from repro.core.udr import UserDemandResponser
from repro.datasets import corrupt, make_dataset
from repro.evaluation import PerformanceTable
from repro.execution import ResultStore
from repro.execution.cache import config_fingerprint
from repro.learners import (
    default_registry,
    pipeline_registry,
    registry_has_pipelines,
)
from repro.learners.pipeline import Pipeline

# Knowledge acquisition needs strictly more than 5 distinct algorithms per
# instance, so the test catalogue carries 7 cheap ones.
PIPELINE_CATALOGUE = [
    "J48", "NaiveBayes", "IBk", "Logistic", "ZeroR", "OneR", "DecisionStump",
]

_FAMILIES = [
    "gaussian_clusters",
    "hypercube_rules",
    "categorical_rules",
    "noisy_linear",
    "gaussian_clusters",
    "categorical_rules",
]


@pytest.fixture(scope="module")
def bare_catalogue():
    return default_registry().subset(PIPELINE_CATALOGUE)


@pytest.fixture(scope="module")
def messy_knowledge(bare_catalogue):
    """Six corrupted knowledge datasets spanning several concept families."""
    datasets = []
    for i, family in enumerate(_FAMILIES):
        clean = make_dataset(
            family,
            name=f"MK{i + 1:02d}",
            n_records=110,
            n_numeric=4,
            n_categorical=2,
            n_classes=2 + (i % 2),
            random_state=100 + i,
        )
        datasets.append(
            corrupt(
                clean,
                missing_rate=0.2,
                rare_rate=0.12,
                scale_skew=1.0,
                random_state=200 + i,
                name=clean.name,
            )
        )
    return datasets


@pytest.fixture(scope="module")
def messy_user_dataset():
    clean = make_dataset(
        "gaussian_clusters",
        name="messy-user",
        n_records=120,
        n_numeric=4,
        n_categorical=2,
        n_classes=3,
        random_state=77,
    )
    return corrupt(clean, missing_rate=0.3, rare_rate=0.15, scale_skew=1.0, random_state=78)


@pytest.fixture(scope="module")
def fast_dmd():
    return DecisionMakingModelDesigner(
        feature_population=6,
        feature_generations=2,
        feature_max_evaluations=12,
        architecture_population=4,
        architecture_generations=1,
        architecture_max_evaluations=4,
        cv=2,
        random_state=0,
    )


@pytest.fixture(scope="module")
def pipeline_automodel(messy_knowledge, bare_catalogue, fast_dmd, tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("pipeline-automodel")
    return AutoModel.fit_from_datasets(
        messy_knowledge,
        registry=bare_catalogue,
        dmd=fast_dmd,
        cv=2,
        max_records=90,
        cache_dir=cache_dir,
        pipelines=True,
    )


class TestBareEstimatorsCrashScore:
    def test_every_bare_algorithm_scores_zero_on_the_messy_dataset(
        self, bare_catalogue, messy_user_dataset
    ):
        table = PerformanceTable.compute(
            [messy_user_dataset], registry=bare_catalogue, cv=2, max_records=90, random_state=0
        )
        row = table.dataset_scores(messy_user_dataset.name)
        assert all(score == 0.0 for score in row.values()), row

    def test_pipeline_catalogue_scores_the_same_dataset(
        self, bare_catalogue, messy_user_dataset
    ):
        table = PerformanceTable.compute(
            [messy_user_dataset],
            registry=pipeline_registry(bare_catalogue),
            cv=2,
            max_records=90,
            random_state=0,
        )
        row = table.dataset_scores(messy_user_dataset.name)
        assert max(row.values()) > 0.5, row


class TestFullLoop:
    def test_automodel_is_pipeline_backed(self, pipeline_automodel):
        assert registry_has_pipelines(pipeline_automodel.registry)
        assert pipeline_automodel.describe()["pipelines"] is True
        assert pipeline_automodel.knowledge_size > 0

    def test_corpus_and_table_cover_pipelines(self, pipeline_automodel, messy_knowledge):
        table = pipeline_automodel.performance
        assert table.algorithms == PIPELINE_CATALOGUE
        # Pipelines rescue the corrupted knowledge pool: real signal, not a
        # wall of crash scores.
        assert float(table.scores.max()) > 0.5

    def test_recommend_returns_tuned_pipeline(self, pipeline_automodel, messy_user_dataset):
        solution = pipeline_automodel.recommend(
            messy_user_dataset, time_limit=None, max_evaluations=12, cv=2
        )
        assert solution.algorithm in PIPELINE_CATALOGUE
        assert solution.cv_score > 0.0
        assert any(key.startswith("imputer:") for key in solution.config)
        assert any(key.startswith("estimator:") for key in solution.config)
        assert isinstance(solution.estimator, Pipeline)
        # The tuned pipeline actually serves predictions on raw messy data.
        X, y = messy_user_dataset.to_raw_matrix()
        assert solution.estimator.predict(X).shape == y.shape

    def test_cache_roundtrip_restores_pipeline_registry(self, pipeline_automodel):
        restored = AutoModel.load(pipeline_automodel.cache_dir)
        # Catalogue subsets were never persisted (unchanged); what the
        # manifest records is that this model serves *pipelines*, so the
        # restore wraps the task's default catalogue accordingly.
        assert registry_has_pipelines(restored.registry)
        assert set(PIPELINE_CATALOGUE) <= set(restored.registry.names)

    def test_tuning_evaluations_land_in_pipeline_store_shard(
        self, pipeline_automodel, messy_user_dataset
    ):
        responder = pipeline_automodel.responder(cv=2)
        algorithm = responder.select_algorithm(messy_user_dataset)
        context = responder.store_context(messy_user_dataset, algorithm)
        assert context.endswith("-pipeline[imputer+scaler+encoder]")
        assert responder.tuned_best(messy_user_dataset, algorithm, k=1)


class TestServingLoop:
    @pytest.fixture(scope="class")
    def service_server(self, pipeline_automodel, tmp_path_factory):
        from repro.service import ModelRegistry
        from repro.service.http import RecommendationService, serve_in_thread

        registry = ModelRegistry(tmp_path_factory.mktemp("registry"))
        registry.publish(pipeline_automodel, "messy", activate=True)
        # cv=2 matches the tuning protocol used elsewhere in this module, so
        # the dispatcher reads exactly the store shards the refine jobs write.
        service = RecommendationService(registry, cv=2)
        server, _thread = serve_in_thread(service, port=0)
        yield server, service
        server.shutdown()
        service.close()

    def _post(self, server, path, payload):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}{path}",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            return json.loads(response.read().decode("utf-8"))

    def test_http_recommend_serves_pipeline_for_messy_payload(
        self, service_server, messy_user_dataset
    ):
        server, _ = service_server
        # JSON wire format: missing numeric cells travel as nulls.
        numeric = [
            [None if (isinstance(v, float) and v != v) else v for v in row]
            for row in messy_user_dataset.numeric.tolist()
        ]
        payload = {
            "dataset": {
                "name": "messy-user",
                "numeric": numeric,
                "categorical": messy_user_dataset.categorical.tolist(),
                "target": [str(v) for v in messy_user_dataset.target.tolist()],
            }
        }
        body = self._post(server, "/recommend", payload)
        assert body["model"] == "messy"
        assert body["algorithm"] in PIPELINE_CATALOGUE
        assert any(key.startswith("imputer:") for key in body["config"])
        # Tuned configurations from the module-scope recommend() run are
        # servable straight from the version's result store.
        assert body["config_source"] in ("tuned-store", "default")

    def test_refine_job_makes_tuned_pipeline_servable(
        self, service_server, messy_user_dataset
    ):
        server, service = service_server
        job = service.fit_jobs.submit_refine(
            "messy", messy_user_dataset, max_evaluations=10, cv=2
        )
        record = service.fit_jobs.wait(job, timeout=120)
        assert record.status == "done", record.error
        assert record.result["store_context"].endswith("-pipeline[imputer+scaler+encoder]")
        recommendation = service.dispatcher.recommend(messy_user_dataset, timeout=60)
        # cv must match the refine protocol for the shard to be readable.
        assert recommendation.algorithm in PIPELINE_CATALOGUE


class TestJointSpaceBaselines:
    def test_random_cash_searches_pipeline_joint_space(self, messy_user_dataset):
        from repro.baselines import RandomCASH

        registry = pipeline_registry(default_registry().subset(["J48", "NaiveBayes", "ZeroR"]))
        baseline = RandomCASH(registry=registry, cv=2, tuning_max_records=90, random_state=0)
        solution = baseline.run(messy_user_dataset, time_limit=None, max_evaluations=8)
        assert solution.algorithm in {"J48", "NaiveBayes", "ZeroR"}
        # The joint config splits back into this algorithm's namespaced params.
        assert all(
            ":" in key for key in solution.config
        ), solution.config  # imputer:/scaler:/encoder:/estimator: namespaces
        assert solution.cv_score > 0.0  # something survived the messy data


class TestBareBehaviourByteIdentical:
    """Everything pre-existing — fingerprints, contexts, scores — unchanged."""

    def test_bare_store_context_has_no_pipeline_suffix(self, bare_catalogue, messy_user_dataset):
        responder = UserDemandResponser.__new__(UserDemandResponser)
        responder.tuning_max_records = 400
        responder.cv = 5
        responder.random_state = 0
        responder.registry = bare_catalogue
        expected = (
            f"udr-J48-{messy_user_dataset.name}-{messy_user_dataset.n_records}"
            f"x{messy_user_dataset.n_attributes}-sub400-cv5-rs0"
        )
        assert responder._store_context(messy_user_dataset, "J48") == expected

    def test_bare_config_fingerprints_have_no_namespace_artifacts(self):
        config = {"max_depth": 5, "min_samples_leaf": 2}
        assert config_fingerprint(config) == (
            ("max_depth", 5), ("min_samples_leaf", 2)
        )

    def test_clean_data_bare_scores_match_legacy_impute_then_encode(self, bare_catalogue):
        from repro.learners.preprocessing import OneHotEncoder, SimpleImputer
        from repro.learners.validation import cross_val_accuracy

        clean = make_dataset(
            "gaussian_clusters", "clean-check", n_records=100, n_numeric=4,
            n_categorical=2, n_classes=2, random_state=11,
        )
        X_now, y = clean.to_matrix()
        X_legacy = np.hstack([
            SimpleImputer().fit_transform(clean.numeric),
            OneHotEncoder().fit_transform(clean.categorical),
        ])
        assert np.array_equal(X_now, X_legacy)
        estimator = bare_catalogue.build("NaiveBayes", {})
        score_now = cross_val_accuracy(estimator, X_now, y, cv=3, random_state=0)
        score_legacy = cross_val_accuracy(estimator, X_legacy, y, cv=3, random_state=0)
        assert score_now == score_legacy

    def test_bare_store_shards_replay_identically(self, bare_catalogue, tmp_path):
        clean = make_dataset(
            "gaussian_clusters", "warm-check", n_records=90, n_numeric=4,
            n_categorical=1, n_classes=2, random_state=13,
        )
        store = ResultStore(tmp_path / "store")
        cold = PerformanceTable.compute(
            [clean], registry=bare_catalogue, cv=2, max_records=None,
            random_state=0, store=store,
        )
        warm = PerformanceTable.compute(
            [clean], registry=bare_catalogue, cv=2, max_records=None,
            random_state=0, store=store,
        )
        assert np.array_equal(cold.scores, warm.scores)
        assert warm.metadata["engine"]["n_executions"] == 0  # pure store replay
