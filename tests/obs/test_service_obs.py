"""The serving stack's obs surface: request spans, /metrics events, /trace."""

import json
import time
import urllib.error
import urllib.request

import pytest

import repro.obs as obs
from repro.obs import SpanContext
from repro.obs.trace import new_id
from repro.service import ModelRegistry, RecommendationService, serve_in_thread


@pytest.fixture()
def served(tmp_path):
    service = RecommendationService(ModelRegistry(tmp_path / "reg"))
    server, _thread = serve_in_thread(service)
    yield service, server.server_address[1]
    server.shutdown()
    service.close()


def _get(port, path, headers=None):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", headers=headers or {}
    )
    with urllib.request.urlopen(request, timeout=30) as resp:
        return json.loads(resp.read())


def _wait_spans(journal, name, n=1, timeout=10.0):
    """Spans are journaled just *after* the response bytes hit the socket, so
    a reader racing the handler thread polls briefly instead of flaking."""
    deadline = time.monotonic() + timeout
    while True:
        spans = [
            e for e in obs.read_events(journal)
            if e.get("type") == "span" and e.get("name") == name
        ]
        if len(spans) >= n or time.monotonic() >= deadline:
            return spans
        time.sleep(0.01)


class TestRequestSpans:
    def test_every_request_records_a_service_span(self, tmp_path, served):
        journal = tmp_path / "j"
        obs.configure(journal)
        _service, port = served
        _get(port, "/healthz")
        spans = _wait_spans(journal, "service.request")
        assert len(spans) == 1
        assert spans[0]["attrs"] == {"route": "/healthz", "method": "GET"}
        assert spans[0]["parent_id"] is None

    def test_incoming_header_parents_the_request_span(self, tmp_path, served):
        journal = tmp_path / "j"
        obs.configure(journal)
        _service, port = served
        remote = SpanContext(new_id(), new_id())
        _get(port, "/healthz", headers={obs.TRACE_HEADER: remote.header()})
        (span,) = _wait_spans(journal, "service.request")
        assert span["trace_id"] == remote.trace_id
        assert span["parent_id"] == remote.span_id


class TestMetricsEvents:
    def test_metrics_gains_an_events_section_when_tracing(self, tmp_path, served):
        obs.configure(tmp_path / "j")
        _service, port = served
        _get(port, "/healthz")
        assert _wait_spans(tmp_path / "j", "service.request")
        body = _get(port, "/metrics")
        assert body["events"]["span"] >= 1  # at least the /healthz request

    def test_metrics_has_no_events_section_when_disabled(self, served):
        _service, port = served
        body = _get(port, "/metrics")
        assert "events" not in body


class TestTraceEndpoint:
    def test_trace_returns_the_assembled_span_tree(self, tmp_path, served):
        obs.configure(tmp_path / "j")
        _service, port = served
        with obs.span("client.request") as client_span:
            _get(port, "/healthz", headers={obs.TRACE_HEADER: obs.trace_header()})
        assert _wait_spans(tmp_path / "j", "service.request")
        body = _get(port, f"/trace/{client_span.trace_id}")
        assert body["trace_id"] == client_span.trace_id
        # Server and client share one journal here, so the tree assembles the
        # full hop: the client span is the root, the request span its child.
        (root,) = body["roots"]
        assert root["name"] == "client.request"
        (request,) = root["children"]
        assert request["name"] == "service.request"
        assert request["parent_id"] == client_span.span_id
        assert body["coverage"] > 0.0

    def test_unknown_trace_is_404(self, tmp_path, served):
        obs.configure(tmp_path / "j")
        _service, port = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(port, "/trace/doesnotexist")
        assert excinfo.value.code == 404

    def test_unconfigured_tracing_is_404(self, served):
        _service, port = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(port, "/trace/any")
        assert excinfo.value.code == 404
