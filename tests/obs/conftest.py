"""Obs-test isolation: every test starts and ends with tracing fully off.

``repro.obs`` configuration travels through process-wide environment
variables (by design — forked workers must inherit it), so without this
fixture one test's ``configure`` would silently trace its neighbours.
"""

from __future__ import annotations

import pytest

import repro.obs as obs


@pytest.fixture(autouse=True)
def _isolated_obs():
    obs.disable()
    yield
    obs.disable()
