"""Trace propagation across the three hops: thread pools, processes, HTTP.

Executor threads do not inherit contextvars, child processes do not inherit
memory at all, and HTTP peers share nothing but bytes — each hop has its own
carrier (captured header, ``propagation_env()``, ``X-Repro-Trace``) and each
is pinned here by asserting the remote span's ``trace_id``/``parent_id``
link back to the local caller's span.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import repro.obs as obs
from repro.execution import EvaluationEngine, ResultStore
from repro.service import StoreService, serve_store_in_thread

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


def _spans(journal, name=None):
    spans = [e for e in obs.read_events(journal) if e.get("type") == "span"]
    if name is not None:
        spans = [e for e in spans if e.get("name") == name]
    return spans


def _wait_spans(journal, name, n=1, timeout=10.0):
    """Server-side spans land just after the response bytes; poll, don't race."""
    deadline = time.monotonic() + timeout
    while True:
        spans = _spans(journal, name)
        if len(spans) >= n or time.monotonic() >= deadline:
            return spans
        time.sleep(0.01)


class TestThreadPoolPropagation:
    def test_trial_spans_parent_under_the_batch_span(self, tmp_path):
        journal = tmp_path / "j"
        obs.configure(journal)

        def objective(config):
            time.sleep(0.002)
            return config["x"] / 10.0

        engine = EvaluationEngine(objective, backend="thread", n_workers=2)
        with engine:
            with obs.span("search") as root:
                engine.evaluate_many([{"x": i} for i in range(4)])
        batch = _spans(journal, "engine.evaluate_many")
        assert len(batch) == 1
        assert batch[0]["trace_id"] == root.trace_id
        assert batch[0]["parent_id"] == root.span_id
        trials = _spans(journal, "engine.trial")
        assert len(trials) == 4
        for trial in trials:
            # The pool worker re-attached the caller's context from the
            # captured header: same trace, parented under the batch span.
            assert trial["trace_id"] == root.trace_id
            assert trial["parent_id"] == batch[0]["span_id"]

    def test_trial_finish_events_carry_the_trace(self, tmp_path):
        journal = tmp_path / "j"
        obs.configure(journal)
        engine = EvaluationEngine(lambda c: float(c["x"]), backend="serial")
        with obs.span("search") as root:
            engine.evaluate_many([{"x": 1}, {"x": 1}])  # execute + duplicate
        trials = [
            e for e in obs.read_events(journal) if e.get("type") == "trial_finish"
        ]
        assert [t["status"] for t in trials] == ["ok", "cached"]
        assert all(t["trace_id"] == root.trace_id for t in trials)


class TestProcessPropagation:
    def test_child_process_worker_lands_under_the_builder_trace(self, tmp_path):
        journal = tmp_path / "j"
        obs.configure(journal)
        script = (
            "import sys\n"
            "from repro.execution import ResultStore, WorkCoordinator\n"
            "cells = [{'dataset': f'D{i}', 'seed': i} for i in range(3)]\n"
            "WorkCoordinator(ResultStore(sys.argv[1])).run(\n"
            "    'ctx', cells, lambda cell: cell['seed'] / 7.0)\n"
        )
        with obs.span("fleet.build") as root:
            env = dict(os.environ)
            env.update(obs.propagation_env())
            env["PYTHONPATH"] = SRC_DIR + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
            )
            result = subprocess.run(
                [sys.executable, "-c", script, str(tmp_path / "store")],
                env=env,
                capture_output=True,
                text=True,
                timeout=120,
            )
        assert result.returncode == 0, result.stderr
        runs = _spans(journal, "coordinator.run")
        assert len(runs) == 1
        # The child's root span picked up the ambient REPRO_TRACE parent.
        assert runs[0]["trace_id"] == root.trace_id
        assert runs[0]["parent_id"] == root.span_id
        assert runs[0]["pid"] != os.getpid()
        trials = [
            e for e in obs.read_events(journal) if e.get("type") == "trial_finish"
        ]
        assert len(trials) == 3
        assert all(t["trace_id"] == root.trace_id for t in trials)


class TestHttpPropagation:
    def test_store_server_request_span_parents_under_the_client(self, tmp_path):
        journal = tmp_path / "j"
        obs.configure(journal)
        authority = ResultStore(tmp_path / "authority", backend="sqlite")
        server, _thread = serve_store_in_thread(StoreService(authority))
        port = server.server_address[1]
        try:
            client = ResultStore(f"http://127.0.0.1:{port}")
            with obs.span("client.put") as client_span:
                client.put_key("ctx", "k1", 0.5, {"algorithm": "J48"})
        finally:
            server.shutdown()
        requests = _wait_spans(journal, "store.request")
        assert len(requests) >= 1
        for request in requests:
            # The X-Repro-Trace header crossed the socket: the server-side
            # span joins the client's trace as a child of the client span.
            assert request["trace_id"] == client_span.trace_id
            assert request["parent_id"] == client_span.span_id
            assert request["attrs"]["route"].startswith("/")

    def test_requests_without_a_header_stay_independent(self, tmp_path):
        journal = tmp_path / "j"
        obs.configure(journal)
        authority = ResultStore(tmp_path / "authority", backend="sqlite")
        server, _thread = serve_store_in_thread(StoreService(authority))
        port = server.server_address[1]
        try:
            # No active span on the client side: no header is sent.
            client = ResultStore(f"http://127.0.0.1:{port}")
            client.put_key("ctx", "k1", 0.5)
        finally:
            server.shutdown()
        requests = _wait_spans(journal, "store.request")
        assert len(requests) >= 1
        assert all(r["parent_id"] is None for r in requests)
