"""EventJournal durability: atomic appends, rotation, corrupt-line tolerance."""

import json
import os

import repro.obs as obs
from repro.obs import EventJournal, read_events
from repro.obs.events import count_by_type


class TestEmitAndRead:
    def test_round_trip_preserves_fields(self, tmp_path):
        journal = EventJournal(tmp_path / "j")
        assert journal.emit({"type": "trial_finish", "ts": 2.0, "key": "b"}) is True
        assert journal.emit({"type": "span", "ts": 1.0, "name": "a"}) is True
        events = read_events(tmp_path / "j")
        # Sorted by ts regardless of write order.
        assert [e["ts"] for e in events] == [1.0, 2.0]
        assert events[0]["name"] == "a"
        assert events[1]["key"] == "b"

    def test_reader_accepts_directory_or_single_file(self, tmp_path):
        journal = EventJournal(tmp_path / "j")
        journal.emit({"type": "x", "ts": 1.0})
        path = journal.path_for_pid(os.getpid())
        assert read_events(path) == read_events(tmp_path / "j")

    def test_unserialisable_values_degrade_to_strings(self, tmp_path):
        journal = EventJournal(tmp_path / "j")
        assert journal.emit({"type": "x", "ts": 1.0, "obj": object()}) is True
        (event,) = read_events(tmp_path / "j")
        assert "object" in event["obj"]

    def test_emit_returns_false_when_the_dir_is_unwritable(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        journal = EventJournal(blocker / "j")
        assert journal.emit({"type": "x", "ts": 1.0}) is False

    def test_close_then_emit_reopens(self, tmp_path):
        journal = EventJournal(tmp_path / "j")
        journal.emit({"type": "x", "ts": 1.0})
        journal.close()
        journal.emit({"type": "x", "ts": 2.0})
        assert len(read_events(tmp_path / "j")) == 2


class TestCorruptTolerance:
    def test_garbage_lines_are_skipped(self, tmp_path):
        journal = EventJournal(tmp_path / "j")
        journal.emit({"type": "good", "ts": 1.0})
        path = journal.path_for_pid(os.getpid())
        with path.open("a") as handle:
            handle.write('{"type": "truncat')  # torn write
            handle.write("\n\x00garbage\n")
            handle.write('"not-an-object"\n')
            handle.write("[1, 2, 3]\n")
        journal.emit({"type": "good", "ts": 2.0})
        events = read_events(tmp_path / "j")
        assert [e["type"] for e in events] == ["good", "good"]

    def test_missing_directory_reads_empty(self, tmp_path):
        assert read_events(tmp_path / "nope.jsonl") == []


class TestRotation:
    def test_rotates_at_max_bytes_and_reader_merges(self, tmp_path):
        journal = EventJournal(tmp_path / "j", max_bytes=200)
        for i in range(20):
            journal.emit({"type": "x", "ts": float(i), "pad": "p" * 40})
        files = sorted((tmp_path / "j").glob("events-*.jsonl"))
        assert len(files) > 1  # at least one rotation happened
        assert any(".r" in f.name for f in files)
        events = read_events(tmp_path / "j")
        assert len(events) == 20  # nothing lost across rotations
        assert [e["ts"] for e in events] == [float(i) for i in range(20)]
        # No single live file exceeds the cap by more than one record.
        for file in files:
            assert file.stat().st_size <= 200 + 100

    def test_multi_process_files_merge_by_timestamp(self, tmp_path):
        directory = tmp_path / "j"
        directory.mkdir()
        (directory / "events-111.jsonl").write_text(
            json.dumps({"type": "a", "ts": 2.0}) + "\n"
        )
        (directory / "events-222.jsonl").write_text(
            json.dumps({"type": "b", "ts": 1.0}) + "\n"
        )
        events = read_events(directory)
        assert [e["type"] for e in events] == ["b", "a"]


class TestCounts:
    def test_count_by_type_is_sorted(self):
        events = [{"type": "b"}, {"type": "a"}, {"type": "b"}, {}]
        assert count_by_type(events) == {"(untyped)": 1, "a": 1, "b": 2}

    def test_event_counts_over_the_active_journal(self, tmp_path):
        assert obs.event_counts() == {}
        obs.configure(tmp_path / "j")
        with obs.span("root"):
            obs.emit("trial_finish", key="k")
            obs.emit("trial_finish", key="k2")
        assert obs.event_counts() == {"span": 1, "trial_finish": 2}

    def test_emitted_events_carry_the_active_trace(self, tmp_path):
        obs.configure(tmp_path / "j")
        with obs.span("root") as span:
            obs.emit("claim_lease", key="k")
        obs.emit("orphan")
        events = read_events(tmp_path / "j")
        claim = next(e for e in events if e["type"] == "claim_lease")
        orphan = next(e for e in events if e["type"] == "orphan")
        assert claim["trace_id"] == span.trace_id
        assert claim["span_id"] == span.span_id
        assert "trace_id" not in orphan
