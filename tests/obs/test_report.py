"""Report reconstruction: trace trees, coverage, critical path, rollups, CLI."""

import pytest

import repro.obs as obs
from repro.obs.report import (
    build_traces,
    crash_taxonomy,
    main,
    phase_rollup,
    render_report,
    slowest_spans,
    span_tree_payload,
    trial_summary,
    worker_lanes,
)


def _span(trace, sid, parent, name, ts, dur, status="ok", attrs=None, pid=1):
    return {
        "type": "span",
        "trace_id": trace,
        "span_id": sid,
        "parent_id": parent,
        "name": name,
        "ts": ts,
        "duration": dur,
        "status": status,
        "attrs": attrs or {},
        "pid": pid,
    }


class TestBuildTraces:
    def test_groups_by_trace_and_links_children(self):
        events = [
            _span("t1", "a", None, "root", 0.0, 10.0),
            _span("t1", "b", "a", "late-child", 6.0, 2.0),
            _span("t1", "c", "a", "early-child", 1.0, 2.0),
            _span("t2", "d", None, "other", 0.0, 1.0),
            {"type": "trial_finish", "ts": 0.5},  # non-span events ignored
        ]
        traces = build_traces(events)
        assert set(traces) == {"t1", "t2"}
        root = traces["t1"].root
        assert root.name == "root"
        # Children sorted by start time.
        assert [c.name for c in root.children] == ["early-child", "late-child"]

    def test_orphans_are_promoted_to_roots(self):
        events = [
            _span("t1", "a", "lost-parent", "orphan", 0.0, 2.0),
            _span("t1", "b", "a", "child-of-orphan", 0.5, 1.0),
        ]
        tree = build_traces(events)["t1"]
        assert [r.name for r in tree.roots] == ["orphan"]
        assert tree.root.children[0].name == "child-of-orphan"

    def test_dominant_root_is_the_longest_top_level_span(self):
        events = [
            _span("t1", "a", None, "short", 0.0, 1.0),
            _span("t1", "b", None, "long", 0.5, 5.0),
        ]
        assert build_traces(events)["t1"].root.name == "long"


class TestCoverage:
    def test_union_of_child_intervals_over_root(self):
        events = [
            _span("t1", "r", None, "root", 0.0, 10.0),
            _span("t1", "a", "r", "a", 0.0, 4.0),
            _span("t1", "b", "r", "b", 2.0, 4.0),  # overlaps a: union [0, 6]
            _span("t1", "c", "r", "c", 7.0, 2.0),  # disjoint: union += 2
        ]
        assert build_traces(events)["t1"].coverage() == pytest.approx(0.8)

    def test_children_clip_to_the_root_window(self):
        events = [
            _span("t1", "r", None, "root", 5.0, 2.0),
            _span("t1", "a", "r", "a", 0.0, 100.0),  # sloppy clock: clipped
        ]
        assert build_traces(events)["t1"].coverage() == pytest.approx(1.0)

    def test_childless_or_zero_duration_root_is_zero(self):
        assert build_traces([_span("t", "r", None, "r", 0.0, 1.0)])["t"].coverage() == 0.0
        assert build_traces([_span("t", "r", None, "r", 0.0, 0.0)])["t"].coverage() == 0.0


class TestCriticalPath:
    def test_descends_the_largest_child(self):
        events = [
            _span("t1", "r", None, "root", 0.0, 10.0),
            _span("t1", "a", "r", "small", 0.0, 2.0),
            _span("t1", "b", "r", "big", 2.0, 7.0),
            _span("t1", "c", "b", "leaf", 2.0, 6.0),
        ]
        path = build_traces(events)["t1"].critical_path()
        assert [n.name for n in path] == ["root", "big", "leaf"]


class TestRollups:
    def test_phase_rollup_totals_and_self_time(self):
        events = [
            _span("t1", "r", None, "phase", 0.0, 10.0),
            _span("t1", "a", "r", "work", 0.0, 3.0),
            _span("t1", "b", "r", "work", 3.0, 4.0, status="error"),
        ]
        rollup = phase_rollup(build_traces(events)["t1"].walk())
        assert rollup[0]["name"] == "phase"
        assert rollup[0]["self"] == pytest.approx(3.0)  # 10 - (3 + 4)
        work = rollup[1]
        assert work == {"name": "work", "count": 2, "total": 7.0, "self": 7.0, "errors": 1}

    def test_slowest_spans(self):
        events = [
            _span("t1", "r", None, "root", 0.0, 10.0),
            _span("t1", "a", "r", "a", 0.0, 1.0),
            _span("t1", "b", "r", "b", 0.0, 5.0),
        ]
        tree = build_traces(events)["t1"]
        assert [s.name for s in slowest_spans(tree.walk(), 2)] == ["root", "b"]

    def test_crash_taxonomy_splits_trials_from_contained_errors(self):
        events = [
            {"type": "trial_finish", "status": "crashed", "exc_class": "ValueError"},
            {"type": "trial_finish", "status": "crashed", "exc_class": "ValueError"},
            {"type": "trial_finish", "status": "ok"},
            {"type": "error", "exc_class": "OSError"},
            {"type": "error"},
        ]
        taxonomy = crash_taxonomy(events)
        assert taxonomy["crashed_trials"] == {"ValueError": 2}
        assert taxonomy["contained_errors"] == {"OSError": 1, "(unknown)": 1}

    def test_trial_summary_counts_statuses(self):
        events = [
            {"type": "trial_finish", "status": "ok"},
            {"type": "trial_finish", "status": "cached"},
            {"type": "trial_finish", "status": "cached"},
            {"type": "trial_finish", "status": "crashed"},
        ]
        assert trial_summary(events) == {"total": 4, "ok": 1, "cached": 2, "crashed": 1}


class TestWorkerLanes:
    def test_lanes_by_worker_attr_with_pid_fallback(self):
        events = [
            _span("t1", "r", None, "root", 0.0, 10.0, pid=42),
            _span("t1", "a", "r", "cell", 0.0, 1.0, attrs={"worker": "w0"}),
            _span("t1", "b", "r", "cell", 1.0, 1.0, attrs={"worker": "w1"}),
            _span("t1", "c", "r", "cell", 2.0, 1.0, attrs={"worker": "w0"}),
        ]
        lanes = worker_lanes(build_traces(events)["t1"])
        assert list(lanes) == ["pid-42", "w0", "w1"]
        assert len(lanes["w0"]) == 2


class TestPayload:
    def test_span_tree_payload_nests_children(self):
        events = [
            _span("t1", "r", None, "root", 0.0, 10.0),
            _span("t1", "a", "r", "child", 1.0, 2.0, attrs={"k": "v"}),
        ]
        payload = span_tree_payload(build_traces(events)["t1"].root)
        assert payload["name"] == "root"
        assert payload["children"][0]["name"] == "child"
        assert payload["children"][0]["attrs"] == {"k": "v"}
        assert payload["children"][0]["children"] == []


class TestRenderAndCli:
    def _populate(self, journal):
        obs.configure(journal)
        with obs.span("build", attrs={"worker": "w0"}):
            with obs.span("cell", attrs={"worker": "w0"}):
                obs.emit("trial_finish", status="ok", key="k1")
            with obs.span("cell", attrs={"worker": "w1"}):
                obs.emit(
                    "trial_finish", status="crashed", key="k2", exc_class="RuntimeError"
                )

    def test_render_report_covers_every_section(self, tmp_path):
        journal = tmp_path / "j"
        self._populate(journal)
        text = render_report(journal)
        assert "event counts:" in text
        assert "trials: 2 total, 1 ok, 0 cached, 1 crashed" in text
        assert "trace tree:" in text
        assert "critical path:" in text
        assert "fleet timeline (2 lanes):" in text
        assert "phase rollup:" in text
        assert "slowest spans:" in text
        assert "crash taxonomy:" in text
        assert "RuntimeError" in text

    def test_render_report_without_spans(self, tmp_path):
        obs.configure(tmp_path / "j")
        obs.emit("trial_finish", status="ok")
        assert "no spans recorded" in render_report(tmp_path / "j")

    def test_render_report_unknown_trace_raises(self, tmp_path):
        journal = tmp_path / "j"
        self._populate(journal)
        with pytest.raises(KeyError):
            render_report(journal, trace_id="nope")

    def test_max_depth_elides_deep_children(self, tmp_path):
        journal = tmp_path / "j"
        self._populate(journal)
        text = render_report(journal, max_depth=1)
        assert "… 2 children" in text

    def test_cli_report_prints_the_rollup(self, tmp_path, capsys):
        journal = tmp_path / "j"
        self._populate(journal)
        assert main(["report", str(journal)]) == 0
        output = capsys.readouterr().out
        assert "trace tree:" in output
        assert "build" in output

    def test_cli_rejects_missing_journal_and_unknown_trace(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["report", str(tmp_path / "missing")])
        journal = tmp_path / "j"
        self._populate(journal)
        with pytest.raises(SystemExit):
            main(["report", str(journal), "--trace", "nope"])
        capsys.readouterr()
