"""The issue's acceptance scenario: a traced two-worker coordinated build.

One root span, two :class:`WorkCoordinator` workers on threads sharing one
store, a crashing cell, then a resumed run — the journal alone must
reconstruct a single trace tree covering ≥ 95% of the build's wall time,
with per-worker lanes and a recorded status for every trial.
"""

import threading
import time

import repro.obs as obs
from repro.execution import ResultStore, WorkCoordinator
from repro.obs.report import (
    build_traces,
    render_report,
    trial_summary,
    worker_lanes,
)

N_CELLS = 16
CRASH_SEED = 3


def _cells():
    return [{"dataset": f"D{i}", "algorithm": "alg", "seed": i} for i in range(N_CELLS)]


def _objective(cell):
    time.sleep(0.01)  # a real (if tiny) unit of work, so spans have width
    if cell["seed"] == CRASH_SEED:
        raise RuntimeError("injected crash")
    return cell["seed"] / 7.0


class TestTracedFleetBuild:
    def test_journal_reconstructs_the_whole_build(self, tmp_path):
        journal = tmp_path / "journal"
        obs.configure(journal)
        store_path = tmp_path / "store"
        coordinators = [
            WorkCoordinator(ResultStore(store_path), worker_index=i, n_workers=2)
            for i in range(2)
        ]
        cells = _cells()

        def worker(coordinator, context):
            # Threads do not inherit contextvars: each worker re-attaches the
            # builder's root context, exactly like a forked fleet member
            # picking up REPRO_TRACE.
            with obs.attach(context):
                coordinator.run("ctx", cells, _objective, crash_score=-1.0)

        with obs.span("corpus.build") as root:
            threads = [
                threading.Thread(target=worker, args=(c, root.context))
                for c in coordinators
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # A third worker resumes the finished build: every cell is a
            # fleet cache hit and must be accounted as such.
            with obs.attach(root.context):
                resumed = WorkCoordinator(ResultStore(store_path))
                resumed.run("ctx", cells, _objective, crash_score=-1.0)

        events = obs.read_events(journal)
        traces = build_traces(events)
        assert set(traces) == {root.trace_id}  # one trace covers everything
        tree = traces[root.trace_id]
        assert tree.root.name == "corpus.build"

        # >= 95% of the build's wall time is accounted for by its children.
        assert tree.coverage() >= 0.95

        # Per-worker lanes: both fleet workers plus the resume pass.
        lanes = worker_lanes(tree)
        assert {"w0", "w1"}.issubset(lanes)
        assert all(spans for spans in lanes.values())

        # Every trial has a recorded status; the fleet as a whole executed
        # each cell at least once (lease races may retry, never lose).
        summary = trial_summary(events)
        trials = [e for e in events if e.get("type") == "trial_finish"]
        executed_keys = {
            e["key"] for e in trials if e["status"] in ("ok", "crashed")
        }
        cached_keys = {e["key"] for e in trials if e["status"] == "cached"}
        all_keys = {WorkCoordinator.cell_key(cell) for cell in cells}
        assert executed_keys == all_keys
        assert cached_keys == all_keys  # the resume saw every cell as cached
        assert summary["crashed"] >= 1
        assert summary["ok"] >= N_CELLS - summary["crashed"]
        assert summary["cached"] >= N_CELLS

        # The fleet protocol itself is visible: one lease per executed cell.
        leases = [e for e in events if e.get("type") == "claim_lease"]
        assert {e["key"] for e in leases} == all_keys
        assert {e["worker"] for e in leases}.issubset({"w0", "w1"})

        # The crash is classified, with the exception class preserved.
        (crash,) = [e for e in trials if e["status"] == "crashed"][:1]
        assert crash["exc_class"] == "RuntimeError"

        # And the rendered report shows the whole story in one page.
        text = render_report(journal)
        assert "corpus.build" in text
        assert "coordinator.run" in text
        assert "fleet timeline" in text
        assert " w0 " in text and " w1 " in text
        assert "crash taxonomy:" in text
        assert "RuntimeError" in text
        assert f"{summary['total']} total" in text
