"""Satellite: contained failures become structured ``error`` events.

Every ``except Exception`` swallow site now reports through
``obs.error_event`` — these tests pin the two that matter most operationally
(a poisoned serve-loop batch, a crashed fleet worker) plus the engine's
per-exception-class crash taxonomy.
"""

import pytest

import repro.obs as obs
from repro.datasets import make_gaussian_clusters
from repro.execution import EvaluationEngine, ResultStore, WorkCoordinator
from repro.service import ModelRegistry
from repro.service.dispatcher import RecommendationDispatcher
from repro.service.http import ServiceError, dataset_from_json


def _errors(journal, site=None):
    errors = [e for e in obs.read_events(journal) if e.get("type") == "error"]
    if site is not None:
        errors = [e for e in errors if e.get("site") == site]
    return errors


class TestPoisonedServeLoop:
    def test_batch_crash_leaves_an_error_event_and_the_loop_survives(
        self, tmp_path, monkeypatch
    ):
        journal = tmp_path / "j"
        obs.configure(journal)
        dispatcher = RecommendationDispatcher(ModelRegistry(tmp_path / "reg"))
        dataset = make_gaussian_clusters(
            "poison", n_records=40, n_numeric=3, n_categorical=0, n_classes=2,
            random_state=0,
        )
        monkeypatch.setattr(
            dispatcher,
            "_process_batch_inner",
            lambda batch: (_ for _ in ()).throw(RuntimeError("poisoned batch")),
        )
        try:
            with pytest.raises(RuntimeError, match="poisoned batch"):
                dispatcher.recommend(dataset, timeout=30.0)
            # The serve loop survived the poison: a second request still gets
            # an answer (here: the same injected crash, not a hang).
            with pytest.raises(RuntimeError, match="poisoned batch"):
                dispatcher.recommend(dataset, timeout=30.0)
        finally:
            dispatcher.close()
        events = _errors(journal, "dispatcher.serve_loop")
        assert len(events) == 2
        assert events[0]["exc_class"] == "RuntimeError"
        assert "poisoned batch" in events[0]["message"]

    def test_malformed_dataset_payload_is_an_error_event(self, tmp_path):
        obs.configure(tmp_path / "j")
        with pytest.raises(ServiceError):
            dataset_from_json({"target": [0, 1], "numeric": [["x"], ["y"]]})
        (event,) = _errors(tmp_path / "j", "http.dataset")
        assert event["exc_class"] == "ValueError"


class TestCrashedFleetWorker:
    def test_crashed_cell_leaves_error_and_crashed_trial_events(self, tmp_path):
        journal = tmp_path / "j"
        obs.configure(journal)

        def objective(cell):
            if cell["seed"] == 1:
                raise ValueError("bad cell")
            return 1.0

        cells = [{"dataset": f"D{i}", "seed": i} for i in range(3)]
        coordinator = WorkCoordinator(ResultStore(tmp_path / "s"))
        coordinator.run("ctx", cells, objective, crash_score=-1.0)

        (error,) = _errors(journal, "coordinator.cell")
        assert error["exc_class"] == "ValueError"
        assert "bad cell" in error["message"]
        trials = [
            e for e in obs.read_events(journal) if e.get("type") == "trial_finish"
        ]
        by_status = {e["status"] for e in trials}
        assert by_status == {"ok", "crashed"}
        (crashed,) = [e for e in trials if e["status"] == "crashed"]
        assert crashed["exc_class"] == "ValueError"
        assert crashed["score"] == -1.0
        assert crashed["worker"] == "w0"


class TestEngineCrashTaxonomy:
    def test_stats_count_crashes_per_exception_class(self):
        def objective(config):
            if config["x"] < 2:
                raise ValueError("small")
            if config["x"] == 2:
                raise TypeError("two")
            return float(config["x"])

        engine = EvaluationEngine(objective, crash_score=-1.0)
        engine.evaluate_many([{"x": i} for i in range(4)])
        taxonomy = engine.stats.as_dict()["crash_taxonomy"]
        assert taxonomy == {"ValueError": 2, "TypeError": 1}
        assert engine.stats.n_crashes == 3

    def test_taxonomy_matches_the_journal_when_tracing(self, tmp_path):
        journal = tmp_path / "j"
        obs.configure(journal)

        def objective(config):
            raise KeyError(config["x"])

        engine = EvaluationEngine(objective, crash_score=0.0)
        engine.evaluate_many([{"x": 1}, {"x": 2}])
        from repro.obs.report import crash_taxonomy

        taxonomy = crash_taxonomy(obs.read_events(journal))
        assert taxonomy["crashed_trials"] == {"KeyError": 2}
        assert engine.stats.crash_classes == {"KeyError": 2}
