"""Span identity, nesting, parent resolution and header round-trips."""

import os

import pytest

import repro.obs as obs
from repro.obs import NOOP_SPAN, SpanContext, parse_header
from repro.obs.trace import new_id


def _spans(journal):
    return [e for e in obs.read_events(journal) if e.get("type") == "span"]


class TestDisabled:
    def test_span_is_the_shared_noop_singleton(self):
        assert obs.span("anything") is NOOP_SPAN
        assert obs.span("other") is NOOP_SPAN

    def test_noop_span_is_inert(self):
        with obs.span("x") as span:
            span.set_attribute("k", "v")
            assert span.context is None
        assert obs.current_context() is None
        assert obs.current_span() is None

    def test_enabled_and_journal_dir_reflect_state(self, tmp_path):
        assert obs.enabled() is False
        assert obs.journal_dir() is None
        obs.configure(tmp_path / "j")
        assert obs.enabled() is True
        assert obs.journal_dir() == tmp_path / "j"
        obs.disable()
        assert obs.enabled() is False

    def test_emit_and_error_event_are_silent_noops(self, tmp_path):
        obs.emit("trial_finish", key="k")
        obs.error_event("site", ValueError("x"))
        assert not list(tmp_path.glob("**/*.jsonl"))

    def test_configure_enabled_false_stays_off(self, tmp_path):
        obs.configure(tmp_path / "j", enabled=False)
        assert obs.enabled() is False
        assert obs.span("x") is NOOP_SPAN


class TestSpanIdentity:
    def test_root_span_has_fresh_trace_and_no_parent(self, tmp_path):
        journal = tmp_path / "j"
        obs.configure(journal)
        with obs.span("root") as span:
            assert span.trace_id and span.span_id
            assert span.parent_id is None
            assert obs.current_context() == span.context
            assert obs.current_span() is span
        assert obs.current_context() is None
        (event,) = _spans(journal)
        assert event["name"] == "root"
        assert event["trace_id"] == span.trace_id
        assert event["span_id"] == span.span_id
        assert event["parent_id"] is None
        assert event["status"] == "ok"
        assert event["pid"] == os.getpid()

    def test_nested_spans_share_trace_and_link_parent(self, tmp_path):
        obs.configure(tmp_path / "j")
        with obs.span("root") as root:
            with obs.span("child") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
                with obs.span("grandchild") as grand:
                    assert grand.parent_id == child.span_id
            # After the child closes, new spans parent under the root again.
            with obs.span("sibling") as sibling:
                assert sibling.parent_id == root.span_id

    def test_exception_marks_span_error_with_exc_class(self, tmp_path):
        journal = tmp_path / "j"
        obs.configure(journal)
        with pytest.raises(RuntimeError):
            with obs.span("work"):
                raise RuntimeError("boom")
        (event,) = _spans(journal)
        assert event["status"] == "error"
        assert event["attrs"]["exc_class"] == "RuntimeError"

    def test_attributes_land_in_the_span_event(self, tmp_path):
        journal = tmp_path / "j"
        obs.configure(journal)
        with obs.span("work", attrs={"a": 1}) as span:
            span.set_attribute("b", "two")
        (event,) = _spans(journal)
        assert event["attrs"] == {"a": 1, "b": "two"}
        assert event["duration"] >= 0.0


class TestParentResolution:
    def test_explicit_parent_beats_active_span(self, tmp_path):
        obs.configure(tmp_path / "j")
        remote = SpanContext(new_id(), new_id())
        with obs.span("active"):
            with obs.span("child", parent=remote) as child:
                assert child.trace_id == remote.trace_id
                assert child.parent_id == remote.span_id

    def test_span_object_accepted_as_parent(self, tmp_path):
        obs.configure(tmp_path / "j")
        with obs.span("a") as a:
            pass
        with obs.span("b", parent=a) as b:
            assert b.trace_id == a.trace_id
            assert b.parent_id == a.span_id

    def test_ambient_env_trace_parents_orphan_roots(self, tmp_path, monkeypatch):
        """A forked worker's first span lands under the REPRO_TRACE parent."""
        obs.configure(tmp_path / "j")
        ambient = SpanContext(new_id(), new_id())
        monkeypatch.setenv(obs.ENV_TRACE, ambient.header())
        with obs.span("worker-root") as span:
            assert span.trace_id == ambient.trace_id
            assert span.parent_id == ambient.span_id
        # An active span still wins over the ambient env.
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert inner.parent_id == outer.span_id


class TestHeader:
    def test_header_round_trip(self):
        context = SpanContext(new_id(), new_id())
        assert parse_header(context.header()) == context

    @pytest.mark.parametrize("junk", [None, "", "   ", "nodash", "-x", "x-", 7])
    def test_junk_headers_parse_to_none(self, junk):
        assert parse_header(junk) is None

    def test_trace_header_reflects_active_span(self, tmp_path):
        obs.configure(tmp_path / "j")
        assert obs.trace_header() is None
        with obs.span("root") as span:
            assert obs.trace_header() == f"{span.trace_id}-{span.span_id}"
        assert obs.trace_header() is None


class TestAttach:
    def test_attach_none_is_a_transparent_block(self, tmp_path):
        obs.configure(tmp_path / "j")
        with obs.span("root") as root:
            with obs.attach(None):
                with obs.span("child") as child:
                    assert child.parent_id == root.span_id

    def test_attach_establishes_the_parent(self, tmp_path):
        obs.configure(tmp_path / "j")
        context = SpanContext(new_id(), new_id())
        with obs.attach(context):
            assert obs.current_context() == context
            with obs.span("child") as child:
                assert child.trace_id == context.trace_id
                assert child.parent_id == context.span_id
        assert obs.current_context() is None

    def test_attach_header_is_attach_of_parsed_header(self, tmp_path):
        obs.configure(tmp_path / "j")
        context = SpanContext(new_id(), new_id())
        with obs.attach_header(context.header()):
            assert obs.current_context() == context
        with obs.attach_header("garbage"):
            assert obs.current_context() is None

    def test_propagation_env_snapshots_config_and_trace(self, tmp_path):
        obs.configure(tmp_path / "j")
        with obs.span("root") as span:
            env = obs.propagation_env()
        assert env[obs.ENV_DIR] == str(tmp_path / "j")
        assert env[obs.ENV_ENABLED] == "1"
        assert env[obs.ENV_TRACE] == f"{span.trace_id}-{span.span_id}"
        # Outside any span there is nothing to propagate but the config.
        assert obs.ENV_TRACE not in obs.propagation_env()
