"""Tests for hyperparameter spaces (sampling, mutation, encoding, conditions)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpo.space import (
    BoolParam,
    CategoricalParam,
    Condition,
    ConfigSpace,
    FloatParam,
    IntParam,
)


@pytest.fixture()
def mixed_space() -> ConfigSpace:
    return ConfigSpace(
        [
            IntParam("n", 1, 50),
            FloatParam("lr", 1e-4, 1.0, log=True),
            CategoricalParam("kind", ["a", "b", "c"]),
            BoolParam("flag"),
        ]
    )


class TestParameters:
    def test_float_bounds_validation(self):
        with pytest.raises(ValueError):
            FloatParam("x", 1.0, 1.0)
        with pytest.raises(ValueError):
            FloatParam("x", 0.0, 1.0, log=True)

    def test_int_bounds_validation(self):
        with pytest.raises(ValueError):
            IntParam("x", 5, 5)

    def test_categorical_needs_choices(self):
        with pytest.raises(ValueError):
            CategoricalParam("x", [])

    def test_float_unit_roundtrip(self):
        param = FloatParam("x", 2.0, 10.0)
        for value in (2.0, 5.0, 10.0):
            assert param.from_unit(param.to_unit(value)) == pytest.approx(value)

    def test_log_float_unit_roundtrip(self):
        param = FloatParam("x", 1e-3, 1e1, log=True)
        for value in (1e-3, 1e-1, 1e1):
            assert param.from_unit(param.to_unit(value)) == pytest.approx(value, rel=1e-9)

    def test_int_grid_is_unique_sorted_in_range(self):
        grid = IntParam("x", 1, 10).grid(5)
        assert grid == sorted(set(grid))
        assert all(1 <= v <= 10 for v in grid)

    def test_categorical_grid_returns_all_choices(self):
        assert CategoricalParam("x", ["a", "b"]).grid(17) == ["a", "b"]

    def test_bool_param_choices(self):
        assert set(BoolParam("x").choices) == {True, False}

    def test_mutation_stays_in_domain(self):
        rng = np.random.default_rng(0)
        int_param = IntParam("x", 1, 9)
        float_param = FloatParam("y", 0.0, 1.0)
        for _ in range(100):
            assert 1 <= int_param.mutate(5, rng) <= 9
            assert 0.0 <= float_param.mutate(0.5, rng) <= 1.0

    def test_categorical_mutation_changes_value_when_possible(self):
        rng = np.random.default_rng(0)
        param = CategoricalParam("x", ["a", "b"])
        assert param.mutate("a", rng) == "b"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            IntParam("", 1, 2)


class TestConfigSpace:
    def test_sample_is_valid(self, mixed_space):
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert mixed_space.validate(mixed_space.sample(rng))

    def test_duplicate_param_rejected(self):
        with pytest.raises(ValueError):
            ConfigSpace([IntParam("a", 1, 2), IntParam("a", 1, 3)])

    def test_default_configuration_valid(self, mixed_space):
        assert mixed_space.validate(mixed_space.default_configuration())

    def test_vector_roundtrip(self, mixed_space):
        rng = np.random.default_rng(1)
        config = mixed_space.sample(rng)
        roundtrip = mixed_space.from_vector(mixed_space.to_vector(config))
        assert roundtrip["kind"] == config["kind"]
        assert roundtrip["flag"] == config["flag"]
        assert roundtrip["n"] == config["n"]
        assert roundtrip["lr"] == pytest.approx(config["lr"], rel=1e-6)

    def test_crossover_takes_values_from_parents(self, mixed_space):
        rng = np.random.default_rng(2)
        a, b = mixed_space.sample(rng), mixed_space.sample(rng)
        child = mixed_space.crossover(a, b, rng)
        for name in mixed_space.names:
            assert child[name] in (a[name], b[name])

    def test_mutate_returns_valid_config(self, mixed_space):
        rng = np.random.default_rng(3)
        config = mixed_space.sample(rng)
        mutated = mixed_space.mutate(config, rng, mutation_rate=1.0)
        assert mixed_space.validate(mutated)

    def test_grid_respects_max_configs(self, mixed_space):
        grid = mixed_space.grid(resolution=4, max_configs=20)
        assert 0 < len(grid) <= 20
        assert all(mixed_space.validate(c) for c in grid)

    def test_validate_rejects_missing_and_out_of_range(self, mixed_space):
        config = mixed_space.default_configuration()
        assert not mixed_space.validate({k: v for k, v in config.items() if k != "n"})
        bad = dict(config)
        bad["n"] = 10_000
        assert not mixed_space.validate(bad)

    def test_condition_inactive_param_gets_default(self):
        space = ConfigSpace(
            [
                CategoricalParam("solver", ["sgd", "adam"]),
                FloatParam("momentum", 0.0, 1.0),
            ]
        )
        space.add_condition("momentum", Condition("solver", ("sgd",)))
        rng = np.random.default_rng(0)
        for _ in range(30):
            config = space.sample(rng)
            if config["solver"] != "sgd":
                assert config["momentum"] == space["momentum"].default()

    def test_condition_on_unknown_param_raises(self, mixed_space):
        with pytest.raises(KeyError):
            mixed_space.add_condition("nope", Condition("kind", ("a",)))


class TestSpaceProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_sampling_always_within_bounds(self, seed):
        space = ConfigSpace(
            [IntParam("i", -5, 17), FloatParam("f", 0.5, 2.0), CategoricalParam("c", [1, 2, 3])]
        )
        config = space.sample(np.random.default_rng(seed))
        assert -5 <= config["i"] <= 17
        assert 0.5 <= config["f"] <= 2.0
        assert config["c"] in (1, 2, 3)

    @given(st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_unit_encoding_is_monotone(self, u):
        param = FloatParam("x", 1.0, 100.0, log=True)
        value = param.from_unit(u)
        assert 1.0 <= value <= 100.0
        assert param.to_unit(value) == pytest.approx(u, abs=1e-9)
