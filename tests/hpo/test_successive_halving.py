"""Tests for successive halving and Hyperband."""

import numpy as np
import pytest

from repro.hpo import Budget, HPOProblem, Hyperband, RandomSearch, SuccessiveHalving
from repro.hpo.space import ConfigSpace, FloatParam


def space() -> ConfigSpace:
    return ConfigSpace([FloatParam("x", -5.0, 5.0), FloatParam("y", -5.0, 5.0)])


def objective(config: dict) -> float:
    """Maximum 0 at (2, -1); fidelity adds noise that shrinks as budget grows."""
    base = -((config["x"] - 2.0) ** 2) - (config["y"] + 1.0) ** 2
    fidelity = config.get("__budget__", None)
    if fidelity is None:
        return base
    rng = np.random.default_rng(int(abs(hash((round(config["x"], 3), round(config["y"], 3))))) % 2**31)
    noise = rng.normal(0.0, 1.0 / float(fidelity))
    return base + noise


class TestSuccessiveHalving:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SuccessiveHalving(n_configurations=1)
        with pytest.raises(ValueError):
            SuccessiveHalving(eta=1)
        with pytest.raises(ValueError):
            SuccessiveHalving(min_fidelity=10.0, max_fidelity=1.0)

    def test_finds_good_solution(self):
        problem = HPOProblem(space(), objective)
        optimizer = SuccessiveHalving(n_configurations=27, eta=3, random_state=0)
        result = optimizer.optimize(problem, Budget(max_evaluations=100))
        assert result.best_score > -2.0

    def test_fidelity_key_stripped_from_best_config(self):
        problem = HPOProblem(space(), objective)
        result = SuccessiveHalving(n_configurations=9, random_state=0).optimize(
            problem, Budget(max_evaluations=30)
        )
        assert "__budget__" not in result.best_config
        assert set(result.best_config) == {"x", "y"}

    def test_rungs_evaluate_fewer_configs(self):
        problem = HPOProblem(space(), objective)
        result = SuccessiveHalving(n_configurations=9, eta=3, random_state=0).optimize(
            problem, Budget(max_evaluations=200)
        )
        by_rung = {}
        for trial in result.trials:
            by_rung.setdefault(trial.iteration, 0)
            by_rung[trial.iteration] += 1
        rungs = sorted(by_rung)
        counts = [by_rung[r] for r in rungs]
        assert counts == sorted(counts, reverse=True)

    def test_respects_budget(self):
        problem = HPOProblem(space(), objective)
        result = SuccessiveHalving(n_configurations=27, random_state=0).optimize(
            problem, Budget(max_evaluations=10)
        )
        assert result.n_evaluations <= 10

    def test_without_fidelity_key(self):
        problem = HPOProblem(space(), lambda c: -abs(c["x"]))
        optimizer = SuccessiveHalving(n_configurations=8, fidelity_key=None, random_state=0)
        result = optimizer.optimize(problem, Budget(max_evaluations=40))
        assert abs(result.best_config["x"]) < 3.0


class TestHyperband:
    def test_finds_good_solution(self):
        problem = HPOProblem(space(), objective)
        result = Hyperband(n_configurations=27, eta=3, random_state=0).optimize(
            problem, Budget(max_evaluations=150)
        )
        assert result.best_score > -2.0

    def test_competitive_with_random_search(self):
        budget = 80
        hb = Hyperband(n_configurations=27, eta=3, random_state=0).optimize(
            HPOProblem(space(), objective), Budget(max_evaluations=budget)
        )
        rs = RandomSearch(random_state=0).optimize(
            HPOProblem(space(), objective), Budget(max_evaluations=budget)
        )
        assert hb.best_score >= rs.best_score - 1.0

    def test_respects_budget_and_strips_fidelity(self):
        result = Hyperband(n_configurations=9, random_state=1).optimize(
            HPOProblem(space(), objective), Budget(max_evaluations=25)
        )
        assert result.n_evaluations <= 25
        assert "__budget__" not in result.best_config
