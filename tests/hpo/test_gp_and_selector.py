"""Tests for the GP surrogate, the EI acquisition and the GA/BO selector."""

import time

import numpy as np
import pytest

from repro.hpo.bayesian import expected_improvement
from repro.hpo.genetic import GeneticAlgorithm
from repro.hpo.bayesian import BayesianOptimization
from repro.hpo.gp import GaussianProcess
from repro.hpo.selector import HPOTechniqueSelector, choose_hpo_technique
from repro.hpo.space import ConfigSpace, FloatParam


class TestGaussianProcess:
    def test_interpolates_training_points(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, size=(20, 2))
        y = np.sin(3 * X[:, 0]) + X[:, 1]
        gp = GaussianProcess(noise=1e-8).fit(X, y)
        mean, std = gp.predict(X)
        np.testing.assert_allclose(mean, y, atol=1e-2)
        assert np.all(std < 0.2)

    def test_uncertainty_grows_away_from_data(self):
        X = np.array([[0.5, 0.5]])
        y = np.array([1.0])
        gp = GaussianProcess().fit(X, y)
        _, std_near = gp.predict(np.array([[0.5, 0.5]]))
        _, std_far = gp.predict(np.array([[3.0, 3.0]]))
        assert std_far[0] > std_near[0]

    def test_rbf_kernel_option(self):
        X = np.random.default_rng(1).uniform(size=(15, 1))
        y = X[:, 0] ** 2
        gp = GaussianProcess(kernel="rbf").fit(X, y)
        mean = gp.predict(X, return_std=False)
        assert np.mean((mean - y) ** 2) < 0.05

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcess(kernel="laplace")

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcess().predict(np.zeros((1, 2)))

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit(np.zeros((3, 2)), np.zeros(4))

    def test_log_marginal_likelihood_finite(self):
        X = np.random.default_rng(2).uniform(size=(10, 2))
        y = X.sum(axis=1)
        gp = GaussianProcess().fit(X, y)
        assert np.isfinite(gp.log_marginal_likelihood())


class TestExpectedImprovement:
    def test_zero_std_no_improvement(self):
        ei = expected_improvement(np.array([0.0]), np.array([0.0]), best=1.0)
        assert ei[0] == pytest.approx(0.0, abs=1e-9)

    def test_higher_mean_higher_ei(self):
        ei = expected_improvement(np.array([0.0, 2.0]), np.array([1.0, 1.0]), best=1.0)
        assert ei[1] > ei[0]

    def test_higher_std_higher_ei_below_incumbent(self):
        ei = expected_improvement(np.array([0.0, 0.0]), np.array([0.1, 2.0]), best=1.0)
        assert ei[1] > ei[0]

    def test_non_negative(self):
        rng = np.random.default_rng(0)
        ei = expected_improvement(rng.normal(size=50), np.abs(rng.normal(size=50)), best=0.5)
        assert np.all(ei >= 0.0)


class TestSelector:
    def _space(self) -> ConfigSpace:
        return ConfigSpace([FloatParam("x", 0.0, 1.0)])

    def test_cheap_objective_selects_ga(self):
        selector = HPOTechniqueSelector(time_threshold=10.0, random_state=0)
        optimizer = selector.select(self._space(), lambda config: config["x"])
        assert isinstance(optimizer, GeneticAlgorithm)

    def test_expensive_objective_selects_bo(self):
        def slow(config):
            time.sleep(0.03)
            return config["x"]

        selector = HPOTechniqueSelector(time_threshold=0.01, n_probes=1, random_state=0)
        optimizer = selector.select(self._space(), slow)
        assert isinstance(optimizer, BayesianOptimization)

    def test_probe_tolerates_crashing_objective(self):
        selector = HPOTechniqueSelector(time_threshold=1.0, random_state=0)
        elapsed = selector.probe_evaluation_time(self._space(), lambda config: 1 / 0)
        assert elapsed >= 0.0

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            HPOTechniqueSelector(time_threshold=0.0)
        with pytest.raises(ValueError):
            HPOTechniqueSelector(n_probes=0)

    def test_convenience_wrapper(self):
        optimizer = choose_hpo_technique(self._space(), lambda config: config["x"])
        assert isinstance(optimizer, (GeneticAlgorithm, BayesianOptimization))
