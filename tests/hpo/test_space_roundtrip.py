"""Property-based round-trip tests for ConfigSpace sampling and unit encoding.

Two layers of coverage:

* hypothesis-driven properties over randomly-constructed ``FloatParam`` /
  ``IntParam`` domains (including log scales and floating-point edges), and
* exhaustive sweeps over every registry entry — classifier and regressor
  catalogues alike — checking that ``sample → to_unit → from_unit`` stays
  in-domain and is idempotent after the first clamping round trip.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpo.space import CategoricalParam, FloatParam, IntParam
from repro.learners import default_registry, default_regression_registry

ALL_SPECS = list(default_registry()) + list(default_regression_registry())
SPEC_IDS = [f"clf:{s.name}" for s in default_registry()] + [
    f"reg:{s.name}" for s in default_regression_registry()
]
SEEDS = [0, 7, 1234]


def _configs_equal(space, a: dict, b: dict) -> bool:
    """Exact equality for int/categorical values; ulp-tolerant for floats.

    Linear unit encodings of floats can drift by one ulp per decode (the
    clamping keeps them in-domain but not bit-stable), so float idempotence
    is asserted to machine precision rather than bit equality.
    """
    for name in space.names:
        va, vb = a[name], b[name]
        if isinstance(va, float) or isinstance(vb, float):
            if not np.isclose(va, vb, rtol=1e-12, atol=1e-15):
                return False
        elif va != vb:
            return False
    return True


class TestRegistrySpacesRoundTrip:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=SPEC_IDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_sample_is_valid_and_unit_encoded_in_cube(self, spec, seed):
        rng = np.random.default_rng(seed)
        for _ in range(5):
            config = spec.space.sample(rng)
            assert spec.space.validate(config), (spec.name, config)
            vector = spec.space.to_vector(config)
            assert vector.shape == (len(spec.space),)
            assert np.all(vector >= 0.0) and np.all(vector <= 1.0), (spec.name, config)

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=SPEC_IDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_encode_decode_is_idempotent_after_clamping(self, spec, seed):
        rng = np.random.default_rng(seed)
        space = spec.space
        for _ in range(5):
            config = space.sample(rng)
            once = space.from_vector(space.to_vector(config))
            assert space.validate(once), (spec.name, once)
            twice = space.from_vector(space.to_vector(once))
            assert _configs_equal(space, once, twice), (spec.name, once, twice)

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=SPEC_IDS)
    def test_default_configuration_round_trips(self, spec):
        space = spec.space
        default = space.default_configuration()
        assert space.validate(default)
        decoded = space.from_vector(space.to_vector(default))
        assert _configs_equal(space, decoded, space.from_vector(space.to_vector(decoded)))

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=SPEC_IDS)
    def test_mutation_stays_in_domain(self, spec):
        rng = np.random.default_rng(3)
        space = spec.space
        config = space.sample(rng)
        for _ in range(5):
            config = space.mutate(config, rng, mutation_rate=1.0)
            assert space.validate(config), (spec.name, config)


@st.composite
def float_params(draw):
    low = draw(st.floats(min_value=1e-6, max_value=1e3, allow_nan=False))
    span = draw(st.floats(min_value=1e-5, max_value=1e4, allow_nan=False))
    log = draw(st.booleans())
    return FloatParam("p", low, low + span, log=log)


@st.composite
def int_params(draw):
    low = draw(st.integers(min_value=1, max_value=10_000))
    span = draw(st.integers(min_value=1, max_value=10_000))
    log = draw(st.booleans())
    return IntParam("p", low, low + span, log=log)


class TestParamProperties:
    @settings(max_examples=60, deadline=None)
    @given(param=float_params(), u=st.floats(min_value=0.0, max_value=1.0))
    def test_float_unit_round_trip_in_domain_and_idempotent(self, param, u):
        value = param.from_unit(u)
        assert param.low <= value <= param.high
        unit = param.to_unit(value)
        assert 0.0 <= unit <= 1.0
        again = param.from_unit(unit)
        assert param.to_unit(again) == param.to_unit(param.from_unit(param.to_unit(again)))

    @settings(max_examples=60, deadline=None)
    @given(param=float_params(), value=st.floats(-1e6, 1e6, allow_nan=False))
    def test_float_to_unit_clamps_out_of_domain(self, param, value):
        unit = param.to_unit(value)
        assert 0.0 <= unit <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(param=int_params(), u=st.floats(min_value=0.0, max_value=1.0))
    def test_int_unit_round_trip_in_domain_and_idempotent(self, param, u):
        value = param.from_unit(u)
        assert param.low <= value <= param.high
        assert isinstance(value, int)
        once = param.from_unit(param.to_unit(value))
        twice = param.from_unit(param.to_unit(once))
        assert once == twice

    @settings(max_examples=40, deadline=None)
    @given(
        param=float_params(),
        u1=st.floats(min_value=0.0, max_value=1.0),
        u2=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_float_from_unit_is_monotone(self, param, u1, u2):
        lo, hi = sorted((u1, u2))
        assert param.from_unit(lo) <= param.from_unit(hi)

    @settings(max_examples=40, deadline=None)
    @given(choices=st.lists(st.integers(-50, 50), min_size=1, max_size=8, unique=True))
    def test_categorical_round_trip_every_choice(self, choices):
        param = CategoricalParam("c", choices)
        for choice in choices:
            assert param.from_unit(param.to_unit(choice)) == choice
