"""Property-based tests for ConfigSpace.join / prefixed / subspace / split_config.

The pipeline layer relies on three invariants of namespaced composition:

* **name round-trip** — ``join`` then ``subspace`` recovers every sub-space's
  parameter names, domains and conditions;
* **config round-trip** — ``split_config`` of a joined sample regroups into
  per-prefix configurations that each sub-space validates;
* **unit-encoding consistency** — ``to_vector``/``from_vector`` over a joined
  space agrees with the concatenation of the sub-space encodings.

Hypothesis drives the shapes (number of sub-spaces, parameter mix, conditions,
prefix strings); every joined space is also exercised through sampling,
mutation and crossover so the GA/BO operators are covered on namespaced
spaces.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpo.space import (
    BoolParam,
    CategoricalParam,
    ConfigSpace,
    Condition,
    FloatParam,
    IntParam,
)

# Prefixes must be non-empty and separator-free for an unambiguous round trip.
prefixes = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_-"),
    min_size=1,
    max_size=8,
)

param_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",), whitelist_characters="_"),
    min_size=1,
    max_size=6,
)


@st.composite
def sub_spaces(draw):
    """A small ConfigSpace mixing param kinds, optionally with a condition."""
    names = draw(st.lists(param_names, min_size=1, max_size=4, unique=True))
    space = ConfigSpace()
    for i, name in enumerate(names):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            low = draw(st.floats(min_value=-100, max_value=99, allow_nan=False))
            space.add(FloatParam(name, low, low + draw(st.floats(min_value=0.5, max_value=50))))
        elif kind == 1:
            low = draw(st.integers(min_value=-50, max_value=50))
            space.add(IntParam(name, low, low + draw(st.integers(min_value=1, max_value=40))))
        elif kind == 2:
            n_choices = draw(st.integers(min_value=1, max_value=4))
            space.add(CategoricalParam(name, [f"c{j}" for j in range(n_choices)]))
        else:
            space.add(BoolParam(name))
    # Optionally condition a later param on the first one.
    if len(names) >= 2 and draw(st.booleans()):
        parent = names[0]
        child = names[-1]
        parent_param = space[parent]
        if isinstance(parent_param, CategoricalParam):
            space.add_condition(child, Condition(parent, (parent_param.choices[0],)))
    return space


@st.composite
def joined_cases(draw):
    n = draw(st.integers(min_value=1, max_value=3))
    used_prefixes = draw(st.lists(prefixes, min_size=n, max_size=n, unique=True))
    spaces = [draw(sub_spaces()) for _ in range(n)]
    return list(zip(used_prefixes, spaces))


def _spaces_equivalent(a: ConfigSpace, b: ConfigSpace) -> bool:
    if a.names != b.names:
        return False
    for name in a.names:
        pa, pb = a[name], b[name]
        if type(pa) is not type(pb):
            return False
        if isinstance(pa, CategoricalParam):
            if pa.choices != pb.choices:
                return False
        else:
            if not (pa.low == pb.low and pa.high == pb.high and pa.log == pb.log):
                return False
        ca, cb = a.condition(name), b.condition(name)
        if (ca is None) != (cb is None):
            return False
        if ca is not None and (ca.parent != cb.parent or ca.values != cb.values):
            return False
    return True


class TestJoinRoundTrip:
    @given(joined_cases())
    @settings(max_examples=60, deadline=None)
    def test_subspace_inverts_join(self, parts):
        joined = ConfigSpace.join(parts)
        assert len(joined) == sum(len(space) for _, space in parts)
        for prefix, space in parts:
            recovered = joined.subspace(prefix)
            assert _spaces_equivalent(recovered, space)

    @given(joined_cases(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_split_config_regroups_valid_samples(self, parts, seed):
        joined = ConfigSpace.join(parts)
        config = joined.sample(np.random.default_rng(seed))
        assert joined.validate(config)
        groups = ConfigSpace.split_config(config)
        assert set(groups) == {prefix for prefix, _ in parts}
        for prefix, space in parts:
            sub = groups[prefix]
            assert set(sub) == set(space.names)
            assert space.validate(sub)

    @given(joined_cases(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_unit_encoding_concatenates_subspace_encodings(self, parts, seed):
        joined = ConfigSpace.join(parts)
        config = joined.sample(np.random.default_rng(seed))
        vector = joined.to_vector(config)
        assert vector.shape == (len(joined),)
        assert np.all(vector >= 0.0) and np.all(vector <= 1.0)
        offset = 0
        groups = ConfigSpace.split_config(config)
        for prefix, space in parts:
            sub_vector = space.to_vector(groups[prefix])
            assert np.array_equal(vector[offset:offset + len(space)], sub_vector)
            offset += len(space)
        decoded = joined.from_vector(vector)
        assert joined.validate(decoded)

    @given(joined_cases(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_ga_operators_stay_valid_on_joined_spaces(self, parts, seed):
        joined = ConfigSpace.join(parts)
        rng = np.random.default_rng(seed)
        a, b = joined.sample(rng), joined.sample(rng)
        assert joined.validate(joined.mutate(a, rng))
        assert joined.validate(joined.crossover(a, b, rng))

    @given(joined_cases())
    @settings(max_examples=40, deadline=None)
    def test_conditions_are_rewritten_into_the_namespace(self, parts):
        joined = ConfigSpace.join(parts)
        for prefix, space in parts:
            for name in space.names:
                condition = space.condition(name)
                joined_condition = joined.condition(f"{prefix}:{name}")
                if condition is None:
                    assert joined_condition is None
                else:
                    assert joined_condition.parent == f"{prefix}:{condition.parent}"
                    assert joined_condition.values == condition.values


class TestJoinEdgeCases:
    def test_duplicate_joined_names_raise(self):
        a = ConfigSpace([BoolParam("x")])
        b = ConfigSpace([BoolParam("x")])
        with pytest.raises(ValueError):
            ConfigSpace.join([("p", a), ("p", b)])

    def test_join_is_deep_copy(self):
        sub = ConfigSpace([CategoricalParam("c", ["a", "b"])])
        joined = ConfigSpace.join([("p", sub)])
        joined["p:c"].choices.append("mutated")
        assert sub["c"].choices == ["a", "b"]

    def test_split_config_keeps_unprefixed_keys_in_root_group(self):
        groups = ConfigSpace.split_config({"a:x": 1, "y": 2})
        assert groups == {"a": {"x": 1}, "": {"y": 2}}

    def test_subspace_of_missing_prefix_is_empty(self):
        joined = ConfigSpace.join([("p", ConfigSpace([BoolParam("x")]))])
        assert len(joined.subspace("q")) == 0

    def test_custom_separator(self):
        joined = ConfigSpace.join([("p", ConfigSpace([BoolParam("x")]))], sep="__")
        assert joined.names == ["p__x"]
        assert _spaces_equivalent(
            joined.subspace("p", sep="__"), ConfigSpace([BoolParam("x")])
        )
