"""Tests for the HPO optimizers (GS, RS, GA, BO) on analytic objectives."""

import numpy as np
import pytest

from repro.hpo import (
    BayesianOptimization,
    Budget,
    GeneticAlgorithm,
    GridSearch,
    HPOProblem,
    RandomSearch,
)
from repro.hpo.space import CategoricalParam, ConfigSpace, FloatParam, IntParam


def quadratic_space() -> ConfigSpace:
    return ConfigSpace([FloatParam("x", -5.0, 5.0), FloatParam("y", -5.0, 5.0)])


def quadratic_objective(config: dict) -> float:
    """Maximum 0.0 at (1, -2)."""
    return -((config["x"] - 1.0) ** 2) - (config["y"] + 2.0) ** 2


def mixed_space() -> ConfigSpace:
    return ConfigSpace(
        [
            IntParam("k", 1, 20),
            CategoricalParam("mode", ["good", "bad"]),
            FloatParam("scale", 0.1, 10.0, log=True),
        ]
    )


def mixed_objective(config: dict) -> float:
    bonus = 1.0 if config["mode"] == "good" else 0.0
    return bonus - abs(config["k"] - 7) * 0.05 - abs(np.log10(config["scale"]))


class TestBudget:
    def test_evaluation_budget(self):
        budget = Budget(max_evaluations=3)
        budget.start()
        assert not budget.exhausted()
        for _ in range(3):
            budget.record_evaluation()
        assert budget.exhausted()

    def test_time_budget(self):
        budget = Budget(time_limit=0.0)
        budget.start()
        assert budget.exhausted()

    def test_unlimited_budget(self):
        budget = Budget()
        budget.start()
        for _ in range(10):
            budget.record_evaluation()
        assert not budget.exhausted()


class TestProblem:
    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            HPOProblem(ConfigSpace(), lambda c: 0.0)

    def test_crashing_objective_scores_minus_inf(self):
        problem = HPOProblem(quadratic_space(), lambda c: 1 / 0)
        assert problem.evaluate({"x": 0, "y": 0}) == float("-inf")


class TestRandomSearch:
    def test_respects_evaluation_budget(self):
        problem = HPOProblem(quadratic_space(), quadratic_objective)
        result = RandomSearch(random_state=0).optimize(problem, Budget(max_evaluations=25))
        assert result.n_evaluations <= 26  # default config + budgeted samples
        assert result.best_score <= 0.0

    def test_improves_with_more_budget(self):
        problem = HPOProblem(quadratic_space(), quadratic_objective)
        small = RandomSearch(random_state=0).optimize(problem, Budget(max_evaluations=5))
        large = RandomSearch(random_state=0).optimize(problem, Budget(max_evaluations=200))
        assert large.best_score >= small.best_score

    def test_history_is_monotone(self):
        problem = HPOProblem(quadratic_space(), quadratic_objective)
        result = RandomSearch(random_state=1).optimize(problem, Budget(max_evaluations=30))
        history = result.history()
        assert np.all(np.diff(history) >= -1e-12)


class TestGridSearch:
    def test_covers_categorical_choices(self):
        problem = HPOProblem(mixed_space(), mixed_objective)
        result = GridSearch(resolution=3).optimize(problem, Budget(max_evaluations=200))
        assert result.best_config["mode"] == "good"

    def test_finds_near_optimum_of_quadratic(self):
        problem = HPOProblem(quadratic_space(), quadratic_objective)
        result = GridSearch(resolution=11).optimize(problem, Budget(max_evaluations=500))
        assert result.best_score > -1.0

    def test_budget_cuts_off_grid(self):
        problem = HPOProblem(quadratic_space(), quadratic_objective)
        result = GridSearch(resolution=21).optimize(problem, Budget(max_evaluations=10))
        assert result.n_evaluations <= 10


class TestGeneticAlgorithm:
    def test_finds_good_quadratic_solution(self):
        problem = HPOProblem(quadratic_space(), quadratic_objective)
        optimizer = GeneticAlgorithm(population_size=20, n_generations=10, random_state=0)
        result = optimizer.optimize(problem, Budget(max_evaluations=200))
        assert result.best_score > -0.5
        assert abs(result.best_config["x"] - 1.0) < 1.0

    def test_beats_random_search_on_same_budget(self):
        problem = HPOProblem(quadratic_space(), quadratic_objective)
        budget_size = 120
        ga = GeneticAlgorithm(population_size=15, n_generations=20, random_state=0).optimize(
            HPOProblem(quadratic_space(), quadratic_objective), Budget(max_evaluations=budget_size)
        )
        rs = RandomSearch(random_state=0).optimize(problem, Budget(max_evaluations=budget_size))
        assert ga.best_score >= rs.best_score - 0.05

    def test_target_score_stops_early(self):
        problem = HPOProblem(quadratic_space(), quadratic_objective)
        optimizer = GeneticAlgorithm(
            population_size=10, n_generations=50, target_score=-10.0, random_state=0
        )
        result = optimizer.optimize(problem, Budget(max_evaluations=1000))
        # -10 is easy to reach; the search should stop long before the budget.
        assert result.n_evaluations < 1000

    def test_handles_categorical_space(self):
        problem = HPOProblem(mixed_space(), mixed_objective)
        optimizer = GeneticAlgorithm(population_size=12, n_generations=8, random_state=0)
        result = optimizer.optimize(problem, Budget(max_evaluations=100))
        assert result.best_config["mode"] == "good"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            GeneticAlgorithm(population_size=1)
        with pytest.raises(ValueError):
            GeneticAlgorithm(mutation_rate=1.5)
        with pytest.raises(ValueError):
            GeneticAlgorithm(n_generations=0)

    def test_all_crashing_objective_returns_default(self):
        problem = HPOProblem(quadratic_space(), lambda c: 1 / 0)
        result = GeneticAlgorithm(population_size=5, n_generations=2, random_state=0).optimize(
            problem, Budget(max_evaluations=10)
        )
        assert result.best_config == quadratic_space().default_configuration()


class TestBayesianOptimization:
    def test_finds_good_quadratic_solution(self):
        problem = HPOProblem(quadratic_space(), quadratic_objective)
        optimizer = BayesianOptimization(n_initial=6, n_candidates=64, random_state=0)
        result = optimizer.optimize(problem, Budget(max_evaluations=40))
        assert result.best_score > -1.0

    def test_beats_random_search_on_small_budget(self):
        budget_size = 30
        bo = BayesianOptimization(n_initial=6, n_candidates=64, random_state=0).optimize(
            HPOProblem(quadratic_space(), quadratic_objective), Budget(max_evaluations=budget_size)
        )
        rs = RandomSearch(random_state=0).optimize(
            HPOProblem(quadratic_space(), quadratic_objective), Budget(max_evaluations=budget_size)
        )
        assert bo.best_score >= rs.best_score - 0.1

    def test_handles_mixed_space(self):
        problem = HPOProblem(mixed_space(), mixed_objective)
        result = BayesianOptimization(n_initial=6, n_candidates=64, random_state=0).optimize(
            problem, Budget(max_evaluations=30)
        )
        assert result.best_config["mode"] == "good"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BayesianOptimization(n_initial=1)
        with pytest.raises(ValueError):
            BayesianOptimization(n_candidates=2)

    def test_survives_partially_crashing_objective(self):
        calls = {"n": 0}

        def flaky(config):
            calls["n"] += 1
            if calls["n"] % 3 == 0:
                raise RuntimeError("flaky evaluation")
            return quadratic_objective(config)

        problem = HPOProblem(quadratic_space(), flaky)
        result = BayesianOptimization(n_initial=5, random_state=0).optimize(
            problem, Budget(max_evaluations=25)
        )
        assert np.isfinite(result.best_score)


class TestResultObject:
    def test_top_k_sorted(self):
        problem = HPOProblem(quadratic_space(), quadratic_objective)
        result = RandomSearch(random_state=0).optimize(problem, Budget(max_evaluations=20))
        top = result.top_k(5)
        scores = [t.score for t in top]
        assert scores == sorted(scores, reverse=True)
        assert result.best_score == scores[0]


class TestWarmStartSeeding:
    """All six optimizers accept warm_start=k and evaluate prior bests early."""

    @staticmethod
    def _optimizers():
        from repro.hpo import Hyperband, SuccessiveHalving

        return [
            GridSearch(resolution=3, warm_start=2),
            RandomSearch(random_state=0, warm_start=2),
            GeneticAlgorithm(
                population_size=6, n_generations=2, random_state=0, warm_start=2
            ),
            BayesianOptimization(n_initial=4, random_state=0, warm_start=2),
            SuccessiveHalving(
                n_configurations=6, fidelity_key=None, random_state=0, warm_start=2
            ),
            Hyperband(
                n_configurations=6, fidelity_key=None, random_state=0, warm_start=2
            ),
        ]

    @pytest.mark.parametrize(
        "optimizer", _optimizers.__func__(), ids=lambda o: o.name
    )
    def test_seeded_best_is_recovered(self, optimizer, tmp_path):
        from repro.execution import EvaluationEngine, ResultStore
        from repro.execution.cache import config_fingerprint

        store = ResultStore(tmp_path / "s")
        best = {"x": 1.0, "y": -2.0}  # the analytic optimum
        store.put(
            "seeded", config_fingerprint(best), quadratic_objective(best), config=best
        )
        engine = EvaluationEngine(
            quadratic_objective, store=store, warm_start=True, name="seeded"
        )
        problem = HPOProblem(quadratic_space(), engine=engine)
        result = optimizer.optimize(problem, Budget(max_evaluations=30))
        # The stored optimum is re-evaluated (a store replay) and wins.
        assert result.best_score == pytest.approx(0.0)
        assert any(t.config == best for t in result.trials)

    def test_negative_warm_start_rejected(self):
        with pytest.raises(ValueError):
            RandomSearch(warm_start=-1)

    def test_warm_start_is_noop_without_store(self):
        problem = HPOProblem(quadratic_space(), quadratic_objective)
        seeded = RandomSearch(random_state=0, warm_start=5)
        plain = RandomSearch(random_state=0)
        a = seeded.optimize(problem, Budget(max_evaluations=10))
        problem2 = HPOProblem(quadratic_space(), quadratic_objective)
        b = plain.optimize(problem2, Budget(max_evaluations=10))
        assert [t.score for t in a.trials] == [t.score for t in b.trials]
