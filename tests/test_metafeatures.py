"""Tests for the 23 Table III meta-features and the feature extractor."""

import numpy as np
import pytest

from repro.datasets import Dataset, make_gaussian_clusters
from repro.metafeatures import (
    FEATURE_DESCRIPTIONS,
    FEATURE_NAMES,
    FeatureCache,
    FeatureExtractor,
    compute_feature,
    feature_cache,
)


@pytest.fixture(scope="module")
def mixed_dataset() -> Dataset:
    rng = np.random.default_rng(0)
    numeric = np.column_stack([rng.normal(0, 1, 100), rng.normal(5, 2, 100)])
    categorical = np.column_stack(
        [
            np.array(["a", "b"] * 50, dtype=object),           # 2 categories
            np.array(["x", "y", "z", "x"] * 25, dtype=object),  # 3 categories
        ]
    )
    target = np.array([0] * 70 + [1] * 30)
    return Dataset("mixed", numeric, categorical, target)


@pytest.fixture(scope="module")
def numeric_only_dataset() -> Dataset:
    return make_gaussian_clusters(
        "numeric_only", n_records=90, n_numeric=4, n_categorical=0, n_classes=3, random_state=1
    )


class TestIndividualFeatures:
    def test_f1_class_count(self, mixed_dataset):
        assert compute_feature("f1", mixed_dataset) == 2.0

    def test_f2_target_entropy(self, mixed_dataset):
        expected = -(0.7 * np.log2(0.7) + 0.3 * np.log2(0.3))
        assert compute_feature("f2", mixed_dataset) == pytest.approx(expected)

    def test_f3_f4_majority_minority_proportions(self, mixed_dataset):
        assert compute_feature("f3", mixed_dataset) == pytest.approx(0.7)
        assert compute_feature("f4", mixed_dataset) == pytest.approx(0.3)

    def test_f5_to_f9_shape_features(self, mixed_dataset):
        assert compute_feature("f5", mixed_dataset) == 2.0
        assert compute_feature("f6", mixed_dataset) == 2.0
        assert compute_feature("f7", mixed_dataset) == pytest.approx(0.5)
        assert compute_feature("f8", mixed_dataset) == 4.0
        assert compute_feature("f9", mixed_dataset) == 100.0

    def test_f10_f14_categorical_cardinalities(self, mixed_dataset):
        assert compute_feature("f10", mixed_dataset) == 2.0  # fewest classes (A#)
        assert compute_feature("f14", mixed_dataset) == 3.0  # most classes (A?)

    def test_f12_f13_a_sharp_proportions(self, mixed_dataset):
        # A# is the 'a'/'b' column with a 50/50 split.
        assert compute_feature("f12", mixed_dataset) == pytest.approx(0.5)
        assert compute_feature("f13", mixed_dataset) == pytest.approx(0.5)

    def test_f16_f17_a_star_proportions(self, mixed_dataset):
        # A? is the x/y/z column with proportions 0.5 / 0.25 / 0.25.
        assert compute_feature("f16", mixed_dataset) == pytest.approx(0.5)
        assert compute_feature("f17", mixed_dataset) == pytest.approx(0.25)

    def test_f18_f19_numeric_average_extremes(self, mixed_dataset):
        averages = mixed_dataset.numeric.mean(axis=0)
        assert compute_feature("f18", mixed_dataset) == pytest.approx(averages.min())
        assert compute_feature("f19", mixed_dataset) == pytest.approx(averages.max())

    def test_f20_to_f23_variance_features(self, mixed_dataset):
        variances = mixed_dataset.numeric.var(axis=0)
        assert compute_feature("f20", mixed_dataset) == pytest.approx(variances.min())
        assert compute_feature("f21", mixed_dataset) == pytest.approx(variances.max())
        assert compute_feature("f22", mixed_dataset) == pytest.approx(
            mixed_dataset.numeric.mean(axis=0).var()
        )
        assert compute_feature("f23", mixed_dataset) == pytest.approx(variances.var())

    def test_categorical_features_zero_without_categoricals(self, numeric_only_dataset):
        for name in ("f10", "f11", "f12", "f13", "f14", "f15", "f16", "f17"):
            assert compute_feature(name, numeric_only_dataset) == 0.0
        assert compute_feature("f6", numeric_only_dataset) == 0.0

    def test_unknown_feature_raises(self, mixed_dataset):
        with pytest.raises(KeyError):
            compute_feature("f99", mixed_dataset)

    def test_all_features_have_descriptions(self):
        assert len(FEATURE_NAMES) == 23
        assert all(FEATURE_DESCRIPTIONS[name] for name in FEATURE_NAMES)


class TestFeatureExtractor:
    def test_full_vector_length(self, mixed_dataset):
        assert len(FeatureExtractor().raw_vector(mixed_dataset)) == 23

    def test_unknown_feature_rejected(self):
        with pytest.raises(ValueError):
            FeatureExtractor(["f1", "nope"])

    def test_empty_feature_list_rejected(self):
        with pytest.raises(ValueError):
            FeatureExtractor([])

    def test_subset_vector_order(self, mixed_dataset):
        extractor = FeatureExtractor(["f9", "f1"])
        vector = extractor.raw_vector(mixed_dataset)
        assert vector[0] == 100.0 and vector[1] == 2.0

    def test_normalisation_centers_reference_collection(self, numeric_only_dataset, mixed_dataset):
        extractor = FeatureExtractor().fit([numeric_only_dataset, mixed_dataset])
        matrix = extractor.transform_many([numeric_only_dataset, mixed_dataset])
        np.testing.assert_allclose(matrix.mean(axis=0), 0.0, atol=1e-9)

    def test_restrict_keeps_normalisation(self, numeric_only_dataset, mixed_dataset):
        extractor = FeatureExtractor().fit([numeric_only_dataset, mixed_dataset])
        restricted = extractor.restrict(["f1", "f9"])
        full = extractor.transform(mixed_dataset)
        partial = restricted.transform(mixed_dataset)
        assert partial[0] == pytest.approx(full[0])
        assert partial[1] == pytest.approx(full[8])

    def test_restrict_unknown_feature_raises(self):
        with pytest.raises(ValueError):
            FeatureExtractor(["f1"]).restrict(["f2"])

    def test_vectors_are_finite_for_all_suite_datasets(self):
        from repro.datasets import knowledge_suite

        datasets = knowledge_suite(n_datasets=6, random_state=0)
        matrix = FeatureExtractor().fit_transform(datasets)
        assert np.all(np.isfinite(matrix))


class TestFeatureCache:
    """Fingerprint-keyed memoization of raw feature values (the serving hot path)."""

    def setup_method(self):
        feature_cache.clear()
        feature_cache.reset_stats()

    def test_repeat_extraction_hits_cache(self, mixed_dataset):
        extractor = FeatureExtractor()
        first = extractor.raw_vector(mixed_dataset)
        assert feature_cache.stats.misses == 23
        second = extractor.raw_vector(mixed_dataset)
        np.testing.assert_array_equal(first, second)
        assert feature_cache.stats.hits == 23
        assert feature_cache.stats.hit_rate == pytest.approx(0.5)

    def test_cached_values_match_uncached(self, mixed_dataset, numeric_only_dataset):
        extractor = FeatureExtractor()
        for dataset in (mixed_dataset, numeric_only_dataset):
            cached = extractor.raw_vector(dataset)
            with feature_cache.disabled():
                uncached = extractor.raw_vector(dataset)
            np.testing.assert_array_equal(cached, uncached)

    def test_restricted_extractor_shares_cache_entries(self, mixed_dataset):
        FeatureExtractor().raw_vector(mixed_dataset)
        misses_before = feature_cache.stats.misses
        FeatureExtractor(["f1", "f9"]).raw_vector(mixed_dataset)
        # Per-feature keying: the subset is fully served from the full pass.
        assert feature_cache.stats.misses == misses_before

    def test_identical_content_different_name_shares_entries(self, mixed_dataset):
        clone = Dataset(
            name="other-name",
            numeric=mixed_dataset.numeric.copy(),
            categorical=mixed_dataset.categorical.copy(),
            target=mixed_dataset.target.copy(),
        )
        assert clone.fingerprint == mixed_dataset.fingerprint
        FeatureExtractor().raw_vector(mixed_dataset)
        misses_before = feature_cache.stats.misses
        FeatureExtractor().raw_vector(clone)
        assert feature_cache.stats.misses == misses_before

    def test_different_content_distinct_fingerprints(self, mixed_dataset):
        changed = Dataset(
            name=mixed_dataset.name,
            numeric=mixed_dataset.numeric + 1.0,
            categorical=mixed_dataset.categorical.copy(),
            target=mixed_dataset.target.copy(),
        )
        assert changed.fingerprint != mixed_dataset.fingerprint

    def test_disabled_cache_bypasses_lookup(self, mixed_dataset):
        with feature_cache.disabled():
            FeatureExtractor().raw_vector(mixed_dataset)
        assert feature_cache.stats.hits == 0
        assert feature_cache.stats.misses == 0
        assert len(feature_cache) == 0

    def test_eviction_bounds_memory(self, mixed_dataset, numeric_only_dataset):
        small = FeatureCache(maxsize=10)
        small.vector(mixed_dataset, list(FEATURE_NAMES))
        assert len(small) == 10
        assert small.stats.evictions == 13

    def test_stats_as_dict_shape(self):
        stats = feature_cache.stats.as_dict()
        assert set(stats) == {"hits", "misses", "hit_rate", "evictions"}

    def test_fingerprint_framing_resists_separator_collisions(self):
        """['a\\x1fb','c'] and ['a','b\\x1fc'] must not share a fingerprint."""
        numeric = np.ones((2, 1))
        target = np.array([0, 1])
        a = Dataset("a", numeric, np.array([["x\x1fy", "z"], ["x\x1fy", "z"]], dtype=object), target)
        b = Dataset("b", numeric, np.array([["x", "y\x1fz"], ["x", "y\x1fz"]], dtype=object), target)
        assert a.fingerprint != b.fingerprint

    def test_overlapping_disabled_sections_compose(self, mixed_dataset):
        with feature_cache.disabled():
            with feature_cache.disabled():
                assert not feature_cache.enabled
            # Inner exit must NOT re-enable while the outer is active.
            assert not feature_cache.enabled
        assert feature_cache.enabled
