"""Tests for performance tables, PORatio analysis, CASH evaluation and reporting."""

import numpy as np
import pytest

from repro.evaluation import (
    PerformanceTable,
    analyze_selection,
    compare_tools,
    evaluate_algorithm,
    format_histogram,
    format_key_values,
    format_table,
    poratio_histogram,
    tune_algorithm,
)
from repro.evaluation.cash_eval import evaluate_cash_tool


class TestPerformanceTable:
    def test_shape_and_lookup(self, small_performance, knowledge_datasets, small_registry):
        assert small_performance.scores.shape == (
            len(knowledge_datasets),
            len(small_registry),
        )
        name = knowledge_datasets[0].name
        algorithm = small_registry.names[0]
        assert 0.0 <= small_performance.score(algorithm, name) <= 1.0

    def test_unknown_keys_raise(self, small_performance):
        with pytest.raises(KeyError):
            small_performance.score("Nope", small_performance.datasets[0])
        with pytest.raises(KeyError):
            small_performance.p_max("not-a-dataset")

    def test_pmax_is_maximum(self, small_performance):
        for dataset in small_performance.datasets:
            scores = small_performance.dataset_scores(dataset)
            assert small_performance.p_max(dataset) == pytest.approx(max(scores.values()))

    def test_pavg_between_min_and_max(self, small_performance):
        for dataset in small_performance.datasets:
            assert (
                0.0
                <= small_performance.p_avg(dataset)
                <= small_performance.p_max(dataset) + 1e-12
            )

    def test_poratio_definition(self, small_performance):
        dataset = small_performance.datasets[0]
        best = small_performance.best_algorithm(dataset)
        assert small_performance.poratio(best, dataset) == pytest.approx(1.0)
        worst = small_performance.ranking(dataset)[-1]
        assert small_performance.poratio(worst, dataset) <= small_performance.poratio(best, dataset)

    def test_ranking_sorted_by_score(self, small_performance):
        dataset = small_performance.datasets[0]
        ranking = small_performance.ranking(dataset)
        scores = [small_performance.score(a, dataset) for a in ranking]
        assert scores == sorted(scores, reverse=True)

    def test_top_algorithms(self, small_performance):
        top = small_performance.top_algorithms(k=3, by="poratio")
        assert len(top) == 3
        assert top[0][1] >= top[1][1] >= top[2][1]
        with pytest.raises(ValueError):
            small_performance.top_algorithms(by="magic")

    def test_serialisation_roundtrip(self, small_performance, tmp_path):
        path = tmp_path / "table.json"
        small_performance.save(path)
        restored = PerformanceTable.load(path)
        np.testing.assert_allclose(restored.scores, small_performance.scores)
        assert restored.algorithms == small_performance.algorithms

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PerformanceTable(algorithms=["a"], datasets=["d1", "d2"], scores=np.zeros((1, 1)))


class TestPerformanceTableResume:
    def test_warm_rerun_is_identical_and_execution_free(
        self, knowledge_datasets, small_registry, tmp_path
    ):
        from repro.execution import ResultStore

        kwargs = dict(
            registry=small_registry, tune=False, cv=3, max_records=80, random_state=0
        )
        cold = PerformanceTable.compute(
            knowledge_datasets[:3], store=ResultStore(tmp_path / "s"), **kwargs
        )
        warm = PerformanceTable.compute(
            knowledge_datasets[:3], store=ResultStore(tmp_path / "s"), **kwargs
        )
        np.testing.assert_array_equal(cold.scores, warm.scores)
        assert warm.metadata["engine"]["n_executions"] == 0
        assert warm.metadata["engine"]["n_store_hits"] == cold.scores.size

    def test_partial_table_resumes_from_store(
        self, knowledge_datasets, small_registry, tmp_path
    ):
        """A table extended with more datasets only pays for the new cells."""
        from repro.execution import ResultStore

        kwargs = dict(
            registry=small_registry, tune=False, cv=3, max_records=80, random_state=0
        )
        partial = PerformanceTable.compute(
            knowledge_datasets[:2], store=ResultStore(tmp_path / "s"), **kwargs
        )
        full = PerformanceTable.compute(
            knowledge_datasets[:4], store=ResultStore(tmp_path / "s"), **kwargs
        )
        np.testing.assert_array_equal(full.scores[:2], partial.scores)
        n_new_cells = 2 * len(small_registry)
        assert full.metadata["engine"]["n_executions"] == n_new_cells

    def test_incompatible_protocol_never_reuses_scores(
        self, knowledge_datasets, small_registry, tmp_path
    ):
        from repro.execution import ResultStore

        store_dir = tmp_path / "s"
        PerformanceTable.compute(
            knowledge_datasets[:2],
            registry=small_registry,
            cv=3,
            max_records=80,
            random_state=0,
            store=ResultStore(store_dir),
        )
        other = PerformanceTable.compute(
            knowledge_datasets[:2],
            registry=small_registry,
            cv=2,  # different CV protocol → different shard context
            max_records=80,
            random_state=0,
            store=ResultStore(store_dir),
        )
        assert other.metadata["engine"]["n_store_hits"] == 0


class TestEvaluateAndTune:
    def test_evaluate_algorithm_in_unit_interval(self, small_registry, blobs_dataset):
        score = evaluate_algorithm(small_registry, "NaiveBayes", blobs_dataset, cv=3)
        assert 0.0 <= score <= 1.0

    def test_evaluate_unknown_algorithm_is_zero(self, small_registry, blobs_dataset):
        assert evaluate_algorithm(small_registry, "Missing", blobs_dataset) == 0.0

    def test_tune_algorithm_returns_valid_config(self, small_registry, blobs_dataset):
        config, score = tune_algorithm(
            small_registry, "J48", blobs_dataset, max_evaluations=6, cv=2, max_records=80
        )
        assert small_registry.space("J48").validate(config)
        assert 0.0 <= score <= 1.0

    def test_tuning_does_not_hurt_much(self, small_registry, blobs_dataset):
        default_score = evaluate_algorithm(
            small_registry, "IBk", blobs_dataset, cv=3, max_records=100, random_state=0
        )
        _, tuned_score = tune_algorithm(
            small_registry, "IBk", blobs_dataset, max_evaluations=10, cv=3,
            max_records=100, random_state=0,
        )
        assert tuned_score >= default_score - 0.1


class TestPORatioAnalysis:
    def test_histogram_bins_sum_to_100(self):
        histogram = poratio_histogram([0.1, 0.3, 0.5, 0.85, 0.95, 1.0])
        assert sum(histogram.values()) == pytest.approx(100.0)
        assert len(histogram) == 5

    def test_histogram_empty_rejected(self):
        with pytest.raises(ValueError):
            poratio_histogram([])

    def test_analysis_of_best_selection_is_perfect(self, small_performance):
        selection = {
            dataset: small_performance.best_algorithm(dataset)
            for dataset in small_performance.datasets
        }
        analysis = analyze_selection(selection, small_performance)
        assert analysis.average_poratio == pytest.approx(1.0)
        assert analysis.beats_single_algorithms()
        rows = analysis.per_dataset_rows()
        assert len(rows) == len(small_performance.datasets)
        for row in rows:
            assert row["performance"] <= row["p_max"] + 1e-9

    def test_analysis_of_worst_selection_is_low(self, small_performance):
        selection = {
            dataset: small_performance.ranking(dataset)[-1]
            for dataset in small_performance.datasets
        }
        analysis = analyze_selection(selection, small_performance)
        assert analysis.average_poratio < 0.6

    def test_unknown_algorithm_counts_as_miss(self, small_performance):
        selection = {small_performance.datasets[0]: "NotInCatalogue"}
        analysis = analyze_selection(selection, small_performance)
        assert analysis.poratios[small_performance.datasets[0]] == 0.0

    def test_disjoint_selection_rejected(self, small_performance):
        with pytest.raises(ValueError):
            analyze_selection({"unknown-dataset": "J48"}, small_performance)


class TestCashEvaluation:
    class _FixedTool:
        """A fake CASH tool that always returns the same (algorithm, config)."""

        def __init__(self, algorithm: str, config: dict | None = None):
            self.algorithm = algorithm
            self.config = config or {}

        def run(self, dataset, time_limit=None, max_evaluations=None):
            from repro.baselines import CASHBaselineSolution

            return CASHBaselineSolution(
                algorithm=self.algorithm,
                config=dict(self.config),
                cv_score=0.5,
                optimizer="fixed",
                n_evaluations=1,
                elapsed=0.0,
            )

    def test_evaluate_fixed_tool(self, blobs_dataset, small_registry):
        tool = self._FixedTool("NaiveBayes")
        evaluation = evaluate_cash_tool(
            tool, blobs_dataset, tool_name="fixed", time_limit=None,
            cv=3, registry=small_registry, eval_max_records=120,
        )
        assert evaluation.algorithm == "NaiveBayes"
        assert 0.0 <= evaluation.f_score <= 1.0

    def test_compare_tools_table_and_wins(self, blobs_dataset, rules_dataset, small_registry):
        tools = {
            "good": self._FixedTool("IBk"),
            "trivial": self._FixedTool("ZeroR"),
        }
        result = compare_tools(
            tools, [blobs_dataset, rules_dataset], time_limits=[None],
            cv=3, registry=small_registry, eval_max_records=120,
        )
        assert set(result.tools()) == {"good", "trivial"}
        assert len(result.table()) == 2
        assert result.mean_f_score("good") >= result.mean_f_score("trivial")
        wins = result.win_counts()
        assert wins["good"] >= wins["trivial"]

    def test_missing_cell_raises(self, blobs_dataset, small_registry):
        result = compare_tools(
            {"only": self._FixedTool("ZeroR")}, [blobs_dataset], time_limits=[None],
            cv=2, registry=small_registry, eval_max_records=80,
        )
        with pytest.raises(KeyError):
            result.f_score("missing-tool", blobs_dataset.name, None)
        with pytest.raises(KeyError):
            result.mean_f_score("missing-tool")


class TestReporting:
    def test_format_table_alignment_and_missing_values(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 20, "b": None}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "0.500" in text
        assert "-" in text

    def test_format_table_empty(self):
        assert "(empty table)" in format_table([])

    def test_format_histogram_bars(self):
        text = format_histogram({"[0.0,0.2)": 10.0, "[0.8,1.0]": 90.0}, title="Fig3")
        assert "Fig3" in text and "#" in text and "90.0%" in text

    def test_format_key_values(self):
        text = format_key_values({"pairs": 69, "mse": 0.0012}, title="summary")
        assert "pairs" in text and "0.0012" in text
