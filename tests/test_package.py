"""Top-level package surface tests."""

import repro


class TestPackageSurface:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_facade_symbols_exported(self):
        assert hasattr(repro, "AutoModel")
        assert hasattr(repro, "DecisionMakingModelDesigner")
        assert hasattr(repro, "UserDemandResponser")
        assert hasattr(repro, "Dataset")

    def test_subpackages_importable(self):
        for name in (
            "baselines",
            "core",
            "corpus",
            "datasets",
            "evaluation",
            "execution",
            "hpo",
            "learners",
            "metafeatures",
            "service",
        ):
            assert hasattr(repro, name)

    def test_all_entries_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None

    def test_subpackage_all_entries_resolve(self):
        for module in (
            repro.learners,
            repro.hpo,
            repro.datasets,
            repro.corpus,
            repro.core,
            repro.baselines,
            repro.evaluation,
            repro.execution,
            repro.metafeatures,
            repro.service,
        ):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, f"{module.__name__}.{name}"
