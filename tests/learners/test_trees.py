"""Tests for the decision-tree family."""

import numpy as np
import pytest

from repro.learners.tree import (
    BFTree,
    DecisionStump,
    DecisionTreeClassifier,
    J48,
    RandomTree,
    REPTree,
    SimpleCart,
)


@pytest.fixture(scope="module")
def axis_aligned():
    """A dataset a depth-2 tree separates perfectly."""
    rng = np.random.default_rng(0)
    X = rng.uniform(-1, 1, size=(300, 4))
    y = ((X[:, 0] > 0).astype(int) * 2 + (X[:, 1] > 0).astype(int)) % 3
    return X, y


class TestDecisionTreeCore:
    def test_fits_axis_aligned_concept(self, axis_aligned):
        X, y = axis_aligned
        model = DecisionTreeClassifier(criterion="entropy").fit(X, y)
        assert model.score(X, y) > 0.95

    def test_max_depth_limits_depth(self, axis_aligned):
        X, y = axis_aligned
        model = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert model.depth() <= 2

    def test_stump_depth_is_one(self, axis_aligned):
        X, y = axis_aligned
        assert DecisionStump().fit(X, y).depth() <= 1

    def test_min_samples_leaf_respected(self, axis_aligned):
        X, y = axis_aligned
        shallow = DecisionTreeClassifier(min_samples_leaf=50).fit(X, y)
        deep = DecisionTreeClassifier(min_samples_leaf=1).fit(X, y)
        assert shallow.n_leaves() <= deep.n_leaves()

    def test_single_class_yields_single_leaf(self):
        X = np.random.default_rng(1).normal(size=(30, 3))
        y = np.zeros(30, dtype=int)
        model = DecisionTreeClassifier().fit(X, y)
        assert model.n_leaves() == 1
        assert np.all(model.predict(X) == 0)

    def test_constant_features_yield_majority_leaf(self):
        X = np.ones((40, 3))
        y = np.array([0] * 30 + [1] * 10)
        model = DecisionTreeClassifier().fit(X, y)
        assert np.all(model.predict(X) == 0)

    def test_max_nodes_caps_internal_nodes(self, axis_aligned):
        X, y = axis_aligned
        small = DecisionTreeClassifier(max_nodes=1).fit(X, y)
        assert small.n_leaves() <= 3

    def test_gain_ratio_criterion_runs(self, axis_aligned):
        X, y = axis_aligned
        model = DecisionTreeClassifier(criterion="gain_ratio").fit(X, y)
        assert model.score(X, y) > 0.8

    def test_proba_reflects_leaf_distribution(self):
        # A single constant feature: one leaf with a 75/25 class split.
        X = np.ones((40, 1))
        y = np.array([0] * 30 + [1] * 10)
        proba = DecisionTreeClassifier().fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba[:, 0], 0.75)


class TestTreeVariants:
    @pytest.mark.parametrize("cls", [J48, SimpleCart, REPTree, RandomTree, BFTree])
    def test_variant_learns_blobs(self, cls, simple_xy):
        X, y = simple_xy
        model = cls(random_state=0).fit(X, y)
        assert model.score(X, y) > 0.6

    def test_random_tree_uses_feature_subsets(self, axis_aligned):
        X, y = axis_aligned
        # With only 1 feature considered per split, two seeds should usually
        # give different trees; at minimum both still beat chance.
        a = RandomTree(max_features=1, random_state=0).fit(X, y)
        b = RandomTree(max_features=1, random_state=1).fit(X, y)
        assert a.score(X, y) > 0.4 and b.score(X, y) > 0.4

    def test_reptree_is_smaller_than_unpruned_j48(self, axis_aligned):
        X, y = axis_aligned
        rep = REPTree().fit(X, y)
        full = J48(min_samples_leaf=1, min_samples_split=2).fit(X, y)
        assert rep.n_leaves() <= full.n_leaves()

    def test_deterministic_given_seed(self, simple_xy):
        X, y = simple_xy
        a = RandomTree(random_state=42).fit(X, y).predict(X)
        b = RandomTree(random_state=42).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)
