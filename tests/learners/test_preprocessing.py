"""Tests for scalers, encoders and imputation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra import numpy as hnp
from hypothesis import strategies as st

from repro.learners.preprocessing import (
    LabelEncoder,
    MinMaxScaler,
    OneHotEncoder,
    SimpleImputer,
    StandardScaler,
    encode_mixed_matrix,
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        Xs = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Xs.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(Xs.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_does_not_divide_by_zero(self):
        X = np.array([[1.0, 5.0], [1.0, 7.0]])
        Xs = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Xs))
        assert np.all(Xs[:, 0] == 0.0)

    def test_inverse_transform_roundtrip(self):
        X = np.random.default_rng(1).normal(size=(50, 3))
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-9)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform([[1.0]])


class TestMinMaxScaler:
    def test_output_in_unit_interval(self):
        X = np.random.default_rng(2).normal(size=(100, 3)) * 10
        Xs = MinMaxScaler().fit_transform(X)
        assert Xs.min() >= 0.0 and Xs.max() <= 1.0

    def test_constant_column_handled(self):
        Xs = MinMaxScaler().fit_transform(np.array([[2.0], [2.0], [2.0]]))
        assert np.all(np.isfinite(Xs))


class TestLabelEncoder:
    def test_roundtrip(self):
        labels = ["b", "a", "c", "a"]
        encoder = LabelEncoder().fit(labels)
        encoded = encoder.transform(labels)
        assert set(encoded) == {0, 1, 2}
        assert list(encoder.inverse_transform(encoded)) == labels

    def test_unseen_label_raises(self):
        encoder = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError):
            encoder.transform(["c"])

    def test_out_of_range_inverse_raises(self):
        encoder = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError):
            encoder.inverse_transform([5])


class TestOneHotEncoder:
    def test_shape_and_one_active_bit_per_column(self):
        X = np.array([["a", "x"], ["b", "y"], ["a", "z"]], dtype=object)
        encoder = OneHotEncoder().fit(X)
        out = encoder.transform(X)
        assert out.shape == (3, encoder.n_output_features_)
        assert encoder.n_output_features_ == 2 + 3
        np.testing.assert_allclose(out.sum(axis=1), 2.0)

    def test_unknown_category_maps_to_zero_block(self):
        encoder = OneHotEncoder().fit(np.array([["a"], ["b"]], dtype=object))
        out = encoder.transform(np.array([["c"]], dtype=object))
        assert out.sum() == 0.0

    def test_column_count_mismatch_raises(self):
        encoder = OneHotEncoder().fit(np.array([["a", "x"]], dtype=object))
        with pytest.raises(ValueError):
            encoder.transform(np.array([["a"]], dtype=object))


class TestSimpleImputer:
    def test_mean_imputation(self):
        X = np.array([[1.0, np.nan], [3.0, 4.0]])
        out = SimpleImputer(strategy="mean").fit_transform(X)
        assert out[0, 1] == pytest.approx(4.0)

    def test_median_imputation(self):
        X = np.array([[np.nan], [1.0], [2.0], [100.0]])
        out = SimpleImputer(strategy="median").fit_transform(X)
        assert out[0, 0] == pytest.approx(2.0)

    def test_constant_imputation(self):
        X = np.array([[np.nan, 1.0]])
        out = SimpleImputer(strategy="constant", fill_value=-7.0).fit_transform(X)
        assert out[0, 0] == -7.0

    def test_all_nan_column_uses_fill_value(self):
        X = np.array([[np.nan], [np.nan]])
        out = SimpleImputer(strategy="mean", fill_value=0.0).fit_transform(X)
        assert np.all(out == 0.0)

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError):
            SimpleImputer(strategy="mode")


class TestEncodeMixedMatrix:
    def test_numeric_plus_categorical(self):
        numeric = np.array([[1.0], [2.0]])
        categorical = np.array([["a"], ["b"]], dtype=object)
        X, encoder = encode_mixed_matrix(numeric, categorical)
        assert X.shape == (2, 3)
        assert encoder is not None

    def test_numeric_only(self):
        X, encoder = encode_mixed_matrix(np.array([[1.0, 2.0]]), None)
        assert X.shape == (1, 2)
        assert encoder is None

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            encode_mixed_matrix(None, None)


class TestScalerProperties:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(5, 30), st.integers(1, 5)),
            elements=st.floats(-1e4, 1e4, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_standard_scaler_is_finite_and_shape_preserving(self, X):
        Xs = StandardScaler().fit_transform(X)
        assert Xs.shape == X.shape
        assert np.all(np.isfinite(Xs))

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(5, 30), st.integers(1, 5)),
            elements=st.floats(-1e4, 1e4, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_minmax_scaler_bounds(self, X):
        Xs = MinMaxScaler().fit_transform(X)
        assert Xs.min() >= -1e-9 and Xs.max() <= 1.0 + 1e-9
