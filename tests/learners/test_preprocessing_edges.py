"""Transform-time edge cases of OneHotEncoder / SimpleImputer.

Pipeline search feeds these transformers per-CV-fold on messy data, so the
edge cases that used to lurk behind full-dataset encoding — unseen categories,
all-NaN columns, empty fits, NaN category values — must be deterministic,
warning-free behaviours rather than spurious crash scores.
"""

import warnings

import numpy as np
import pytest

from repro.learners.preprocessing import (
    MISSING_CATEGORY,
    RARE_CATEGORY,
    OneHotEncoder,
    SimpleImputer,
)


class TestOneHotEncoderEdges:
    def test_unseen_category_zero_encodes_by_default(self):
        encoder = OneHotEncoder().fit([["a"], ["b"]])
        out = encoder.transform([["c"]])
        assert out.shape == (1, 2)
        assert np.all(out == 0.0)

    def test_unseen_category_maps_to_rare_bucket(self):
        encoder = OneHotEncoder(handle_unknown="rare").fit([["a"], ["b"]])
        out = encoder.transform([["never-seen"]])
        rare_column = encoder.categories_[0].index(RARE_CATEGORY)
        assert out[0, rare_column] == 1.0 and out.sum() == 1.0

    def test_min_frequency_groups_long_tail(self):
        column = [["a"]] * 5 + [["b"]] * 5 + [["x"], ["y"], ["z"]]
        encoder = OneHotEncoder(min_frequency=2).fit(column)
        categories = encoder.categories_[0]
        assert "a" in categories and "b" in categories
        assert "x" not in categories and RARE_CATEGORY in categories
        out = encoder.transform([["x"], ["a"]])
        rare_column = categories.index(RARE_CATEGORY)
        assert out[0, rare_column] == 1.0
        assert out[1, categories.index("a")] == 1.0

    def test_nan_and_none_are_one_missing_category(self):
        encoder = OneHotEncoder().fit([[float("nan")], ["a"], [None]])
        categories = encoder.categories_[0]
        assert categories.count(MISSING_CATEGORY) == 1
        out = encoder.transform([[float("nan")], [None]])
        missing_column = categories.index(MISSING_CATEGORY)
        # Previously NaN at transform time zero-encoded (NaN != NaN); now it
        # round-trips to the category learned at fit time.
        assert np.all(out[:, missing_column] == 1.0)

    def test_empty_fit_zero_rows_raises_cleanly(self):
        with pytest.raises(ValueError, match="zero records"):
            OneHotEncoder().fit(np.zeros((0, 2), dtype=object))

    def test_zero_column_fit_is_a_clean_noop(self):
        encoder = OneHotEncoder().fit(np.zeros((4, 0), dtype=object))
        assert encoder.transform(np.zeros((4, 0), dtype=object)).shape == (4, 0)
        assert encoder.n_output_features_ == 0

    def test_clean_data_output_unchanged_by_new_knobs(self):
        X = np.array([["a", "x"], ["b", "y"], ["a", "x"]], dtype=object)
        out = OneHotEncoder().fit_transform(X)
        expected = np.array(
            [[1, 0, 1, 0], [0, 1, 0, 1], [1, 0, 1, 0]], dtype=np.float64
        )
        assert np.array_equal(out, expected)

    def test_invalid_knobs_raise(self):
        with pytest.raises(ValueError):
            OneHotEncoder(min_frequency=0)
        with pytest.raises(ValueError):
            OneHotEncoder(handle_unknown="explode")


class TestSimpleImputerEdges:
    def test_all_nan_column_fills_without_warning(self):
        X = np.array([[np.nan, 1.0], [np.nan, 3.0]])
        for strategy in ("mean", "median"):
            imputer = SimpleImputer(strategy=strategy, fill_value=-1.0)
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                out = imputer.fit_transform(X)
            assert np.all(out[:, 0] == -1.0)
            assert np.all(out[:, 1] == [1.0, 3.0])

    def test_empty_fit_zero_rows_raises_cleanly(self):
        with pytest.raises(ValueError, match="zero records"):
            SimpleImputer().fit(np.zeros((0, 3)))

    def test_zero_column_fit_is_a_clean_noop(self):
        imputer = SimpleImputer().fit(np.zeros((5, 0)))
        assert imputer.transform(np.zeros((5, 0))).shape == (5, 0)

    def test_transform_new_nans_use_fit_statistics(self):
        imputer = SimpleImputer().fit([[1.0], [3.0]])
        out = imputer.transform([[np.nan]])
        assert out[0, 0] == 2.0

    def test_non_2d_fit_raises(self):
        with pytest.raises(ValueError):
            SimpleImputer().fit(np.zeros((2, 2, 2)))
