"""Golden equivalence: kernel-backed learners vs the frozen pre-kernel paths.

The vectorized kernels (:mod:`repro.learners.kernels`) are only allowed to be
fast — every fitted model and every prediction must match the historical
pure-Python implementations frozen in :mod:`repro.learners._reference`.
Equality here is ``np.array_equal`` (bit-identical probabilities, tie-breaking
included) except for LWL, whose vote accumulation order changed (bincount vs
per-class masked sums) and is pinned to allclose + identical label decisions.

Datasets cover the split-search edge cases: dense continuous features, heavy
value ties (every threshold lands on a run boundary), and a NaN-corrupted
matrix healed by mean imputation (the pipeline's pre-learner contract).
"""

import numpy as np
import pytest

from repro.learners import kernels
from repro.learners._reference import (
    ReferenceDecisionTree,
    ReferenceIBk,
    ReferenceKNeighborsRegressor,
    ReferenceKStar,
    ReferenceLWL,
    ReferenceDecisionTreeRegressor,
    ReferenceRandomForest,
)
from repro.learners.forest import ExtraTrees, RandomForest
from repro.learners.lazy import IB1, IBk, KStar, LWL
from repro.learners.regression import DecisionTreeRegressor, KNeighborsRegressor
from repro.learners.tree import (
    BFTree,
    DecisionStump,
    DecisionTreeClassifier,
    J48,
    REPTree,
    RandomTree,
    SimpleCart,
)


def _dense(seed=0, n=220, d=7, k=4):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = np.clip(
        (np.abs(X[:, 0]) + X[:, 1] > 0.7).astype(int) + (X[:, 2] > 0.4).astype(int),
        0,
        k - 1,
    )
    return X, y


def _ties(seed=1, n=220, d=7, k=3):
    # Quantised features: long runs of equal values, so every candidate
    # threshold sits on a run boundary and tie-breaking matters.
    rng = np.random.default_rng(seed)
    X = np.round(rng.normal(size=(n, d)) * 2.0) / 2.0
    y = np.clip((X[:, 0] + X[:, 1] > 0).astype(int) + (X[:, 2] > 0.5).astype(int), 0, k - 1)
    return X, y


def _imputed(seed=2, n=220, d=7, k=3):
    # NaN-corrupted then mean-imputed — the matrix the learners actually see
    # after the pipeline's imputation step (check_array rejects raw NaN).
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = np.clip((X[:, 0] - X[:, 3] > 0).astype(int) + (X[:, 1] > 0.3).astype(int), 0, k - 1)
    mask = rng.random(X.shape) < 0.15
    X[mask] = np.nan
    means = np.nanmean(X, axis=0)
    X = np.where(np.isnan(X), means, X)
    return X, y


DATASETS = {"dense": _dense, "ties": _ties, "imputed": _imputed}


def _split(maker):
    X, y = maker()
    Xq, _ = maker(seed=99, n=140)
    return X, y, Xq


def _assert_identical(live, ref, Xq):
    pa, pb = live.predict_proba(Xq), ref.predict_proba(Xq)
    assert np.array_equal(pa, pb), f"proba drift: max |Δ|={np.abs(pa - pb).max()}"
    assert np.array_equal(live.predict(Xq), ref.predict(Xq))


TREE_CASES = [
    (J48, dict(), dict(criterion="gain_ratio", min_samples_leaf=2, min_samples_split=4)),
    (SimpleCart, dict(), dict(criterion="gini", min_samples_leaf=2, min_samples_split=4)),
    (
        REPTree,
        dict(),
        dict(
            criterion="entropy",
            max_depth=8,
            min_samples_leaf=4,
            min_samples_split=8,
            min_impurity_decrease=1e-4,
        ),
    ),
    (BFTree, dict(), dict(criterion="gini", max_nodes=32, min_samples_leaf=2, min_samples_split=4)),
    (DecisionStump, dict(), dict(criterion="entropy", max_depth=1)),
    (
        DecisionTreeClassifier,
        dict(criterion="entropy", min_impurity_decrease=0.01),
        dict(criterion="entropy", min_impurity_decrease=0.01),
    ),
]


@pytest.mark.parametrize("dataset", sorted(DATASETS))
@pytest.mark.parametrize("case", TREE_CASES, ids=lambda c: c[0].__name__)
def test_tree_classifiers_bit_identical(dataset, case):
    cls, live_kwargs, ref_kwargs = case
    X, y, Xq = _split(DATASETS[dataset])
    live = cls(random_state=3, **live_kwargs).fit(X, y)
    ref = ReferenceDecisionTree(random_state=3, **ref_kwargs).fit(X, y)
    _assert_identical(live, ref, Xq)


@pytest.mark.parametrize("dataset", sorted(DATASETS))
def test_tree_structure_identical_on_ties(dataset):
    # Structural check, stronger than prediction equality: the exported node
    # layout (features, thresholds, leaf distributions) must match exactly,
    # so cross-feature and within-feature tie-breaking is pinned.
    X, y, _ = _split(DATASETS[dataset])
    live = SimpleCart(random_state=0).fit(X, y)
    ref = ReferenceDecisionTree(
        criterion="gini", min_samples_leaf=2, min_samples_split=4, random_state=0
    ).fit(X, y)
    assert live.export_params() == ref.export_params()


@pytest.mark.parametrize("dataset", sorted(DATASETS))
def test_random_tree_preserves_rng_stream(dataset):
    X, y, Xq = _split(DATASETS[dataset])
    live = RandomTree(max_features="sqrt", random_state=7).fit(X, y)
    ref = ReferenceDecisionTree(
        criterion="entropy", max_features="sqrt", min_samples_split=2, random_state=7
    ).fit(X, y)
    _assert_identical(live, ref, Xq)


@pytest.mark.parametrize("dataset", sorted(DATASETS))
def test_random_forest_bit_identical(dataset):
    # Shared base orders + bootstrap expansion must reproduce the exact
    # forest the materialise-and-refit implementation built, tree by tree.
    X, y, Xq = _split(DATASETS[dataset])
    live = RandomForest(n_estimators=12, random_state=11).fit(X, y)
    ref = ReferenceRandomForest(n_estimators=12, random_state=11).fit(X, y)
    _assert_identical(live, ref, Xq)


def test_extra_trees_bit_identical():
    X, y, Xq = _split(_dense)
    live = ExtraTrees(n_estimators=8, random_state=5).fit(X, y)
    ref = ReferenceRandomForest(n_estimators=8, bootstrap=False, random_state=5).fit(X, y)
    _assert_identical(live, ref, Xq)


@pytest.mark.parametrize("dataset", sorted(DATASETS))
@pytest.mark.parametrize(
    "kwargs",
    [dict(), dict(weighting="distance"), dict(p=1, n_neighbors=3), dict(n_neighbors=1)],
    ids=["uniform", "distance", "manhattan-k3", "k1"],
)
def test_ibk_bit_identical(dataset, kwargs):
    X, y, Xq = _split(DATASETS[dataset])
    live = IBk(**kwargs).fit(X, y)
    ref = ReferenceIBk(**kwargs).fit(X, y)
    _assert_identical(live, ref, Xq)


def test_ib1_bit_identical():
    X, y, Xq = _split(_ties)
    live = IB1().fit(X, y)
    ref = ReferenceIBk(n_neighbors=1, weighting="uniform").fit(X, y)
    _assert_identical(live, ref, Xq)


@pytest.mark.parametrize("blend", [0.1, 0.2, 0.5])
def test_kstar_bit_identical(blend):
    X, y, Xq = _split(_dense)
    live = KStar(blend=blend).fit(X, y)
    ref = ReferenceKStar(blend=blend).fit(X, y)
    assert live._bandwidth == ref._bandwidth
    _assert_identical(live, ref, Xq)


@pytest.mark.parametrize("dataset", sorted(DATASETS))
def test_lwl_equivalent(dataset):
    # LWL's per-class accumulation order changed (flattened bincount vs
    # masked np.sum), so probabilities match to float tolerance and the
    # decisions match exactly.
    X, y, Xq = _split(DATASETS[dataset])
    live = LWL(n_neighbors=25).fit(X, y)
    ref = ReferenceLWL(n_neighbors=25).fit(X, y)
    assert np.allclose(live.predict_proba(Xq), ref.predict_proba(Xq), rtol=1e-9, atol=1e-12)
    assert np.array_equal(live.predict(Xq), ref.predict(Xq))


@pytest.mark.parametrize(
    "kwargs",
    [dict(), dict(max_depth=4, min_samples_leaf=3), dict(max_features="sqrt", random_state=2)],
    ids=["default", "pruned", "subsampled"],
)
def test_regression_tree_bit_identical(kwargs):
    X, _, Xq = _split(_dense)
    rng = np.random.default_rng(5)
    y = X[:, 0] * 2 + np.sin(X[:, 1]) + rng.normal(scale=0.1, size=X.shape[0])
    live = DecisionTreeRegressor(**kwargs).fit(X, y)
    ref = ReferenceDecisionTreeRegressor(**kwargs).fit(X, y)
    assert np.array_equal(live.predict(Xq), ref.predict(Xq))


def test_regression_tree_bit_identical_on_ties():
    X, _, Xq = _split(_ties)
    rng = np.random.default_rng(6)
    y = np.round(X[:, 0] + X[:, 1]) + rng.normal(scale=0.05, size=X.shape[0])
    live = DecisionTreeRegressor().fit(X, y)
    ref = ReferenceDecisionTreeRegressor().fit(X, y)
    assert np.array_equal(live.predict(Xq), ref.predict(Xq))


@pytest.mark.parametrize(
    "kwargs",
    [dict(), dict(weighting="distance"), dict(p=1)],
    ids=["uniform", "distance", "manhattan"],
)
def test_knn_regressor_bit_identical(kwargs):
    X, _, Xq = _split(_dense)
    rng = np.random.default_rng(7)
    y = X[:, 0] - 0.5 * X[:, 2] + rng.normal(scale=0.1, size=X.shape[0])
    live = KNeighborsRegressor(**kwargs).fit(X, y)
    ref = ReferenceKNeighborsRegressor(**kwargs).fit(X, y)
    assert np.array_equal(live.predict(Xq), ref.predict(Xq))


def test_chunked_distance_path_matches_single_shot(monkeypatch):
    # Force multi-chunk prediction; the elementwise-diff learners must stay
    # bit-identical, the GEMM-based ones within float tolerance with
    # identical decisions (BLAS results legitimately vary with panel shape).
    X, y, Xq = _split(_dense)
    single_knn = IBk(p=1, n_neighbors=5).fit(X, y).predict_proba(Xq)
    single_ibk = IBk(n_neighbors=5).fit(X, y).predict_proba(Xq)
    single_kstar = KStar(blend=0.2).fit(X, y).predict_proba(Xq)
    rng = np.random.default_rng(8)
    yr = X[:, 0] + rng.normal(scale=0.1, size=X.shape[0])
    single_reg = KNeighborsRegressor().fit(X, yr).predict(Xq)

    monkeypatch.setattr(kernels, "DEFAULT_CHUNK_ELEMENTS", 1500)
    chunks = list(kernels.query_chunks(Xq.shape[0], X.shape[0]))
    assert len(chunks) > 1, "budget too large to force chunking"

    assert np.array_equal(IBk(p=1, n_neighbors=5).fit(X, y).predict_proba(Xq), single_knn)
    assert np.array_equal(KNeighborsRegressor().fit(X, yr).predict(Xq), single_reg)
    chunked_ibk = IBk(n_neighbors=5).fit(X, y).predict_proba(Xq)
    chunked_kstar = KStar(blend=0.2).fit(X, y).predict_proba(Xq)
    assert np.allclose(chunked_ibk, single_ibk, rtol=1e-9, atol=1e-12)
    assert np.allclose(chunked_kstar, single_kstar, rtol=1e-9, atol=1e-12)


def test_query_chunks_cover_exactly_once():
    marks = np.zeros(103, dtype=int)
    for rows in kernels.query_chunks(103, 50, max_elements=400):
        marks[rows] += 1
    assert np.array_equal(marks, np.ones(103, dtype=int))


def test_filter_orders_is_stable_subset_argsort():
    rng = np.random.default_rng(0)
    X = np.round(rng.normal(size=(60, 3)), 1)
    orders = kernels.feature_orders(X)
    keep = rng.random(60) < 0.5
    filtered = kernels.filter_orders(orders, keep)
    sub = X[keep]
    base_ids = np.flatnonzero(keep)
    for j in range(X.shape[1]):
        expected = base_ids[np.argsort(sub[:, j], kind="stable")]
        assert np.array_equal(filtered[j], expected)


def test_flat_tree_matches_recursive_walk():
    X, y, Xq = _split(_dense)
    tree = J48(random_state=0).fit(X, y)
    flat = tree._flat
    leaves = kernels.flat_predict_indices(flat, Xq)
    for row, leaf in zip(Xq, leaves):
        node = tree.tree_
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        assert np.array_equal(flat.prediction[leaf], node.prediction)
