"""Tests for evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learners.metrics import (
    accuracy_score,
    balanced_accuracy_score,
    confusion_matrix,
    error_rate,
    f1_score,
    log_loss,
    mean_absolute_error,
    mean_squared_error,
    precision_recall_f1,
    r2_score,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_none_correct(self):
        assert accuracy_score([1, 1, 1], [0, 0, 0]) == 0.0

    def test_partial(self):
        assert accuracy_score([1, 0, 1, 0], [1, 0, 0, 0]) == pytest.approx(0.75)

    def test_error_rate_complement(self):
        y_true, y_pred = [1, 0, 1, 0], [1, 1, 0, 0]
        assert error_rate(y_true, y_pred) == pytest.approx(1 - accuracy_score(y_true, y_pred))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([1, 2], [1])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestConfusionMatrix:
    def test_diagonal_for_perfect_predictions(self):
        matrix = confusion_matrix([0, 1, 2, 1], [0, 1, 2, 1])
        assert np.trace(matrix) == 4
        assert matrix.sum() == 4

    def test_off_diagonal_counts(self):
        matrix = confusion_matrix([0, 0, 1], [1, 0, 1])
        assert matrix[0, 1] == 1
        assert matrix[0, 0] == 1
        assert matrix[1, 1] == 1

    def test_explicit_labels_order(self):
        matrix = confusion_matrix([0, 1], [0, 1], labels=[1, 0])
        assert matrix[0, 0] == 1  # label 1 predicted correctly
        assert matrix[1, 1] == 1


class TestBalancedAccuracy:
    def test_equals_accuracy_when_balanced(self):
        y_true = [0, 0, 1, 1]
        y_pred = [0, 1, 1, 1]
        assert balanced_accuracy_score(y_true, y_pred) == pytest.approx(0.75)

    def test_insensitive_to_imbalance(self):
        # Majority-class predictor on a 90/10 split: balanced accuracy is 0.5.
        y_true = [0] * 90 + [1] * 10
        y_pred = [0] * 100
        assert balanced_accuracy_score(y_true, y_pred) == pytest.approx(0.5)


class TestPrecisionRecallF1:
    def test_perfect_macro(self):
        p, r, f = precision_recall_f1([0, 1, 2], [0, 1, 2])
        assert (p, r, f) == (1.0, 1.0, 1.0)

    def test_micro_equals_accuracy_for_multiclass(self):
        y_true = [0, 1, 2, 2, 1, 0]
        y_pred = [0, 2, 1, 2, 1, 0]
        _, _, f_micro = precision_recall_f1(y_true, y_pred, average="micro")
        assert f_micro == pytest.approx(accuracy_score(y_true, y_pred))

    def test_invalid_average_raises(self):
        with pytest.raises(ValueError):
            precision_recall_f1([0], [0], average="weighted")

    def test_f1_between_0_and_1(self):
        assert 0.0 <= f1_score([0, 1, 1, 0], [1, 1, 0, 0]) <= 1.0


class TestLogLoss:
    def test_confident_correct_is_small(self):
        proba = np.array([[0.99, 0.01], [0.01, 0.99]])
        assert log_loss([0, 1], proba) < 0.1

    def test_confident_wrong_is_large(self):
        proba = np.array([[0.01, 0.99], [0.99, 0.01]])
        assert log_loss([0, 1], proba) > 2.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            log_loss([0, 1], np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]]), labels=[0, 1])


class TestRegressionMetrics:
    def test_mse_zero_for_equal(self):
        assert mean_squared_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_mse_value(self):
        assert mean_squared_error([0.0, 0.0], [1.0, 3.0]) == pytest.approx(5.0)

    def test_mae_value(self):
        assert mean_absolute_error([0.0, 0.0], [1.0, 3.0]) == pytest.approx(2.0)

    def test_mse_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mean_squared_error([1.0, 2.0], [1.0])

    def test_r2_perfect(self):
        assert r2_score([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 1.0

    def test_r2_mean_predictor_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, y.mean())) == pytest.approx(0.0)


class TestMetricProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=60),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_accuracy_bounds_and_permutation_symmetry(self, labels, rnd):
        predictions = list(labels)
        rnd.shuffle(predictions)
        value = accuracy_score(labels, predictions)
        assert 0.0 <= value <= 1.0
        # Accuracy of identical arrays is 1 regardless of content.
        assert accuracy_score(labels, labels) == 1.0

    @given(st.lists(st.integers(min_value=0, max_value=2), min_size=2, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_confusion_matrix_total_is_sample_count(self, labels):
        predictions = labels[::-1]
        matrix = confusion_matrix(labels, predictions)
        assert matrix.sum() == len(labels)
