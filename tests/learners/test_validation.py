"""Tests for resampling: splits, k-fold CV and cross_val_score."""

import numpy as np
import pytest

from repro.learners.rules import ZeroR
from repro.learners.tree import J48
from repro.learners.validation import (
    KFold,
    StratifiedKFold,
    cross_val_accuracy,
    cross_val_score,
    train_test_split,
)


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100).reshape(-1, 1).astype(float)
        y = np.arange(100) % 2
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.25, random_state=0)
        assert len(X_te) == 25
        assert len(X_tr) + len(X_te) == 100
        assert len(y_tr) == len(X_tr)

    def test_no_overlap(self):
        X = np.arange(50).reshape(-1, 1).astype(float)
        y = np.arange(50) % 2
        X_tr, X_te, _, _ = train_test_split(X, y, test_size=0.3, random_state=1)
        assert set(X_tr.ravel()).isdisjoint(set(X_te.ravel()))

    def test_stratified_preserves_classes(self):
        X = np.zeros((100, 1))
        y = np.array([0] * 80 + [1] * 20)
        _, _, y_tr, y_te = train_test_split(X, y, test_size=0.25, random_state=0, stratify=True)
        assert set(np.unique(y_te)) == {0, 1}
        assert np.mean(y_te == 1) == pytest.approx(0.2, abs=0.1)

    def test_invalid_test_size_raises(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((10, 1)), np.zeros(10), test_size=1.5)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((10, 1)), np.zeros(9))


class TestKFold:
    def test_partitions_cover_everything_once(self):
        X = np.zeros((20, 2))
        seen = np.zeros(20, dtype=int)
        for train_idx, test_idx in KFold(n_splits=4, random_state=0).split(X):
            seen[test_idx] += 1
            assert set(train_idx).isdisjoint(set(test_idx))
        assert np.all(seen == 1)

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(np.zeros((3, 1))))

    def test_invalid_splits_raises(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)


class TestStratifiedKFold:
    def test_every_fold_has_both_classes(self):
        y = np.array([0] * 30 + [1] * 30)
        X = np.zeros((60, 1))
        for _, test_idx in StratifiedKFold(n_splits=3, random_state=0).split(X, y):
            assert set(np.unique(y[test_idx])) == {0, 1}

    def test_class_proportions_roughly_preserved(self):
        y = np.array([0] * 90 + [1] * 30)
        X = np.zeros((120, 1))
        for _, test_idx in StratifiedKFold(n_splits=4, random_state=0).split(X, y):
            assert np.mean(y[test_idx] == 1) == pytest.approx(0.25, abs=0.08)

    def test_partition_property(self):
        y = np.arange(40) % 4
        X = np.zeros((40, 1))
        seen = np.zeros(40, dtype=int)
        for _, test_idx in StratifiedKFold(n_splits=5, random_state=1).split(X, y):
            seen[test_idx] += 1
        assert np.all(seen == 1)


class TestCrossValScore:
    def test_returns_one_score_per_fold(self, simple_xy):
        X, y = simple_xy
        scores = cross_val_score(J48(), X, y, cv=4, random_state=0)
        assert len(scores) == 4
        assert np.all((scores >= 0) & (scores <= 1))

    def test_zero_r_matches_majority_fraction(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        y = np.array([0] * 150 + [1] * 50)
        accuracy = cross_val_accuracy(ZeroR(), X, y, cv=5, random_state=0)
        assert accuracy == pytest.approx(0.75, abs=0.05)

    def test_informative_model_beats_zero_r(self, simple_xy):
        X, y = simple_xy
        assert cross_val_accuracy(J48(), X, y, cv=3, random_state=0) > cross_val_accuracy(
            ZeroR(), X, y, cv=3, random_state=0
        )

    def test_crashing_estimator_scores_zero_not_raises(self, simple_xy):
        class Broken(J48):
            def _fit(self, X, y):
                raise RuntimeError("boom")

        X, y = simple_xy
        scores = cross_val_score(Broken(), X, y, cv=3, random_state=0)
        assert np.all(scores == 0.0)

    def test_cv_clamped_for_tiny_classes(self):
        # One class has only 2 members; requesting 10 folds must not crash.
        X = np.random.default_rng(0).normal(size=(20, 2))
        y = np.array([0] * 18 + [1] * 2)
        scores = cross_val_score(J48(), X, y, cv=10, random_state=0)
        assert len(scores) >= 2
