"""Unit tests for the Pipeline learner and the pipeline-wrapped catalogues."""

import numpy as np
import pytest

from repro.datasets import corrupt, make_dataset
from repro.learners import clone, default_registry
from repro.learners.pipeline import (
    DEFAULT_PIPELINE_STEPS,
    EncoderStep,
    ImputerStep,
    Pipeline,
    PipelineFactory,
    ScalerStep,
    is_pipeline_spec,
    make_pipeline_spec,
    pipeline_context_suffix,
    pipeline_registry,
    registry_context_suffix,
    registry_has_pipelines,
    registry_training_matrix,
    split_columns,
    training_matrix,
)
from repro.learners.registry import AlgorithmRegistry
from repro.learners.regression_registry import default_regression_registry
from repro.learners.tree import J48


@pytest.fixture(scope="module")
def messy_dataset():
    clean = make_dataset(
        "gaussian_clusters", "clean", n_records=120, n_numeric=4,
        n_categorical=2, n_classes=3, random_state=0,
    )
    return corrupt(clean, missing_rate=0.25, rare_rate=0.15, scale_skew=1.0, random_state=1)


@pytest.fixture(scope="module")
def small_pipeline_registry():
    return pipeline_registry(default_registry().subset(["J48", "NaiveBayes", "IBk"]))


class TestSplitColumns:
    def test_float_matrix_is_all_numeric(self):
        numeric, categorical = split_columns(np.zeros((5, 3)))
        assert numeric == [0, 1, 2] and categorical == []

    def test_object_matrix_detects_categorical(self):
        X = np.array([[1.0, "a"], [np.nan, "b"], [None, "a"]], dtype=object)
        numeric, categorical = split_columns(X)
        assert numeric == [0] and categorical == [1]

    def test_missing_values_do_not_make_a_column_categorical(self):
        X = np.array([[np.nan], [None], [3.5]], dtype=object)
        numeric, categorical = split_columns(X)
        assert numeric == [0] and categorical == []

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            split_columns(np.zeros((2, 2, 2)))


class TestPipelineEstimator:
    def test_fits_and_predicts_on_raw_messy_matrix(self, messy_dataset):
        X, y = messy_dataset.to_raw_matrix()
        pipeline = Pipeline(J48(max_depth=6), imputer=ImputerStep(), encoder=EncoderStep())
        pipeline.fit(X, y)
        predictions = pipeline.predict(X)
        assert predictions.shape == y.shape
        assert pipeline.score(X, y) > 0.5
        assert pipeline.predict_proba(X).shape[0] == len(y)

    def test_disabled_imputer_crashes_on_missing_values(self, messy_dataset):
        X, y = messy_dataset.to_raw_matrix()
        pipeline = Pipeline(J48(), imputer=ImputerStep(enabled=False))
        with pytest.raises(ValueError):
            pipeline.fit(X, y)

    def test_scaler_kinds(self, messy_dataset):
        X, y = messy_dataset.to_raw_matrix()
        for kind in ("none", "standard", "minmax"):
            pipeline = Pipeline(J48(max_depth=4), scaler=ScalerStep(kind=kind))
            assert pipeline.fit(X, y).score(X, y) > 0.4

    def test_plain_float_matrix_works(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 4))
        y = (X[:, 0] > 0).astype(int)
        pipeline = Pipeline(J48(max_depth=4))
        assert pipeline.fit(X, y).score(X, y) > 0.8

    def test_clone_returns_refittable_copy(self, messy_dataset):
        X, y = messy_dataset.to_raw_matrix()
        pipeline = Pipeline(J48(max_depth=5), scaler=ScalerStep(kind="standard"))
        pipeline.fit(X, y)
        cloned = clone(pipeline)
        assert cloned is not pipeline
        assert cloned.scaler.kind == "standard"
        cloned.fit(X, y)
        assert cloned.score(X, y) > 0.4

    def test_predict_before_fit_raises(self, messy_dataset):
        X, _ = messy_dataset.to_raw_matrix()
        from repro.learners import NotFittedError

        with pytest.raises(NotFittedError):
            Pipeline(J48()).predict(X)

    def test_transform_handles_unseen_categories_between_folds(self, messy_dataset):
        X, y = messy_dataset.to_raw_matrix()
        pipeline = Pipeline(J48(max_depth=5), encoder=EncoderStep(group_rare=True, min_frequency=3))
        pipeline.fit(X[:60], y[:60])
        # The second half contains rare values the first half never saw.
        assert pipeline.predict(X[60:]).shape == y[60:].shape


class TestPipelineSpecs:
    def test_joined_space_has_prefixed_step_and_estimator_params(self):
        spec = make_pipeline_spec(default_registry().get("J48"))
        names = spec.space.names
        assert "imputer:enabled" in names
        assert "imputer:strategy" in names
        assert "scaler:kind" in names
        assert "encoder:group_rare" in names
        assert "estimator:max_depth" in names
        # Activation condition travels with the namespace.
        condition = spec.space.condition("imputer:strategy")
        assert condition is not None and condition.parent == "imputer:enabled"

    def test_default_config_builds_working_pipeline(self, messy_dataset):
        spec = make_pipeline_spec(default_registry().get("NaiveBayes"))
        estimator = spec.build(spec.default_config())
        assert isinstance(estimator, Pipeline)
        assert estimator.imputer.enabled is True  # default rescues messy data
        X, y = training_matrix(messy_dataset, spec)
        assert estimator.fit(X, y).score(X, y) > 0.4

    def test_partial_config_fills_step_defaults(self):
        spec = make_pipeline_spec(default_registry().get("J48"))
        estimator = spec.build({"estimator:max_depth": 3, "scaler:kind": "minmax"})
        assert estimator.estimator.max_depth == 3
        assert estimator.scaler.kind == "minmax"
        assert estimator.imputer.enabled is True

    def test_wrapping_is_idempotent(self):
        spec = make_pipeline_spec(default_registry().get("J48"))
        assert make_pipeline_spec(spec) is spec

    def test_sampled_configs_build(self, small_pipeline_registry):
        rng = np.random.default_rng(3)
        for name in small_pipeline_registry.names:
            spec = small_pipeline_registry.get(name)
            for _ in range(5):
                assert isinstance(spec.build(spec.space.sample(rng)), Pipeline)

    def test_registry_preserves_names_groups_costs(self, small_pipeline_registry):
        bare = default_registry().subset(["J48", "NaiveBayes", "IBk"])
        assert small_pipeline_registry.names == bare.names
        for name in bare.names:
            assert small_pipeline_registry.get(name).group == bare.get(name).group
            assert small_pipeline_registry.get(name).cost == bare.get(name).cost

    def test_regression_catalogue_wraps_too(self):
        registry = pipeline_registry(task="regression")
        assert registry.names == default_regression_registry().names
        assert all(is_pipeline_spec(spec) for spec in registry)

    def test_dummy_param_estimators_survive_wrapping(self):
        registry = pipeline_registry(default_registry().subset(["ZeroR", "IB1"]))
        for name in registry.names:
            spec = registry.get(name)
            assert isinstance(spec.build(spec.default_config()), Pipeline)


class TestContextSuffixes:
    def test_bare_specs_contribute_nothing(self):
        spec = default_registry().get("J48")
        assert pipeline_context_suffix(spec) == ""
        assert registry_context_suffix(default_registry()) == ""
        assert not registry_has_pipelines(default_registry())

    def test_pipeline_specs_append_structure(self, small_pipeline_registry):
        spec = small_pipeline_registry.get("J48")
        assert pipeline_context_suffix(spec) == "-pipeline[imputer+scaler+encoder]"
        assert registry_context_suffix(small_pipeline_registry) == "-pipeline[imputer+scaler+encoder]"
        assert registry_has_pipelines(small_pipeline_registry)

    def test_factory_structure_matches_default_steps(self):
        factory = PipelineFactory(default_registry().get("J48"), DEFAULT_PIPELINE_STEPS)
        assert factory.structure == "imputer+scaler+encoder"


class TestJointSpaceConditions:
    def test_joint_space_preserves_step_activation_conditions(self):
        from repro.baselines.autoweka import ALGORITHM_KEY, joint_space

        registry = pipeline_registry(default_registry().subset(["J48", "ZeroR"]))
        space = joint_space(registry)
        # min_frequency must require BOTH the root selecting J48 and
        # group_rare being on — not just the algorithm gate.
        name = "J48::encoder:min_frequency"
        base = {ALGORITHM_KEY: "J48", "J48::encoder:group_rare": True}
        assert space.is_active(name, base)
        assert not space.is_active(name, {**base, "J48::encoder:group_rare": False})
        assert not space.is_active(name, {**base, ALGORITHM_KEY: "ZeroR"})
        # Inactive knobs collapse to defaults, so behaviourally identical
        # configs share one fingerprint instead of splitting the cache.
        rng = np.random.default_rng(0)
        for _ in range(20):
            config = space.sample(rng)
            if not config["J48::encoder:group_rare"]:
                assert config["J48::encoder:min_frequency"] == 6  # the default
            if not config["J48::imputer:enabled"]:
                assert config["J48::imputer:strategy"] == "mean"

    def test_joint_space_handles_compound_conditions(self):
        from repro.baselines.autoweka import ALGORITHM_KEY, joint_space
        from repro.hpo.space import AndCondition, BoolParam, ConfigSpace, Condition
        from repro.learners.registry import AlgorithmSpec
        from repro.learners.rules import ZeroR

        space = ConfigSpace([BoolParam("a"), BoolParam("b"), BoolParam("c")])
        space.add_condition(
            "c", AndCondition((Condition("a", (True,)), Condition("b", (True,))))
        )
        registry = AlgorithmRegistry([AlgorithmSpec("Z", "rules", lambda **kw: ZeroR(), space)])
        joint = joint_space(registry)
        active = {ALGORITHM_KEY: "Z", "Z::a": True, "Z::b": True}
        assert joint.is_active("Z::c", active)
        assert not joint.is_active("Z::c", {**active, "Z::b": False})


class TestIntegerCodedCategories:
    def test_raw_matrix_keeps_integer_categories_categorical(self):
        from repro.datasets import Dataset

        rng = np.random.default_rng(0)
        dataset = Dataset(
            name="intcat",
            numeric=rng.normal(size=(60, 2)),
            categorical=np.array([[int(v)] for v in rng.integers(0, 3, size=60)], dtype=object),
            target=np.array(["a", "b"] * 30, dtype=object),
        )
        X, _ = dataset.to_raw_matrix()
        numeric, categorical = split_columns(X)
        # Integer category codes must route to the encoder, exactly like the
        # bare path one-hot encodes them — not to the imputer/scaler.
        assert numeric == [0, 1] and categorical == [2]
        pipeline = Pipeline(J48(max_depth=4))
        pipeline.fit(X, dataset._encoded_target())
        assert pipeline.categorical_columns_ == [2]


class TestTrainingMatrix:
    def test_bare_spec_gets_encoded_matrix(self, messy_dataset):
        X, y = training_matrix(messy_dataset, default_registry().get("J48"))
        assert X.dtype == np.float64  # one-hot encoded, NaNs preserved
        assert np.isnan(X).any()

    def test_pipeline_spec_gets_raw_matrix(self, messy_dataset, small_pipeline_registry):
        X, y = training_matrix(messy_dataset, small_pipeline_registry.get("J48"))
        assert X.dtype == object
        assert X.shape[1] == messy_dataset.n_attributes

    def test_registry_training_matrix_switches_on_catalogue(self, messy_dataset, small_pipeline_registry):
        X_bare, _ = registry_training_matrix(messy_dataset, default_registry())
        X_pipe, _ = registry_training_matrix(messy_dataset, small_pipeline_registry)
        assert X_bare.dtype == np.float64 and X_pipe.dtype == object
