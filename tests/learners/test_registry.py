"""Tests for the algorithm catalogue (registry + per-algorithm spaces)."""

import numpy as np
import pytest

from repro.learners import CAList, default_registry
from repro.learners.base import BaseClassifier
from repro.learners.registry import AlgorithmRegistry


@pytest.fixture(scope="module")
def registry():
    return default_registry()


class TestCatalogueContents:
    def test_catalogue_is_large_and_heterogeneous(self, registry):
        assert len(registry) >= 35
        groups = registry.groups()
        # The Weka groups of Table IV are all represented.
        for group in ("trees", "meta", "bayes", "lazy", "functions", "rules", "misc"):
            assert group in groups and len(groups[group]) >= 2

    def test_calist_matches_registry(self, registry):
        assert CAList() == registry.names

    def test_no_duplicate_names(self, registry):
        assert len(set(registry.names)) == len(registry.names)

    def test_unknown_algorithm_raises(self, registry):
        with pytest.raises(KeyError):
            registry.get("NotAnAlgorithm")

    def test_subset_preserves_order_and_content(self, registry):
        names = ["NaiveBayes", "J48", "IBk"]
        subset = registry.subset(names)
        assert subset.names == names

    def test_by_cost_filters(self, registry):
        cheap = registry.by_cost("cheap")
        assert 0 < len(cheap) < len(registry)
        assert all(spec.cost == "cheap" for spec in cheap)


class TestSpecBehaviour:
    def test_every_spec_has_nonempty_space(self, registry):
        for spec in registry:
            assert len(spec.space) >= 1

    def test_default_build_is_classifier(self, registry):
        for spec in registry:
            estimator = spec.build()
            assert isinstance(estimator, BaseClassifier)

    def test_build_rejects_unknown_hyperparameters(self, registry):
        with pytest.raises(ValueError):
            registry.get("J48").build({"definitely_not_a_param": 3})

    def test_build_with_sampled_config_fits(self, registry, simple_xy):
        """Every algorithm must accept a random configuration from its own space."""
        X, y = simple_xy
        X, y = X[:60], y[:60]
        rng = np.random.default_rng(0)
        for spec in registry:
            config = spec.space.sample(rng)
            estimator = spec.build(config)
            estimator.fit(X, y)
            predictions = estimator.predict(X[:10])
            assert len(predictions) == 10

    def test_default_config_is_valid(self, registry):
        for spec in registry:
            config = spec.default_config()
            assert spec.space.validate(config)


class TestRegistryConstruction:
    def test_duplicate_names_rejected(self, registry):
        spec = registry.get("J48")
        with pytest.raises(ValueError):
            AlgorithmRegistry([spec, spec])

    def test_contains_and_iteration(self, registry):
        assert "RandomForest" in registry
        assert "Nope" not in registry
        assert len(list(iter(registry))) == len(registry)


class TestBuildSeeding:
    """Catalogue builds must be deterministic: the evaluation layer's
    replay-equivalence contract (identical config -> identical score across
    engines, workers and warm restarts) breaks if a stochastic learner is
    left drawing fresh OS entropy on every fit."""

    def test_stochastic_learners_get_a_pinned_seed(self, registry):
        for name in ("Bagging", "RandomForest", "AdaBoostM1"):
            estimator = registry.get(name).build({})
            assert estimator.random_state == 0, name

    def test_explicit_seed_is_never_overridden(self, registry):
        # JRip's space only offers random_state=None, so build() pins it...
        spec = registry.get("JRip")
        assert spec.build({"random_state": None}).random_state == 0
        # ...but a spec whose space admits integer seeds keeps them verbatim.
        from repro.learners.registry import AlgorithmSpec, CategoricalParam, _space

        factory = registry.get("Bagging").factory
        seeded = AlgorithmSpec(
            "SeededBagging", "meta", factory,
            _space(CategoricalParam("random_state", [7, None])),
        )
        assert seeded.build({"random_state": 7}).random_state == 7

    def test_repeated_builds_fit_identically(self, registry, simple_xy):
        X, y = simple_xy
        X, y = X[:80], y[:80]
        spec = registry.get("Bagging")
        probas = []
        for _ in range(2):
            estimator = spec.build({})
            estimator.fit(X, y)
            probas.append(estimator.predict_proba(X[:20]))
        assert np.array_equal(probas[0], probas[1])
