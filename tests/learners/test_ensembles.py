"""Tests for forest and meta-learner ensembles."""

import numpy as np
import pytest

from repro.learners.bayes import NaiveBayes
from repro.learners.ensemble import (
    AdaBoostM1,
    Bagging,
    LogitBoost,
    MultiBoostAB,
    RandomCommittee,
    RandomSubSpace,
    RotationForest,
    StackingC,
    VotingEnsemble,
)
from repro.learners.forest import ExtraTrees, RandomForest
from repro.learners.rules import ZeroR
from repro.learners.tree import DecisionStump, J48


class TestRandomForest:
    def test_beats_single_stump(self, simple_xy):
        X, y = simple_xy
        forest = RandomForest(n_estimators=20, random_state=0).fit(X, y)
        stump = DecisionStump().fit(X, y)
        assert forest.score(X, y) >= stump.score(X, y)

    def test_number_of_members(self, simple_xy):
        X, y = simple_xy
        forest = RandomForest(n_estimators=7, random_state=0).fit(X, y)
        assert len(forest.estimators_) == 7

    def test_invalid_n_estimators_raises(self, simple_xy):
        X, y = simple_xy
        with pytest.raises(ValueError):
            RandomForest(n_estimators=0).fit(X, y)

    def test_proba_normalised(self, simple_xy):
        X, y = simple_xy
        proba = RandomForest(n_estimators=10, random_state=0).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_extratrees_fits(self, simple_xy):
        X, y = simple_xy
        assert ExtraTrees(n_estimators=10, random_state=0).fit(X, y).score(X, y) > 0.7

    def test_deterministic_with_seed(self, simple_xy):
        X, y = simple_xy
        a = RandomForest(n_estimators=8, random_state=3).fit(X, y).predict(X)
        b = RandomForest(n_estimators=8, random_state=3).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)


class TestBoosting:
    def test_adaboost_improves_over_stump(self, rings_dataset):
        X, y = rings_dataset.to_matrix()
        stump_accuracy = DecisionStump().fit(X, y).score(X, y)
        boosted = AdaBoostM1(n_estimators=25, random_state=0).fit(X, y)
        assert boosted.score(X, y) >= stump_accuracy

    def test_adaboost_stores_weights(self, simple_xy):
        X, y = simple_xy
        model = AdaBoostM1(n_estimators=10, random_state=0).fit(X, y)
        assert len(model.estimators_) == len(model.estimator_weights_)
        assert len(model.estimators_) >= 1

    def test_adaboost_invalid_learning_rate(self, simple_xy):
        X, y = simple_xy
        with pytest.raises(ValueError):
            AdaBoostM1(learning_rate=0.0).fit(X, y)

    def test_logitboost_learns(self, simple_xy):
        X, y = simple_xy
        model = LogitBoost(n_estimators=20, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.6

    def test_multiboost_fits_and_predicts(self, simple_xy):
        X, y = simple_xy
        model = MultiBoostAB(n_estimators=12, n_committees=3, random_state=0).fit(X, y)
        assert set(model.predict(X)).issubset(set(np.unique(y)))


class TestBaggingStyle:
    def test_bagging_default_base(self, simple_xy):
        X, y = simple_xy
        model = Bagging(n_estimators=8, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.7

    def test_bagging_with_custom_base(self, simple_xy):
        X, y = simple_xy
        model = Bagging(base_estimator=NaiveBayes(), n_estimators=5, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.5

    def test_bagging_invalid_max_samples(self, simple_xy):
        X, y = simple_xy
        with pytest.raises(ValueError):
            Bagging(max_samples=0.0).fit(X, y)

    def test_random_subspace_members_see_fewer_features(self, simple_xy):
        X, y = simple_xy
        model = RandomSubSpace(n_estimators=6, subspace_fraction=0.5, random_state=0).fit(X, y)
        assert all(len(features) <= X.shape[1] for features in model.subspaces_)
        assert model.score(X, y) > 0.5

    def test_random_subspace_invalid_fraction(self, simple_xy):
        X, y = simple_xy
        with pytest.raises(ValueError):
            RandomSubSpace(subspace_fraction=1.5).fit(X, y)

    def test_random_committee_diversity_across_seeds(self, simple_xy):
        X, y = simple_xy
        model = RandomCommittee(n_estimators=5, random_state=0).fit(X, y)
        assert len(model.estimators_) == 5
        assert model.score(X, y) > 0.6


class TestStackingAndVoting:
    def test_rotation_forest_learns(self, simple_xy):
        X, y = simple_xy
        model = RotationForest(n_estimators=4, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.6

    def test_stacking_learns(self, simple_xy):
        X, y = simple_xy
        model = StackingC(cv=3, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.6

    def test_stacking_custom_bases(self, simple_xy):
        X, y = simple_xy
        model = StackingC(base_estimators=[J48(), ZeroR()], cv=2, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.4

    def test_voting_combines_members(self, simple_xy):
        X, y = simple_xy
        model = VotingEnsemble(estimators=[J48(), NaiveBayes()]).fit(X, y)
        assert model.score(X, y) > 0.6

    def test_voting_proba_is_average(self, simple_xy):
        X, y = simple_xy
        model = VotingEnsemble(estimators=[ZeroR(), ZeroR()]).fit(X, y)
        proba = model.predict_proba(X[:5])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
