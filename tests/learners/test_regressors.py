"""Unit tests for the regressor catalogue and its registry."""

import numpy as np
import pytest

from repro.learners import (
    BaseRegressor,
    DecisionTreeRegressor,
    DummyRegressor,
    ExtraTreesRegressor,
    GradientBoostingRegressor,
    KNeighborsRegressor,
    LassoRegressor,
    MLPRegressor,
    NotFittedError,
    RAList,
    RandomForestRegressor,
    RidgeRegressor,
    SVR,
    clone,
    default_regression_registry,
    registry_for_task,
)
from repro.learners.base import check_X_y
from repro.learners.regression import check_X_y_regression

ALL_REGRESSORS = [
    DummyRegressor,
    RidgeRegressor,
    LassoRegressor,
    SVR,
    KNeighborsRegressor,
    DecisionTreeRegressor,
    RandomForestRegressor,
    ExtraTreesRegressor,
    GradientBoostingRegressor,
]


@pytest.fixture(scope="module")
def easy_linear():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(160, 4))
    y = X @ np.array([2.0, -1.0, 0.5, 0.0]) + rng.normal(scale=0.05, size=160)
    return X, y


@pytest.fixture(scope="module")
def nonlinear():
    rng = np.random.default_rng(1)
    X = rng.uniform(-1, 1, size=(160, 3))
    y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2 + rng.normal(scale=0.05, size=160)
    return X, y


class TestRegressorProtocol:
    @pytest.mark.parametrize("cls", ALL_REGRESSORS, ids=lambda c: c.__name__)
    def test_fit_predict_shapes(self, cls, easy_linear):
        X, y = easy_linear
        model = cls()
        assert model.fit(X, y) is model
        predictions = model.predict(X)
        assert predictions.shape == y.shape
        assert predictions.dtype == np.float64
        assert np.all(np.isfinite(predictions))

    @pytest.mark.parametrize("cls", ALL_REGRESSORS, ids=lambda c: c.__name__)
    def test_predict_before_fit_raises(self, cls, easy_linear):
        X, _ = easy_linear
        with pytest.raises(NotFittedError):
            cls().predict(X)

    @pytest.mark.parametrize("cls", ALL_REGRESSORS, ids=lambda c: c.__name__)
    def test_clone_roundtrip(self, cls):
        model = cls()
        copied = clone(model)
        assert type(copied) is cls
        assert copied.get_params() == model.get_params()

    @pytest.mark.parametrize("cls", ALL_REGRESSORS, ids=lambda c: c.__name__)
    def test_set_params_rejects_unknown(self, cls):
        with pytest.raises(ValueError, match="invalid parameter"):
            cls().set_params(definitely_not_a_param=1)

    def test_check_X_y_regression_accepts_float_targets(self):
        X = np.ones((5, 2))
        y = np.array([0.5, 1.5, 2.5, 3.5, 4.5])
        # The classification validator would reject these non-integral labels.
        with pytest.raises(ValueError):
            check_X_y(X, y)
        Xv, yv = check_X_y_regression(X, y)
        assert yv.dtype == np.float64

    def test_check_X_y_regression_rejects_nan_target(self):
        with pytest.raises(ValueError, match="NaN"):
            check_X_y_regression(np.ones((3, 2)), np.array([1.0, np.nan, 2.0]))


class TestRegressorQuality:
    @pytest.mark.parametrize(
        "cls", [RidgeRegressor, LassoRegressor, SVR], ids=lambda c: c.__name__
    )
    def test_linear_models_master_linear_data(self, cls, easy_linear):
        X, y = easy_linear
        assert cls().fit(X, y).score(X, y) > 0.9

    @pytest.mark.parametrize(
        "cls",
        [KNeighborsRegressor, DecisionTreeRegressor, GradientBoostingRegressor],
        ids=lambda c: c.__name__,
    )
    def test_nonlinear_models_beat_dummy_on_nonlinear_data(self, cls, nonlinear):
        X, y = nonlinear
        dummy = DummyRegressor().fit(X, y).score(X, y)
        assert cls().fit(X, y).score(X, y) > dummy + 0.3

    def test_forest_reduces_single_tree_variance(self, nonlinear):
        X, y = nonlinear
        rng = np.random.default_rng(7)
        test_idx = rng.choice(len(y), size=40, replace=False)
        train_mask = np.ones(len(y), dtype=bool)
        train_mask[test_idx] = False
        tree = DecisionTreeRegressor(max_depth=8, random_state=0)
        forest = RandomForestRegressor(n_estimators=25, max_depth=8, random_state=0)
        tree.fit(X[train_mask], y[train_mask])
        forest.fit(X[train_mask], y[train_mask])
        assert forest.score(X[test_idx], y[test_idx]) >= tree.score(
            X[test_idx], y[test_idx]
        ) - 0.05

    def test_dummy_strategies(self):
        X = np.ones((6, 1))
        y = np.array([1.0, 1.0, 1.0, 1.0, 1.0, 100.0])
        assert DummyRegressor("mean").fit(X, y).predict(X[:1])[0] == pytest.approx(
            y.mean()
        )
        assert DummyRegressor("median").fit(X, y).predict(X[:1])[0] == pytest.approx(1.0)

    def test_gradient_boosting_improves_with_more_stages(self, nonlinear):
        X, y = nonlinear
        weak = GradientBoostingRegressor(n_estimators=2, random_state=0).fit(X, y)
        strong = GradientBoostingRegressor(n_estimators=40, random_state=0).fit(X, y)
        assert strong.score(X, y) > weak.score(X, y)

    def test_knn_distance_weighting_interpolates_training_points(self, nonlinear):
        X, y = nonlinear
        model = KNeighborsRegressor(n_neighbors=5, weighting="distance").fit(X, y)
        assert model.score(X, y) > 0.99  # zero-distance neighbour dominates


class TestRegressionRegistry:
    def test_catalogue_contents(self):
        names = RAList()
        for expected in (
            "Ridge", "Lasso", "SVR", "KNeighborsRegressor", "RandomForestRegressor",
            "ExtraTreesRegressor", "GradientBoosting", "MLPRegressor", "DummyRegressor",
        ):
            assert expected in names

    def test_every_spec_builds_default_and_sampled_configs(self, regression_xy):
        X, y = regression_xy
        rng = np.random.default_rng(0)
        for spec in default_regression_registry():
            default = spec.build(spec.default_config())
            default.fit(X, y)
            sampled = spec.build(spec.space.sample(rng))
            sampled.fit(X, y)
            assert np.all(np.isfinite(sampled.predict(X)))

    def test_registry_for_task(self):
        assert "J48" in registry_for_task("classification").names
        assert "Ridge" in registry_for_task("regression").names
        from repro.datasets import TaskType

        assert "Ridge" in registry_for_task(TaskType.REGRESSION).names
        with pytest.raises(ValueError, match="unknown task"):
            registry_for_task("ranking")

    def test_mlp_regressor_is_catalogue_compatible(self, regression_xy):
        X, y = regression_xy
        spec = default_regression_registry().get("MLPRegressor")
        model = spec.build({"hidden_layer": 1, "hidden_layer_size": 8, "max_iter": 50})
        assert isinstance(model, MLPRegressor)
        model.fit(X, y)
        assert model.predict(X).shape == y.shape

    def test_base_regressor_repr_lists_params(self):
        assert "alpha" in repr(RidgeRegressor(alpha=2.0))
        assert isinstance(RidgeRegressor(), BaseRegressor)
