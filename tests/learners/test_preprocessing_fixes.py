"""Regression tests for the preprocessing correctness sweep.

Each test here fails on the pre-fix code:

* ``StandardScaler.fit`` / ``MinMaxScaler.fit`` used plain ``mean``/``std``
  (``min``/``max``), so one NaN cell poisoned the whole column's statistics —
  the ``scale == 0`` guard never matches NaN — and every row of that column
  became NaN at transform time.
* ``MLPRegressor.fit`` standardised with the same NaN-propagating statistics.
* ``LabelEncoder.fit`` sorted labels by ``str(value)``, ordering numeric
  labels lexicographically (10 before 2) and scrambling ``classes_``.
* ``MinMaxScaler`` had no ``inverse_transform``; ``Pipeline.predict_proba``
  raised a bare ``AttributeError`` from deep inside the estimator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_gaussian_clusters
from repro.learners.regression import RidgeRegressor
from repro.learners.neural import MLPRegressor
from repro.learners.pipeline import Pipeline
from repro.learners.preprocessing import LabelEncoder, MinMaxScaler, StandardScaler


class TestNaNAwareScalers:
    def test_standard_scaler_ignores_nan_cells(self):
        rng = np.random.default_rng(0)
        X = rng.normal(loc=3.0, size=(50, 3))
        X[5, 0] = np.nan
        X[7, 0] = np.nan
        scaler = StandardScaler().fit(X)
        assert np.isfinite(scaler.mean_).all()
        assert np.isfinite(scaler.scale_).all()
        observed = X[~np.isnan(X[:, 0]), 0]
        assert scaler.mean_[0] == pytest.approx(observed.mean())
        assert scaler.scale_[0] == pytest.approx(observed.std())
        # Non-missing entries transform finitely; only NaN cells stay NaN.
        out = scaler.transform(X)
        assert np.isfinite(out[~np.isnan(X)]).all()
        assert np.isnan(out[5, 0])

    def test_standard_scaler_all_nan_column_degrades_to_identity(self):
        X = np.column_stack([np.full(10, np.nan), np.arange(10.0)])
        scaler = StandardScaler().fit(X)
        assert scaler.mean_[0] == 0.0 and scaler.scale_[0] == 1.0

    def test_minmax_scaler_ignores_nan_cells(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(2.0, 9.0, size=(40, 2))
        X[3, 1] = np.nan
        scaler = MinMaxScaler().fit(X)
        assert np.isfinite(scaler.min_).all()
        assert np.isfinite(scaler.range_).all()
        observed = X[~np.isnan(X[:, 1]), 1]
        assert scaler.min_[1] == pytest.approx(observed.min())
        assert scaler.range_[1] == pytest.approx(observed.max() - observed.min())
        out = scaler.transform(X)
        assert np.isfinite(out[~np.isnan(X)]).all()

    def test_scalers_unchanged_on_clean_data(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(30, 4))
        standard = StandardScaler().fit(X)
        np.testing.assert_allclose(standard.mean_, X.mean(axis=0))
        np.testing.assert_allclose(standard.scale_, X.std(axis=0))
        minmax = MinMaxScaler().fit(X)
        np.testing.assert_allclose(minmax.min_, X.min(axis=0))
        np.testing.assert_allclose(minmax.range_, X.max(axis=0) - X.min(axis=0))


class TestMLPRegressorNaNStatistics:
    def test_fit_statistics_survive_nan_cells(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(60, 5))
        X[4, 2] = np.nan
        y = rng.normal(size=60)
        regressor = MLPRegressor(max_iter=5, random_state=0).fit(X, y)
        assert np.isfinite(regressor._mean).all()
        assert np.isfinite(regressor._scale).all()
        observed = X[~np.isnan(X[:, 2]), 2]
        assert regressor._mean[2] == pytest.approx(observed.mean())


class TestLabelEncoderNumericOrdering:
    def test_numeric_labels_sort_numerically(self):
        encoder = LabelEncoder().fit([10, 2, 1, 33])
        assert encoder.classes_ == [1, 2, 10, 33]
        np.testing.assert_array_equal(
            encoder.transform([1, 2, 10, 33]), [0, 1, 2, 3]
        )

    def test_float_labels_sort_numerically(self):
        encoder = LabelEncoder().fit([10.0, 2.5, -1.0])
        assert encoder.classes_ == [-1.0, 2.5, 10.0]

    def test_round_trip_with_numeric_labels(self):
        y = np.array([33, 1, 10, 2, 10, 33])
        encoder = LabelEncoder()
        np.testing.assert_array_equal(encoder.inverse_transform(encoder.fit_transform(y)), y)

    def test_string_label_contexts_keep_their_encoding(self):
        # Store fingerprints hash encoded matrices: for the contexts the store
        # already holds — all-string labels, and integer labels 0..k-1 — the
        # encoding must be exactly what the old str(value) sort produced.
        old_key = lambda v: (str(type(v)), str(v))  # noqa: E731 — the pre-fix sort
        strings = ["setosa", "virginica", "versicolor", "setosa"]
        assert LabelEncoder().fit(strings).classes_ == sorted(set(strings), key=old_key)
        small_ints = list(range(10))
        assert LabelEncoder().fit(small_ints).classes_ == sorted(
            set(small_ints), key=old_key
        )

    def test_encoded_target_unchanged_for_standard_datasets(self):
        dataset = make_gaussian_clusters(
            "enc", n_records=60, n_numeric=3, n_categorical=0, n_classes=3,
            random_state=0,
        )
        _, y = dataset.to_raw_matrix()
        assert sorted(set(np.asarray(y).tolist())) == list(range(3))


class TestMinMaxInverseTransform:
    def test_round_trip(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(-4.0, 7.0, size=(30, 3))
        scaler = MinMaxScaler()
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.fit_transform(X)), X
        )

    def test_zero_range_column_maps_back_to_constant(self):
        X = np.column_stack([np.full(8, 2.5), np.arange(8.0)])
        scaler = MinMaxScaler()
        restored = scaler.inverse_transform(scaler.fit_transform(X))
        np.testing.assert_allclose(restored[:, 0], 2.5)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            MinMaxScaler().inverse_transform(np.zeros((2, 2)))


class TestPipelinePredictProbaError:
    def test_regressor_pipeline_explains_missing_predict_proba(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(40, 3))
        y = X @ np.array([1.0, -2.0, 0.5])
        pipeline = Pipeline(RidgeRegressor()).fit(X, y)
        with pytest.raises(AttributeError, match="RidgeRegressor does not implement"):
            pipeline.predict_proba(X)
        with pytest.raises(AttributeError, match="use Pipeline.predict instead"):
            pipeline.predict_proba(X)
