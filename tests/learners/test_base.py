"""Tests for the estimator base protocol (fit/predict/params/validation)."""

import numpy as np
import pytest

from repro.learners.base import (
    BaseClassifier,
    NotFittedError,
    check_array,
    check_X_y,
    clone,
)
from repro.learners.tree import J48
from repro.learners.rules import ZeroR


class TestCheckArray:
    def test_coerces_lists(self):
        out = check_array([[1, 2], [3, 4]])
        assert out.dtype == np.float64
        assert out.shape == (2, 2)

    def test_promotes_1d_to_row(self):
        assert check_array([1.0, 2.0, 3.0]).shape == (1, 3)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            check_array(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_array(np.zeros((0, 3)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_array([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_array([[1.0, np.inf]])


class TestCheckXy:
    def test_accepts_integer_like_floats(self):
        X, y = check_X_y([[1.0], [2.0]], [0.0, 1.0])
        assert y.dtype == np.int64

    def test_rejects_non_integer_labels(self):
        with pytest.raises(ValueError):
            check_X_y([[1.0], [2.0]], [0.5, 1.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            check_X_y([[1.0], [2.0]], [0, 1, 0])

    def test_rejects_2d_labels(self):
        with pytest.raises(ValueError):
            check_X_y([[1.0], [2.0]], [[0], [1]])


class TestBaseProtocol:
    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            ZeroR().predict([[1.0, 2.0]])

    def test_get_set_params_roundtrip(self):
        model = J48(max_depth=5, min_samples_leaf=3)
        params = model.get_params()
        assert params["max_depth"] == 5
        model.set_params(max_depth=7)
        assert model.get_params()["max_depth"] == 7

    def test_set_params_rejects_unknown(self):
        with pytest.raises(ValueError):
            J48().set_params(bogus=1)

    def test_clone_is_unfitted_copy(self, simple_xy):
        X, y = simple_xy
        model = J48(max_depth=4).fit(X, y)
        copy = clone(model)
        assert copy is not model
        assert copy.get_params()["max_depth"] == 4
        with pytest.raises(NotFittedError):
            copy.predict(X)

    def test_predict_labels_come_from_training_labels(self, simple_xy):
        X, y = simple_xy
        shifted = y + 5  # arbitrary non-contiguous labels
        model = J48().fit(X, shifted)
        predictions = model.predict(X)
        assert set(np.unique(predictions)).issubset(set(np.unique(shifted)))

    def test_predict_proba_rows_sum_to_one(self, simple_xy):
        X, y = simple_xy
        proba = J48().fit(X, y).predict_proba(X)
        assert proba.shape == (X.shape[0], len(np.unique(y)))
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_score_matches_accuracy(self, simple_xy):
        X, y = simple_xy
        model = J48().fit(X, y)
        assert model.score(X, y) == pytest.approx(np.mean(model.predict(X) == y))

    def test_repr_contains_params(self):
        assert "max_depth=3" in repr(J48(max_depth=3))

    def test_n_classes_property(self, simple_xy):
        X, y = simple_xy
        assert J48().fit(X, y).n_classes_ == len(np.unique(y))
