"""Tests for the Bayes, lazy, linear, SVM, neural, rule and misc learners."""

import numpy as np
import pytest

from repro.learners.bayes import AODE, HNB, BayesNet, NaiveBayes, NaiveBayesMultinomial
from repro.learners.lazy import IB1, IBk, KStar, LWL
from repro.learners.linear import LDA, LogisticRegression, SimpleLogistic
from repro.learners.misc import (
    ClassificationViaClustering,
    ClassificationViaRegression,
    HyperPipes,
    VFI,
)
from repro.learners.neural import MLPClassifier, MLPRegressor, MultilayerPerceptron, RBFNetwork
from repro.learners.rules import JRip, OneR, PART, Ridor, ZeroR
from repro.learners.svm import SMO, LibSVMClassifier


class TestBayes:
    def test_naive_bayes_separable_blobs(self, simple_xy):
        X, y = simple_xy
        assert NaiveBayes().fit(X, y).score(X, y) > 0.8

    def test_naive_bayes_proba_calibrated_direction(self, binary_xy):
        X, y = binary_xy
        proba = NaiveBayes().fit(X, y).predict_proba(X)
        # Average probability assigned to the true class should exceed 0.5.
        assert np.mean(proba[np.arange(len(y)), y]) > 0.5

    def test_multinomial_handles_negative_inputs(self, simple_xy):
        X, y = simple_xy
        model = NaiveBayesMultinomial().fit(X - X.mean(axis=0), y)
        assert set(model.predict(X)).issubset(set(np.unique(y)))

    def test_multinomial_invalid_alpha(self, simple_xy):
        X, y = simple_xy
        with pytest.raises(ValueError):
            NaiveBayesMultinomial(alpha=0.0).fit(X, y)

    def test_bayesnet_on_categorical_data(self, categorical_dataset):
        X, y = categorical_dataset.to_matrix()
        assert BayesNet().fit(X, y).score(X, y) > 0.5

    def test_aode_and_hnb_run(self, simple_xy):
        X, y = simple_xy
        assert AODE(max_parents=4).fit(X, y).score(X, y) > 0.5
        assert HNB(max_parents=4).fit(X, y).score(X, y) > 0.5


class TestLazy:
    def test_ibk_perfect_on_training_with_k1(self, simple_xy):
        X, y = simple_xy
        assert IB1().fit(X, y).score(X, y) == pytest.approx(1.0)

    def test_ibk_k_larger_than_dataset_is_clamped(self):
        X = np.random.default_rng(0).normal(size=(10, 2))
        y = np.arange(10) % 2
        model = IBk(n_neighbors=50).fit(X, y)
        assert len(model.predict(X)) == 10

    def test_ibk_distance_weighting(self, rings_dataset):
        X, y = rings_dataset.to_matrix()
        model = IBk(n_neighbors=7, weighting="distance").fit(X, y)
        assert model.score(X, y) > 0.8

    def test_ibk_invalid_params(self, simple_xy):
        X, y = simple_xy
        with pytest.raises(ValueError):
            IBk(n_neighbors=0).fit(X, y)
        with pytest.raises(ValueError):
            IBk(weighting="nope").fit(X, y)

    def test_kstar_learns_rings(self, rings_dataset):
        X, y = rings_dataset.to_matrix()
        assert KStar().fit(X, y).score(X, y) > 0.8

    def test_kstar_invalid_blend(self, simple_xy):
        X, y = simple_xy
        with pytest.raises(ValueError):
            KStar(blend=0.0).fit(X, y)

    def test_lwl_runs_and_beats_chance(self, simple_xy):
        X, y = simple_xy
        chance = 1.0 / len(np.unique(y))
        assert LWL(n_neighbors=20).fit(X, y).score(X, y) > chance


class TestLinear:
    def test_logistic_on_linear_problem(self, binary_xy):
        X, y = binary_xy
        assert LogisticRegression(max_iter=300).fit(X, y).score(X, y) > 0.85

    def test_logistic_invalid_C(self, binary_xy):
        X, y = binary_xy
        with pytest.raises(ValueError):
            LogisticRegression(C=0.0).fit(X, y)

    def test_simple_logistic_runs(self, binary_xy):
        X, y = binary_xy
        assert SimpleLogistic().fit(X, y).score(X, y) > 0.8

    def test_lda_on_gaussian_blobs(self, simple_xy):
        X, y = simple_xy
        assert LDA().fit(X, y).score(X, y) > 0.85

    def test_lda_invalid_shrinkage(self, simple_xy):
        X, y = simple_xy
        with pytest.raises(ValueError):
            LDA(shrinkage=2.0).fit(X, y)

    def test_lda_handles_constant_feature(self):
        rng = np.random.default_rng(0)
        X = np.hstack([rng.normal(size=(80, 2)), np.ones((80, 1))])
        y = (X[:, 0] > 0).astype(int)
        assert LDA().fit(X, y).score(X, y) > 0.8


class TestSVM:
    def test_linear_smo_on_separable_data(self, binary_xy):
        X, y = binary_xy
        assert SMO(C=1.0, random_state=0).fit(X, y).score(X, y) > 0.85

    def test_rbf_svm_on_rings(self, rings_dataset):
        X, y = rings_dataset.to_matrix()
        linear = SMO(random_state=0).fit(X, y).score(X, y)
        rbf = LibSVMClassifier(gamma=1.0, random_state=0).fit(X, y).score(X, y)
        assert rbf >= linear - 0.05  # the kernel should not hurt on the ring concept

    def test_invalid_hyperparameters(self, binary_xy):
        X, y = binary_xy
        with pytest.raises(ValueError):
            SMO(C=-1.0).fit(X, y)
        with pytest.raises(ValueError):
            LibSVMClassifier(gamma=0.0).fit(X, y)

    def test_subsampling_keeps_classes(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(900, 4))
        y = (X[:, 0] > 0).astype(int)
        model = SMO(max_train_samples=100, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.7


class TestNeural:
    def test_mlp_classifier_learns_blobs(self, simple_xy):
        X, y = simple_xy
        model = MLPClassifier(hidden_layer_size=24, max_iter=150, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.8

    def test_mlp_rejects_unknown_activation(self, simple_xy):
        X, y = simple_xy
        with pytest.raises(ValueError):
            MLPClassifier(activation="swish").fit(X, y)

    def test_mlp_sgd_solver_runs(self, binary_xy):
        X, y = binary_xy
        model = MLPClassifier(
            solver="sgd", learning_rate="adaptive", max_iter=80, random_state=0
        ).fit(X, y)
        assert model.score(X, y) > 0.7

    def test_weka_style_multilayer_perceptron(self, binary_xy):
        X, y = binary_xy
        assert MultilayerPerceptron(max_iter=120, random_state=0).fit(X, y).score(X, y) > 0.7

    def test_mlp_regressor_fits_linear_map(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        Y = X @ np.array([[1.0, -1.0], [0.5, 2.0], [0.0, 1.0]])
        model = MLPRegressor(
            hidden_layer=1, hidden_layer_size=32, max_iter=300, random_state=0
        ).fit(X, Y)
        predictions = model.predict(X)
        assert predictions.shape == Y.shape
        assert np.mean((predictions - Y) ** 2) < 0.5

    def test_mlp_regressor_single_output_returns_1d(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        y = X[:, 0] * 2.0
        predictions = MLPRegressor(max_iter=200, random_state=0).fit(X, y).predict(X)
        assert predictions.ndim == 1

    def test_mlp_regressor_params_roundtrip(self):
        model = MLPRegressor(hidden_layer=2)
        assert model.get_params()["hidden_layer"] == 2
        model.set_params(hidden_layer=3)
        assert model.hidden_layer == 3
        with pytest.raises(ValueError):
            model.set_params(bogus=1)

    def test_rbf_network_learns_rings(self, rings_dataset):
        X, y = rings_dataset.to_matrix()
        model = RBFNetwork(n_centers=15, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.8


class TestRules:
    def test_zero_r_predicts_majority(self):
        X = np.random.default_rng(0).normal(size=(50, 2))
        y = np.array([1] * 40 + [0] * 10)
        assert np.all(ZeroR().fit(X, y).predict(X) == 1)

    def test_one_r_uses_single_feature(self, simple_xy):
        X, y = simple_xy
        model = OneR().fit(X, y)
        assert 0 <= model.feature_ < X.shape[1]
        assert model.score(X, y) > 1.0 / len(np.unique(y))

    def test_one_r_invalid_bins(self, simple_xy):
        X, y = simple_xy
        with pytest.raises(ValueError):
            OneR(n_bins=1).fit(X, y)

    @pytest.mark.parametrize("cls", [JRip, PART, Ridor])
    def test_rule_learners_beat_chance_on_rules(self, cls, rules_dataset):
        X, y = rules_dataset.to_matrix()
        chance = np.bincount(y).max() / len(y)
        assert cls(random_state=0).fit(X, y).score(X, y) >= chance - 0.05


class TestMisc:
    def test_hyperpipes_runs(self, simple_xy):
        X, y = simple_xy
        model = HyperPipes().fit(X, y)
        assert model.score(X, y) > 1.0 / len(np.unique(y))

    def test_vfi_runs(self, simple_xy):
        X, y = simple_xy
        assert VFI().fit(X, y).score(X, y) > 0.5

    def test_vfi_invalid_bins(self, simple_xy):
        X, y = simple_xy
        with pytest.raises(ValueError):
            VFI(n_bins=1).fit(X, y)

    def test_classification_via_clustering(self, simple_xy):
        X, y = simple_xy
        model = ClassificationViaClustering(random_state=0).fit(X, y)
        assert model.score(X, y) > 0.5

    def test_classification_via_regression(self, simple_xy):
        X, y = simple_xy
        assert ClassificationViaRegression().fit(X, y).score(X, y) > 0.7

    def test_via_regression_invalid_alpha(self, simple_xy):
        X, y = simple_xy
        with pytest.raises(ValueError):
            ClassificationViaRegression(alpha=-1.0).fit(X, y)
