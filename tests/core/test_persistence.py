"""Tests for saving and loading the trained decision model."""

import numpy as np
import pytest

from repro.core import load_decision_model, save_decision_model
from repro.core.architecture_search import ArchitectureSearch
from repro.core.concepts import KnowledgeBase
from repro.datasets import make_categorical_rules, make_gaussian_clusters
from repro.metafeatures import FeatureExtractor


@pytest.fixture(scope="module")
def trained_model():
    knowledge = KnowledgeBase()
    for i in range(6):
        knowledge.add(
            make_gaussian_clusters(f"g{i}", n_records=70, n_numeric=4, random_state=i), "LDA"
        )
        knowledge.add(
            make_categorical_rules(
                f"c{i}", n_records=70, n_numeric=1, n_categorical=4, random_state=50 + i
            ),
            "BayesNet",
        )
    extractor = FeatureExtractor(["f5", "f6", "f7"]).fit(knowledge.datasets)
    search = ArchitectureSearch(
        population_size=4, n_generations=1, max_evaluations=4,
        max_hidden_layers=2, max_layer_size=16, max_iter_cap=40, random_state=0,
    )
    config = search.search(knowledge, extractor).config
    model = search.train_decision_model(knowledge, extractor, config)
    return model, knowledge


class TestDecisionModelPersistence:
    def test_roundtrip_preserves_predictions(self, trained_model, tmp_path):
        model, knowledge = trained_model
        path = tmp_path / "sna.json"
        save_decision_model(model, path)
        restored = load_decision_model(path)
        assert restored.labels == model.labels
        assert restored.key_features == model.key_features
        assert restored.architecture == model.architecture
        for dataset, _ in knowledge:
            original_scores = model.scores(dataset)
            restored_scores = restored.scores(dataset)
            for label in model.labels:
                assert restored_scores[label] == pytest.approx(original_scores[label], abs=1e-9)
            assert restored.select(dataset) == model.select(dataset)

    def test_restored_model_predicts_on_new_dataset(self, trained_model, tmp_path):
        model, _ = trained_model
        path = tmp_path / "sna.json"
        save_decision_model(model, path)
        restored = load_decision_model(path)
        new_dataset = make_gaussian_clusters("new", n_records=60, n_numeric=5, random_state=99)
        assert restored.select(new_dataset) in restored.labels

    def test_unsupported_version_rejected(self, trained_model, tmp_path):
        import json

        model, _ = trained_model
        path = tmp_path / "sna.json"
        save_decision_model(model, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_decision_model(path)

    def test_unfitted_regressor_rejected(self, trained_model, tmp_path):
        from repro.core.architecture_search import DecisionModel
        from repro.learners.neural import MLPRegressor

        model, _ = trained_model
        broken = DecisionModel(
            regressor=MLPRegressor(),
            labels=model.labels,
            extractor=model.extractor,
            architecture=model.architecture,
        )
        with pytest.raises(ValueError):
            save_decision_model(broken, tmp_path / "broken.json")


class TestAutoModelCacheDir:
    """The one-call cache_dir workflow composing the result store with the
    decision-model persistence."""

    def test_save_and_bare_restore(self, trained_model, tmp_path, small_registry):
        from repro import AutoModel

        model, knowledge = trained_model
        original = AutoModel(
            model=model, registry=small_registry, cache_dir=tmp_path / "cache"
        )
        original.save()
        restored = AutoModel(cache_dir=tmp_path / "cache", registry=small_registry)
        assert restored.dmd_result is None
        assert restored.describe()["restored_from_cache"]
        assert restored.store is not None
        dataset = knowledge.datasets[0]
        assert restored.decision_model.select(dataset) == model.select(dataset)

    def test_construction_without_model_or_cache_rejected(self, small_registry):
        from repro import AutoModel

        with pytest.raises(ValueError):
            AutoModel(registry=small_registry)

    def test_load_missing_cache_rejected(self, tmp_path):
        from repro import AutoModel

        with pytest.raises(FileNotFoundError):
            AutoModel.load(tmp_path / "nothing-here")

    def test_cache_backed_recommend_replays_tuning_from_store(
        self, trained_model, tmp_path, small_registry
    ):
        from repro import AutoModel

        model, knowledge = trained_model
        AutoModel(
            model=model, registry=small_registry, cache_dir=tmp_path / "cache"
        ).save()
        dataset = knowledge.datasets[0]

        def recommend():
            auto_model = AutoModel(cache_dir=tmp_path / "cache", registry=small_registry)
            return auto_model.recommend(dataset, time_limit=None, max_evaluations=10)

        first = recommend()
        second = recommend()
        assert second.algorithm == first.algorithm
        # Warm-start seeding re-ranks the prior frontier, so the second run
        # can only match or improve on the first one's score ...
        assert second.cv_score >= first.cv_score - 1e-9
        # ... while replaying prior evaluations from the store instead of
        # re-running cross-validation.
        assert second.engine_stats["n_store_hits"] > 0
        assert second.engine_stats["n_executions"] < first.engine_stats["n_executions"]

    def test_record_only_store_does_not_change_the_trajectory(
        self, trained_model, tmp_path, small_registry
    ):
        """warm_start=False means record-only: no replay, no optimizer seeding,
        trajectory identical to a store-less run."""
        from repro.core.udr import UserDemandResponser
        from repro.execution import ResultStore

        model, knowledge = trained_model
        dataset = knowledge.datasets[0]

        def tune(store):
            responder = UserDemandResponser(
                model=model,
                registry=small_registry,
                cv=3,
                random_state=0,
                store=store,
                warm_start=False,
            )
            algorithm = responder.select_algorithm(dataset)
            _, history, _ = responder.optimize_hyperparameters(
                dataset, algorithm, time_limit=None, max_evaluations=12
            )
            return history

        bare = tune(store=None)
        recorded = tune(store=ResultStore(tmp_path / "s"))
        # A second record-only run sees a populated store; still no effect.
        repeat = tune(store=ResultStore(tmp_path / "s"))
        assert [t.score for t in recorded.trials] == [t.score for t in bare.trials]
        assert [t.score for t in repeat.trials] == [t.score for t in bare.trials]
        assert repeat.engine_stats["n_store_hits"] == 0
