"""Tests for Algorithm 1 (knowledge acquisition) and the information network."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import Experience, ExperienceSet, Paper
from repro.core.knowledge import KnowledgeAcquisition, acquire_knowledge


def build_corpus(experiences, papers=None) -> ExperienceSet:
    """Helper: corpus with papers p1 (least reliable) .. pN (most reliable)."""
    paper_ids = {e[0] for e in experiences}
    if papers is None:
        papers = [
            Paper(
                paper_id=pid,
                level="D",
                paper_type="Conference",
                influence_factor=float(i),  # higher index = more reliable
                annual_citations=i,
            )
            for i, pid in enumerate(sorted(paper_ids))
        ]
    corpus = ExperienceSet(papers=papers)
    for paper_id, instance, best, others in experiences:
        corpus.add(Experience(paper_id, instance, best, tuple(others)))
    return corpus


ALGORITHMS = ["A", "B", "C", "D", "E", "F"]


class TestKnowledgeAcquisition:
    def test_skips_instances_with_few_algorithms(self):
        corpus = build_corpus([("p1", "tiny", "A", ["B"])])
        pairs = KnowledgeAcquisition(min_algorithms=5).run(corpus)
        assert pairs == []

    def test_clear_winner_is_selected(self):
        corpus = build_corpus(
            [
                ("p1", "wine", "A", ["B", "C", "D"]),
                ("p2", "wine", "A", ["E", "F"]),
            ]
        )
        pairs = KnowledgeAcquisition(min_algorithms=5).run(corpus)
        assert len(pairs) == 1
        assert pairs[0].instance == "wine"
        assert pairs[0].algorithm == "A"

    def test_transitive_relation_via_bfs(self):
        # A beats B (p1), B beats C (p2).  C also "wins" one experience so it
        # becomes a candidate, but BFS proves A is above both.
        corpus = build_corpus(
            [
                ("p1", "wine", "A", ["B", "D", "E", "F"]),
                ("p2", "wine", "B", ["C", "D", "E", "F"]),
                ("p3", "wine", "C", ["D", "E", "F"]),
            ]
        )
        acquisition = KnowledgeAcquisition(min_algorithms=5)
        network = acquisition.analyze_instance("wine", corpus)
        assert network is not None
        assert network.resolved.has_edge("A", "B")
        pair = acquisition.select_optimal(network)
        assert pair.algorithm == "A"

    def test_conflict_resolved_by_reliability(self):
        # p1 (less reliable) says B beats A; p2 (more reliable) says A beats B.
        corpus = build_corpus(
            [
                ("p1", "wine", "B", ["A", "C", "D", "E", "F"]),
                ("p2", "wine", "A", ["B", "C", "D", "E", "F"]),
            ]
        )
        acquisition = KnowledgeAcquisition(min_algorithms=5)
        network = acquisition.analyze_instance("wine", corpus)
        assert network.resolved.has_edge("A", "B")
        assert not network.resolved.has_edge("B", "A")
        assert acquisition.select_optimal(network).algorithm == "A"

    def test_conflict_kept_when_resolution_disabled(self):
        corpus = build_corpus(
            [
                ("p1", "wine", "B", ["A", "C", "D", "E", "F"]),
                ("p2", "wine", "A", ["B", "C", "D", "E", "F"]),
            ]
        )
        acquisition = KnowledgeAcquisition(min_algorithms=5, resolve_conflicts=False)
        network = acquisition.analyze_instance("wine", corpus)
        # Without resolution both directed edges survive.
        assert network.resolved.has_edge("A", "B") and network.resolved.has_edge("B", "A")

    def test_tie_broken_by_comparison_experience(self):
        # A and B never compared against each other; A has beaten more algorithms.
        corpus = build_corpus(
            [
                ("p1", "wine", "A", ["C", "D", "E"]),
                ("p2", "wine", "A", ["F"]),
                ("p3", "wine", "B", ["C"]),
            ]
        )
        acquisition = KnowledgeAcquisition(min_algorithms=5)
        network = acquisition.analyze_instance("wine", corpus)
        sources = set(network.sources())
        assert {"A", "B"}.issubset(sources)
        assert acquisition.select_optimal(network).algorithm == "A"

    def test_multiple_instances_produce_multiple_pairs(self):
        corpus = build_corpus(
            [
                ("p1", "wine", "A", ["B", "C", "D", "E", "F"]),
                ("p2", "iris", "B", ["A", "C", "D", "E", "F"]),
            ]
        )
        pairs = acquire_knowledge(corpus, min_algorithms=5)
        assert {p.instance: p.algorithm for p in pairs} == {"wine": "A", "iris": "B"}

    def test_min_algorithms_validation(self):
        with pytest.raises(ValueError):
            KnowledgeAcquisition(min_algorithms=0)

    def test_unknown_instance_returns_none(self):
        corpus = build_corpus([("p1", "wine", "A", ["B", "C", "D", "E", "F"])])
        assert KnowledgeAcquisition().analyze_instance("nope", corpus) is None

    def test_bfs_closure_disabled_changes_graph(self):
        corpus = build_corpus(
            [
                ("p1", "wine", "A", ["B", "D", "E", "F"]),
                ("p2", "wine", "B", ["C", "D", "E", "F"]),
                ("p3", "wine", "C", ["D", "E", "F"]),
            ]
        )
        with_bfs = KnowledgeAcquisition(min_algorithms=5).analyze_instance("wine", corpus)
        without_bfs = KnowledgeAcquisition(
            min_algorithms=5, use_bfs_closure=False
        ).analyze_instance("wine", corpus)
        assert with_bfs.resolved.number_of_edges() >= without_bfs.resolved.number_of_edges()
        assert with_bfs.resolved.has_edge("A", "C")
        assert not without_bfs.resolved.has_edge("A", "C")


class TestKnowledgeOnGeneratedCorpus:
    def test_pairs_are_reasonable_on_simulated_corpus(self, small_corpus, small_performance):
        pairs = acquire_knowledge(small_corpus, min_algorithms=5)
        assert len(pairs) >= 3
        # The selected algorithm should rank well on its dataset (PORatio ≥ 0.5
        # on average) — the knowledge-quality claim of Section IV-A1.
        poratios = [
            small_performance.poratio(pair.algorithm, pair.instance) for pair in pairs
        ]
        assert sum(poratios) / len(poratios) > 0.5

    def test_evidence_counts_recorded(self, small_corpus):
        pairs = acquire_knowledge(small_corpus, min_algorithms=5)
        assert all(pair.evidence >= 0 for pair in pairs)
        assert all(len(pair.candidates) >= 1 for pair in pairs)


class TestAcquisitionProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_selected_algorithm_is_always_a_candidate(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        experiences = []
        for p in range(4):
            pool = list(rng.permutation(ALGORITHMS))
            best, others = pool[0], pool[1 : 1 + int(rng.integers(3, 5))]
            experiences.append((f"p{p}", "data", best, others))
        corpus = build_corpus(experiences)
        acquisition = KnowledgeAcquisition(min_algorithms=4)
        network = acquisition.analyze_instance("data", corpus)
        if network is None:
            return
        pair = acquisition.select_optimal(network)
        assert pair.algorithm in network.candidates
        # The winner is never an algorithm that every experience ranks as inferior only.
        winners = {e[2] for e in experiences}
        assert pair.algorithm in winners
