"""Tests for Algorithm 2 (feature selection) and Algorithm 3 (architecture search)."""

import numpy as np
import pytest

from repro.core.architecture_search import (
    ArchitectureSearch,
    mlp_architecture_space,
    one_hot_prime,
)
from repro.core.concepts import KnowledgeBase, KnowledgePair
from repro.core.feature_selection import FeatureSelector
from repro.datasets import make_categorical_rules, make_gaussian_clusters
from repro.metafeatures import FeatureExtractor


@pytest.fixture(scope="module")
def toy_knowledge() -> KnowledgeBase:
    """A knowledge base whose label is recoverable from dataset shape features.

    Gaussian datasets are labelled 'LDA', categorical-heavy ones 'BayesNet', so
    features like f6/f7 (categorical attribute counts) are highly informative.
    """
    base = KnowledgeBase()
    for i in range(8):
        dataset = make_gaussian_clusters(
            f"g{i}", n_records=80 + 10 * i, n_numeric=4 + i % 3, n_categorical=0,
            n_classes=2 + i % 2, random_state=i,
        )
        base.add(dataset, "LDA")
    for i in range(8):
        dataset = make_categorical_rules(
            f"c{i}", n_records=80 + 10 * i, n_numeric=1, n_categorical=4 + i % 3,
            n_classes=2 + i % 2, random_state=100 + i,
        )
        base.add(dataset, "BayesNet")
    return base


class TestKnowledgeBase:
    def test_label_vocabulary_sorted(self, toy_knowledge):
        assert toy_knowledge.algorithm_labels == ["BayesNet", "LDA"]

    def test_label_indices_align(self, toy_knowledge):
        indices = toy_knowledge.label_indices()
        assert len(indices) == len(toy_knowledge)
        assert set(indices) == {0, 1}

    def test_class_distribution(self, toy_knowledge):
        assert toy_knowledge.class_distribution() == {"LDA": 8, "BayesNet": 8}

    def test_from_pairs_skips_unknown_instances(self):
        pairs = [KnowledgePair("known", "LDA"), KnowledgePair("missing", "J48")]
        dataset = make_gaussian_clusters("known", n_records=50, random_state=0)
        base = KnowledgeBase.from_pairs(pairs, {"known": dataset})
        assert len(base) == 1

    def test_empty_algorithm_rejected(self):
        base = KnowledgeBase()
        with pytest.raises(ValueError):
            base.add(make_gaussian_clusters("x", n_records=30, random_state=0), "")

    def test_pair_validation(self):
        with pytest.raises(ValueError):
            KnowledgePair("", "LDA")


class TestFeatureSelector:
    def test_selects_informative_subset(self, toy_knowledge):
        selector = FeatureSelector(
            population_size=10,
            n_generations=5,
            max_evaluations=40,
            cv=3,
            mlp_max_iter=40,
            random_state=0,
        )
        result = selector.select(toy_knowledge)
        assert 1 <= result.n_selected <= 23
        assert 0.0 <= result.score <= 1.0
        # A subset driven by categorical/numeric structure should score well on
        # this deliberately easy separation.
        assert result.score >= 0.7

    def test_requires_enough_pairs(self):
        base = KnowledgeBase()
        base.add(make_gaussian_clusters("only", n_records=40, random_state=0), "LDA")
        with pytest.raises(ValueError):
            FeatureSelector(max_evaluations=5).select(base)

    def test_candidate_feature_restriction(self, toy_knowledge):
        selector = FeatureSelector(
            candidate_features=["f5", "f6", "f7"],
            population_size=6,
            n_generations=3,
            max_evaluations=15,
            random_state=0,
        )
        result = selector.select(toy_knowledge)
        assert set(result.selected).issubset({"f5", "f6", "f7"})


class TestOneHotPrime:
    def test_plain_one_hot_without_applicability(self):
        target = one_hot_prime("B", ["A", "B", "C"])
        np.testing.assert_array_equal(target, [0.0, 1.0, 0.0])

    def test_inapplicable_algorithms_get_minus_one(self):
        dataset = make_gaussian_clusters("d", n_records=30, random_state=0)
        target = one_hot_prime(
            "B", ["A", "B", "C"], dataset, applicability=lambda name, d: name != "C"
        )
        np.testing.assert_array_equal(target, [0.0, 1.0, -1.0])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            one_hot_prime("Z", ["A", "B"])


class TestArchitectureSpace:
    def test_has_the_ten_table_ii_hyperparameters(self):
        space = mlp_architecture_space()
        expected = {
            "hidden_layer", "hidden_layer_size", "activation", "solver",
            "learning_rate", "max_iter", "momentum", "validation_fraction",
            "beta_1", "beta_2",
        }
        assert set(space.names) == expected

    def test_table_ii_ranges(self):
        space = mlp_architecture_space()
        assert space["hidden_layer"].low == 1 and space["hidden_layer"].high == 20
        assert space["hidden_layer_size"].low == 5 and space["hidden_layer_size"].high == 100
        assert space["max_iter"].low == 100 and space["max_iter"].high == 500
        assert set(space["activation"].choices) == {"relu", "tanh", "logistic", "identity"}
        assert set(space["solver"].choices) == {"lbfgs", "sgd", "adam"}

    def test_sgd_conditionals(self):
        space = mlp_architecture_space()
        config = space.default_configuration()
        config["solver"] = "adam"
        assert not space.is_active("momentum", config)
        config["solver"] = "sgd"
        assert space.is_active("momentum", config)


class TestArchitectureSearch:
    def test_search_and_train_decision_model(self, toy_knowledge):
        extractor = FeatureExtractor(["f5", "f6", "f7", "f9"]).fit(toy_knowledge.datasets)
        search = ArchitectureSearch(
            population_size=6,
            n_generations=2,
            max_evaluations=10,
            cv=2,
            max_hidden_layers=2,
            max_layer_size=24,
            max_iter_cap=60,
            random_state=0,
        )
        result = search.search(toy_knowledge, extractor)
        assert result.n_evaluations > 0
        assert result.mse >= 0.0
        model = search.train_decision_model(toy_knowledge, extractor, result.config)
        # The trained SNA should recover the obvious mapping on training data.
        correct = sum(
            model.select(dataset) == algorithm for dataset, algorithm in toy_knowledge
        )
        assert correct / len(toy_knowledge) >= 0.7

    def test_decision_model_rank_and_scores(self, toy_knowledge):
        extractor = FeatureExtractor(["f6", "f7"]).fit(toy_knowledge.datasets)
        search = ArchitectureSearch(
            population_size=4, n_generations=1, max_evaluations=4,
            max_hidden_layers=2, max_layer_size=16, max_iter_cap=40, random_state=0,
        )
        result = search.search(toy_knowledge, extractor)
        model = search.train_decision_model(toy_knowledge, extractor, result.config)
        dataset = toy_knowledge.datasets[0]
        scores = model.scores(dataset)
        assert set(scores) == set(model.labels)
        ranking = model.rank(dataset)
        assert ranking[0] == model.select(dataset)
        assert model.key_features == ["f6", "f7"]

    def test_requires_enough_pairs(self, toy_knowledge):
        small = KnowledgeBase()
        dataset, algorithm = next(iter(toy_knowledge))
        small.add(dataset, algorithm)
        extractor = FeatureExtractor(["f5"]).fit([dataset])
        with pytest.raises(ValueError):
            ArchitectureSearch(max_evaluations=2).search(small, extractor)
