"""Integration tests: DMD (Algorithm 4), UDR (Algorithm 5) and the AutoModel facade."""

import numpy as np
import pytest

from repro.core import AutoModel, DecisionMakingModelDesigner, UserDemandResponser
from repro.core.udr import CASHSolution
from repro.datasets import make_gaussian_clusters


@pytest.fixture(scope="module")
def fast_dmd() -> DecisionMakingModelDesigner:
    return DecisionMakingModelDesigner(
        feature_population=8,
        feature_generations=3,
        feature_max_evaluations=25,
        architecture_population=6,
        architecture_generations=2,
        architecture_max_evaluations=8,
        cv=2,
        random_state=0,
    )


@pytest.fixture(scope="module")
def dmd_result(fast_dmd, small_corpus, dataset_lookup):
    return fast_dmd.run(small_corpus, dataset_lookup)


@pytest.fixture(scope="module")
def fitted_automodel(dmd_result, small_registry, small_corpus, small_performance):
    return AutoModel(
        dmd_result=dmd_result,
        registry=small_registry,
        performance=small_performance,
        corpus=small_corpus,
    )


@pytest.fixture(scope="module")
def target_dataset():
    return make_gaussian_clusters(
        "target", n_records=120, n_numeric=5, n_categorical=1, n_classes=3, random_state=42
    )


class TestDMD:
    def test_pipeline_produces_model_and_diagnostics(self, dmd_result):
        assert len(dmd_result.knowledge_pairs) >= 3
        assert len(dmd_result.knowledge_base) >= 3
        assert 1 <= len(dmd_result.key_features) <= 23
        assert dmd_result.model is not None
        assert dmd_result.diagnostics["n_resolved_pairs"] == len(dmd_result.knowledge_base)

    def test_model_selects_known_algorithms(self, dmd_result, dataset_lookup):
        labels = set(dmd_result.knowledge_base.algorithm_labels)
        for dataset in list(dataset_lookup.values())[:4]:
            assert dmd_result.model.select(dataset) in labels

    def test_skip_feature_selection_uses_all_candidates(self, small_corpus, dataset_lookup):
        dmd = DecisionMakingModelDesigner(
            skip_feature_selection=True,
            architecture_population=4,
            architecture_generations=1,
            architecture_max_evaluations=4,
            cv=2,
            random_state=0,
        )
        result = dmd.run(small_corpus, dataset_lookup)
        assert len(result.key_features) == 23

    def test_fails_when_too_few_pairs_resolve(self, fast_dmd, small_corpus):
        with pytest.raises(ValueError):
            fast_dmd.run(small_corpus, dataset_lookup={})


class TestUDR:
    def test_respond_returns_valid_solution(self, dmd_result, small_registry, target_dataset):
        responder = UserDemandResponser(
            model=dmd_result.model, registry=small_registry, cv=3,
            tuning_max_records=100, random_state=0,
        )
        solution = responder.respond(target_dataset, time_limit=None, max_evaluations=8)
        assert isinstance(solution, CASHSolution)
        assert solution.algorithm in small_registry.names
        assert small_registry.space(solution.algorithm).validate(solution.config)
        assert 0.0 <= solution.cv_score <= 1.0
        assert solution.n_evaluations > 0
        assert solution.estimator is not None

    def test_selected_algorithm_restricted_to_catalogue(self, dmd_result, small_registry, target_dataset):
        responder = UserDemandResponser(
            model=dmd_result.model, registry=small_registry, random_state=0
        )
        assert responder.select_algorithm(target_dataset) in small_registry.names

    def test_optimizer_name_reported(self, dmd_result, small_registry, target_dataset):
        responder = UserDemandResponser(
            model=dmd_result.model, registry=small_registry, cv=2,
            tuning_max_records=80, random_state=0,
        )
        solution = responder.respond(target_dataset, time_limit=None, max_evaluations=5,
                                     fit_final_estimator=False)
        assert solution.optimizer in ("genetic-algorithm", "bayesian-optimization")
        assert solution.estimator is None

    def test_summary_is_serialisable(self, dmd_result, small_registry, target_dataset):
        responder = UserDemandResponser(
            model=dmd_result.model, registry=small_registry, cv=2,
            tuning_max_records=80, random_state=0,
        )
        solution = responder.respond(target_dataset, time_limit=None, max_evaluations=4,
                                     fit_final_estimator=False)
        summary = solution.summary()
        assert summary["algorithm"] == solution.algorithm
        assert isinstance(summary["cv_score"], float)


class TestAutoModelFacade:
    def test_fit_from_datasets_end_to_end(self, knowledge_datasets, small_registry, small_performance):
        dmd = DecisionMakingModelDesigner(
            feature_population=6, feature_generations=2, feature_max_evaluations=12,
            architecture_population=4, architecture_generations=1,
            architecture_max_evaluations=4, cv=2, random_state=0,
        )
        auto_model = AutoModel.fit_from_datasets(
            knowledge_datasets,
            registry=small_registry,
            dmd=dmd,
            performance=small_performance,
        )
        assert auto_model.knowledge_size >= 3
        assert auto_model.performance is small_performance
        description = auto_model.describe()
        assert description["catalogue_size"] == len(small_registry)
        assert description["knowledge_pairs"] == auto_model.knowledge_size

    def test_fit_with_existing_corpus(self, small_corpus, dataset_lookup, small_registry, fast_dmd):
        auto_model = AutoModel.fit(
            small_corpus, dataset_lookup, registry=small_registry, dmd=fast_dmd
        )
        assert auto_model.corpus is small_corpus

    def test_recommend_full_loop(self, fitted_automodel, target_dataset):
        solution = fitted_automodel.recommend(
            target_dataset, time_limit=None, max_evaluations=6, cv=2, tuning_max_records=80
        )
        assert solution.algorithm in fitted_automodel.registry.names
        assert solution.cv_score > 0.0

    def test_select_algorithm_shortcut(self, fitted_automodel, target_dataset):
        assert fitted_automodel.select_algorithm(target_dataset) in fitted_automodel.registry.names

    def test_key_features_exposed(self, fitted_automodel):
        assert set(fitted_automodel.key_features).issubset(
            {f"f{i}" for i in range(1, 24)}
        )


@pytest.mark.slow
class TestSelectionQuality:
    def test_sna_selection_beats_average_algorithm(
        self, fitted_automodel, small_performance, knowledge_datasets
    ):
        """The §IV-A2 claim, on training-pool datasets: P(SNA(D), D) >= Pavg(D) on average."""
        gaps = []
        for dataset in knowledge_datasets:
            chosen = fitted_automodel.select_algorithm(dataset)
            if chosen not in small_performance.algorithms:
                continue
            gaps.append(
                small_performance.score(chosen, dataset.name)
                - small_performance.p_avg(dataset.name)
            )
        assert gaps, "no overlap between selections and the performance table"
        assert float(np.mean(gaps)) > -0.02
