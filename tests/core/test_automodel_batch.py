"""Batched inference APIs: DecisionModel.*_many, UDR/AutoModel batch paths.

The contract is equivalence: a batch call must produce exactly the results
of the corresponding single calls, while doing one decision-model forward
pass for the whole batch.
"""

import numpy as np
import pytest

from repro.core import AutoModel, DecisionMakingModelDesigner
from repro.core.udr import CASHSolution
from repro.datasets import make_gaussian_clusters


@pytest.fixture(scope="module")
def batch_automodel(knowledge_datasets, small_registry, small_performance):
    dmd = DecisionMakingModelDesigner(
        skip_feature_selection=True,
        architecture_population=4,
        architecture_generations=1,
        architecture_max_evaluations=4,
        cv=2,
        random_state=0,
    )
    return AutoModel.fit_from_datasets(
        knowledge_datasets,
        registry=small_registry,
        dmd=dmd,
        performance=small_performance,
        cv=2,
        max_records=60,
    )


@pytest.fixture(scope="module")
def query_datasets():
    return [
        make_gaussian_clusters(
            f"batch-q{i}", n_records=60 + 10 * i, n_numeric=4, n_categorical=1,
            n_classes=2 + (i % 2), random_state=3000 + i,
        )
        for i in range(5)
    ]


class TestDecisionModelBatch:
    def test_scores_many_matches_scores(self, batch_automodel, query_datasets):
        model = batch_automodel.decision_model
        batched = model.scores_many(query_datasets)
        for dataset, scores in zip(query_datasets, batched):
            single = model.scores(dataset)
            assert set(scores) == set(single)
            for label in single:
                assert scores[label] == pytest.approx(single[label])

    def test_scores_matrix_shape(self, batch_automodel, query_datasets):
        model = batch_automodel.decision_model
        matrix = model.scores_matrix(query_datasets)
        assert matrix.shape == (len(query_datasets), len(model.labels))
        empty = model.scores_matrix([])
        assert empty.shape == (0, len(model.labels))

    def test_select_and_rank_many_match_singles(self, batch_automodel, query_datasets):
        model = batch_automodel.decision_model
        assert model.select_many(query_datasets) == [
            model.select(d) for d in query_datasets
        ]
        assert model.rank_many(query_datasets) == [
            model.rank(d) for d in query_datasets
        ]


class TestResponderBatch:
    def test_select_algorithms_matches_singles(self, batch_automodel, query_datasets):
        responder = batch_automodel.responder()
        assert responder.select_algorithms(query_datasets) == [
            responder.select_algorithm(d) for d in query_datasets
        ]

    def test_automodel_select_algorithms(self, batch_automodel, query_datasets):
        assert batch_automodel.select_algorithms(query_datasets) == [
            batch_automodel.select_algorithm(d) for d in query_datasets
        ]

    def test_respond_preselected_algorithm_rejected_outside_catalogue(
        self, batch_automodel, query_datasets
    ):
        responder = batch_automodel.responder()
        with pytest.raises(KeyError):
            responder.respond(query_datasets[0], algorithm="NotAnAlgorithm")


class TestRecommendMany:
    def test_recommend_many_matches_singlewise_recommend(
        self, batch_automodel, query_datasets
    ):
        batch = batch_automodel.recommend_many(
            query_datasets[:3],
            time_limit=None,
            max_evaluations=4,
            cv=2,
            tuning_max_records=50,
        )
        assert len(batch) == 3
        for dataset, solution in zip(query_datasets[:3], batch):
            assert isinstance(solution, CASHSolution)
            single = batch_automodel.recommend(
                dataset,
                time_limit=None,
                max_evaluations=4,
                cv=2,
                tuning_max_records=50,
            )
            assert solution.algorithm == single.algorithm
            assert solution.config == single.config
            assert solution.cv_score == pytest.approx(single.cv_score)

    def test_recommend_many_solutions_are_valid(self, batch_automodel, query_datasets):
        solutions = batch_automodel.recommend_many(
            query_datasets,
            time_limit=None,
            max_evaluations=3,
            cv=2,
            tuning_max_records=50,
        )
        for solution in solutions:
            assert solution.algorithm in batch_automodel.registry.names
            assert batch_automodel.registry.space(solution.algorithm).validate(
                solution.config
            )
            assert np.isfinite(solution.cv_score)


class TestDMDBatchDiagnostic:
    def test_training_selection_agreement_reported(self, batch_automodel):
        diagnostics = batch_automodel.dmd_result.diagnostics
        assert "training_selection_agreement" in diagnostics
        assert 0.0 <= diagnostics["training_selection_agreement"] <= 1.0
