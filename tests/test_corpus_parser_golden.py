"""Golden-file tests for the corpus parser.

The fixture reports under ``tests/fixtures/`` are checked in verbatim and the
parsed output — paper metadata and every ``(instance, best, others)``
experience triple — is asserted *exactly*, so a parser refactor cannot
silently drift (reordering, trimming, defaulting, comment handling) without
failing here.
"""

from pathlib import Path

import pytest

from repro.corpus import parse_report_file

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _triples(corpus) -> list[tuple[str, str, str, tuple[str, ...]]]:
    """Every experience as (paper_id, instance, best, others) in parse order."""
    return [
        (e.paper_id, e.instance, e.best_algorithm, tuple(e.other_algorithms))
        for e in corpus
    ]


class TestGoldenSinglePaper:
    def test_exact_parse(self):
        corpus = parse_report_file(FIXTURES / "report_single_paper.report")
        assert [p.paper_id for p in corpus.papers] == ["smith2015"]
        paper = corpus.paper("smith2015")
        assert paper.title == "Benchmarking tree ensembles on UCI datasets"
        assert paper.level == "B"
        assert paper.paper_type == "Journal"
        assert paper.influence_factor == pytest.approx(2.7)
        assert paper.annual_citations == 34
        assert paper.year == 2015
        assert _triples(corpus) == [
            ("smith2015", "Glass", "RandomForest",
             ("J48", "SimpleCart", "AdaBoostM1")),
            ("smith2015", "Sonar", "AdaBoostM1", ("RandomForest", "J48")),
            ("smith2015", "Vehicle", "RandomForest",
             ("Bagging", "SimpleCart", "DecisionStump")),
        ]


class TestGoldenMultiPaper:
    def test_exact_parse(self):
        corpus = parse_report_file(FIXTURES / "report_multi_paper.report")
        assert sorted(p.paper_id for p in corpus.papers) == [
            "lee2008", "morente2017", "zhang2017",
        ]
        zhang = corpus.paper("zhang2017")
        assert (zhang.level, zhang.paper_type) == ("A", "Journal")
        assert zhang.influence_factor == pytest.approx(4.3)
        morente = corpus.paper("morente2017")
        # The inline comment after the paper id must be stripped.
        assert morente.paper_id == "morente2017"
        assert morente.title == ""  # no title line -> default
        assert _triples(corpus) == [
            ("zhang2017", "Wine", "BayesNet",
             ("LDA", "RandomForest", "LibSVM", "J48", "IBk")),
            ("zhang2017", "Iris", "RandomForest", ("J48", "NaiveBayes")),
            ("lee2008", "Wine", "LDA",
             ("BayesNet", "J48", "IBk", "OneR", "ZeroR")),
            ("morente2017", "Wine", "BayesNet",
             ("LDA", "J48", "NaiveBayes", "IBk", "OneR")),
        ]

    def test_instances_preserve_first_seen_order(self):
        corpus = parse_report_file(FIXTURES / "report_multi_paper.report")
        assert corpus.instances() == ["Wine", "Iris"]

    def test_reliability_ordering_feeds_knowledge_acquisition(self):
        # The two A-journal papers back BayesNet on Wine against one C-level
        # conference dissent: Algorithm 1 must settle on BayesNet.
        from repro.core.knowledge import acquire_knowledge

        corpus = parse_report_file(FIXTURES / "report_multi_paper.report")
        pairs = {p.instance: p.algorithm for p in acquire_knowledge(corpus, min_algorithms=4)}
        assert pairs["Wine"] == "BayesNet"


class TestGoldenMinimalFields:
    def test_defaults_applied_exactly(self):
        corpus = parse_report_file(FIXTURES / "report_minimal_fields.report")
        paper = corpus.paper("anon1999")
        # No metadata lines: the parser's documented defaults, verbatim.
        assert paper.title == ""
        assert paper.level == "C"
        assert paper.paper_type == "Conference"
        assert paper.influence_factor == 0.0
        assert paper.annual_citations == 0
        assert paper.year == 2015
        assert _triples(corpus) == [
            ("anon1999", "Zoo", "OneR", ()),
            ("anon1999", "Soybean", "J48", ("ZeroR",)),
        ]
