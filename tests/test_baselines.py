"""Tests for the Auto-WEKA-style joint CASH baselines."""

import pytest

from repro.baselines import (
    ALGORITHM_KEY,
    AutoWekaBaseline,
    RandomCASH,
    SingleBestBaseline,
    joint_space,
    split_joint_config,
)


class TestJointSpace:
    def test_contains_algorithm_root_and_all_params(self, small_registry):
        space = joint_space(small_registry)
        assert ALGORITHM_KEY in space
        assert set(space[ALGORITHM_KEY].choices) == set(small_registry.names)
        total_params = sum(len(spec.space) for spec in small_registry)
        assert len(space) == total_params + 1

    def test_sampled_config_splits_cleanly(self, small_registry):
        import numpy as np

        space = joint_space(small_registry)
        rng = np.random.default_rng(0)
        for _ in range(20):
            config = space.sample(rng)
            algorithm, params = split_joint_config(config)
            assert algorithm in small_registry.names
            assert small_registry.space(algorithm).validate(params)

    def test_inactive_branches_do_not_affect_selected_algorithm(self, small_registry):
        space = joint_space(small_registry)
        config = space.default_configuration()
        config[ALGORITHM_KEY] = "J48"
        algorithm, params = split_joint_config(config)
        assert algorithm == "J48"
        assert set(params) == set(small_registry.space("J48").names)


class TestAutoWekaBaseline:
    def test_invalid_strategy_rejected(self, small_registry):
        with pytest.raises(ValueError):
            AutoWekaBaseline(registry=small_registry, strategy="hillclimb")

    def test_run_returns_valid_solution(self, small_registry, blobs_dataset):
        baseline = AutoWekaBaseline(
            registry=small_registry, strategy="random", cv=2,
            tuning_max_records=80, random_state=0,
        )
        solution = baseline.run(blobs_dataset, time_limit=None, max_evaluations=8)
        assert solution.algorithm in small_registry.names
        assert small_registry.space(solution.algorithm).validate(solution.config)
        assert 0.0 <= solution.cv_score <= 1.0
        assert solution.n_evaluations <= 9

    def test_smac_strategy_runs(self, small_registry, blobs_dataset):
        baseline = AutoWekaBaseline(
            registry=small_registry, strategy="smac", cv=2,
            tuning_max_records=80, random_state=0,
        )
        solution = baseline.run(blobs_dataset, time_limit=None, max_evaluations=12)
        assert solution.optimizer == "autoweka-smac"
        assert solution.cv_score > 0.0

    def test_fit_final_estimator(self, small_registry, blobs_dataset):
        baseline = AutoWekaBaseline(
            registry=small_registry, strategy="random", cv=2,
            tuning_max_records=80, random_state=0,
        )
        solution = baseline.run(
            blobs_dataset, time_limit=None, max_evaluations=4, fit_final_estimator=True
        )
        assert solution.estimator is not None
        X, _ = blobs_dataset.to_matrix()
        assert len(solution.estimator.predict(X[:5])) == 5

    def test_more_budget_does_not_hurt(self, small_registry, blobs_dataset):
        small = AutoWekaBaseline(
            registry=small_registry, strategy="random", cv=2,
            tuning_max_records=80, random_state=0,
        ).run(blobs_dataset, time_limit=None, max_evaluations=3)
        large = AutoWekaBaseline(
            registry=small_registry, strategy="random", cv=2,
            tuning_max_records=80, random_state=0,
        ).run(blobs_dataset, time_limit=None, max_evaluations=25)
        assert large.cv_score >= small.cv_score - 1e-9


class TestOtherBaselines:
    def test_random_cash_is_random_strategy(self, small_registry):
        assert RandomCASH(registry=small_registry).strategy == "random"

    def test_single_best_uses_globally_best_algorithm(
        self, small_registry, small_performance, blobs_dataset
    ):
        baseline = SingleBestBaseline(
            small_performance, registry=small_registry, cv=2,
            tuning_max_records=80, random_state=0,
        )
        expected = small_performance.top_algorithms(k=1, by="score")[0][0]
        assert baseline.algorithm == expected
        solution = baseline.run(blobs_dataset, time_limit=None, max_evaluations=5)
        assert solution.algorithm == expected
        assert solution.optimizer == "single-best"
