"""Acceptance sweep: exported predictions are byte-identical to the live model.

``exported.predict(X) == live.predict(X)`` must hold *exactly* — argmax ties
included — for every exportable catalogue entry, on dense, NaN-corrupted and
categorical query rows.  The interpreter replays the live operation order
(impute → scale → one-hot, per-family score arithmetic, first-maximum argmax)
so no tolerance is needed on the labels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.export import compile_model, exportable_algorithms
from repro.learners import default_registry
from repro.learners.linear import LogisticRegression
from repro.learners.pipeline import pipeline_registry

from _export_helpers import fit_default_pipeline, make_raw_matrix

EXPORTABLE = exportable_algorithms(pipeline_registry(default_registry()))


def test_every_target_family_is_exportable():
    # Linear, tree/forest, kNN, naive-bayes and MLP — the ISSUE's families.
    assert {
        "Logistic", "SimpleLogistic", "LDA",
        "J48", "SimpleCart", "REPTree", "RandomTree", "BFTree", "DecisionStump",
        "RandomForest", "ExtraTrees",
        "IBk", "IB1",
        "NaiveBayes", "NaiveBayesMultinomial",
        "MultilayerPerceptron", "MLP",
    } <= set(EXPORTABLE)


@pytest.mark.parametrize("name", EXPORTABLE)
def test_exported_predict_is_byte_identical(name, train_matrix, query_regimes):
    X, y = train_matrix
    pipeline = fit_default_pipeline(name, X, y)
    exported = compile_model(pipeline)
    for regime, rows in query_regimes.items():
        live = pipeline.predict(rows)
        art = exported.predict(rows.tolist())
        assert art == live.tolist(), f"{name} diverged on {regime} rows"
        # Probabilities agree to float noise (dot products may reassociate);
        # the *labels* above are the byte-identical contract.
        live_proba = pipeline.predict_proba(rows)
        art_proba = np.asarray(exported.predict_proba(rows.tolist()))
        np.testing.assert_allclose(art_proba, live_proba, rtol=1e-9, atol=1e-12)


def test_exported_predict_on_training_rows(train_matrix):
    X, y = train_matrix
    for name in ("J48", "RandomForest", "NaiveBayes", "IBk", "Logistic"):
        pipeline = fit_default_pipeline(name, X, y)
        exported = compile_model(pipeline)
        assert exported.predict(X.tolist()) == pipeline.predict(X).tolist()


def test_bare_estimator_exports_without_pipeline():
    rng = np.random.default_rng(4)
    X = rng.normal(size=(120, 5))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    model = LogisticRegression(max_iter=200).fit(X, y)
    exported = compile_model(model)
    fresh = rng.normal(size=(40, 5))
    assert exported.predict(fresh.tolist()) == model.predict(fresh).tolist()


def test_tie_break_matches_first_maximum():
    # A forest with one tree per class vote pattern can tie exactly; the
    # interpreter must reproduce numpy's first-maximum argmax, so build a
    # degenerate dataset where ties are guaranteed (two identical classes).
    X, y = make_raw_matrix(n=40, n_numeric=3, n_categorical=0, n_classes=2,
                           missing_rate=0.0, random_state=11)
    y[:] = np.arange(40) % 2  # alternate labels on near-identical rows
    X[:, 0] = 1.0             # constant column: stumps can tie on it
    pipeline = fit_default_pipeline("DecisionStump", X, y)
    exported = compile_model(pipeline)
    assert exported.predict(X.tolist()) == pipeline.predict(X).tolist()
