"""Artifact-level guarantees: goldens, JSON stability, codegen purity, errors.

* **Golden fixtures** — committed artifacts with committed query rows and
  expected labels pin the interpreter's behaviour: a change to the numpy-free
  predict path that alters any prediction fails here without retraining
  anything (the interpreter is pure python, so goldens are platform-stable).
* **Round-trip stability** — an export document survives JSON serialisation
  byte-for-byte, twice (floats use shortest-exact repr, no drift).
* **Purity** — the generated source file mentions neither numpy nor repro and
  runs as a bare subprocess with a scrubbed environment.
"""

from __future__ import annotations

import ast
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.export import (
    ExportedModel,
    ExportError,
    FORMAT,
    FORMAT_VERSION,
    compile_model,
    export_document,
    exportable_algorithms,
    generate_source,
    load_artifact,
    save_artifact,
    write_source,
)
from repro.learners import default_registry
from repro.learners.pipeline import pipeline_registry

from _export_helpers import fit_default_pipeline, make_raw_matrix

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_NAMES = sorted(p.stem for p in GOLDEN_DIR.glob("*.json"))


@pytest.mark.parametrize("slug", GOLDEN_NAMES)
def test_golden_artifacts_predict_expected_labels(slug):
    payload = json.loads((GOLDEN_DIR / f"{slug}.json").read_text(encoding="utf-8"))
    artifact = payload["artifact"]
    assert artifact["format"] == FORMAT
    assert artifact["version"] == FORMAT_VERSION
    assert artifact["kind"] == "pipeline"
    model = ExportedModel(artifact)
    assert model.predict(payload["rows"]) == payload["expected"]


def test_golden_directory_covers_three_families():
    assert len(GOLDEN_NAMES) >= 3


def test_document_round_trips_through_json(train_matrix):
    X, y = train_matrix
    document = export_document(fit_default_pipeline("NaiveBayes", X, y))
    once = json.loads(json.dumps(document))
    assert once == document  # only JSON-native types in the document
    assert json.dumps(json.loads(json.dumps(once)), sort_keys=True) == json.dumps(
        once, sort_keys=True
    )


def test_save_and_load_artifact(tmp_path, train_matrix):
    X, y = train_matrix
    pipeline = fit_default_pipeline("LDA", X, y)
    document = export_document(pipeline)
    path = save_artifact(document, tmp_path / "nested" / "lda.json")
    assert path.exists()
    loaded = load_artifact(path)
    queries, _ = make_raw_matrix(n=15, random_state=33)
    assert loaded.predict(queries.tolist()) == pipeline.predict(queries).tolist()


def test_generated_source_is_pure(tmp_path, train_matrix):
    X, y = train_matrix
    pipeline = fit_default_pipeline("RandomForest", X, y)
    document = export_document(pipeline)
    source = generate_source(document, name="forest-artifact")
    imported = set()
    for node in ast.walk(ast.parse(source)):
        if isinstance(node, ast.Import):
            imported.update(alias.name.partition(".")[0] for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            imported.add((node.module or "").partition(".")[0])
    assert "numpy" not in imported and "repro" not in imported
    assert imported <= {"json", "math", "operator", "sys", ""}

    module_path = write_source(document, tmp_path / "forest_artifact.py")
    queries, _ = make_raw_matrix(n=12, random_state=44)
    rows = [
        [None if isinstance(v, float) and v != v else v for v in row]
        for row in queries.tolist()
    ]
    rows_file = tmp_path / "rows.json"
    rows_file.write_text(json.dumps(rows), encoding="utf-8")
    # Scrubbed environment: no PYTHONPATH, so the artifact can only use stdlib.
    proc = subprocess.run(
        [sys.executable, str(module_path), str(rows_file)],
        capture_output=True, text=True, timeout=120,
        env={"PATH": os.environ.get("PATH", "/usr/bin:/bin")},
        cwd=tmp_path,
    )
    assert proc.returncode == 0, proc.stderr
    assert json.loads(proc.stdout) == pipeline.predict(queries).tolist()


def test_generated_source_reads_stdin(tmp_path, train_matrix):
    X, y = train_matrix
    pipeline = fit_default_pipeline("DecisionStump", X, y)
    module_path = write_source(export_document(pipeline), tmp_path / "stump.py")
    queries, _ = make_raw_matrix(n=8, missing_rate=0.0, random_state=55)
    proc = subprocess.run(
        [sys.executable, str(module_path)],
        input=json.dumps({"rows": queries.tolist()}),
        capture_output=True, text=True, timeout=120,
        env={"PATH": os.environ.get("PATH", "/usr/bin:/bin")},
    )
    assert proc.returncode == 0, proc.stderr
    assert json.loads(proc.stdout) == pipeline.predict(queries).tolist()


def test_unsupported_estimator_raises_export_error(train_matrix):
    X, y = train_matrix
    pipeline = fit_default_pipeline("ZeroR", X, y)
    with pytest.raises(ExportError, match="does not support export"):
        compile_model(pipeline)


def test_exportable_algorithms_excludes_unsupported_families():
    names = exportable_algorithms(pipeline_registry(default_registry()))
    assert "ZeroR" not in names and "SMO" not in names
    assert "J48" in names and "Logistic" in names


def test_interpreter_rejects_foreign_documents():
    with pytest.raises(ValueError):
        ExportedModel({"format": "something-else", "version": 1, "kind": "pipeline"})
    with pytest.raises(ValueError):
        ExportedModel({"format": FORMAT, "version": FORMAT_VERSION + 1, "kind": "pipeline"})


def test_exported_handles_none_as_missing(train_matrix):
    # JSON has no NaN literal: clients send null. The interpreter must treat
    # None exactly as the live pipeline treats NaN.
    X, y = train_matrix
    pipeline = fit_default_pipeline("NaiveBayes", X, y)
    exported = compile_model(pipeline)
    queries, _ = make_raw_matrix(n=15, missing_rate=0.4, random_state=66)
    rows = [
        [None if isinstance(v, float) and v != v else v for v in row]
        for row in queries.tolist()
    ]
    assert exported.predict(rows) == pipeline.predict(queries).tolist()
    arr = np.asarray(exported.predict_proba(rows))
    np.testing.assert_allclose(arr, pipeline.predict_proba(queries), rtol=1e-9)
