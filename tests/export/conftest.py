"""Fixtures for the export-compiler tests (helpers live in _export_helpers.py)."""

from __future__ import annotations

import numpy as np
import pytest

from _export_helpers import make_raw_matrix


@pytest.fixture(scope="session")
def train_matrix() -> tuple[np.ndarray, np.ndarray]:
    return make_raw_matrix(random_state=0)


@pytest.fixture(scope="session")
def query_regimes() -> dict[str, np.ndarray]:
    """Fresh rows in the three regimes the acceptance bar names."""
    dense, _ = make_raw_matrix(n=25, missing_rate=0.0, random_state=7)
    corrupted, _ = make_raw_matrix(n=25, missing_rate=0.35, random_state=8)
    categorical, _ = make_raw_matrix(n=25, missing_rate=0.1, random_state=9)
    # Unseen categories exercise the encoder's unknown-value path.
    categorical[::5, -1] = "magenta"
    return {"dense": dense, "nan": corrupted, "categorical": categorical}
