"""Shared helpers for the export-compiler tests (importable module).

The sweep data deliberately mixes the three input regimes the acceptance bar
names — dense numeric rows, NaN-corrupted rows and categorical columns — so
every exportable catalogue entry is compared against its compiled artifact on
all of them.
"""

from __future__ import annotations

import numpy as np

from repro.learners import default_registry
from repro.learners.pipeline import pipeline_registry

CATEGORIES = ["red", "green", "blue", "teal"]


def make_raw_matrix(
    n: int = 90,
    n_numeric: int = 4,
    n_categorical: int = 2,
    n_classes: int = 3,
    missing_rate: float = 0.15,
    random_state: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """A raw object matrix (numeric block with NaNs + categorical block).

    Targets are integers ``0..n_classes-1`` — the encoded form every
    estimator in the system actually sees (``Dataset.to_raw_matrix`` pairs
    the raw attributes with the *encoded* target).
    """
    rng = np.random.default_rng(random_state)
    numeric = rng.normal(size=(n, n_numeric)) * rng.uniform(0.5, 3.0, size=n_numeric)
    numeric += rng.uniform(-2.0, 2.0, size=n_numeric)
    if missing_rate:
        numeric[rng.random(numeric.shape) < missing_rate] = np.nan
    X = np.empty((n, n_numeric + n_categorical), dtype=object)
    X[:, :n_numeric] = numeric
    if n_categorical:
        X[:, n_numeric:] = rng.choice(CATEGORIES, size=(n, n_categorical))
    y = rng.integers(0, n_classes, size=n)
    return X, y


def fit_default_pipeline(name: str, X: np.ndarray, y: np.ndarray):
    """Build ``name``'s pipeline twin with default config and fit it."""
    registry = pipeline_registry(default_registry().subset([name]))
    pipeline = registry.build(name, {})
    return pipeline.fit(X, y)
