"""Tests for the hand-authored paper-report parser."""

import pytest

from repro.corpus import ParseError, parse_report, parse_report_file
from repro.core.knowledge import acquire_knowledge

VALID_REPORT = """
# Two comparison papers digested by hand.
paper: zhang2017
title: An up-to-date comparison of state-of-the-art classification algorithms
level: A
type: Journal
influence_factor: 4.3
annual_citations: 60
year: 2017
instance: Wine | best: BayesNet | others: LDA, RandomForest, LibSVM, J48, IBk
instance: Iris | best: RandomForest | others: J48, NaiveBayes

paper: lee2008
level: C
type: Journal
influence_factor: 1.1
annual_citations: 12
instance: Wine | best: LDA | others: BayesNet, J48, IBk, OneR, ZeroR
"""


class TestParseReport:
    def test_parses_papers_and_experiences(self):
        corpus = parse_report(VALID_REPORT)
        assert len(corpus.papers) == 2
        assert len(corpus) == 3
        zhang = corpus.paper("zhang2017")
        assert zhang.level == "A"
        assert zhang.influence_factor == pytest.approx(4.3)
        assert corpus.instances() == ["Wine", "Iris"]

    def test_experience_contents(self):
        corpus = parse_report(VALID_REPORT)
        wine_experiences = corpus.related_to("Wine")
        best_by_paper = {e.paper_id: e.best_algorithm for e in wine_experiences}
        assert best_by_paper == {"zhang2017": "BayesNet", "lee2008": "LDA"}

    def test_feeds_knowledge_acquisition(self):
        corpus = parse_report(VALID_REPORT)
        pairs = acquire_knowledge(corpus, min_algorithms=5)
        wine = {pair.instance: pair.algorithm for pair in pairs}
        # zhang2017 (level A, higher IF) outranks lee2008, so its winner stands.
        assert wine["Wine"] == "BayesNet"

    def test_comments_and_blank_lines_ignored(self):
        corpus = parse_report("# leading comment\n\npaper: p1\nlevel: B\ninstance: D | best: A | others: B\n")
        assert len(corpus.papers) == 1 and len(corpus) == 1

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "report.txt"
        path.write_text(VALID_REPORT)
        corpus = parse_report_file(path)
        assert len(corpus.papers) == 2


class TestParseErrors:
    def test_experience_before_paper(self):
        with pytest.raises(ParseError):
            parse_report("instance: Wine | best: A | others: B\n")

    def test_empty_report(self):
        with pytest.raises(ParseError):
            parse_report("# nothing here\n")

    def test_missing_best_clause(self):
        with pytest.raises(ParseError):
            parse_report("paper: p1\ninstance: Wine | others: A, B\n")

    def test_unknown_field(self):
        with pytest.raises(ParseError):
            parse_report("paper: p1\nvenue: ICDE\n")

    def test_bad_numeric_field(self):
        with pytest.raises(ParseError):
            parse_report("paper: p1\ninfluence_factor: high\n")

    def test_best_also_in_others(self):
        with pytest.raises(ParseError):
            parse_report("paper: p1\ninstance: Wine | best: A | others: A, B\n")

    def test_empty_paper_id(self):
        with pytest.raises(ParseError):
            parse_report("paper:\nlevel: A\n")

    def test_error_reports_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            parse_report("paper: p1\nlevel: A\nvenue: ICDE\n")
        assert excinfo.value.line_number == 3
