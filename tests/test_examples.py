"""Sanity checks for the example scripts.

The heavier examples (quickstart, cash_comparison) are exercised end-to-end by
the benchmark harness's fixtures; here we check that every example compiles
and that the fast ones run to completion: the Fig. 2 knowledge-acquisition
demo derives the expected piece of knowledge, and the serving quickstart
trains, publishes, serves over HTTP and refines asynchronously.
"""

import importlib.util
import py_compile
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamples:
    def test_examples_directory_has_at_least_three_scripts(self):
        assert len(EXAMPLE_FILES) >= 3

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
    def test_example_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_knowledge_acquisition_demo_runs(self, capsys):
        path = EXAMPLES_DIR / "knowledge_acquisition_demo.py"
        spec = importlib.util.spec_from_file_location("knowledge_acquisition_demo", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = module
        try:
            spec.loader.exec_module(module)
            module.main()
        finally:
            sys.modules.pop(spec.name, None)
        output = capsys.readouterr().out
        assert "knowledge acquired" in output
        # The most reliable papers (zhang2017, morente2017) both back BayesNet.
        assert "(Wine, BayesNet)" in output

    def test_pipeline_quickstart_runs(self, capsys):
        path = EXAMPLES_DIR / "pipeline_quickstart.py"
        spec = importlib.util.spec_from_file_location("pipeline_quickstart", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = module
        try:
            spec.loader.exec_module(module)
            module.main()
        finally:
            sys.modules.pop(spec.name, None)
        output = capsys.readouterr().out
        assert "bare estimator fails on messy data" in output
        assert "fitted pipeline Auto-Model: True" in output
        assert "tuned pipeline:" in output
        assert "imputer:enabled" in output
        assert "published model 'pipelines' v0001" in output
        assert "served recommendation:" in output
        assert "refine job finished: done" in output
        assert "config_source=tuned-store" in output
        assert "pipeline quickstart complete" in output

    def test_load_test_quickstart_runs(self, capsys):
        path = EXAMPLES_DIR / "load_test_quickstart.py"
        spec = importlib.util.spec_from_file_location("load_test_quickstart", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = module
        try:
            spec.loader.exec_module(module)
            module.main()
        finally:
            sys.modules.pop(spec.name, None)
        output = capsys.readouterr().out
        assert "published model 'loadtest' v0001" in output
        assert "pool serving on http://" in output
        assert "2 workers" in output
        assert "promoted v0002 mid-run" in output
        assert "failed 0" in output
        assert "scope=pool, workers=2" in output
        assert "load test quickstart complete" in output

    def test_distributed_quickstart_runs(self, capsys):
        path = EXAMPLES_DIR / "distributed_quickstart.py"
        spec = importlib.util.spec_from_file_location("distributed_quickstart", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = module
        try:
            spec.loader.exec_module(module)
            module.main()
        finally:
            sys.modules.pop(spec.name, None)
        output = capsys.readouterr().out
        assert "store server on http://" in output
        assert "fleet of 2 workers built 24 cells" in output
        assert "tables identical across workers: True" in output
        assert "resume: 24 cells already in the store, 0 executed" in output
        assert "resumed table identical: True" in output

    def test_export_quickstart_runs(self, capsys):
        path = EXAMPLES_DIR / "export_quickstart.py"
        spec = importlib.util.spec_from_file_location("export_quickstart", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = module
        try:
            spec.loader.exec_module(module)
            module.main()
        finally:
            sys.modules.pop(spec.name, None)
        output = capsys.readouterr().out
        assert "tuned pipeline:" in output
        assert "compiled artifact predictions byte-identical" in output
        assert "standalone module predicted" in output
        assert "with no numpy import" in output
        assert "registry export: quickstart v0001" in output
        assert "decision-model artifact selects:" in output
        assert "export quickstart complete" in output

    def test_tracing_quickstart_runs(self, capsys):
        import repro.obs as obs

        path = EXAMPLES_DIR / "tracing_quickstart.py"
        spec = importlib.util.spec_from_file_location("tracing_quickstart", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = module
        try:
            spec.loader.exec_module(module)
            module.main()
        finally:
            sys.modules.pop(spec.name, None)
            obs.disable()  # the example configures tracing via os.environ
        output = capsys.readouterr().out
        assert "fleet of 2 workers built 12 cells under one trace" in output
        assert "coverage" in output
        assert "trace tree:" in output
        assert "critical path:" in output
        assert "fleet timeline" in output
        assert "crash taxonomy:" in output
        assert "RuntimeError" in output
        assert "tracing quickstart complete" in output

    def test_serve_quickstart_runs(self, capsys):
        path = EXAMPLES_DIR / "serve_quickstart.py"
        spec = importlib.util.spec_from_file_location("serve_quickstart", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = module
        try:
            spec.loader.exec_module(module)
            module.main()
        finally:
            sys.modules.pop(spec.name, None)
        output = capsys.readouterr().out
        assert "published model 'quickstart' v0001" in output
        assert "health: ok" in output
        assert "recommendation:" in output
        assert "refine job finished: done" in output
        assert "refined recommendation:" in output
        assert "tuned-store config" in output
        assert "serving quickstart complete" in output
