"""The TaskType abstraction on datasets, generators and suites."""

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    TaskType,
    make_friedman,
    make_gaussian_clusters,
    make_linear_response,
    make_piecewise_response,
    make_regression_dataset,
    regression_suite,
    resolve_task,
)


class TestTaskType:
    def test_resolution(self):
        assert resolve_task(None) is TaskType.CLASSIFICATION
        assert resolve_task("regression") is TaskType.REGRESSION
        assert resolve_task("  Regression ") is TaskType.REGRESSION
        assert resolve_task(TaskType.CLASSIFICATION) is TaskType.CLASSIFICATION
        with pytest.raises(ValueError, match="unknown task"):
            resolve_task("ordinal")

    def test_string_equality_and_flags(self):
        assert TaskType.REGRESSION == "regression"
        assert TaskType.REGRESSION.is_regression
        assert not TaskType.REGRESSION.is_classification
        assert TaskType.CLASSIFICATION.is_classification


class TestRegressionDataset:
    def test_default_task_is_classification(self):
        dataset = make_gaussian_clusters("c", n_records=60, n_numeric=3, n_classes=2,
                                         random_state=0)
        assert dataset.task is TaskType.CLASSIFICATION
        assert dataset.is_classification and not dataset.is_regression

    def test_regression_target_is_float(self):
        dataset = make_linear_response("r", n_records=80, n_numeric=4, random_state=0)
        assert dataset.task is TaskType.REGRESSION
        assert dataset.target.dtype == np.float64
        X, y = dataset.to_matrix()
        assert y.dtype == np.float64
        assert not np.array_equal(y, y.astype(int))  # genuinely continuous

    def test_regression_rejects_nan_target(self):
        with pytest.raises(ValueError, match="NaN"):
            Dataset(
                "bad",
                numeric=np.ones((3, 2)),
                categorical=np.zeros((3, 0), dtype=object),
                target=np.array([1.0, np.nan, 2.0]),
                task="regression",
            )

    def test_take_and_subsample_preserve_task(self):
        dataset = make_friedman("f", n_records=100, n_numeric=5, random_state=0)
        sub = dataset.subsample(40, random_state=0)
        assert sub.task is TaskType.REGRESSION
        assert sub.n_records == 40
        taken = dataset.take(np.arange(10))
        assert taken.task is TaskType.REGRESSION
        np.testing.assert_array_equal(taken.target, dataset.target[:10])

    def test_subsample_is_uniform_without_replacement(self):
        dataset = make_linear_response("u", n_records=50, n_numeric=3, random_state=0)
        sub = dataset.subsample(20, random_state=1)
        # All subsampled targets exist in the original (no duplication beyond
        # what the original contains).
        assert sub.n_records == 20
        original = dataset.target.tolist()
        for value in sub.target:
            assert value in original

    def test_train_test_split_preserves_task_and_partitions(self):
        dataset = make_piecewise_response("p", n_records=90, n_numeric=4, random_state=0)
        train, test = dataset.train_test_split(test_size=0.3, random_state=0)
        assert train.task is TaskType.REGRESSION
        assert test.task is TaskType.REGRESSION
        assert train.n_records + test.n_records == dataset.n_records
        assert test.n_records == pytest.approx(27, abs=2)

    def test_summary_and_repr_are_task_aware(self):
        regression = make_friedman("fr", n_records=60, n_numeric=5, random_state=0)
        summary = regression.summary()
        assert summary["task"] == "regression"
        assert "target_mean" in summary and "classes" not in summary
        assert "task='regression'" in repr(regression)
        classification = make_gaussian_clusters("cl", n_records=60, n_numeric=3,
                                                n_classes=2, random_state=0)
        assert "classes" in classification.summary()
        assert "task" not in classification.summary()

    def test_target_moments(self):
        dataset = make_linear_response("m", n_records=70, n_numeric=3, random_state=0)
        assert dataset.target_mean == pytest.approx(float(dataset.target.mean()))
        assert dataset.target_std == pytest.approx(float(dataset.target.std()))


class TestRegressionGenerators:
    @pytest.mark.parametrize(
        "maker", [make_linear_response, make_friedman, make_piecewise_response],
        ids=lambda m: m.__name__,
    )
    def test_generators_produce_requested_shapes(self, maker):
        dataset = maker("g", n_records=120, n_numeric=6, n_categorical=2, random_state=3)
        assert dataset.n_records == 120
        assert dataset.n_numeric == 6
        assert dataset.n_categorical == 2
        assert dataset.is_regression

    def test_generators_are_deterministic(self):
        a = make_friedman("d", n_records=50, n_numeric=5, random_state=42)
        b = make_friedman("d", n_records=50, n_numeric=5, random_state=42)
        np.testing.assert_array_equal(a.target, b.target)
        np.testing.assert_array_equal(a.numeric, b.numeric)

    def test_make_regression_dataset_dispatch(self):
        dataset = make_regression_dataset("friedman", "x", n_records=40, random_state=0)
        assert dataset.metadata["family"] == "friedman"
        with pytest.raises(ValueError, match="unknown regression family"):
            make_regression_dataset("blobs", "x")

    def test_regression_suite_rotates_families(self):
        suite = regression_suite(n_datasets=6, random_state=5)
        assert len(suite) == 6
        assert len({d.name for d in suite}) == 6
        families = {d.metadata["family"] for d in suite}
        assert families == {"linear_response", "friedman", "piecewise_response"}
        assert all(d.is_regression for d in suite)

    def test_regression_suite_validates_inputs(self):
        with pytest.raises(ValueError):
            regression_suite(n_datasets=0)


class TestMetaFeaturesOnRegression:
    def test_feature_extractor_handles_continuous_targets(self):
        from repro.metafeatures import FeatureExtractor

        datasets = regression_suite(n_datasets=4, min_records=60, max_records=100,
                                    random_state=2)
        extractor = FeatureExtractor()
        matrix = extractor.fit_transform(datasets)
        assert matrix.shape == (4, 23)
        assert np.all(np.isfinite(matrix))
