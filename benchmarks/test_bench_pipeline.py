"""Benchmark: pipeline search overhead vs bare-estimator search.

Pipelines pay for per-fold preprocessing (imputation, scaling, one-hot
encoding fitted on each training fold) plus a larger joint space.  This bench
quantifies that overhead on identical clean data by running the same GA
budget through the bare J48 spec and its pipeline twin, and asserts two
floors:

* the per-evaluation overhead factor stays bounded (pipeline wall-clock per
  execution ≤ ``MAX_OVERHEAD``× the bare one) — preprocessing must not
  dominate the search;
* the engine cache works identically for pipelines: GA elites hit the
  fingerprint cache during the search, and a designed duplicate batch of the
  incumbent is served ≥ ``MIN_DUP_HIT_RATE`` from cache (namespaced
  configuration dicts fingerprint just as stably as flat ones).
"""

from __future__ import annotations

from repro.datasets import make_dataset
from repro.execution import estimator_engine
from repro.hpo import Budget, GeneticAlgorithm, HPOProblem
from repro.learners import default_registry, make_pipeline_spec, training_matrix

BUDGET_EVALS = 48
MAX_OVERHEAD = 25.0  # generous ceiling; typical observed is ~1x
MIN_DUP_HIT_RATE = 0.9


def _run_search(spec, dataset):
    X, y = training_matrix(dataset.subsample(150, random_state=0), spec)
    engine = estimator_engine(
        spec.build, X, y, cv=3, random_state=0, name=f"bench-{spec.name}"
    )
    problem = HPOProblem(spec.space, engine=engine)
    optimizer = GeneticAlgorithm(population_size=12, n_generations=8, random_state=0)
    result = optimizer.optimize(problem, Budget(max_evaluations=BUDGET_EVALS))
    return result, engine


def test_bench_pipeline_search_overhead(benchmark):
    dataset = make_dataset(
        "gaussian_clusters", "bench-pipe", n_records=300, n_numeric=6,
        n_categorical=2, n_classes=3, random_state=0,
    )
    bare_spec = default_registry().get("J48")
    pipe_spec = make_pipeline_spec(bare_spec)

    def run():
        bare = _run_search(bare_spec, dataset)
        pipe = _run_search(pipe_spec, dataset)
        return bare, pipe

    (bare_result, bare_engine), (pipe_result, pipe_engine) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    bare_stats, pipe_stats = bare_engine.stats, pipe_engine.stats

    bare_cost = bare_stats.objective_time / max(1, bare_stats.n_executions)
    pipe_cost = pipe_stats.objective_time / max(1, pipe_stats.n_executions)
    overhead = pipe_cost / bare_cost if bare_cost > 0 else 1.0
    print(
        f"\nbare:     best={bare_result.best_score:.4f} "
        f"execs={bare_stats.n_executions} hit_rate={bare_stats.hit_rate:.2%} "
        f"cost/eval={bare_cost * 1e3:.2f}ms"
    )
    print(
        f"pipeline: best={pipe_result.best_score:.4f} "
        f"execs={pipe_stats.n_executions} hit_rate={pipe_stats.hit_rate:.2%} "
        f"cost/eval={pipe_cost * 1e3:.2f}ms"
    )
    print(f"per-evaluation overhead: {overhead:.2f}x")

    # Both searches finish their budget with a real answer.
    assert bare_result.best_score > 0.5
    assert pipe_result.best_score > 0.5
    # The GA revisits elites: some search-time cache hits on the joint space.
    assert pipe_stats.n_cache_hits > 0
    # Cache-hit floor on a designed duplicate batch: re-proposing the tuned
    # incumbent 10 times must be served (almost) entirely from cache.
    executions_before = pipe_stats.n_executions
    outcomes = pipe_engine.evaluate_many([pipe_result.best_config] * 10)
    served_cached = sum(1 for outcome in outcomes if outcome.cached)
    print(f"duplicate-batch cache hits: {served_cached}/10")
    assert pipe_stats.n_executions == executions_before
    assert served_cached / len(outcomes) >= MIN_DUP_HIT_RATE
    # Overhead ceiling: preprocessing per fold must not dominate the search.
    assert overhead <= MAX_OVERHEAD, overhead
