"""Benchmark: batched dispatch vs. single-call recommendation throughput.

The serving subsystem's claim is that its request tier — micro-batched
decision-model forward passes plus fingerprint-keyed meta-feature caching —
beats the status quo ante (one blocking ``AutoModel.select_algorithm`` call
per request, features recomputed every time) by a wide margin under
concurrent traffic.

This bench replays the same request stream (many requests over a smaller set
of distinct datasets, the shape of real serving traffic) through both paths
and asserts the acceptance floor: **batched dispatch ≥3x single-call
throughput, identical answers**.

The served model is a zero-weight MLP with a biased output layer: its
forward-pass cost is that of a real (small) decision model, but it needs no
training, so the bench measures serving — not fitting — and stays fast.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.architecture_search import DecisionModel
from repro.core.automodel import AutoModel
from repro.datasets import make_gaussian_clusters
from repro.evaluation import format_table
from repro.learners.neural import MLPNetwork, MLPRegressor
from repro.metafeatures.extractor import FeatureExtractor, feature_cache
from repro.service import ModelRegistry, RecommendationDispatcher

N_DISTINCT_DATASETS = 12
N_REQUESTS = 288
N_CLIENT_THREADS = 8
SPEEDUP_FLOOR = 3.0

_LABELS = ["J48", "NaiveBayes", "IBk", "Logistic", "ZeroR"]
_FEATURES = ["f1", "f2", "f3", "f5", "f9", "f18", "f20"]


def _servable_model() -> AutoModel:
    """A persistable decision model with a real forward pass, no training."""
    n_features = len(_FEATURES)
    regressor = MLPRegressor(
        hidden_layer=1, hidden_layer_size=8, activation="identity", max_iter=1
    )
    network = MLPNetwork(layer_sizes=[8], task="regression", activation="identity")
    network.weights_ = [np.zeros((n_features, 8)), np.zeros((8, len(_LABELS)))]
    bias = np.linspace(1.0, 0.0, len(_LABELS))  # strict, deterministic ranking
    network.biases_ = [np.zeros(8), bias]
    regressor.network_ = network
    regressor.n_outputs_ = len(_LABELS)
    regressor._mean = np.zeros(n_features)
    regressor._scale = np.ones(n_features)
    model = DecisionModel(
        regressor=regressor,
        labels=list(_LABELS),
        extractor=FeatureExtractor(_FEATURES, normalize=False),
        architecture={"hidden_layer": 1, "hidden_layer_size": 8},
    )
    return AutoModel(model=model)


def test_bench_batched_dispatch_vs_single_call(benchmark, tmp_path):
    # Production-shaped task instances: large enough that Table III feature
    # extraction (the per-request work) has real cost.
    datasets = [
        make_gaussian_clusters(
            f"traffic-{i}", n_records=2000, n_numeric=14, n_categorical=6,
            n_classes=2 + (i % 3), random_state=9000 + i,
        )
        for i in range(N_DISTINCT_DATASETS)
    ]
    # The request stream cycles over the distinct datasets, like production
    # traffic where the same task instances recur.
    requests = [datasets[i % N_DISTINCT_DATASETS] for i in range(N_REQUESTS)]

    registry = ModelRegistry(tmp_path / "registry")
    registry.publish(_servable_model(), "bench")

    automodel = registry.resolve("bench").model

    def single_call_path():
        """Status quo ante: blocking per-request calls, no caching."""
        with feature_cache.disabled():
            start = time.monotonic()
            answers = [automodel.select_algorithm(dataset) for dataset in requests]
            return answers, time.monotonic() - start

    def batched_path():
        """The serving subsystem: concurrent clients, micro-batched dispatch."""
        feature_cache.clear()
        with RecommendationDispatcher(
            registry,
            max_batch_size=32,
            max_wait_ms=2.0,
            suggest_configs=False,  # symmetric with the baseline (no config lookup)
        ) as dispatcher:
            start = time.monotonic()
            with ThreadPoolExecutor(max_workers=N_CLIENT_THREADS) as pool:
                recommendations = list(
                    pool.map(
                        lambda d: dispatcher.recommend(d, model="bench", timeout=120),
                        requests,
                    )
                )
            elapsed = time.monotonic() - start
            return recommendations, elapsed, dispatcher.stats

    def run():
        return single_call_path(), batched_path()

    (baseline_answers, baseline_s), (recs, batched_s, stats) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # Identical answers on every request.
    assert [rec.algorithm for rec in recs] == baseline_answers

    speedup = baseline_s / max(batched_s, 1e-9)
    rows = [
        {
            "path": "single-call (no cache)",
            "seconds": baseline_s,
            "req/s": N_REQUESTS / max(baseline_s, 1e-9),
            "forward passes": N_REQUESTS,
        },
        {
            "path": "batched dispatcher",
            "seconds": batched_s,
            "req/s": N_REQUESTS / max(batched_s, 1e-9),
            "forward passes": stats.forward_passes,
        },
    ]
    print()
    print(
        format_table(
            rows,
            ["path", "seconds", "req/s", "forward passes"],
            title=f"Serving throughput — {N_REQUESTS} requests over "
            f"{N_DISTINCT_DATASETS} datasets, {N_CLIENT_THREADS} clients "
            f"(speedup {speedup:.1f}x)",
            float_format="{:.4f}",
        )
    )

    # Micro-batching really happened, and the acceptance floor holds.
    assert stats.forward_passes < N_REQUESTS
    assert stats.largest_batch >= 2
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched dispatch only {speedup:.2f}x faster than single-call "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
