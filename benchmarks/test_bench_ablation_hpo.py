"""Ablation: the UDR's HPO-technique choice (force-GA vs force-BO vs adaptive).

Section II argues GA suits cheap evaluations and BO suits expensive ones, and
Algorithm 5 picks between them with a timing probe.  This bench tunes the same
selected algorithm on the same dataset with (a) GA, (b) BO and (c) the
adaptive probe rule, under one evaluation budget, and reports the best CV
accuracy each reaches.  Expected shape: the adaptive choice is competitive
with the better of the two fixed choices.
"""

from __future__ import annotations

from repro.evaluation import format_table
from repro.hpo import BayesianOptimization, Budget, GeneticAlgorithm, HPOProblem
from repro.hpo.selector import HPOTechniqueSelector
from repro.learners.validation import cross_val_accuracy

BUDGET_EVALS = 20


def test_bench_ablation_hpo_choice(benchmark, bench_automodel, bench_registry, bench_test_datasets):
    dataset = bench_test_datasets[0]
    algorithm = bench_automodel.select_algorithm(dataset)
    spec = bench_registry.get(algorithm)
    data = dataset.subsample(150, random_state=0)
    X, y = data.to_matrix()

    def objective(config):
        return cross_val_accuracy(spec.build(config), X, y, cv=3, random_state=0)

    optimizers = {
        "GA (forced)": GeneticAlgorithm(population_size=10, n_generations=10, random_state=0),
        "BO (forced)": BayesianOptimization(n_initial=6, random_state=0),
        "adaptive (Algorithm 5)": HPOTechniqueSelector(random_state=0).select(
            spec.space, objective
        ),
    }

    def run():
        out = {}
        for label, optimizer in optimizers.items():
            problem = HPOProblem(spec.space, objective, name=f"ablation-{label}")
            out[label] = optimizer.optimize(problem, Budget(max_evaluations=BUDGET_EVALS))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        {
            "hpo technique": label,
            "selected algorithm": algorithm,
            "best cv accuracy": result.best_score,
            "evaluations": result.n_evaluations,
        }
        for label, result in results.items()
    ]
    print()
    print(format_table(rows, title=f"HPO-technique ablation on {dataset.name}"))

    best_fixed = max(results["GA (forced)"].best_score, results["BO (forced)"].best_score)
    adaptive = results["adaptive (Algorithm 5)"].best_score
    assert adaptive >= best_fixed - 0.1
