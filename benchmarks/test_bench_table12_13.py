"""Tables XII + XIII: SNA's average PORatio / performance on the test datasets.

The paper aggregates the Tables VI/VII rows: the average PORatio of SNA over
the 21 test datasets next to the top-3 single algorithms (Table XII), and the
same for average performance P (Table XIII).  Expected shape: SNA's averages
are at least competitive with the best single algorithm.
"""

from __future__ import annotations

from repro.evaluation import analyze_selection, format_table


def test_bench_table12_13_sna_averages(
    benchmark, bench_automodel, bench_test_datasets, test_performance
):
    def run():
        selection = {
            dataset.name: bench_automodel.select_algorithm(dataset)
            for dataset in bench_test_datasets
        }
        return analyze_selection(selection, test_performance)

    analysis = benchmark.pedantic(run, rounds=1, iterations=1)

    poratio_rows = [{"selection": "SNA", "average PORatio": analysis.average_poratio}]
    for rank, (name, value) in enumerate(analysis.top_by_poratio, start=1):
        poratio_rows.append({"selection": f"Top{rank}-{name}", "average PORatio": value})
    performance_rows = [{"selection": "SNA(D)", "average P": analysis.average_performance}]
    for rank, (name, value) in enumerate(analysis.top_by_score, start=1):
        performance_rows.append({"selection": f"Top{rank}-{name}", "average P": value})

    print()
    print(format_table(poratio_rows, title="Table XII — average PORatio over test datasets"))
    print()
    print(format_table(performance_rows, title="Table XIII — average P over test datasets"))

    # Paper shape: SNA ≈ 0.90 average PORatio vs 0.83 for the best single
    # algorithm.  With a much smaller knowledge pool than the paper's 69 pairs
    # we only require SNA to stay within a modest margin of the best single
    # algorithm and clearly above the catalogue median; the measured gap is
    # recorded in EXPERIMENTS.md.
    assert analysis.average_poratio >= analysis.top_by_poratio[0][1] - 0.2
    assert analysis.average_poratio >= 0.55
    assert analysis.average_performance >= analysis.top_by_score[0][1] - 0.15
