"""Table IX: average performance score P of ``CRelations(D)`` vs single algorithms.

The paper reports the average P(CRelations(D), D) over all knowledge datasets
next to the top-3 single algorithms by average P.  Expected shape: the
knowledge selection's average performance is at least as high as the best
single algorithm's.
"""

from __future__ import annotations

from repro.core.knowledge import acquire_knowledge
from repro.evaluation import analyze_selection, format_table


def test_bench_table9_crelations_performance(benchmark, bench_corpus, knowledge_performance):
    pairs = acquire_knowledge(bench_corpus, min_algorithms=5)
    selection = {
        pair.instance: pair.algorithm
        for pair in pairs
        if pair.instance in knowledge_performance.datasets
    }
    assert len(selection) >= 5

    analysis = benchmark.pedantic(
        lambda: analyze_selection(selection, knowledge_performance),
        rounds=1,
        iterations=1,
    )

    rows = [{"selection": "CRelations(D)", "average P": analysis.average_performance}]
    for rank, (name, value) in enumerate(analysis.top_by_score, start=1):
        rows.append({"selection": f"Top{rank}-{name}", "average P": value})
    print()
    print(format_table(rows, title="Table IX — average performance P over knowledge datasets"))

    best_single = analysis.top_by_score[0][1]
    assert analysis.average_performance >= best_single - 0.05
