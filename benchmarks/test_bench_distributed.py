"""Benchmark: distributed table building through the ``WorkCoordinator``.

The distributed-knowledge claim is that the performance table — the paper's
``P(A, D)``, the expensive substrate every downstream experiment consumes —
can be built by a *fleet*: N worker processes coordinating through nothing
but a shared sqlite-WAL :class:`~repro.execution.store.ResultStore`, with
leased claims to avoid duplicated effort and work-stealing so a straggler
never leaves cells orphaned.

Acceptance floors asserted here:

* **Scaling** — 4 fleet processes rebuild the pipeline-enabled table ≥2x
  faster than a single coordinated worker (asserted only when the host has
  ≥4 CPUs; reported informationally otherwise).
* **Exactness** — every fleet worker's table is *byte-identical* (JSON of
  algorithms, datasets and ``repr``'d scores) to the serial engine path:
  distribution changes wall-clock, never results.
* **Efficiency** — the fleet executes each cell once (leases, not luck):
  total executions across workers equal the cell count, with only a small
  race allowance.

The catalogue is restricted to deterministic learners (seeded per cell by
the table protocol) so byte-identity is meaningful at any worker count.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

from repro.datasets import make_gaussian_clusters
from repro.evaluation import PerformanceTable, format_table
from repro.execution import ResultStore, WorkCoordinator
from repro.learners import default_registry, pipeline_registry

_FORK = multiprocessing.get_context("fork")

N_FLEET = 4
N_DATASETS = 6
SPEEDUP_FLOOR = 2.0
MAX_RECORDS = 240
CV = 3

# Deterministic under the table's per-cell seeding — byte-identity holds at
# any worker count.  (Unseeded-by-default learners like RandomTree would
# vary run to run on the *serial* path too, so they are out.)
CATALOGUE = ["J48", "REPTree", "NaiveBayes", "IBk", "Logistic", "LDA", "OneR", "ZeroR"]


def _datasets():
    return [
        make_gaussian_clusters(
            f"dist-D{i}",
            n_records=300,
            n_numeric=6,
            n_categorical=2,
            n_classes=3,
            random_state=500 + i,
        )
        for i in range(N_DATASETS)
    ]


def _registry():
    # The pipeline-wrapped catalogue: imputer→scaler→encoder ahead of every
    # estimator, the PR-5 "pipeline-enabled" table.
    return pipeline_registry(default_registry().subset(CATALOGUE))


def _table_bytes(table: PerformanceTable) -> bytes:
    """Canonical byte encoding of a table for exact cross-process comparison."""
    return json.dumps(
        {
            "algorithms": table.algorithms,
            "datasets": table.datasets,
            "scores": [[repr(s) for s in row] for row in table.scores.tolist()],
        },
        sort_keys=True,
    ).encode("utf-8")


def _fleet_member(root, worker_index, n_workers, queue):
    """One fleet process: coordinate the full table build, report the result."""
    try:
        coordinator = WorkCoordinator(
            ResultStore(root, backend="sqlite"),
            worker_index=worker_index,
            n_workers=n_workers,
            lease_seconds=15.0,
            poll_interval=0.02,
        )
        table = PerformanceTable.compute(
            _datasets(),
            registry=_registry(),
            cv=CV,
            max_records=MAX_RECORDS,
            coordinator=coordinator,
        )
        queue.put(
            ("ok", worker_index, coordinator.stats.n_executed, _table_bytes(table))
        )
    except BaseException as exc:  # pragma: no cover - surfaced in the parent
        queue.put(("error", worker_index, repr(exc), b""))


def _run_fleet(root, n_workers: int) -> tuple[float, list[bytes], int]:
    """Launch ``n_workers`` fleet processes over one store; time to last exit."""
    queue = _FORK.Queue()
    procs = [
        _FORK.Process(target=_fleet_member, args=(root, w, n_workers, queue))
        for w in range(n_workers)
    ]
    t0 = time.perf_counter()
    for proc in procs:
        proc.start()
    results = [queue.get(timeout=600) for _ in procs]
    for proc in procs:
        proc.join(timeout=600)
    elapsed = time.perf_counter() - t0
    failures = [r for r in results if r[0] != "ok"]
    assert not failures, failures
    tables = [r[3] for r in results]
    executed = sum(r[2] for r in results)
    return elapsed, tables, executed


def test_fleet_scaling_and_byte_identical_tables(tmp_path):
    datasets = _datasets()
    registry = _registry()
    n_cells = len(datasets) * len(registry)

    # Serial reference: the plain engine path, no coordinator at all.
    t0 = time.perf_counter()
    serial_table = PerformanceTable.compute(
        datasets, registry=registry, cv=CV, max_records=MAX_RECORDS
    )
    serial_seconds = time.perf_counter() - t0
    reference = _table_bytes(serial_table)

    # One coordinated worker: the distribution overhead baseline.
    one_seconds, one_tables, one_executed = _run_fleet(tmp_path / "one", 1)
    assert one_tables == [reference]
    assert one_executed == n_cells

    # The fleet: N processes, shared sqlite-WAL store, leases + stealing.
    fleet_seconds, fleet_tables, fleet_executed = _run_fleet(tmp_path / "fleet", N_FLEET)
    assert fleet_tables == [reference] * N_FLEET
    # Leases keep duplicated effort to a small race allowance.
    assert n_cells <= fleet_executed <= n_cells + N_FLEET

    speedup = one_seconds / max(fleet_seconds, 1e-9)
    print()
    print(
        format_table(
            [
                {"path": "serial engine", "seconds": serial_seconds,
                 "speedup": "-", "cells executed": "-"},
                {"path": "fleet n=1", "seconds": one_seconds,
                 "speedup": "1.00", "cells executed": one_executed},
                {"path": f"fleet n={N_FLEET}", "seconds": fleet_seconds,
                 "speedup": f"{speedup:.2f}", "cells executed": fleet_executed},
            ],
            title=f"Distributed table build — {n_cells} pipeline cells",
        )
    )

    if (os.cpu_count() or 1) >= N_FLEET:
        assert speedup >= SPEEDUP_FLOOR, (
            f"fleet of {N_FLEET} only {speedup:.2f}x over one worker "
            f"(floor {SPEEDUP_FLOOR}x on {os.cpu_count()} CPUs)"
        )
    else:  # pragma: no cover - small CI hosts
        print(
            f"[note] only {os.cpu_count()} CPU(s): {SPEEDUP_FLOOR}x floor not "
            "asserted"
        )


def test_fleet_resumes_a_crashed_build(tmp_path):
    """Kill a build midway; a fresh fleet finishes from the store, exactly."""
    datasets = _datasets()
    registry = _registry()
    reference = _table_bytes(
        PerformanceTable.compute(
            datasets, registry=registry, cv=CV, max_records=MAX_RECORDS
        )
    )

    root = tmp_path / "resume"
    queue = _FORK.Queue()
    first = _FORK.Process(target=_fleet_member, args=(root, 0, 1, queue))
    first.start()
    time.sleep(2.0)  # let it record a prefix of the table
    first.terminate()
    first.join(timeout=60)

    partial = ResultStore(root, backend="sqlite")
    contexts = [c for c in partial.contexts() if "#claims" not in c]
    done_before = partial.size(contexts[0]) if contexts else 0
    partial.close()

    _elapsed, tables, executed = _run_fleet(root, 2)
    assert tables == [reference] * 2
    n_cells = len(datasets) * len(registry)
    assert executed <= n_cells  # never recomputes what the dead run recorded
    if done_before:
        # Small allowance: the dead run may have finished a cell whose record
        # landed after the size() snapshot, and a claim race costs one more.
        assert executed <= n_cells - done_before + 2
