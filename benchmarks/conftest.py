"""Shared, session-scoped artefacts for the benchmark harness.

Every table/figure bench consumes the same fitted pipeline so the expensive
pieces (the per-algorithm performance tables and the DMD run) are computed
once per session.  Scales are reduced relative to the paper — the knowledge
pool has ~16 datasets instead of 69 pairs, the catalogue is restricted to its
cheap/moderate members, and budgets are counted in evaluations — but the
structure of every experiment (what is measured and compared) is identical.

Constants such as ``SHORT_BUDGET_EVALS`` map the paper's 30 s / 5 min wall
clock limits onto deterministic evaluation budgets so the benches produce the
same rows on any machine.
"""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(items):
    """Every bench is marked ``bench`` and ``slow`` so ``-m "not slow"`` (the
    CI unit-job default) skips the whole harness without path filtering.

    The hook fires for the whole session's items (pytest passes every
    collected item to every conftest), so it must filter to this directory —
    otherwise a root-level run would mark the unit tests slow too.
    """
    from pathlib import Path

    bench_dir = Path(__file__).resolve().parent
    for item in items:
        if bench_dir in Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.bench)
            item.add_marker(pytest.mark.slow)

from repro.core import AutoModel, DecisionMakingModelDesigner
from repro.corpus import CorpusConfig, generate_corpus
from repro.datasets import knowledge_suite, test_suite
from repro.evaluation import PerformanceTable
from repro.learners import default_registry

# Catalogue used throughout the benchmark harness: cheap + moderate learners,
# which keeps per-dataset evaluation tractable while staying heterogeneous
# (trees, forests, boosting, bayes, lazy, linear, rules, misc).
BENCH_CATALOGUE = [
    "J48",
    "SimpleCart",
    "REPTree",
    "RandomTree",
    "DecisionStump",
    "RandomForest",
    "Bagging",
    "AdaBoostM1",
    "RandomSubSpace",
    "NaiveBayes",
    "BayesNet",
    "IBk",
    "IB1",
    "KStar",
    "LWL",
    "Logistic",
    "SimpleLogistic",
    "LDA",
    "RBFNetwork",
    "OneR",
    "ZeroR",
    "JRip",
    "HyperPipes",
    "VFI",
    "ClassificationViaRegression",
]

N_EXTRA_KNOWLEDGE_DATASETS = 8
KNOWLEDGE_MAX_RECORDS = 200
TEST_MAX_RECORDS = 250
N_TEST_DATASETS = 8  # first N of the 21 Table XI-shaped datasets


@pytest.fixture(scope="session")
def bench_registry():
    return default_registry().subset(BENCH_CATALOGUE)


@pytest.fixture(scope="session")
def bench_knowledge_datasets():
    """The knowledge pool the simulated papers experiment on.

    In the paper both the 69 knowledge datasets and the 21 test datasets are
    UCI-style tabular data, so the pool here is built from (a) *sibling*
    datasets of the Table XI shapes (same record/attribute/class structure,
    different generated data) plus (b) additional varied datasets, giving a
    pool whose shape distribution matches the test suite without sharing any
    actual data.
    """
    siblings = test_suite(
        max_records=KNOWLEDGE_MAX_RECORDS,
        max_numeric=25,
        random_state=777,
        name_prefix="K_",
    )
    extras = knowledge_suite(
        n_datasets=N_EXTRA_KNOWLEDGE_DATASETS,
        max_records=KNOWLEDGE_MAX_RECORDS,
        random_state=2020,
    )
    return siblings + extras


@pytest.fixture(scope="session")
def bench_test_datasets():
    return test_suite(max_records=TEST_MAX_RECORDS, max_numeric=25, random_state=2020)[
        :N_TEST_DATASETS
    ]


@pytest.fixture(scope="session")
def knowledge_performance(bench_knowledge_datasets, bench_registry) -> PerformanceTable:
    """P(A, D) over the knowledge pool (backs Tables VIII, IX and the corpus)."""
    return PerformanceTable.compute(
        bench_knowledge_datasets,
        registry=bench_registry,
        tune=False,
        cv=3,
        max_records=130,
        random_state=0,
    )


@pytest.fixture(scope="session")
def test_performance(bench_test_datasets, bench_registry) -> PerformanceTable:
    """P(A, D) over the test datasets (backs Tables VI, VII, XII, XIII)."""
    return PerformanceTable.compute(
        bench_test_datasets,
        registry=bench_registry,
        tune=False,
        cv=3,
        max_records=200,
        random_state=1,
    )


@pytest.fixture(scope="session")
def bench_corpus(bench_knowledge_datasets, bench_registry, knowledge_performance):
    config = CorpusConfig(n_papers=20, random_state=0)
    corpus, _ = generate_corpus(
        bench_knowledge_datasets,
        registry=bench_registry,
        config=config,
        performance=knowledge_performance,
    )
    return corpus


@pytest.fixture(scope="session")
def bench_dmd() -> DecisionMakingModelDesigner:
    return DecisionMakingModelDesigner(
        feature_population=12,
        feature_generations=6,
        feature_max_evaluations=60,
        architecture_population=10,
        architecture_generations=4,
        architecture_max_evaluations=24,
        cv=3,
        random_state=0,
    )


@pytest.fixture(scope="session")
def bench_automodel(
    bench_corpus, bench_knowledge_datasets, bench_registry, knowledge_performance, bench_dmd
) -> AutoModel:
    lookup = {d.name: d for d in bench_knowledge_datasets}
    result = bench_dmd.run(bench_corpus, lookup)
    return AutoModel(
        dmd_result=result,
        registry=bench_registry,
        performance=knowledge_performance,
        corpus=bench_corpus,
    )
