"""Table X: Auto-Model vs Auto-WEKA under short and long time limits.

The paper runs both CASH tools on the 21 test datasets under 30 s and 5 min
wall-clock limits and reports f(T, D) — the 10-fold CV accuracy of the
returned solution.  The mechanism behind Auto-Model's advantage is that it
prunes the joint algorithm+hyperparameter space to a single algorithm before
tuning, so under a tight wall-clock budget it spends its time improving one
good algorithm while Auto-WEKA spreads the same seconds over many algorithms.

Here the limits are scaled down (seconds instead of minutes, because our
datasets and learners are far cheaper than Weka on the full UCI suite) and a
subset of the test datasets is used.  Expected shape: Auto-Model's mean
f(T, D) matches or beats Auto-WEKA's at the short limit, it wins or ties on a
meaningful share of datasets, and more budget does not hurt it.
"""

from __future__ import annotations

from repro.baselines import AutoWekaBaseline
from repro.evaluation import compare_tools, format_table

# The paper's 30 s / 5 min wall-clock limits, scaled to our cheaper substrate.
SHORT_TIME_LIMIT = 3.0
LONG_TIME_LIMIT = 10.0


def test_bench_table10_automodel_vs_autoweka(
    benchmark, bench_automodel, bench_registry, bench_test_datasets
):
    datasets = bench_test_datasets[:5]
    tools = {
        "Auto-Model": bench_automodel.responder(cv=3, tuning_max_records=150, random_state=0),
        "Auto-Weka": AutoWekaBaseline(
            registry=bench_registry, strategy="smac", cv=3,
            tuning_max_records=150, random_state=0,
        ),
    }

    def run():
        return compare_tools(
            tools,
            datasets,
            time_limits=[SHORT_TIME_LIMIT, LONG_TIME_LIMIT],
            max_evaluations=None,
            cv=5,
            registry=bench_registry,
            eval_max_records=250,
            random_state=0,
        )

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_table(comparison.table(), title="Table X — f(T, D) under both time limits"))
    for limit in (SHORT_TIME_LIMIT, LONG_TIME_LIMIT):
        print(
            f"time limit {limit:>4}s  wins: {comparison.win_counts(limit)}  means:",
            {name: round(comparison.mean_f_score(name, limit), 3) for name in tools},
        )

    short_automodel = comparison.mean_f_score("Auto-Model", SHORT_TIME_LIMIT)
    short_autoweka = comparison.mean_f_score("Auto-Weka", SHORT_TIME_LIMIT)
    long_automodel = comparison.mean_f_score("Auto-Model", LONG_TIME_LIMIT)

    # Paper shape 1: Auto-Model is at least as good as Auto-WEKA on average at
    # the short budget (and typically strictly better).
    assert short_automodel >= short_autoweka - 0.03
    # Paper shape 2: Auto-Model wins or ties on a meaningful share of datasets.
    wins = comparison.win_counts(SHORT_TIME_LIMIT)
    assert wins["Auto-Model"] >= 2
    # Paper shape 3: more budget does not hurt Auto-Model.
    assert long_automodel >= short_automodel - 0.05
