"""Ablation: GA-selected key features (Algorithm 2) vs using all 23 features.

The paper motivates feature selection by arguing that irrelevant features add
noise and make instances harder to differentiate.  This bench compares the
cross-validated accuracy of the default decision MLP on (a) the GA-selected
key features and (b) the full 23-feature representation, over the knowledge
base the benchmark pipeline produced.  Expected shape: the selected subset is
not worse, and typically smaller.
"""

from __future__ import annotations

from repro.core.feature_selection import FeatureSelector
from repro.evaluation import format_table


def test_bench_ablation_feature_selection(benchmark, bench_automodel):
    knowledge = bench_automodel.dmd_result.knowledge_base
    selector = FeatureSelector(
        population_size=12,
        n_generations=6,
        max_evaluations=60,
        cv=3,
        mlp_max_iter=60,
        random_state=0,
    )

    result = benchmark.pedantic(lambda: selector.select(knowledge), rounds=1, iterations=1)

    rows = [
        {
            "feature set": f"GA-selected KFs ({result.n_selected} features)",
            "cv accuracy": result.score,
        },
        {
            "feature set": "all 23 features",
            "cv accuracy": result.all_features_score,
        },
    ]
    print()
    print(format_table(rows, title="Feature-selection ablation (Algorithm 2)"))
    print("selected:", result.selected)

    assert result.n_selected <= 23
    assert result.score >= result.all_features_score - 0.1
