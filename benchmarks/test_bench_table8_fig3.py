"""Table VIII + Fig. 3: quality of the acquired knowledge ``CRelations``.

The paper reports (a) the average PORatio of ``CRelations(D)`` over all
knowledge datasets together with the top-3 single algorithms by average
PORatio (Table VIII), and (b) the distribution of those PORatios over five
bins (Fig. 3).  Expected shape: the knowledge pairs sit overwhelmingly in the
[0.8, 1.0] bin and their average PORatio beats every single algorithm.
"""

from __future__ import annotations

from repro.core.knowledge import acquire_knowledge
from repro.evaluation import analyze_selection, format_histogram, format_table


def _crelations_selection(bench_corpus, knowledge_performance):
    pairs = acquire_knowledge(bench_corpus, min_algorithms=5)
    return {
        pair.instance: pair.algorithm
        for pair in pairs
        if pair.instance in knowledge_performance.datasets
    }


def test_bench_table8_crelations_poratio(benchmark, bench_corpus, knowledge_performance):
    selection = _crelations_selection(bench_corpus, knowledge_performance)
    assert len(selection) >= 5, "knowledge acquisition produced too few pairs to analyse"

    analysis = benchmark.pedantic(
        lambda: analyze_selection(selection, knowledge_performance),
        rounds=1,
        iterations=1,
    )

    rows = [{"selection": "CRelations(D)", "average PORatio": analysis.average_poratio}]
    for rank, (name, value) in enumerate(analysis.top_by_poratio, start=1):
        rows.append({"selection": f"Top{rank}-{name}", "average PORatio": value})
    print()
    print(format_table(rows, title="Table VIII — average PORatio over knowledge datasets"))

    # Paper shape: CRelations averages ~0.84 and beats the best single algorithm.
    assert analysis.average_poratio >= 0.6
    assert analysis.average_poratio >= analysis.top_by_poratio[0][1] - 0.05


def test_bench_fig3_poratio_distribution(benchmark, bench_corpus, knowledge_performance):
    selection = _crelations_selection(bench_corpus, knowledge_performance)
    analysis = analyze_selection(selection, knowledge_performance)

    histogram = benchmark.pedantic(analysis.histogram, rounds=1, iterations=1)
    print()
    print(format_histogram(histogram, title="Fig. 3 — PORatio distribution of CRelations(D)"))

    # Paper shape: the [0.8, 1.0] bin dominates (≈80% in the paper).
    top_bin = histogram["[0.8,1.0]"]
    assert top_bin == max(histogram.values())
    assert top_bin >= 40.0
