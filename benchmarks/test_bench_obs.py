"""Benchmark: tracing must be near-free when off, cheap when on.

``repro.obs`` instruments the engine's hottest path — every trial of every
``evaluate_many`` batch — so its cost discipline is part of the contract:

* **Disabled** (the default): each call site is one ``enabled`` attribute
  check and a shared no-op span.  Floor: ≤ 3% over a raw ``timed_call``
  loop on a realistic (~2 ms) objective.
* **Enabled**: per-trial span bookkeeping plus one JSONL line per event.
  Floor: ≤ 15% over the disabled path.

Times are best-of-``N_REPEATS`` so scheduler noise shrinks rather than
accumulates; the objective is deterministic CPU work (an SVD), not sleep,
so the overhead ratio is measured against real computation.
"""

from __future__ import annotations

import time

import numpy as np

import repro.obs as obs
from repro.execution import EvaluationEngine
from repro.execution.engine import timed_call

N_TRIALS = 24
N_REPEATS = 5
DISABLED_OVERHEAD_CEILING = 1.03
ENABLED_OVERHEAD_CEILING = 1.15

_MATRIX = np.random.RandomState(0).rand(160, 160)


def _objective(config: dict) -> float:
    """~2 ms of deterministic numerical work, distinct per config."""
    return float(
        np.linalg.svd(_MATRIX + config["x"] * 1e-9, compute_uv=False)[0]
    )


def _configs() -> list[dict]:
    return [{"x": i} for i in range(N_TRIALS)]


def _time_raw_loop() -> float:
    configs = _configs()
    started = time.perf_counter()
    for config in configs:
        timed_call(_objective, config)
    return time.perf_counter() - started


def _time_evaluate_many() -> float:
    engine = EvaluationEngine(_objective, backend="serial")
    configs = _configs()
    started = time.perf_counter()
    engine.evaluate_many(configs)
    return time.perf_counter() - started


def _best_of(fn) -> float:
    return min(fn() for _ in range(N_REPEATS))


class TestObsOverhead:
    def test_disabled_and_enabled_overhead_floors(self, tmp_path, capsys):
        obs.disable()
        try:
            # Warm up numpy/the allocator so the first mode isn't penalised.
            _time_raw_loop()

            t_raw = _best_of(_time_raw_loop)
            t_off = _best_of(_time_evaluate_many)

            obs.configure(tmp_path / "journal")
            assert obs.enabled()
            t_on = _best_of(_time_evaluate_many)
            events = obs.read_events(tmp_path / "journal")
        finally:
            obs.disable()

        off_ratio = t_off / t_raw
        on_ratio = t_on / t_off
        with capsys.disabled():
            print()
            print(f"raw timed_call loop      {t_raw * 1000:8.2f} ms")
            print(f"evaluate_many (obs off)  {t_off * 1000:8.2f} ms  ({off_ratio:.3f}x raw)")
            print(f"evaluate_many (obs on)   {t_on * 1000:8.2f} ms  ({on_ratio:.3f}x off)")

        # The enabled run really traced: one batch span + one trial event per
        # config per repetition.
        spans = [e for e in events if e.get("type") == "span"]
        trials = [e for e in events if e.get("type") == "trial_finish"]
        assert len(spans) >= N_REPEATS
        assert len(trials) == N_TRIALS * N_REPEATS

        assert off_ratio <= DISABLED_OVERHEAD_CEILING, (
            f"disabled tracing costs {(off_ratio - 1) * 100:.1f}% over the raw "
            f"loop (ceiling {(DISABLED_OVERHEAD_CEILING - 1) * 100:.0f}%)"
        )
        assert on_ratio <= ENABLED_OVERHEAD_CEILING, (
            f"enabled tracing costs {(on_ratio - 1) * 100:.1f}% over disabled "
            f"(ceiling {(ENABLED_OVERHEAD_CEILING - 1) * 100:.0f}%)"
        )
