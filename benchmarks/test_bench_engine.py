"""Benchmark: the unified trial-execution engine's cache and parallel paths.

Every evaluation in the system now runs through one
:class:`~repro.execution.engine.EvaluationEngine`; this bench quantifies what
that buys on a realistic workload — a GA tuning the UDR-selected algorithm —
by running the identical search (same seed, same budget) through

* a *cold* engine with the cache disabled (the seed's behaviour),
* a cached engine (GA elites and duplicate proposals become cache hits), and
* a cached engine with 4 thread workers (each generation is one parallel batch).

Expected shape: identical best scores and trajectories across all three rows
(the engine is replay-equivalent), a cache hit rate > 0 for the cached rows,
and wall-clock no worse — usually better — than the cold row.
"""

from __future__ import annotations

from repro.evaluation import format_table
from repro.execution import estimator_engine
from repro.hpo import Budget, GeneticAlgorithm, HPOProblem

BUDGET_EVALS = 60


def test_bench_engine_cache_and_parallelism(
    benchmark, bench_automodel, bench_registry, bench_test_datasets
):
    dataset = bench_test_datasets[0]
    algorithm = bench_automodel.select_algorithm(dataset)
    spec = bench_registry.get(algorithm)
    data = dataset.subsample(150, random_state=0)
    X, y = data.to_matrix()

    variants = {
        "cold (no cache, serial)": {"cache": False, "n_workers": 1},
        "cached, serial": {"cache": True, "n_workers": 1},
        "cached, 4 workers": {"cache": True, "n_workers": 4},
    }

    def run():
        out = {}
        for label, knobs in variants.items():
            engine = estimator_engine(
                spec.build,
                X,
                y,
                cv=3,
                random_state=0,
                name=f"bench-{label}",
                **knobs,
            )
            problem = HPOProblem(spec.space, engine=engine)
            optimizer = GeneticAlgorithm(
                population_size=12, n_generations=8, random_state=0
            )
            result = optimizer.optimize(problem, Budget(max_evaluations=BUDGET_EVALS))
            out[label] = (result, engine.stats)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        {
            "engine": label,
            "best cv accuracy": result.best_score,
            "evaluations": result.n_evaluations,
            "objective calls": stats.n_executions,
            "cache hit rate": stats.hit_rate,
            "evals/sec": stats.evals_per_second,
            "parallel speedup": stats.parallel_speedup,
        }
        for label, (result, stats) in results.items()
    ]
    print()
    print(format_table(rows, title=f"Execution-engine ablation on {dataset.name} ({algorithm})"))

    cold, _ = results["cold (no cache, serial)"]
    cached, cached_stats = results["cached, serial"]
    parallel, parallel_stats = results["cached, 4 workers"]
    # Replay equivalence: the engine must not change a single score.
    assert [t.score for t in cached.trials] == [t.score for t in cold.trials]
    assert [t.score for t in parallel.trials] == [t.score for t in cold.trials]
    assert cached.best_score == cold.best_score == parallel.best_score
    # GA elites repeat across generations, so the cache must fire and save work.
    assert cached_stats.n_cache_hits > 0
    assert parallel_stats.n_cache_hits > 0
    assert cached_stats.n_executions < BUDGET_EVALS
