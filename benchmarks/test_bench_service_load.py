"""Benchmark: pre-forked multi-process serving vs a single process.

The scale-out claim of the serving stack is that a :class:`ServicePool`
breaks the single-interpreter ceiling: N forked workers accepting on one
address serve concurrent traffic at a multiple of one process's
throughput, while a mid-run promote stays invisible to clients (zero
failed requests) and ``/metrics`` aggregates exactly what the clients
measured.

The bench replays an identical mixed schedule — ``/recommend`` over a
rotating set of production-shaped datasets, job-table polls, async refine
submissions — against a 1-worker pool and an ``N``-worker pool, with a
model promote fired mid-run in both cases.

The ≥2x speedup floor only holds where the hardware can park workers on
separate cores, so it is asserted only when ``os.cpu_count() >= 4``; on
smaller machines (CI containers) the bench still asserts the correctness
envelope — zero failures across the swap, a bounded p99, and exact
client/server tally reconciliation — plus a lenient sanity floor.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time

import numpy as np

from repro.core.architecture_search import DecisionModel
from repro.core.automodel import AutoModel
from repro.datasets import make_gaussian_clusters
from repro.evaluation import format_table
from repro.learners.neural import MLPNetwork, MLPRegressor
from repro.metafeatures.extractor import FeatureExtractor
from repro.service import LoadGenerator, LoadOp, ModelRegistry, ServicePool

N_DISTINCT_DATASETS = 8
N_CLIENTS = 8
REQUESTS_PER_CLIENT = 30          # 240 requests per run
POOL_WORKERS = 4
SPEEDUP_FLOOR = 2.0               # asserted only with >= 4 CPUs
SANITY_FLOOR = 0.3                # always asserted (GIL-bound client, 1 CPU)
P99_CEILING_MS = 3000.0

_LABELS = ["J48", "NaiveBayes", "IBk", "Logistic", "ZeroR"]
_FEATURES = ["f1", "f2", "f3", "f5", "f9", "f18", "f20"]


def _servable_model(reverse: bool = False) -> AutoModel:
    """A persistable decision model with a real forward pass, no training."""
    n_features = len(_FEATURES)
    regressor = MLPRegressor(
        hidden_layer=1, hidden_layer_size=8, activation="identity", max_iter=1
    )
    network = MLPNetwork(layer_sizes=[8], task="regression", activation="identity")
    network.weights_ = [np.zeros((n_features, 8)), np.zeros((8, len(_LABELS)))]
    bias = np.linspace(1.0, 0.0, len(_LABELS))
    if reverse:
        bias = bias[::-1].copy()
    network.biases_ = [np.zeros(8), bias]
    regressor.network_ = network
    regressor.n_outputs_ = len(_LABELS)
    regressor._mean = np.zeros(n_features)
    regressor._scale = np.ones(n_features)
    model = DecisionModel(
        regressor=regressor,
        labels=list(_LABELS),
        extractor=FeatureExtractor(_FEATURES, normalize=False),
        architecture={"hidden_layer": 1, "hidden_layer_size": 8},
    )
    return AutoModel(model=model)


def _dataset_payload(dataset) -> dict:
    return {
        "name": dataset.name,
        "task": dataset.task.value,
        "target": [str(v) for v in dataset.target],
        "numeric": dataset.numeric.tolist(),
        "categorical": [[str(v) for v in row] for row in dataset.categorical],
    }


def _build_ops(datasets, refine_dataset) -> list[LoadOp]:
    """The mixed schedule: recommendations, job polls, refine submissions."""
    ops = [
        LoadOp(
            "POST", "/recommend",
            {"dataset": _dataset_payload(dataset), "model": "bench"},
            weight=3, name="POST /recommend",
        )
        for dataset in datasets
    ]
    ops.append(LoadOp("GET", "/jobs", weight=2))
    ops.append(LoadOp("GET", "/healthz", weight=1))
    ops.append(
        LoadOp(
            "POST", "/jobs",
            {
                "kind": "refine",
                "model": "bench",
                "dataset": _dataset_payload(refine_dataset),
                "max_evaluations": 2,
            },
            weight=1, name="POST /jobs",
        )
    )
    return ops


def _http(pool, method, path, body=None):
    conn = http.client.HTTPConnection(pool.host, pool.port, timeout=60)
    try:
        conn.request(
            method,
            path,
            body=json.dumps(body).encode("utf-8") if body is not None else None,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _run_pool(tmp_path, tag, n_workers, ops, promote_version):
    """One measured run: fresh registry copy, mid-run promote, /metrics read."""
    registry = ModelRegistry(tmp_path / f"registry-{tag}")
    registry.publish(_servable_model(), "bench")                  # v0001 live
    v2 = registry.publish(_servable_model(reverse=True), "bench") # standby
    assert v2 == promote_version

    pool = ServicePool(
        registry.root, n_workers=n_workers, fit_workers=1, flush_interval=0.25
    )
    pool.start()
    try:
        generator = LoadGenerator(
            pool.host, pool.port, ops,
            n_clients=N_CLIENTS, requests_per_client=REQUESTS_PER_CLIENT,
        )
        report_box = {}
        runner = threading.Thread(target=lambda: report_box.update(r=generator.run()))
        runner.start()
        # Promote mid-run: the hot swap must be invisible to the traffic.
        assert generator.wait_until(generator.total_requests // 2, timeout=300)
        status, _ = _http(pool, "POST", "/models/promote",
                          {"name": "bench", "version": promote_version})
        assert status == 200
        runner.join(timeout=600)
        assert not runner.is_alive(), "load run never finished"
        report = report_box["r"]

        # After the swap every fresh answer must come from the new version.
        status, rec = _http(
            pool, "POST", "/recommend",
            {"dataset": ops[0].body["dataset"], "model": "bench"},
        )
        assert status == 200 and rec["version"] == promote_version

        time.sleep(1.2)  # let every worker's flusher publish its final tally
        status, metrics = _http(pool, "GET", "/metrics")
        assert status == 200
        return report, metrics
    finally:
        pool.stop()


def test_bench_pool_throughput_and_zero_downtime_swap(benchmark, tmp_path):
    datasets = [
        make_gaussian_clusters(
            f"load-{i}", n_records=1200, n_numeric=10, n_categorical=4,
            n_classes=2 + (i % 3), random_state=7000 + i,
        )
        for i in range(N_DISTINCT_DATASETS)
    ]
    refine_dataset = make_gaussian_clusters(
        "load-refine", n_records=60, n_numeric=4, n_categorical=0, n_classes=2,
        random_state=7777,
    )
    ops = _build_ops(datasets, refine_dataset)

    def run():
        single = _run_pool(tmp_path, "single", 1, ops, "v0002")
        multi = _run_pool(tmp_path, "multi", POOL_WORKERS, ops, "v0002")
        return single, multi

    (single_report, _), (multi_report, multi_metrics) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # -- correctness envelope (asserted on any hardware) ------------------------------
    for label, report in (("1 worker", single_report), (f"{POOL_WORKERS} workers", multi_report)):
        assert report.n_requests == N_CLIENTS * REQUESTS_PER_CLIENT
        assert report.n_failed == 0, f"{label}: failed requests during the run"
        assert report.n_client_errors == 0, f"{label}: client errors in the schedule"
        assert report.n_shed == 0, f"{label}: unexpected shedding (no depth bound set)"
    # The promote happened mid-run on a keep-alive connection pool and no
    # request needed a transport-level retry, let alone failed.
    assert multi_report.n_retried == 0

    assert multi_report.latency_ms(0.99) <= P99_CEILING_MS, (
        f"p99 {multi_report.latency_ms(0.99):.0f}ms above ceiling {P99_CEILING_MS}ms"
    )

    # -- /metrics reconciles exactly with the client-side tally -----------------------
    assert multi_metrics["scope"] == "pool"
    assert len(multi_metrics["workers"]) == POOL_WORKERS
    server_recommend = multi_metrics["http"]["endpoints"]["POST /recommend"]
    client_recommend = multi_report.by_route["POST /recommend"]
    # +1: the direct post-swap version probe issued outside the generator.
    assert server_recommend["n_requests"] == client_recommend["n_requests"] + 1
    assert server_recommend["n_ok"] == client_recommend["n_ok"] + 1
    server_jobs = multi_metrics["http"]["endpoints"]["POST /jobs"]
    assert server_jobs["n_requests"] == multi_report.by_route["POST /jobs"]["n_requests"]
    assert multi_metrics["dispatcher"]["n_requests"] >= client_recommend["n_requests"]

    # -- throughput -------------------------------------------------------------------
    speedup = multi_report.throughput_rps / max(single_report.throughput_rps, 1e-9)
    rows = [
        {
            "configuration": "1 worker",
            "req/s": single_report.throughput_rps,
            "p50 ms": single_report.latency_ms(0.50),
            "p99 ms": single_report.latency_ms(0.99),
            "failed": single_report.n_failed,
        },
        {
            "configuration": f"{POOL_WORKERS} workers",
            "req/s": multi_report.throughput_rps,
            "p50 ms": multi_report.latency_ms(0.50),
            "p99 ms": multi_report.latency_ms(0.99),
            "failed": multi_report.n_failed,
        },
    ]
    print()
    print(
        format_table(
            rows,
            ["configuration", "req/s", "p50 ms", "p99 ms", "failed"],
            title=(
                f"Pool serving — {N_CLIENTS * REQUESTS_PER_CLIENT} mixed requests, "
                f"{N_CLIENTS} clients, promote mid-run "
                f"(speedup {speedup:.2f}x on {os.cpu_count()} CPUs)"
            ),
            float_format="{:.2f}",
        )
    )

    if (os.cpu_count() or 1) >= 4:
        assert speedup >= SPEEDUP_FLOOR, (
            f"{POOL_WORKERS} workers only {speedup:.2f}x over one worker "
            f"(floor {SPEEDUP_FLOOR}x)"
        )
    else:
        # Too few cores to park workers on: the multi-process run must still
        # be in the same ballpark (the fork/IPC machinery costs ~nothing).
        print(
            f"[note] only {os.cpu_count()} CPU(s): {SPEEDUP_FLOOR}x floor not "
            f"asserted, sanity floor {SANITY_FLOOR}x applies"
        )
        assert speedup >= SANITY_FLOOR, (
            f"multi-process run pathologically slow: {speedup:.2f}x"
        )
