"""Benchmark: exported single-row predict vs in-process Pipeline.predict.

The acceptance bar for the export compiler: on small batches the compiled
artifact (pure-python interpreter, no numpy) must not be slower than the live
pipeline, whose per-call cost is dominated by numpy array plumbing (asarray,
column splits, small-matrix ops) rather than arithmetic.  The bench times
single-row predicts for a representative entry per exportable family and
asserts the exported path wins on each.
"""

from __future__ import annotations

import time

import numpy as np

from repro.export import compile_model
from repro.learners import default_registry
from repro.learners.pipeline import pipeline_registry

FAMILIES = ["J48", "RandomForest", "NaiveBayes", "IBk", "Logistic", "MLP"]
SINGLE_ROW_CALLS = 300


def _make_data(random_state: int = 0):
    rng = np.random.default_rng(random_state)
    n, n_numeric = 150, 5
    numeric = rng.normal(size=(n, n_numeric))
    numeric[rng.random(numeric.shape) < 0.1] = np.nan
    X = np.empty((n, n_numeric + 1), dtype=object)
    X[:, :n_numeric] = numeric
    X[:, n_numeric] = rng.choice(["a", "b", "c"], size=n)
    return X, rng.integers(0, 3, size=n)


def _time_single_rows(predict, rows) -> float:
    start = time.perf_counter()
    for row in rows:
        predict(row)
    return (time.perf_counter() - start) / len(rows)


def test_bench_exported_beats_live_on_single_rows(benchmark):
    X, y = _make_data()
    queries = X[:SINGLE_ROW_CALLS % len(X) or len(X)]
    results = {}

    def run():
        for name in FAMILIES:
            registry = pipeline_registry(default_registry().subset([name]))
            pipeline = registry.build(name, {}).fit(X, y)
            exported = compile_model(pipeline)
            live_rows = [row.reshape(1, -1) for row in queries]
            art_rows = [[row.tolist()] for row in queries]
            # Warm both paths once, then time per-row calls.
            pipeline.predict(live_rows[0])
            exported.predict(art_rows[0])
            live = _time_single_rows(pipeline.predict, live_rows)
            art = _time_single_rows(exported.predict, art_rows)
            results[name] = (live, art)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    for name, (live, art) in results.items():
        print(
            f"{name:<14} live={live * 1e6:8.1f}us  exported={art * 1e6:8.1f}us  "
            f"speedup={live / art:5.1f}x"
        )
    slow = {name for name, (live, art) in results.items() if art > live}
    assert not slow, f"exported single-row predict slower than live for {slow}"
