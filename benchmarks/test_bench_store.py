"""Benchmark: the persistent result store on the corpus/performance-table path.

The corpus generator's dominant cost is measuring the ``P(A, D)`` performance
table — one cross-validation run per (algorithm, dataset) cell.  With a
:class:`~repro.execution.ResultStore` attached, every finished cell is
persisted, so a second run of the same measurement (a restarted process, a
re-built corpus, an extended dataset list) replays scores from disk instead
of re-running cross-validation.

This bench runs the identical corpus build twice against one store directory
— a *cold* run that pays for every cell, then a *warm* run backed by a fresh
store instance over the same files — and asserts the acceptance criteria of
the subsystem: **bit-identical scores and corpus, at a ≥5x wall-clock
speedup** (in practice the warm run is orders of magnitude faster, because it
only reads one JSONL shard).
"""

from __future__ import annotations

import time

import numpy as np

from repro.corpus import CorpusConfig, generate_corpus
from repro.corpus.serialization import corpus_to_dict
from repro.datasets import knowledge_suite
from repro.evaluation import format_table
from repro.execution import ResultStore

N_DATASETS = 8
MAX_RECORDS = 150
SPEEDUP_FLOOR = 5.0


def test_bench_store_warm_corpus_rebuild(benchmark, bench_registry, tmp_path):
    datasets = knowledge_suite(
        n_datasets=N_DATASETS, max_records=MAX_RECORDS, random_state=42
    )
    config = CorpusConfig(n_papers=12, random_state=0)
    store_dir = tmp_path / "results"

    def build(label: str):
        # A fresh ResultStore per run mirrors a restarted process: nothing is
        # shared in memory, only the shard files on disk.
        store = ResultStore(store_dir)
        start = time.monotonic()
        corpus, table = generate_corpus(
            datasets, registry=bench_registry, config=config, cv=3,
            max_records=120, store=store,
        )
        elapsed = time.monotonic() - start
        return {
            "run": label,
            "corpus": corpus,
            "table": table,
            "seconds": elapsed,
            "engine": table.metadata["engine"],
            "store": store.stats.as_dict(),
        }

    def run():
        return build("cold"), build("warm")

    cold, warm = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        {
            "run": result["run"],
            "seconds": result["seconds"],
            "objective calls": result["engine"]["n_executions"],
            "store hits": result["engine"]["n_store_hits"],
            "store writes": result["store"]["writes"],
        }
        for result in (cold, warm)
    ]
    speedup = cold["seconds"] / max(warm["seconds"], 1e-9)
    print()
    print(
        format_table(
            rows,
            title=(
                f"Warm corpus rebuild from the result store "
                f"({N_DATASETS} datasets x {len(bench_registry)} algorithms, "
                f"{speedup:.0f}x speedup)"
            ),
        )
    )

    # Identical outputs: the store replays, it never changes a score.
    np.testing.assert_array_equal(cold["table"].scores, warm["table"].scores)
    assert corpus_to_dict(cold["corpus"]) == corpus_to_dict(warm["corpus"])
    # The warm run never touched the objective ...
    assert warm["engine"]["n_executions"] == 0
    assert warm["engine"]["n_store_hits"] == cold["table"].scores.size
    # ... and the acceptance floor: a warm second run is >= 5x faster.
    assert cold["seconds"] >= SPEEDUP_FLOOR * warm["seconds"], (
        f"warm rebuild only {speedup:.1f}x faster "
        f"(cold {cold['seconds']:.2f}s, warm {warm['seconds']:.2f}s)"
    )


def test_bench_store_partial_resume(benchmark, bench_registry, tmp_path):
    """An interrupted/extended table build only pays for the missing cells."""
    datasets = knowledge_suite(
        n_datasets=N_DATASETS, max_records=MAX_RECORDS, random_state=42
    )
    store_dir = tmp_path / "results"

    from repro.evaluation import PerformanceTable

    kwargs = dict(registry=bench_registry, tune=False, cv=3, max_records=120, random_state=0)

    def run():
        half = PerformanceTable.compute(
            datasets[: N_DATASETS // 2], store=ResultStore(store_dir), **kwargs
        )
        start = time.monotonic()
        full = PerformanceTable.compute(
            datasets, store=ResultStore(store_dir), **kwargs
        )
        resume_seconds = time.monotonic() - start
        return half, full, resume_seconds

    half, full, resume_seconds = benchmark.pedantic(run, rounds=1, iterations=1)

    n_reused = half.scores.size
    n_new = full.scores.size - n_reused
    print()
    print(
        format_table(
            [
                {
                    "phase": "resume (half the cells on disk)",
                    "seconds": resume_seconds,
                    "cells reused": n_reused,
                    "cells computed": full.metadata["engine"]["n_executions"],
                }
            ],
            title="Partial performance-table resume",
        )
    )
    np.testing.assert_array_equal(full.scores[: N_DATASETS // 2], half.scores)
    assert full.metadata["engine"]["n_executions"] == n_new
    assert full.metadata["engine"]["n_store_hits"] == n_reused
