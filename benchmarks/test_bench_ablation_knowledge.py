"""Ablation: knowledge acquisition without BFS closure / conflict resolution.

DESIGN.md calls out the two non-trivial ingredients of Algorithm 1 — the BFS
transitive closure of the information network and reliability-based conflict
resolution — as design choices worth ablating.  This bench re-runs knowledge
acquisition with each ingredient disabled and compares the average PORatio of
the resulting CRelations.  Expected shape: the full algorithm is at least as
good as either ablation.
"""

from __future__ import annotations

from repro.core.knowledge import KnowledgeAcquisition
from repro.evaluation import analyze_selection, format_table


def _selection(pairs, performance):
    return {
        pair.instance: pair.algorithm
        for pair in pairs
        if pair.instance in performance.datasets
    }


def test_bench_ablation_knowledge_acquisition(benchmark, bench_corpus, knowledge_performance):
    variants = {
        "full (Algorithm 1)": KnowledgeAcquisition(min_algorithms=5),
        "no BFS closure": KnowledgeAcquisition(min_algorithms=5, use_bfs_closure=False),
        "no conflict resolution": KnowledgeAcquisition(min_algorithms=5, resolve_conflicts=False),
    }

    def run():
        out = {}
        for label, acquisition in variants.items():
            pairs = acquisition.run(bench_corpus)
            selection = _selection(pairs, knowledge_performance)
            out[label] = analyze_selection(selection, knowledge_performance)
        return out

    analyses = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        {
            "variant": label,
            "pairs": len(analysis.selection),
            "average PORatio": analysis.average_poratio,
            "average P": analysis.average_performance,
        }
        for label, analysis in analyses.items()
    ]
    print()
    print(format_table(rows, title="Knowledge-acquisition ablation"))

    full = analyses["full (Algorithm 1)"]
    for label, analysis in analyses.items():
        if label == "full (Algorithm 1)":
            continue
        assert full.average_poratio >= analysis.average_poratio - 0.05, (
            f"full Algorithm 1 should not be clearly worse than the ablation {label!r}"
        )
