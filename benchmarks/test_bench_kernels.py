"""Benchmark: vectorized learner kernels vs the frozen pre-kernel loops.

Measures the three tentpole speedups of the kernel layer — tree fit, forest
fit and batch kNN predict — against the verbatim pre-kernel implementations
preserved in :mod:`repro.learners._reference`, asserting **score-identical
outputs in the same run** (the equivalence suite proves bit-identity on more
datasets; here it gates the timing so a fast-but-wrong kernel can never pass).

Also quantifies the engine data plane's dispatch saving: per-trial submits
must pickle the objective *without* its matrices, and every process-backend
trial must re-bind the payload from its worker-local registry.

Each run refreshes ``benchmarks/BENCH_kernels.json`` with the measured
numbers; the committed snapshot records the machine-of-record baseline.
"""

from __future__ import annotations

import json
import pickle
import time
from pathlib import Path

import numpy as np

from repro.evaluation import format_table
from repro.execution import estimator_engine
from repro.learners import default_registry
from repro.learners._reference import (
    ReferenceDecisionTree,
    ReferenceIBk,
    ReferenceRandomForest,
)
from repro.learners.forest import RandomForest
from repro.learners.lazy import IBk
from repro.learners.tree import DecisionTreeClassifier

SNAPSHOT = Path(__file__).parent / "BENCH_kernels.json"

#: Floors enforced on every run (ISSUE 10 acceptance): the kernels must be at
#: least this much faster than the frozen loops on the same data.
MIN_SPEEDUP = 5.0


def _blobs(seed: int, n: int, d: int, k: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=4.0, size=(k, d))
    y = rng.integers(0, k, size=n)
    X = centers[y] + rng.normal(size=(n, d))
    return X, y


def _time(fn, repeats: int = 3) -> float:
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _update_snapshot(section: str, payload: dict) -> None:
    data = json.loads(SNAPSHOT.read_text()) if SNAPSHOT.exists() else {}
    data[section] = payload
    SNAPSHOT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_bench_kernel_speedups():
    rows = []
    snapshot: dict[str, dict] = {}

    # -- tree fit: cumulative-bincount split search vs per-node Python loop --
    X, y = _blobs(0, 1500, 10, 4)
    Xq, _ = _blobs(9, 800, 10, 4)
    live_tree = DecisionTreeClassifier(criterion="gain_ratio", random_state=0)
    ref_tree = ReferenceDecisionTree(criterion="gain_ratio", random_state=0)
    live_t = _time(lambda: live_tree.fit(X, y))
    ref_t = _time(lambda: ref_tree.fit(X, y), repeats=1)
    assert np.array_equal(live_tree.predict_proba(Xq), ref_tree.predict_proba(Xq))
    snapshot["tree_fit"] = {"kernel_s": live_t, "reference_s": ref_t}
    rows.append({"kernel": "tree fit (1500x10)", "reference s": ref_t,
                 "kernel s": live_t, "speedup": ref_t / live_t})

    # -- forest fit: shared per-dataset sort orders vs per-member re-sorts --
    X, y = _blobs(1, 800, 10, 3)
    Xq, _ = _blobs(8, 400, 10, 3)
    live_rf = RandomForest(n_estimators=8, random_state=0)
    ref_rf = ReferenceRandomForest(n_estimators=8, random_state=0)
    live_f = _time(lambda: live_rf.fit(X, y))
    ref_f = _time(lambda: ref_rf.fit(X, y), repeats=1)
    assert np.array_equal(live_rf.predict_proba(Xq), ref_rf.predict_proba(Xq))
    snapshot["forest_fit"] = {"kernel_s": live_f, "reference_s": ref_f}
    rows.append({"kernel": "forest fit (800x10, 8 trees)", "reference s": ref_f,
                 "kernel s": live_f, "speedup": ref_f / live_f})

    # -- kNN batch predict: flattened bincount vote vs per-row Python loop --
    X, y = _blobs(2, 120, 12, 5)
    Xq, _ = _blobs(7, 6000, 12, 5)
    live_knn = IBk(n_neighbors=50, weighting="distance").fit(X, y)
    ref_knn = ReferenceIBk(n_neighbors=50, weighting="distance").fit(X, y)
    live_k = _time(lambda: live_knn.predict_proba(Xq))
    ref_k = _time(lambda: ref_knn.predict_proba(Xq))
    assert np.array_equal(live_knn.predict_proba(Xq), ref_knn.predict_proba(Xq))
    snapshot["knn_predict"] = {"kernel_s": live_k, "reference_s": ref_k}
    rows.append({"kernel": "kNN predict (6000 queries)", "reference s": ref_k,
                 "kernel s": live_k, "speedup": ref_k / live_k})

    for name, section in snapshot.items():
        section["speedup"] = section["reference_s"] / section["kernel_s"]
    _update_snapshot("speedups", snapshot)

    print()
    print(format_table(rows, title="Learner kernels vs frozen pre-kernel loops"))

    for row in rows:
        assert row["speedup"] >= MIN_SPEEDUP, (
            f"{row['kernel']}: {row['speedup']:.1f}x < required {MIN_SPEEDUP}x"
        )


class _Builder:
    """Picklable config -> estimator factory for the dispatch bench."""

    def __call__(self, config):
        return default_registry().get("J48").build(config)


def test_bench_dispatch_overhead():
    """Process-backend dispatch: per-trial submits carry no dataset bytes.

    The data plane ships each fold-matrix payload at most once per worker (via
    the pool initializer); afterwards the pickled objective shrinks to config
    machinery only, and every executed trial reports a worker-local re-bind
    through ``EngineStats.data_plane_hits``.
    """
    X, y = _blobs(3, 2000, 20, 3)
    space = default_registry().get("J48").space
    rng = np.random.default_rng(0)
    configs = [space.sample(rng) for _ in range(8)]

    engine = estimator_engine(
        _Builder(), X, y, cv=3, random_state=0,
        n_workers=2, backend="process", name="bench-dispatch",
    )
    heavy = len(pickle.dumps(engine.objective))
    payload = sum(len(pickle.dumps(a)) for a in engine.objective.payload().values())
    with engine:
        engine.evaluate_many(configs)
        light = len(pickle.dumps(engine.objective))  # detached once pool is up
        stats = engine.stats
    assert engine.backend == "process"
    assert stats.data_plane_payloads == 1
    assert stats.data_plane_hits == stats.n_executions == len(configs)
    # Detaching must remove essentially the whole dataset payload (what stays
    # is config machinery: fold index arrays, scorer, builder).
    assert heavy - light > 0.9 * payload

    saved = (heavy - light) * (stats.n_executions - 1)
    _update_snapshot("dispatch", {
        "heavy_pickle_bytes": heavy,
        "light_pickle_bytes": light,
        "trials": stats.n_executions,
        "payload_bytes_saved": saved,
    })
    print()
    print(format_table(
        [{"objective pickle": "with matrices", "bytes": heavy},
         {"objective pickle": "data-plane detached", "bytes": light}],
        title=f"Dispatch payload per trial (saved {saved} bytes over the batch)",
    ))
