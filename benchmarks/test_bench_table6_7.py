"""Tables VI + VII: per-test-dataset quality of the decision model SNA.

For every test dataset the paper reports the algorithm SNA selects, its
PORatio, its performance P(SNA(D), D), and the per-dataset Pmax / Pavg.
Expected shape: PORatio(SNA, D) is high on most datasets and
P(SNA(D), D) >= Pavg(D) essentially everywhere.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import analyze_selection, format_table


def test_bench_table6_7_sna_per_dataset(
    benchmark, bench_automodel, bench_test_datasets, test_performance
):
    def run():
        selection = {
            dataset.name: bench_automodel.select_algorithm(dataset)
            for dataset in bench_test_datasets
        }
        return analyze_selection(selection, test_performance)

    analysis = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = analysis.per_dataset_rows()
    print()
    print(format_table(rows, title="Tables VI/VII — SNA(D), PORatio, P, Pmax, Pavg per test dataset"))

    poratios = np.array(list(analysis.poratios.values()))
    performances = np.array(list(analysis.performances.values()))
    p_avgs = np.array([analysis.p_avg[d] for d in analysis.poratios])

    # Paper shape: PORatio(SNA, D) is "generally very high" and
    # P(SNA(D), D) is "always superior to Pavg(D)".
    assert poratios.mean() >= 0.55
    assert np.mean(performances >= p_avgs - 0.03) >= 0.6
