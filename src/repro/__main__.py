"""Package entry point: ``python -m repro``.

Prints what this installation provides — version, the registered learner
catalogues per task type, and where the serving subsystem keeps its
artifacts — so a fresh environment can be sanity-checked in one command.
``python -m repro --version`` prints only the version string.
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .learners.registry import default_registry
from .learners.regression_registry import default_regression_registry
from .service.registry import REGISTRY_ENV_VAR, default_registry_root

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Auto-Model reproduction (Wang et al., ICDE 2020)",
    )
    parser.add_argument(
        "--version", action="store_true", help="print the version and exit"
    )
    args = parser.parse_args(argv)
    if args.version:
        print(__version__)
        return 0

    classification = default_registry()
    regression = default_regression_registry()
    lines = [
        f"repro {__version__} — Auto-Model reproduction (Wang et al., ICDE 2020)",
        "",
        "learner catalogues:",
        f"  classification: {len(classification)} algorithms "
        f"({', '.join(classification.names)})",
        f"  regression:     {len(regression)} algorithms "
        f"({', '.join(regression.names)})",
        "",
        "serving subsystem:",
        f"  model registry: {default_registry_root()} "
        f"(override with ${REGISTRY_ENV_VAR})",
        "  result stores:  per model version, under <registry>/<name>/versions/<v>/results/",
        "  serve with:     python -m repro.service serve --registry <dir>",
    ]
    print("\n".join(lines))
    return 0


if __name__ == "__main__":
    sys.exit(main())
