"""Linear / discriminant classifiers: Logistic, SimpleLogistic, LDA.

``LogisticRegression`` is a multinomial softmax model trained with full-batch
gradient descent + L2 regularisation; ``SimpleLogistic`` is the same model with
stronger regularisation and fewer iterations (mirroring Weka's boosted simple
regression being a lower-variance learner); ``LDA`` is classic linear
discriminant analysis with shrinkage on the pooled covariance.
"""

from __future__ import annotations

import numpy as np

from .base import BaseClassifier, check_is_fitted, export_labels

__all__ = ["LogisticRegression", "SimpleLogistic", "LDA"]


def _softmax(scores: np.ndarray) -> np.ndarray:
    scores = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(scores)
    return exp / exp.sum(axis=1, keepdims=True)


class LogisticRegression(BaseClassifier):
    """Multinomial logistic regression with L2 regularisation."""

    def __init__(
        self,
        C: float = 1.0,
        max_iter: int = 200,
        learning_rate: float = 0.5,
        tol: float = 1e-5,
        fit_intercept: bool = True,
    ) -> None:
        super().__init__()
        self.C = C
        self.max_iter = max_iter
        self.learning_rate = learning_rate
        self.tol = tol
        self.fit_intercept = fit_intercept

    def _prepare(self, X: np.ndarray, fit: bool) -> np.ndarray:
        if fit:
            self._mean = X.mean(axis=0)
            scale = X.std(axis=0)
            scale[scale == 0] = 1.0
            self._scale = scale
        Xs = (X - self._mean) / self._scale
        if self.fit_intercept:
            Xs = np.hstack([Xs, np.ones((Xs.shape[0], 1))])
        return Xs

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.C <= 0:
            raise ValueError("C must be positive")
        Xs = self._prepare(X, fit=True)
        n_samples, n_features = Xs.shape
        n_classes = len(self.classes_)
        Y = np.zeros((n_samples, n_classes))
        Y[np.arange(n_samples), y] = 1.0
        W = np.zeros((n_features, n_classes))
        l2 = 1.0 / (self.C * n_samples)
        previous_loss = np.inf
        for _ in range(int(self.max_iter)):
            P = _softmax(Xs @ W)
            gradient = Xs.T @ (P - Y) / n_samples + l2 * W
            W -= self.learning_rate * gradient
            loss = -np.mean(np.sum(Y * np.log(np.clip(P, 1e-12, None)), axis=1))
            loss += 0.5 * l2 * np.sum(W * W)
            if abs(previous_loss - loss) < self.tol:
                break
            previous_loss = loss
        self.coef_ = W

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        Xs = self._prepare(X, fit=False)
        return _softmax(Xs @ self.coef_)

    def export_params(self) -> dict:
        check_is_fitted(self)
        return {
            "kind": "logistic",
            "mean": self._mean.tolist(),
            "scale": self._scale.tolist(),
            "coef": self.coef_.tolist(),
            "fit_intercept": bool(self.fit_intercept),
            "classes": export_labels(self.classes_),
        }


class SimpleLogistic(LogisticRegression):
    """Heavily regularised, short-horizon logistic model (Weka SimpleLogistic)."""

    def __init__(self, C: float = 0.1, max_iter: int = 80) -> None:
        super().__init__(C=C, max_iter=max_iter, learning_rate=0.5)


class LDA(BaseClassifier):
    """Linear discriminant analysis with covariance shrinkage."""

    def __init__(self, shrinkage: float = 0.1) -> None:
        super().__init__()
        self.shrinkage = shrinkage

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if not 0.0 <= self.shrinkage <= 1.0:
            raise ValueError("shrinkage must be in [0, 1]")
        n_classes = len(self.classes_)
        n_features = X.shape[1]
        self.means_ = np.zeros((n_classes, n_features))
        self.priors_ = np.zeros(n_classes)
        pooled = np.zeros((n_features, n_features))
        for k in range(n_classes):
            members = X[y == k]
            if len(members) == 0:
                members = X
            self.means_[k] = members.mean(axis=0)
            self.priors_[k] = (np.sum(y == k) + 1.0) / (len(y) + n_classes)
            centered = members - self.means_[k]
            pooled += centered.T @ centered
        pooled /= max(len(y) - n_classes, 1)
        trace_scaled = np.trace(pooled) / n_features if n_features else 1.0
        pooled = (1 - self.shrinkage) * pooled + self.shrinkage * trace_scaled * np.eye(
            n_features
        )
        pooled += 1e-8 * np.eye(n_features)
        self.precision_ = np.linalg.pinv(pooled)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        n_classes = len(self.classes_)
        scores = np.zeros((X.shape[0], n_classes))
        for k in range(n_classes):
            mean = self.means_[k]
            scores[:, k] = (
                X @ self.precision_ @ mean
                - 0.5 * mean @ self.precision_ @ mean
                + np.log(self.priors_[k])
            )
        return _softmax(scores)

    def export_params(self) -> dict:
        check_is_fitted(self)
        # half_terms/log_priors are precomputed with the exact numpy
        # expressions the live score uses, so the exported constants carry
        # the same rounding as a live predict call.
        half_terms = [
            float(0.5 * mean @ self.precision_ @ mean) for mean in self.means_
        ]
        return {
            "kind": "lda",
            "means": self.means_.tolist(),
            "precision": self.precision_.tolist(),
            "half_terms": half_terms,
            "log_priors": np.log(self.priors_).tolist(),
            "classes": export_labels(self.classes_),
        }
