"""Preprocessing utilities: scaling, encoding and imputation.

Weka performs attribute normalisation and nominal-to-binary conversion inside
many of its classifiers; here the equivalent transforms are explicit so that
all learners in the catalogue receive a dense numeric matrix.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "StandardScaler",
    "MinMaxScaler",
    "LabelEncoder",
    "OneHotEncoder",
    "SimpleImputer",
    "encode_mixed_matrix",
]


class StandardScaler:
    """Zero-mean, unit-variance scaling with constant-column protection."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        return np.asarray(X, dtype=np.float64) * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale each column to the [0, 1] interval."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X) -> "MinMaxScaler":
        X = np.asarray(X, dtype=np.float64)
        self.min_ = X.min(axis=0)
        value_range = X.max(axis=0) - self.min_
        value_range[value_range == 0] = 1.0
        self.range_ = value_range
        return self

    def transform(self, X) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("MinMaxScaler is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.min_) / self.range_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)


class LabelEncoder:
    """Map arbitrary hashable labels to ``0..n_classes-1`` and back."""

    def __init__(self) -> None:
        self.classes_: list | None = None
        self._index: dict | None = None

    def fit(self, y) -> "LabelEncoder":
        seen = sorted(set(np.asarray(y).tolist()), key=lambda v: (str(type(v)), str(v)))
        self.classes_ = seen
        self._index = {label: i for i, label in enumerate(seen)}
        return self

    def transform(self, y) -> np.ndarray:
        if self._index is None:
            raise RuntimeError("LabelEncoder is not fitted")
        values = np.asarray(y).tolist()
        missing = [v for v in values if v not in self._index]
        if missing:
            raise ValueError(f"unseen labels during transform: {sorted(set(map(str, missing)))}")
        return np.array([self._index[v] for v in values], dtype=np.int64)

    def fit_transform(self, y) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, y) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder is not fitted")
        y = np.asarray(y, dtype=np.int64)
        if np.any(y < 0) or np.any(y >= len(self.classes_)):
            raise ValueError("encoded labels out of range")
        return np.array([self.classes_[i] for i in y])


class OneHotEncoder:
    """One-hot encode a matrix of categorical columns (given as objects/ints).

    Unknown categories at transform time map to an all-zero block, matching the
    common "ignore unknown" behaviour.
    """

    def __init__(self) -> None:
        self.categories_: list[list] | None = None

    def fit(self, X) -> "OneHotEncoder":
        X = np.asarray(X, dtype=object)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        self.categories_ = [
            sorted(set(X[:, j].tolist()), key=lambda v: (str(type(v)), str(v)))
            for j in range(X.shape[1])
        ]
        return self

    def transform(self, X) -> np.ndarray:
        if self.categories_ is None:
            raise RuntimeError("OneHotEncoder is not fitted")
        X = np.asarray(X, dtype=object)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        if X.shape[1] != len(self.categories_):
            raise ValueError(
                f"expected {len(self.categories_)} columns, got {X.shape[1]}"
            )
        blocks = []
        for j, categories in enumerate(self.categories_):
            index = {category: i for i, category in enumerate(categories)}
            block = np.zeros((X.shape[0], len(categories)), dtype=np.float64)
            for row, value in enumerate(X[:, j].tolist()):
                position = index.get(value)
                if position is not None:
                    block[row, position] = 1.0
            blocks.append(block)
        if not blocks:
            return np.zeros((X.shape[0], 0))
        return np.hstack(blocks)

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    @property
    def n_output_features_(self) -> int:
        if self.categories_ is None:
            raise RuntimeError("OneHotEncoder is not fitted")
        return sum(len(c) for c in self.categories_)


class SimpleImputer:
    """Replace NaNs column-wise with the mean, median or a constant."""

    def __init__(self, strategy: str = "mean", fill_value: float = 0.0) -> None:
        if strategy not in ("mean", "median", "constant"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.strategy = strategy
        self.fill_value = fill_value
        self.statistics_: np.ndarray | None = None

    def fit(self, X) -> "SimpleImputer":
        X = np.asarray(X, dtype=np.float64)
        if self.strategy == "constant":
            self.statistics_ = np.full(X.shape[1], float(self.fill_value))
            return self
        reducer = np.nanmean if self.strategy == "mean" else np.nanmedian
        with np.errstate(all="ignore"):
            stats = reducer(X, axis=0)
        stats = np.where(np.isnan(stats), self.fill_value, stats)
        self.statistics_ = stats
        return self

    def transform(self, X) -> np.ndarray:
        if self.statistics_ is None:
            raise RuntimeError("SimpleImputer is not fitted")
        X = np.asarray(X, dtype=np.float64).copy()
        for j in range(X.shape[1]):
            mask = np.isnan(X[:, j])
            X[mask, j] = self.statistics_[j]
        return X

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)


def encode_mixed_matrix(
    numeric: np.ndarray | None, categorical: np.ndarray | None
) -> tuple[np.ndarray, OneHotEncoder | None]:
    """Build a dense numeric matrix from numeric + categorical attribute blocks.

    Returns the encoded matrix and the fitted :class:`OneHotEncoder` (``None``
    when there are no categorical attributes).  Numeric NaNs are mean-imputed.
    """
    blocks: list[np.ndarray] = []
    encoder: OneHotEncoder | None = None
    n_rows: int | None = None
    if numeric is not None and numeric.size:
        numeric = np.asarray(numeric, dtype=np.float64)
        blocks.append(SimpleImputer().fit_transform(numeric))
        n_rows = numeric.shape[0]
    if categorical is not None and np.asarray(categorical).size:
        categorical = np.asarray(categorical, dtype=object)
        if categorical.ndim == 1:
            categorical = categorical.reshape(-1, 1)
        encoder = OneHotEncoder()
        blocks.append(encoder.fit_transform(categorical))
        n_rows = categorical.shape[0]
    if not blocks:
        raise ValueError("both numeric and categorical blocks are empty")
    if n_rows is None:
        raise ValueError("could not infer the number of rows")
    return np.hstack(blocks), encoder
