"""Preprocessing utilities: scaling, encoding and imputation.

Weka performs attribute normalisation and nominal-to-binary conversion inside
many of its classifiers; here the equivalent transforms are explicit so that
all learners in the catalogue receive a dense numeric matrix.
"""

from __future__ import annotations

import warnings

import numpy as np

#: Canonical category recorded for missing values (None / NaN) seen by the
#: OneHotEncoder.  Raw NaN floats make terrible dict keys (two NaNs never
#: compare equal, and their hashes vary by object identity on Python >= 3.10),
#: so missing entries used to silently one-hot to a zero block at transform
#: time; mapping them all to one sentinel makes missingness a learnable
#: category instead.
MISSING_CATEGORY = "__missing__"

#: Category that collects values rarer than ``min_frequency`` (and, with
#: ``handle_unknown="rare"``, values never seen during fit).
RARE_CATEGORY = "__rare__"

__all__ = [
    "StandardScaler",
    "MinMaxScaler",
    "LabelEncoder",
    "OneHotEncoder",
    "SimpleImputer",
    "encode_mixed_matrix",
]


class StandardScaler:
    """Zero-mean, unit-variance scaling with constant-column protection."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        with np.errstate(all="ignore"), warnings.catch_warnings():
            # NaN cells are legitimate input on the imputer-disabled pipeline
            # path, where missing values flow through to the scaler.  Plain
            # mean/std would propagate a single NaN into the whole column's
            # statistics, silently poisoning every row (the ``scale == 0``
            # guard never matches NaN).
            warnings.simplefilter("ignore", category=RuntimeWarning)
            mean = np.nanmean(X, axis=0)
            scale = np.nanstd(X, axis=0)
        self.mean_ = np.where(np.isnan(mean), 0.0, mean)
        self.scale_ = np.where(np.isnan(scale) | (scale == 0), 1.0, scale)
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        return np.asarray(X, dtype=np.float64) * self.scale_ + self.mean_

    def export_params(self) -> dict:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        return {
            "kind": "standard",
            "center": self.mean_.tolist(),
            "scale": self.scale_.tolist(),
        }


class MinMaxScaler:
    """Scale each column to the [0, 1] interval."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X) -> "MinMaxScaler":
        X = np.asarray(X, dtype=np.float64)
        with np.errstate(all="ignore"), warnings.catch_warnings():
            # Same NaN honesty as StandardScaler.fit: min/max over a column
            # with even one NaN is NaN, which used to poison every row of
            # that column at transform time.
            warnings.simplefilter("ignore", category=RuntimeWarning)
            low = np.nanmin(X, axis=0) if X.size else np.zeros(X.shape[-1])
            high = np.nanmax(X, axis=0) if X.size else np.zeros(X.shape[-1])
        low = np.where(np.isnan(low), 0.0, low)
        high = np.where(np.isnan(high), 0.0, high)
        value_range = high - low
        self.min_ = low
        self.range_ = np.where(value_range == 0, 1.0, value_range)
        return self

    def transform(self, X) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("MinMaxScaler is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.min_) / self.range_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        # Zero-range columns were scaled by the protective 1.0, so the
        # round trip maps their (always 0) transform back to the constant.
        if self.min_ is None:
            raise RuntimeError("MinMaxScaler is not fitted")
        return np.asarray(X, dtype=np.float64) * self.range_ + self.min_

    def export_params(self) -> dict:
        if self.min_ is None:
            raise RuntimeError("MinMaxScaler is not fitted")
        return {
            "kind": "minmax",
            "min": self.min_.tolist(),
            "range": self.range_.tolist(),
        }


def _label_sort_key(value):
    """Deterministic label ordering: group by type name, numerics by value.

    Sorting by ``str(v)`` alone ordered numeric labels lexicographically
    (10 before 2), which diverges from sklearn's ``np.unique`` convention
    and scrambles ``classes_``/proba-column order.  Values of the same
    numeric type now compare numerically; the type-name prefix keeps
    mixed-type label sets deterministic without cross-type comparisons
    (bools have their own type name, so they never collide with ints).
    """
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (str(type(value)), float(value), str(value))
    return (str(type(value)), str(value))


class LabelEncoder:
    """Map arbitrary hashable labels to ``0..n_classes-1`` and back."""

    def __init__(self) -> None:
        self.classes_: list | None = None
        self._index: dict | None = None

    def fit(self, y) -> "LabelEncoder":
        seen = sorted(set(np.asarray(y).tolist()), key=_label_sort_key)
        self.classes_ = seen
        self._index = {label: i for i, label in enumerate(seen)}
        return self

    def transform(self, y) -> np.ndarray:
        if self._index is None:
            raise RuntimeError("LabelEncoder is not fitted")
        values = np.asarray(y).tolist()
        missing = [v for v in values if v not in self._index]
        if missing:
            raise ValueError(f"unseen labels during transform: {sorted(set(map(str, missing)))}")
        return np.array([self._index[v] for v in values], dtype=np.int64)

    def fit_transform(self, y) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, y) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder is not fitted")
        y = np.asarray(y, dtype=np.int64)
        if np.any(y < 0) or np.any(y >= len(self.classes_)):
            raise ValueError("encoded labels out of range")
        return np.array([self.classes_[i] for i in y])


def _canonical_category(value):
    """Collapse the many faces of "missing" (None, float NaN) to one sentinel."""
    if value is None:
        return MISSING_CATEGORY
    if isinstance(value, float) and value != value:  # NaN without importing math
        return MISSING_CATEGORY
    return value


class OneHotEncoder:
    """One-hot encode a matrix of categorical columns (given as objects/ints).

    Unknown categories at transform time map to an all-zero block by default
    (``handle_unknown="ignore"``, the common convention).  Two knobs make the
    encoder searchable as a pipeline step:

    * ``min_frequency`` — categories seen fewer times during fit are grouped
      into one :data:`RARE_CATEGORY` column instead of getting their own,
      which keeps one-hot widths bounded on long-tail data;
    * ``handle_unknown="rare"`` — the rare column exists even when no
      training category was rare, so transform-time values never seen during
      fit always have somewhere to land.  Whenever a rare column exists (from
      either knob), unknown values map to it — an unseen value is by
      definition rarer than the threshold; with plain ``"ignore"`` and
      ``min_frequency=1`` unknowns zero-encode as before.

    Missing values (None / NaN) are canonicalised to :data:`MISSING_CATEGORY`
    in both fit and transform, so missingness round-trips as an ordinary
    category instead of silently zero-encoding (NaN never equals NaN, which
    previously made every missing entry an "unknown").  The defaults keep the
    historical output byte-identical on clean data.
    """

    def __init__(self, min_frequency: int = 1, handle_unknown: str = "ignore") -> None:
        if min_frequency < 1:
            raise ValueError("min_frequency must be >= 1")
        if handle_unknown not in ("ignore", "rare"):
            raise ValueError(f"handle_unknown must be 'ignore' or 'rare', got {handle_unknown!r}")
        self.min_frequency = int(min_frequency)
        self.handle_unknown = handle_unknown
        self.categories_: list[list] | None = None

    def _needs_rare(self) -> bool:
        return self.min_frequency > 1 or self.handle_unknown == "rare"

    def fit(self, X) -> "OneHotEncoder":
        X = np.asarray(X, dtype=object)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        if X.shape[1] and X.shape[0] == 0:
            raise ValueError("cannot fit OneHotEncoder on zero records")
        categories: list[list] = []
        for j in range(X.shape[1]):
            values = [_canonical_category(v) for v in X[:, j].tolist()]
            counts: dict = {}
            for value in values:
                counts[value] = counts.get(value, 0) + 1
            kept = sorted(
                (v for v, c in counts.items() if c >= self.min_frequency),
                key=lambda v: (str(type(v)), str(v)),
            )
            if self._needs_rare() and RARE_CATEGORY not in kept:
                kept.append(RARE_CATEGORY)
            categories.append(kept)
        self.categories_ = categories
        return self

    def transform(self, X) -> np.ndarray:
        if self.categories_ is None:
            raise RuntimeError("OneHotEncoder is not fitted")
        X = np.asarray(X, dtype=object)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        if X.shape[1] != len(self.categories_):
            raise ValueError(
                f"expected {len(self.categories_)} columns, got {X.shape[1]}"
            )
        blocks = []
        for j, categories in enumerate(self.categories_):
            index = {category: i for i, category in enumerate(categories)}
            rare_position = index.get(RARE_CATEGORY)
            block = np.zeros((X.shape[0], len(categories)), dtype=np.float64)
            for row, value in enumerate(X[:, j].tolist()):
                position = index.get(_canonical_category(value))
                if position is None:
                    position = rare_position  # None again under "ignore"
                if position is not None:
                    block[row, position] = 1.0
            blocks.append(block)
        if not blocks:
            return np.zeros((X.shape[0], 0))
        return np.hstack(blocks)

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    @property
    def n_output_features_(self) -> int:
        if self.categories_ is None:
            raise RuntimeError("OneHotEncoder is not fitted")
        return sum(len(c) for c in self.categories_)

    def export_params(self) -> dict:
        if self.categories_ is None:
            raise RuntimeError("OneHotEncoder is not fitted")
        return {
            "categories": [
                [
                    value.item() if hasattr(value, "item") else value
                    for value in column
                ]
                for column in self.categories_
            ]
        }


class SimpleImputer:
    """Replace NaNs column-wise with the mean, median or a constant."""

    def __init__(self, strategy: str = "mean", fill_value: float = 0.0) -> None:
        if strategy not in ("mean", "median", "constant"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.strategy = strategy
        self.fill_value = fill_value
        self.statistics_: np.ndarray | None = None

    def fit(self, X) -> "SimpleImputer":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {X.shape}")
        if X.shape[1] and X.shape[0] == 0:
            raise ValueError("cannot fit SimpleImputer on zero records")
        if self.strategy == "constant":
            self.statistics_ = np.full(X.shape[1], float(self.fill_value))
            return self
        reducer = np.nanmean if self.strategy == "mean" else np.nanmedian
        with np.errstate(all="ignore"), warnings.catch_warnings():
            # All-NaN columns are legitimate input (an entirely-missing
            # attribute); silence numpy's mean-of-empty-slice warning and
            # substitute fill_value below instead of surfacing NaN.
            warnings.simplefilter("ignore", category=RuntimeWarning)
            stats = reducer(X, axis=0) if X.size else np.zeros(X.shape[1])
        stats = np.where(np.isnan(stats), self.fill_value, stats)
        self.statistics_ = stats
        return self

    def transform(self, X) -> np.ndarray:
        if self.statistics_ is None:
            raise RuntimeError("SimpleImputer is not fitted")
        X = np.asarray(X, dtype=np.float64).copy()
        for j in range(X.shape[1]):
            mask = np.isnan(X[:, j])
            X[mask, j] = self.statistics_[j]
        return X

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def export_params(self) -> dict:
        if self.statistics_ is None:
            raise RuntimeError("SimpleImputer is not fitted")
        return {"statistics": self.statistics_.tolist()}


def encode_mixed_matrix(
    numeric: np.ndarray | None, categorical: np.ndarray | None
) -> tuple[np.ndarray, OneHotEncoder | None]:
    """Build a dense numeric matrix from numeric + categorical attribute blocks.

    .. deprecated::
        Hard-wired encoding is superseded by searchable pipeline steps — see
        :mod:`repro.learners.pipeline` (the imputation strategy, scaling and
        rare-category handling are hyperparameters there, not fixed policy).
        This shim keeps the historical behaviour for existing callers:
        identical output on clean data, and numeric NaNs mean-imputed exactly
        as before.

    Returns the encoded matrix and the fitted :class:`OneHotEncoder` (``None``
    when there are no categorical attributes).
    """
    warnings.warn(
        "encode_mixed_matrix is deprecated; preprocessing is now a searchable "
        "pipeline step (repro.learners.pipeline)",
        DeprecationWarning,
        stacklevel=2,
    )
    blocks: list[np.ndarray] = []
    encoder: OneHotEncoder | None = None
    n_rows: int | None = None
    if numeric is not None and numeric.size:
        numeric = np.asarray(numeric, dtype=np.float64)
        blocks.append(SimpleImputer().fit_transform(numeric))
        n_rows = numeric.shape[0]
    if categorical is not None and np.asarray(categorical).size:
        categorical = np.asarray(categorical, dtype=object)
        if categorical.ndim == 1:
            categorical = categorical.reshape(-1, 1)
        encoder = OneHotEncoder()
        blocks.append(encoder.fit_transform(categorical))
        n_rows = categorical.shape[0]
    if not blocks:
        raise ValueError("both numeric and categorical blocks are empty")
    if n_rows is None:
        raise ValueError("could not infer the number of rows")
    return np.hstack(blocks), encoder
