"""Rule-based learners from Weka's ``rules`` package: ZeroR, OneR, JRip, PART, Ridor."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import BaseClassifier

__all__ = ["ZeroR", "OneR", "JRip", "PART", "Ridor"]


class ZeroR(BaseClassifier):
    """Majority-class baseline."""

    def __init__(self) -> None:
        super().__init__()

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        counts = np.bincount(y, minlength=len(self.classes_)).astype(np.float64)
        self.distribution_ = counts / counts.sum()

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        return np.tile(self.distribution_, (X.shape[0], 1))


class OneR(BaseClassifier):
    """One-rule classifier: the single best discretised attribute."""

    def __init__(self, n_bins: int = 6) -> None:
        super().__init__()
        self.n_bins = n_bins

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.n_bins < 2:
            raise ValueError("n_bins must be >= 2")
        n_classes = len(self.classes_)
        best_error = np.inf
        best: tuple[int, np.ndarray, np.ndarray] | None = None
        quantiles = np.linspace(0, 100, self.n_bins + 1)[1:-1]
        majority = np.argmax(np.bincount(y, minlength=n_classes))
        for feature in range(X.shape[1]):
            edges = np.unique(np.percentile(X[:, feature], quantiles))
            bins = np.searchsorted(edges, X[:, feature], side="right")
            rules = np.full(len(edges) + 1, majority, dtype=np.int64)
            for b in range(len(edges) + 1):
                members = y[bins == b]
                if len(members):
                    rules[b] = np.argmax(np.bincount(members, minlength=n_classes))
            error = float(np.mean(rules[bins] != y))
            if error < best_error:
                best_error = error
                best = (feature, edges, rules)
        assert best is not None
        self.feature_, self.edges_, self.rules_ = best
        counts = np.bincount(y, minlength=n_classes).astype(np.float64)
        self.prior_ = counts / counts.sum()

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        bins = np.searchsorted(self.edges_, X[:, self.feature_], side="right")
        bins = np.clip(bins, 0, len(self.rules_) - 1)
        predictions = self.rules_[bins]
        proba = np.tile(self.prior_ * 0.1, (X.shape[0], 1))
        proba[np.arange(X.shape[0]), predictions] += 0.9
        return proba / proba.sum(axis=1, keepdims=True)


@dataclass
class _Rule:
    """Conjunction of ``feature <op> threshold`` conditions predicting one class."""

    conditions: list[tuple[int, str, float]]
    label: int

    def covers(self, X: np.ndarray) -> np.ndarray:
        mask = np.ones(X.shape[0], dtype=bool)
        for feature, op, threshold in self.conditions:
            if op == "<=":
                mask &= X[:, feature] <= threshold
            else:
                mask &= X[:, feature] > threshold
        return mask


class _SequentialCovering(BaseClassifier):
    """Shared engine for separate-and-conquer rule induction (JRip/PART/Ridor)."""

    max_rules = 20
    max_conditions = 3
    min_coverage = 3

    def __init__(self, random_state: int | None = None) -> None:
        super().__init__()
        self.random_state = random_state

    def _grow_rule(self, X: np.ndarray, y: np.ndarray, target: int) -> _Rule | None:
        conditions: list[tuple[int, str, float]] = []
        mask = np.ones(X.shape[0], dtype=bool)
        for _ in range(self.max_conditions):
            best_gain = 0.0
            best_condition: tuple[int, str, float] | None = None
            current_precision = (
                np.mean(y[mask] == target) if mask.any() else 0.0
            )
            for feature in range(X.shape[1]):
                values = X[mask, feature]
                if values.size == 0:
                    continue
                for quantile in (25, 50, 75):
                    threshold = float(np.percentile(values, quantile))
                    for op in ("<=", ">"):
                        candidate_mask = mask & (
                            X[:, feature] <= threshold
                            if op == "<="
                            else X[:, feature] > threshold
                        )
                        covered = candidate_mask.sum()
                        if covered < self.min_coverage:
                            continue
                        precision = np.mean(y[candidate_mask] == target)
                        gain = (precision - current_precision) * np.log1p(covered)
                        if gain > best_gain:
                            best_gain = gain
                            best_condition = (feature, op, threshold)
            if best_condition is None:
                break
            conditions.append(best_condition)
            feature, op, threshold = best_condition
            mask &= X[:, feature] <= threshold if op == "<=" else X[:, feature] > threshold
            if mask.any() and np.mean(y[mask] == target) > 0.95:
                break
        if not conditions or not mask.any():
            return None
        return _Rule(conditions=conditions, label=target)

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n_classes = len(self.classes_)
        counts = np.bincount(y, minlength=n_classes).astype(np.float64)
        self.default_distribution_ = counts / counts.sum()
        self.rules_: list[_Rule] = []
        remaining = np.ones(X.shape[0], dtype=bool)
        # Learn rules for classes from rarest to most common (RIPPER ordering).
        class_order = np.argsort(counts)
        for target in class_order[:-1]:
            while remaining.sum() > self.min_coverage and len(self.rules_) < self.max_rules:
                if not np.any(y[remaining] == target):
                    break
                rule = self._grow_rule(X[remaining], y[remaining], int(target))
                if rule is None:
                    break
                covered_local = rule.covers(X[remaining])
                precision = np.mean(y[remaining][covered_local] == target)
                if precision < 0.5:
                    break
                self.rules_.append(rule)
                remaining_idx = np.flatnonzero(remaining)
                remaining[remaining_idx[covered_local]] = False

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        n_classes = len(self.classes_)
        proba = np.zeros((X.shape[0], n_classes))
        decided = np.zeros(X.shape[0], dtype=bool)
        for rule in self.rules_:
            mask = rule.covers(X) & ~decided
            proba[mask, rule.label] = 1.0
            decided |= mask
        proba[~decided] = self.default_distribution_
        return proba


class JRip(_SequentialCovering):
    """RIPPER-style repeated incremental pruning (sequential covering)."""

    max_rules = 20
    max_conditions = 3


class PART(_SequentialCovering):
    """PART analogue: longer rules extracted greedily from partial trees."""

    max_rules = 30
    max_conditions = 4


class Ridor(_SequentialCovering):
    """RIpple-DOwn rule learner analogue: few, shallow exception rules."""

    max_rules = 10
    max_conditions = 2
