"""Lazy (instance-based) learners: IBk, IB1, KStar and LWL analogues.

Prediction runs on the batched distance kernels of
:mod:`repro.learners.kernels`: queries are processed in chunks that bound the
pairwise-distance intermediate (a large predict no longer materialises the
full ``O(n_queries * n_train)`` matrix at once) and neighbour votes are
accumulated with one flattened ``bincount`` per chunk instead of a Python
loop per query row.
"""

from __future__ import annotations

import numpy as np

from . import kernels
from .base import BaseClassifier, check_is_fitted, export_labels

__all__ = ["IBk", "IB1", "KStar", "LWL"]


def _pairwise_sq_distances(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between rows of ``A`` and rows of ``B``."""
    return kernels.pairwise_sq_distances(A, B)


#: The historical helper, unchanged operation for operation — frozen for the
#: equivalence oracle in :mod:`repro.learners._reference`.
_pairwise_sq_distances_exact = _pairwise_sq_distances


class IBk(BaseClassifier):
    """k-nearest-neighbours with optional distance weighting (Weka IBk)."""

    def __init__(
        self,
        n_neighbors: int = 5,
        weighting: str = "uniform",
        p: int = 2,
    ) -> None:
        super().__init__()
        self.n_neighbors = n_neighbors
        self.weighting = weighting
        self.p = p

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if self.weighting not in ("uniform", "distance"):
            raise ValueError(f"unknown weighting {self.weighting!r}")
        # Standardise so that no single attribute dominates the metric.
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        self._X = (X - self._mean) / self._scale
        self._y = y

    def _chunk_distances(self, Xs_chunk: np.ndarray, b2: np.ndarray | None) -> np.ndarray:
        if self.p == 1:
            return np.abs(Xs_chunk[:, None, :] - self._X[None, :, :]).sum(axis=2)
        return np.sqrt(kernels.pairwise_sq_distances(Xs_chunk, self._X, b2))

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        k = min(int(self.n_neighbors), self._X.shape[0])
        n_classes = len(self.classes_)
        Xs = (X - self._mean) / self._scale
        b2 = None if self.p == 1 else np.sum(self._X * self._X, axis=1)
        # The Manhattan path broadcasts a (rows, train, d) diff tensor, so its
        # chunk budget accounts for the feature dimension as well.
        cols = self._X.shape[0] * (self._X.shape[1] if self.p == 1 else 1)
        proba = np.empty((X.shape[0], n_classes), dtype=np.float64)
        for rows in kernels.query_chunks(X.shape[0], cols):
            distances = self._chunk_distances(Xs[rows], b2)
            neighbor_idx = np.argpartition(distances, kth=k - 1, axis=1)[:, :k]
            if self.weighting == "distance":
                weights = 1.0 / (np.take_along_axis(distances, neighbor_idx, axis=1) + 1e-8)
            else:
                weights = np.ones(neighbor_idx.shape, dtype=np.float64)
            proba[rows] = kernels.knn_vote(self._y[neighbor_idx], weights, n_classes)
        return proba / proba.sum(axis=1, keepdims=True)

    def export_params(self) -> dict:
        check_is_fitted(self)
        params = {
            "kind": "knn",
            "mean": self._mean.tolist(),
            "scale": self._scale.tolist(),
            "X": self._X.tolist(),
            "y": [int(label) for label in self._y],
            "n_neighbors": int(self.n_neighbors),
            "weighting": self.weighting,
            "p": int(self.p),
            "classes": export_labels(self.classes_),
        }
        if self.p != 1:
            # Precomputed squared norms of the training rows, with the same
            # numpy reduction the live distance kernel performs.
            params["b2"] = np.sum(self._X * self._X, axis=1).tolist()
        return params


class IB1(IBk):
    """Single-nearest-neighbour classifier (Weka IB1)."""

    def __init__(self) -> None:
        super().__init__(n_neighbors=1, weighting="uniform")


class KStar(BaseClassifier):
    """KStar analogue: entropic-distance nearest neighbour.

    The true K* uses an entropy-based transformation probability; we keep its
    characteristic behaviour (all instances contribute, with exponentially
    decaying influence) via a Gaussian kernel over standardised distances whose
    bandwidth is controlled by ``blend``.
    """

    def __init__(self, blend: float = 0.2) -> None:
        super().__init__()
        self.blend = blend

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if not 0.0 < self.blend <= 1.0:
            raise ValueError("blend must be in (0, 1]")
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        self._X = (X - self._mean) / self._scale
        self._y = y
        # Bandwidth from the blend parameter: smaller blend → tighter kernel.
        distances = np.sqrt(_pairwise_sq_distances(self._X, self._X))
        positive = distances[distances > 0]
        median = np.median(positive) if positive.size else 1.0
        self._bandwidth = max(self.blend * median, 1e-6)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        Xs = (X - self._mean) / self._scale
        n_classes = len(self.classes_)
        class_masks = [self._y == k for k in range(n_classes)]
        b2 = np.sum(self._X * self._X, axis=1)
        proba = np.empty((X.shape[0], n_classes), dtype=np.float64)
        for rows in kernels.query_chunks(X.shape[0], self._X.shape[0]):
            distances = np.sqrt(kernels.pairwise_sq_distances(Xs[rows], self._X, b2))
            kernel = np.exp(-0.5 * (distances / self._bandwidth) ** 2) + 1e-12
            for k in range(n_classes):
                proba[rows, k] = kernel[:, class_masks[k]].sum(axis=1)
        return proba / proba.sum(axis=1, keepdims=True)


class LWL(BaseClassifier):
    """Locally weighted learning: a weighted naive-Bayes model per query point.

    For each query the ``n_neighbors`` nearest training points are selected and
    a distance-weighted Gaussian class model is fitted on the fly — the lazy,
    locally-weighted behaviour of Weka's ``LWL`` wrapper with its default base.
    """

    def __init__(self, n_neighbors: int = 30) -> None:
        super().__init__()
        self.n_neighbors = n_neighbors

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.n_neighbors < 2:
            raise ValueError("n_neighbors must be >= 2")
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        self._X = (X - self._mean) / self._scale
        self._y = y

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        Xs = (X - self._mean) / self._scale
        k = min(int(self.n_neighbors), self._X.shape[0])
        n_classes = len(self.classes_)
        b2 = np.sum(self._X * self._X, axis=1)
        proba = np.empty((X.shape[0], n_classes), dtype=np.float64)
        for rows in kernels.query_chunks(X.shape[0], self._X.shape[0]):
            distances = np.sqrt(kernels.pairwise_sq_distances(Xs[rows], self._X, b2))
            neighbor_idx = np.argpartition(distances, kth=k - 1, axis=1)[:, :k]
            local_d = np.take_along_axis(distances, neighbor_idx, axis=1)
            bandwidth = local_d.max(axis=1, keepdims=True) + 1e-8
            weights = np.clip(1.0 - (local_d / bandwidth) ** 2, 0.0, None) + 1e-8
            proba[rows] = kernels.knn_vote(self._y[neighbor_idx], weights, n_classes)
        proba += 1e-8
        return proba / proba.sum(axis=1, keepdims=True)
