"""Lazy (instance-based) learners: IBk, IB1, KStar and LWL analogues."""

from __future__ import annotations

import numpy as np

from .base import BaseClassifier, check_is_fitted, export_labels

__all__ = ["IBk", "IB1", "KStar", "LWL"]


def _pairwise_sq_distances(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between rows of ``A`` and rows of ``B``."""
    a2 = np.sum(A * A, axis=1)[:, None]
    b2 = np.sum(B * B, axis=1)[None, :]
    d2 = a2 + b2 - 2.0 * (A @ B.T)
    return np.clip(d2, 0.0, None)


class IBk(BaseClassifier):
    """k-nearest-neighbours with optional distance weighting (Weka IBk)."""

    def __init__(
        self,
        n_neighbors: int = 5,
        weighting: str = "uniform",
        p: int = 2,
    ) -> None:
        super().__init__()
        self.n_neighbors = n_neighbors
        self.weighting = weighting
        self.p = p

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if self.weighting not in ("uniform", "distance"):
            raise ValueError(f"unknown weighting {self.weighting!r}")
        # Standardise so that no single attribute dominates the metric.
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        self._X = (X - self._mean) / self._scale
        self._y = y

    def _distances(self, X: np.ndarray) -> np.ndarray:
        Xs = (X - self._mean) / self._scale
        if self.p == 1:
            return np.abs(Xs[:, None, :] - self._X[None, :, :]).sum(axis=2)
        return np.sqrt(_pairwise_sq_distances(Xs, self._X))

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        k = min(int(self.n_neighbors), self._X.shape[0])
        distances = self._distances(X)
        n_classes = len(self.classes_)
        proba = np.zeros((X.shape[0], n_classes))
        neighbor_idx = np.argpartition(distances, kth=k - 1, axis=1)[:, :k]
        for i in range(X.shape[0]):
            idx = neighbor_idx[i]
            if self.weighting == "distance":
                weights = 1.0 / (distances[i, idx] + 1e-8)
            else:
                weights = np.ones(k)
            for j, w in zip(idx, weights):
                proba[i, self._y[j]] += w
        return proba / proba.sum(axis=1, keepdims=True)

    def export_params(self) -> dict:
        check_is_fitted(self)
        params = {
            "kind": "knn",
            "mean": self._mean.tolist(),
            "scale": self._scale.tolist(),
            "X": self._X.tolist(),
            "y": [int(label) for label in self._y],
            "n_neighbors": int(self.n_neighbors),
            "weighting": self.weighting,
            "p": int(self.p),
            "classes": export_labels(self.classes_),
        }
        if self.p != 1:
            # Precomputed squared norms of the training rows, with the same
            # numpy reduction the live distance kernel performs.
            params["b2"] = np.sum(self._X * self._X, axis=1).tolist()
        return params


class IB1(IBk):
    """Single-nearest-neighbour classifier (Weka IB1)."""

    def __init__(self) -> None:
        super().__init__(n_neighbors=1, weighting="uniform")


class KStar(BaseClassifier):
    """KStar analogue: entropic-distance nearest neighbour.

    The true K* uses an entropy-based transformation probability; we keep its
    characteristic behaviour (all instances contribute, with exponentially
    decaying influence) via a Gaussian kernel over standardised distances whose
    bandwidth is controlled by ``blend``.
    """

    def __init__(self, blend: float = 0.2) -> None:
        super().__init__()
        self.blend = blend

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if not 0.0 < self.blend <= 1.0:
            raise ValueError("blend must be in (0, 1]")
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        self._X = (X - self._mean) / self._scale
        self._y = y
        # Bandwidth from the blend parameter: smaller blend → tighter kernel.
        distances = np.sqrt(_pairwise_sq_distances(self._X, self._X))
        positive = distances[distances > 0]
        median = np.median(positive) if positive.size else 1.0
        self._bandwidth = max(self.blend * median, 1e-6)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        Xs = (X - self._mean) / self._scale
        distances = np.sqrt(_pairwise_sq_distances(Xs, self._X))
        kernel = np.exp(-0.5 * (distances / self._bandwidth) ** 2) + 1e-12
        n_classes = len(self.classes_)
        proba = np.zeros((X.shape[0], n_classes))
        for k in range(n_classes):
            proba[:, k] = kernel[:, self._y == k].sum(axis=1)
        return proba / proba.sum(axis=1, keepdims=True)


class LWL(BaseClassifier):
    """Locally weighted learning: a weighted naive-Bayes model per query point.

    For each query the ``n_neighbors`` nearest training points are selected and
    a distance-weighted Gaussian class model is fitted on the fly — the lazy,
    locally-weighted behaviour of Weka's ``LWL`` wrapper with its default base.
    """

    def __init__(self, n_neighbors: int = 30) -> None:
        super().__init__()
        self.n_neighbors = n_neighbors

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.n_neighbors < 2:
            raise ValueError("n_neighbors must be >= 2")
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        self._X = (X - self._mean) / self._scale
        self._y = y

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        Xs = (X - self._mean) / self._scale
        k = min(int(self.n_neighbors), self._X.shape[0])
        distances = np.sqrt(_pairwise_sq_distances(Xs, self._X))
        n_classes = len(self.classes_)
        proba = np.zeros((X.shape[0], n_classes))
        neighbor_idx = np.argpartition(distances, kth=k - 1, axis=1)[:, :k]
        for i in range(X.shape[0]):
            idx = neighbor_idx[i]
            local_d = distances[i, idx]
            bandwidth = local_d.max() + 1e-8
            weights = np.clip(1.0 - (local_d / bandwidth) ** 2, 0.0, None) + 1e-8
            for k_label in range(n_classes):
                mask = self._y[idx] == k_label
                proba[i, k_label] = weights[mask].sum()
        proba += 1e-8
        return proba / proba.sum(axis=1, keepdims=True)
