"""Neural-network learners.

``MLPClassifier`` / ``MLPRegressor`` implement a from-scratch multilayer
perceptron exposing exactly the ten hyperparameters of the paper's Table II
(hidden_layer, hidden_layer_size, activation, solver, learning_rate, max_iter,
momentum, validation_fraction, beta_1, beta_2) so the architecture-search step
(Algorithm 3) can be reproduced faithfully.  ``RBFNetwork`` and
``MultilayerPerceptron`` round out the Weka catalogue entries.
"""

from __future__ import annotations

import warnings

import numpy as np

from .base import BaseClassifier, check_array, check_is_fitted, export_labels

__all__ = ["MLPNetwork", "MLPClassifier", "MLPRegressor", "MultilayerPerceptron", "RBFNetwork"]

_ACTIVATIONS = ("relu", "tanh", "logistic", "identity")
_SOLVERS = ("lbfgs", "sgd", "adam")
_LEARNING_RATES = ("constant", "invscaling", "adaptive")


def _activate(z: np.ndarray, kind: str) -> np.ndarray:
    if kind == "relu":
        return np.maximum(z, 0.0)
    if kind == "tanh":
        return np.tanh(z)
    if kind == "logistic":
        return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))
    return z


def _activate_grad(a: np.ndarray, kind: str) -> np.ndarray:
    if kind == "relu":
        return (a > 0).astype(np.float64)
    if kind == "tanh":
        return 1.0 - a * a
    if kind == "logistic":
        return a * (1.0 - a)
    return np.ones_like(a)


class MLPNetwork:
    """Bare multilayer perceptron trained by mini-batch gradient methods.

    This is the shared engine behind :class:`MLPClassifier` and
    :class:`MLPRegressor`; the ``task`` argument switches between a softmax
    cross-entropy head and a linear squared-error head.
    """

    def __init__(
        self,
        layer_sizes: list[int],
        task: str,
        activation: str = "relu",
        solver: str = "adam",
        learning_rate: str = "constant",
        learning_rate_init: float = 0.01,
        max_iter: int = 200,
        momentum: float = 0.9,
        validation_fraction: float = 0.1,
        beta_1: float = 0.9,
        beta_2: float = 0.999,
        alpha: float = 1e-4,
        batch_size: int = 32,
        tol: float = 1e-5,
        random_state: int | None = None,
    ) -> None:
        if task not in ("classification", "regression"):
            raise ValueError(f"unknown task {task!r}")
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        if solver not in _SOLVERS:
            raise ValueError(f"unknown solver {solver!r}")
        if learning_rate not in _LEARNING_RATES:
            raise ValueError(f"unknown learning_rate schedule {learning_rate!r}")
        self.layer_sizes = list(layer_sizes)
        self.task = task
        self.activation = activation
        self.solver = solver
        self.learning_rate = learning_rate
        self.learning_rate_init = learning_rate_init
        self.max_iter = max_iter
        self.momentum = momentum
        self.validation_fraction = validation_fraction
        self.beta_1 = beta_1
        self.beta_2 = beta_2
        self.alpha = alpha
        self.batch_size = batch_size
        self.tol = tol
        self.random_state = random_state

    # -- initialisation ----------------------------------------------------------
    def _init_weights(self, n_in: int, n_out: int, rng: np.random.Generator) -> None:
        sizes = [n_in] + self.layer_sizes + [n_out]
        self.weights_: list[np.ndarray] = []
        self.biases_: list[np.ndarray] = []
        for a, b in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(6.0 / (a + b))
            self.weights_.append(rng.uniform(-limit, limit, size=(a, b)))
            self.biases_.append(np.zeros(b))

    # -- forward / backward --------------------------------------------------------
    def _forward(self, X: np.ndarray) -> list[np.ndarray]:
        activations = [X]
        for i, (W, b) in enumerate(zip(self.weights_, self.biases_)):
            z = activations[-1] @ W + b
            last_layer = i == len(self.weights_) - 1
            if last_layer:
                if self.task == "classification":
                    z = z - z.max(axis=1, keepdims=True)
                    exp = np.exp(z)
                    activations.append(exp / exp.sum(axis=1, keepdims=True))
                else:
                    activations.append(z)
            else:
                activations.append(_activate(z, self.activation))
        return activations

    def _backward(
        self, activations: list[np.ndarray], Y: np.ndarray
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        n = Y.shape[0]
        grads_W: list[np.ndarray] = [np.zeros_like(W) for W in self.weights_]
        grads_b: list[np.ndarray] = [np.zeros_like(b) for b in self.biases_]
        # Both softmax+cross-entropy and identity+MSE have the same output delta.
        delta = (activations[-1] - Y) / n
        for i in range(len(self.weights_) - 1, -1, -1):
            grads_W[i] = activations[i].T @ delta + self.alpha * self.weights_[i]
            grads_b[i] = delta.sum(axis=0)
            if i > 0:
                delta = (delta @ self.weights_[i].T) * _activate_grad(
                    activations[i], self.activation
                )
        return grads_W, grads_b

    def _loss(self, X: np.ndarray, Y: np.ndarray) -> float:
        output = self._forward(X)[-1]
        if self.task == "classification":
            return float(-np.mean(np.sum(Y * np.log(np.clip(output, 1e-12, None)), axis=1)))
        return float(np.mean((output - Y) ** 2))

    # -- training ------------------------------------------------------------------
    def fit(self, X: np.ndarray, Y: np.ndarray) -> "MLPNetwork":
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(Y, dtype=np.float64)
        if Y.ndim == 1:
            Y = Y.reshape(-1, 1)
        rng = np.random.default_rng(self.random_state)
        self._init_weights(X.shape[1], Y.shape[1], rng)

        n = X.shape[0]
        use_validation = 0.0 < self.validation_fraction < 0.9 and n >= 20
        if use_validation:
            n_val = max(2, int(round(self.validation_fraction * n)))
            permutation = rng.permutation(n)
            val_idx, train_idx = permutation[:n_val], permutation[n_val:]
            X_train, Y_train = X[train_idx], Y[train_idx]
            X_val, Y_val = X[val_idx], Y[val_idx]
        else:
            X_train, Y_train = X, Y
            X_val, Y_val = X, Y

        velocity_W = [np.zeros_like(W) for W in self.weights_]
        velocity_b = [np.zeros_like(b) for b in self.biases_]
        m_W = [np.zeros_like(W) for W in self.weights_]
        m_b = [np.zeros_like(b) for b in self.biases_]
        v_W = [np.zeros_like(W) for W in self.weights_]
        v_b = [np.zeros_like(b) for b in self.biases_]

        best_val = np.inf
        best_weights = None
        patience, stale = 15, 0
        adam_step = 0
        base_lr = self.learning_rate_init
        lr = base_lr
        batch = max(2, min(int(self.batch_size), X_train.shape[0]))

        for epoch in range(int(self.max_iter)):
            if self.learning_rate == "invscaling":
                lr = base_lr / (1.0 + epoch) ** 0.5
            order = rng.permutation(X_train.shape[0])
            for start in range(0, len(order), batch):
                idx = order[start : start + batch]
                activations = self._forward(X_train[idx])
                grads_W, grads_b = self._backward(activations, Y_train[idx])
                if self.solver == "adam":
                    adam_step += 1
                    for i in range(len(self.weights_)):
                        m_W[i] = self.beta_1 * m_W[i] + (1 - self.beta_1) * grads_W[i]
                        v_W[i] = self.beta_2 * v_W[i] + (1 - self.beta_2) * grads_W[i] ** 2
                        m_b[i] = self.beta_1 * m_b[i] + (1 - self.beta_1) * grads_b[i]
                        v_b[i] = self.beta_2 * v_b[i] + (1 - self.beta_2) * grads_b[i] ** 2
                        m_hat_W = m_W[i] / (1 - self.beta_1**adam_step)
                        v_hat_W = v_W[i] / (1 - self.beta_2**adam_step)
                        m_hat_b = m_b[i] / (1 - self.beta_1**adam_step)
                        v_hat_b = v_b[i] / (1 - self.beta_2**adam_step)
                        self.weights_[i] -= lr * m_hat_W / (np.sqrt(v_hat_W) + 1e-8)
                        self.biases_[i] -= lr * m_hat_b / (np.sqrt(v_hat_b) + 1e-8)
                elif self.solver == "sgd":
                    for i in range(len(self.weights_)):
                        velocity_W[i] = self.momentum * velocity_W[i] - lr * grads_W[i]
                        velocity_b[i] = self.momentum * velocity_b[i] - lr * grads_b[i]
                        self.weights_[i] += velocity_W[i]
                        self.biases_[i] += velocity_b[i]
                else:  # "lbfgs" approximated by plain full-precision gradient steps
                    for i in range(len(self.weights_)):
                        self.weights_[i] -= lr * grads_W[i]
                        self.biases_[i] -= lr * grads_b[i]

            val_loss = self._loss(X_val, Y_val)
            if val_loss < best_val - self.tol:
                best_val = val_loss
                best_weights = (
                    [W.copy() for W in self.weights_],
                    [b.copy() for b in self.biases_],
                )
                stale = 0
            else:
                stale += 1
                if self.learning_rate == "adaptive" and stale % 5 == 0:
                    lr = max(lr / 2.0, 1e-5)
                if stale >= patience:
                    break
        if best_weights is not None:
            self.weights_, self.biases_ = best_weights
        self.best_validation_loss_ = float(best_val)
        return self

    def forward(self, X: np.ndarray) -> np.ndarray:
        return self._forward(np.asarray(X, dtype=np.float64))[-1]


class MLPClassifier(BaseClassifier):
    """Softmax MLP classifier exposing the Table II hyperparameters."""

    def __init__(
        self,
        hidden_layer: int = 1,
        hidden_layer_size: int = 32,
        activation: str = "relu",
        solver: str = "adam",
        learning_rate: str = "constant",
        learning_rate_init: float = 0.01,
        max_iter: int = 200,
        momentum: float = 0.9,
        validation_fraction: float = 0.1,
        beta_1: float = 0.9,
        beta_2: float = 0.999,
        alpha: float = 1e-4,
        random_state: int | None = None,
    ) -> None:
        super().__init__()
        self.hidden_layer = hidden_layer
        self.hidden_layer_size = hidden_layer_size
        self.activation = activation
        self.solver = solver
        self.learning_rate = learning_rate
        self.learning_rate_init = learning_rate_init
        self.max_iter = max_iter
        self.momentum = momentum
        self.validation_fraction = validation_fraction
        self.beta_1 = beta_1
        self.beta_2 = beta_2
        self.alpha = alpha
        self.random_state = random_state

    def _build_network(self, n_outputs: int) -> MLPNetwork:
        layers = [int(self.hidden_layer_size)] * max(1, int(self.hidden_layer))
        return MLPNetwork(
            layer_sizes=layers,
            task="classification",
            activation=self.activation,
            solver=self.solver,
            learning_rate=self.learning_rate,
            learning_rate_init=self.learning_rate_init,
            max_iter=self.max_iter,
            momentum=self.momentum,
            validation_fraction=self.validation_fraction,
            beta_1=self.beta_1,
            beta_2=self.beta_2,
            alpha=self.alpha,
            random_state=self.random_state,
        )

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        Xs = (X - self._mean) / self._scale
        Y = np.zeros((X.shape[0], len(self.classes_)))
        Y[np.arange(X.shape[0]), y] = 1.0
        self.network_ = self._build_network(len(self.classes_))
        self.network_.fit(Xs, Y)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        Xs = (X - self._mean) / self._scale
        return self.network_.forward(Xs)

    def export_params(self) -> dict:
        check_is_fitted(self)
        return {
            "kind": "mlp_classifier",
            "task": "classification",
            "mean": self._mean.tolist(),
            "scale": self._scale.tolist(),
            "weights": [W.tolist() for W in self.network_.weights_],
            "biases": [b.tolist() for b in self.network_.biases_],
            "activation": self.activation,
            "classes": export_labels(self.classes_),
        }


class MultilayerPerceptron(MLPClassifier):
    """Weka-catalogue alias: a 2-hidden-layer sigmoid MLP trained with SGD."""

    def __init__(
        self,
        hidden_layer_size: int = 16,
        learning_rate_init: float = 0.1,
        max_iter: int = 200,
        momentum: float = 0.8,
        random_state: int | None = None,
    ) -> None:
        super().__init__(
            hidden_layer=2,
            hidden_layer_size=hidden_layer_size,
            activation="logistic",
            solver="sgd",
            learning_rate="constant",
            learning_rate_init=learning_rate_init,
            max_iter=max_iter,
            momentum=momentum,
            random_state=random_state,
        )


class MLPRegressor:
    """MLP regressor with the Table II hyperparameters (used by Algorithm 3).

    The output layer is linear and the model is scored with mean squared
    error; the OneHot' targets of the paper (one-hot with -1 for inapplicable
    algorithms) are plain real-valued targets from this model's perspective.
    """

    def __init__(
        self,
        hidden_layer: int = 1,
        hidden_layer_size: int = 32,
        activation: str = "relu",
        solver: str = "adam",
        learning_rate: str = "constant",
        learning_rate_init: float = 0.01,
        max_iter: int = 200,
        momentum: float = 0.9,
        validation_fraction: float = 0.1,
        beta_1: float = 0.9,
        beta_2: float = 0.999,
        alpha: float = 1e-4,
        random_state: int | None = None,
    ) -> None:
        self.hidden_layer = hidden_layer
        self.hidden_layer_size = hidden_layer_size
        self.activation = activation
        self.solver = solver
        self.learning_rate = learning_rate
        self.learning_rate_init = learning_rate_init
        self.max_iter = max_iter
        self.momentum = momentum
        self.validation_fraction = validation_fraction
        self.beta_1 = beta_1
        self.beta_2 = beta_2
        self.alpha = alpha
        self.random_state = random_state
        self.network_: MLPNetwork | None = None

    def get_params(self) -> dict:
        return {
            "hidden_layer": self.hidden_layer,
            "hidden_layer_size": self.hidden_layer_size,
            "activation": self.activation,
            "solver": self.solver,
            "learning_rate": self.learning_rate,
            "learning_rate_init": self.learning_rate_init,
            "max_iter": self.max_iter,
            "momentum": self.momentum,
            "validation_fraction": self.validation_fraction,
            "beta_1": self.beta_1,
            "beta_2": self.beta_2,
            "alpha": self.alpha,
            "random_state": self.random_state,
        }

    def set_params(self, **params) -> "MLPRegressor":
        for key, value in params.items():
            if not hasattr(self, key):
                raise ValueError(f"invalid parameter {key!r} for MLPRegressor")
            setattr(self, key, value)
        return self

    def fit(self, X, Y) -> "MLPRegressor":
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(Y, dtype=np.float64)
        if Y.ndim == 1:
            Y = Y.reshape(-1, 1)
        with np.errstate(all="ignore"), warnings.catch_warnings():
            # NaN-aware statistics, consistent with the preprocessing
            # scalers: meta-feature matrices may carry NaN cells, and plain
            # mean/std would poison the whole column (the ``scale == 0``
            # guard never matches NaN).
            warnings.simplefilter("ignore", category=RuntimeWarning)
            mean = np.nanmean(X, axis=0)
            scale = np.nanstd(X, axis=0)
        self._mean = np.where(np.isnan(mean), 0.0, mean)
        self._scale = np.where(np.isnan(scale) | (scale == 0), 1.0, scale)
        layers = [int(self.hidden_layer_size)] * max(1, int(self.hidden_layer))
        self.network_ = MLPNetwork(
            layer_sizes=layers,
            task="regression",
            activation=self.activation,
            solver=self.solver,
            learning_rate=self.learning_rate,
            learning_rate_init=self.learning_rate_init,
            max_iter=self.max_iter,
            momentum=self.momentum,
            validation_fraction=self.validation_fraction,
            beta_1=self.beta_1,
            beta_2=self.beta_2,
            alpha=self.alpha,
            random_state=self.random_state,
        )
        self.n_outputs_ = Y.shape[1]
        self.network_.fit((X - self._mean) / self._scale, Y)
        return self

    def predict(self, X) -> np.ndarray:
        if self.network_ is None:
            raise RuntimeError("MLPRegressor is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        output = self.network_.forward((X - self._mean) / self._scale)
        return output if self.n_outputs_ > 1 else output.ravel()

    def export_params(self) -> dict:
        if self.network_ is None:
            raise RuntimeError("MLPRegressor is not fitted")
        return {
            "kind": "mlp_regressor",
            "task": "regression",
            "mean": self._mean.tolist(),
            "scale": self._scale.tolist(),
            "weights": [W.tolist() for W in self.network_.weights_],
            "biases": [b.tolist() for b in self.network_.biases_],
            "activation": self.activation,
            "n_outputs": int(self.n_outputs_),
        }


class RBFNetwork(BaseClassifier):
    """Radial-basis-function network: k-means centres + logistic output layer."""

    def __init__(
        self,
        n_centers: int = 10,
        gamma: float | None = None,
        max_iter: int = 150,
        random_state: int | None = None,
    ) -> None:
        super().__init__()
        self.n_centers = n_centers
        self.gamma = gamma
        self.max_iter = max_iter
        self.random_state = random_state

    @staticmethod
    def _kmeans(X: np.ndarray, k: int, rng: np.random.Generator, iters: int = 20) -> np.ndarray:
        k = min(k, X.shape[0])
        centers = X[rng.choice(X.shape[0], size=k, replace=False)]
        for _ in range(iters):
            d2 = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            assignment = d2.argmin(axis=1)
            new_centers = centers.copy()
            for j in range(k):
                members = X[assignment == j]
                if len(members):
                    new_centers[j] = members.mean(axis=0)
            if np.allclose(new_centers, centers):
                break
            centers = new_centers
        return centers

    def _rbf_features(self, X: np.ndarray) -> np.ndarray:
        d2 = ((X[:, None, :] - self.centers_[None, :, :]) ** 2).sum(axis=2)
        return np.exp(-self._gamma_value * d2)

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        from .linear import LogisticRegression

        if self.n_centers < 1:
            raise ValueError("n_centers must be >= 1")
        rng = np.random.default_rng(self.random_state)
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        Xs = (X - self._mean) / self._scale
        self.centers_ = self._kmeans(Xs, int(self.n_centers), rng)
        if self.gamma is None:
            pairwise = ((self.centers_[:, None, :] - self.centers_[None, :, :]) ** 2).sum(axis=2)
            positive = pairwise[pairwise > 0]
            spread = np.median(positive) if positive.size else 1.0
            self._gamma_value = 1.0 / max(spread, 1e-6)
        else:
            self._gamma_value = float(self.gamma)
        features = self._rbf_features(Xs)
        self.output_ = LogisticRegression(max_iter=self.max_iter)
        self.output_.fit(features, y)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        Xs = (X - self._mean) / self._scale
        features = self._rbf_features(Xs)
        proba = self.output_.predict_proba(features)
        out = np.zeros((X.shape[0], len(self.classes_)))
        for local_index, label in enumerate(self.output_.classes_):
            out[:, int(label)] = proba[:, local_index]
        return out
