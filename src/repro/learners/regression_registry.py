"""The regressor catalogue ("RAList") and its hyperparameter spaces.

The regression analogue of :mod:`repro.learners.registry`'s Table IV
stand-in: every entry declares a factory and a
:class:`~repro.hpo.space.ConfigSpace`, reusing the same
:class:`~repro.learners.registry.AlgorithmSpec` /
:class:`~repro.learners.registry.AlgorithmRegistry` machinery so the HPO
layer, the UDR and the CASH baselines work over either catalogue unchanged.
:func:`registry_for_task` is the one switch the rest of the package uses to
pick a catalogue from a task type.
"""

from __future__ import annotations

from ..hpo.space import CategoricalParam, ConfigSpace, FloatParam, IntParam
from .neural import MLPRegressor
from .registry import AlgorithmRegistry, AlgorithmSpec, default_registry
from .regression import (
    DecisionTreeRegressor,
    DummyRegressor,
    ExtraTreesRegressor,
    GradientBoostingRegressor,
    KNeighborsRegressor,
    LassoRegressor,
    RandomForestRegressor,
    RidgeRegressor,
    SVR,
)

__all__ = ["default_regression_registry", "RAList", "registry_for_task"]


def _space(*params) -> ConfigSpace:
    return ConfigSpace(list(params))


def _build_regression_specs() -> list[AlgorithmSpec]:
    specs: list[AlgorithmSpec] = []

    # -- linear ----------------------------------------------------------------------
    specs.append(
        AlgorithmSpec("Ridge", "linear", RidgeRegressor, _space(
            FloatParam("alpha", 1e-4, 100.0, log=True),
        ))
    )
    specs.append(
        AlgorithmSpec("Lasso", "linear", LassoRegressor, _space(
            FloatParam("alpha", 1e-4, 10.0, log=True),
            IntParam("max_iter", 50, 400),
        ))
    )
    specs.append(
        AlgorithmSpec("SVR", "functions", SVR, _space(
            FloatParam("C", 0.01, 100.0, log=True),
            FloatParam("epsilon", 0.001, 1.0, log=True),
            IntParam("max_iter", 50, 400),
        ), cost="moderate")
    )

    # -- lazy ------------------------------------------------------------------------
    specs.append(
        AlgorithmSpec("KNeighborsRegressor", "lazy", KNeighborsRegressor, _space(
            IntParam("n_neighbors", 1, 30),
            CategoricalParam("weighting", ["uniform", "distance"]),
            CategoricalParam("p", [1, 2]),
        ))
    )

    # -- trees / ensembles -----------------------------------------------------------
    specs.append(
        AlgorithmSpec("RegressionTree", "trees", DecisionTreeRegressor, _space(
            IntParam("max_depth", 2, 25),
            IntParam("min_samples_leaf", 1, 10),
            IntParam("min_samples_split", 2, 20),
        ))
    )
    specs.append(
        AlgorithmSpec("RandomForestRegressor", "meta", RandomForestRegressor, _space(
            IntParam("n_estimators", 10, 80),
            CategoricalParam("max_features", ["sqrt", "log2"]),
            IntParam("max_depth", 3, 25),
            IntParam("min_samples_leaf", 1, 6),
        ), cost="moderate")
    )
    specs.append(
        AlgorithmSpec("ExtraTreesRegressor", "meta", ExtraTreesRegressor, _space(
            IntParam("n_estimators", 10, 80),
            CategoricalParam("max_features", ["sqrt", "log2"]),
            IntParam("max_depth", 3, 25),
        ), cost="moderate")
    )
    specs.append(
        AlgorithmSpec("GradientBoosting", "meta", GradientBoostingRegressor, _space(
            IntParam("n_estimators", 10, 80),
            FloatParam("learning_rate", 0.01, 1.0, log=True),
            IntParam("max_depth", 1, 6),
            FloatParam("subsample", 0.5, 1.0),
        ), cost="moderate")
    )

    # -- neural ----------------------------------------------------------------------
    specs.append(
        AlgorithmSpec("MLPRegressor", "functions", MLPRegressor, _space(
            IntParam("hidden_layer", 1, 3),
            IntParam("hidden_layer_size", 5, 64),
            CategoricalParam("activation", ["relu", "tanh", "logistic"]),
            CategoricalParam("solver", ["adam", "sgd"]),
            FloatParam("learning_rate_init", 0.001, 0.3, log=True),
            IntParam("max_iter", 50, 300),
            FloatParam("momentum", 0.1, 0.95),
        ), cost="expensive")
    )

    # -- baseline --------------------------------------------------------------------
    specs.append(
        AlgorithmSpec("DummyRegressor", "rules", DummyRegressor, _space(
            CategoricalParam("strategy", ["mean", "median"]),
        ))
    )
    return specs


_DEFAULT_REGRESSION: AlgorithmRegistry | None = None


def default_regression_registry() -> AlgorithmRegistry:
    """Return the shared default regressor catalogue (built lazily once)."""
    global _DEFAULT_REGRESSION
    if _DEFAULT_REGRESSION is None:
        _DEFAULT_REGRESSION = AlgorithmRegistry(_build_regression_specs())
    return _DEFAULT_REGRESSION


def RAList() -> list[str]:
    """Names of every algorithm in the default regressor catalogue."""
    return default_regression_registry().names


def registry_for_task(task: str = "classification") -> AlgorithmRegistry:
    """The default catalogue for a task type (classifiers or regressors).

    Normalises locally (case-insensitive) instead of importing
    ``datasets.task`` — datasets pulls in the learners package, so the
    import would be circular.
    """
    key = str(getattr(task, "value", task)).strip().lower()
    if key == "regression":
        return default_regression_registry()
    if key == "classification":
        return default_registry()
    raise ValueError(f"unknown task {task!r}; known: ['classification', 'regression']")
