"""Bayesian classifiers from the Weka ``bayes`` package.

Implemented analogues: ``NaiveBayes`` (Gaussian), ``NaiveBayesMultinomial``,
``BayesNet`` (tree-augmented structure approximated by a discretised naive
Bayes with pairwise feature coupling), ``AODE`` (averaged one-dependence
estimators over discretised features) and ``HNB`` (hidden naive Bayes
approximated by mutual-information-weighted one-dependence estimators).
"""

from __future__ import annotations

import numpy as np

from .base import BaseClassifier, check_is_fitted, export_labels

__all__ = [
    "NaiveBayes",
    "NaiveBayesMultinomial",
    "BayesNet",
    "AODE",
    "HNB",
]


class NaiveBayes(BaseClassifier):
    """Gaussian naive Bayes with Laplace-smoothed class priors."""

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        super().__init__()
        self.var_smoothing = var_smoothing

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n_classes = len(self.classes_)
        n_features = X.shape[1]
        self.theta_ = np.zeros((n_classes, n_features))
        self.var_ = np.zeros((n_classes, n_features))
        self.class_log_prior_ = np.zeros(n_classes)
        global_var = X.var(axis=0).max() if X.size else 1.0
        epsilon = self.var_smoothing * max(global_var, 1e-12)
        for k in range(n_classes):
            members = X[y == k]
            if len(members) == 0:
                members = X
            self.theta_[k] = members.mean(axis=0)
            self.var_[k] = members.var(axis=0) + epsilon
            self.class_log_prior_[k] = np.log((np.sum(y == k) + 1.0) / (len(y) + n_classes))

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        n_classes = len(self.classes_)
        jll = np.zeros((X.shape[0], n_classes))
        for k in range(n_classes):
            log_prob = -0.5 * np.sum(np.log(2.0 * np.pi * self.var_[k]))
            log_prob = log_prob - 0.5 * np.sum(
                ((X - self.theta_[k]) ** 2) / self.var_[k], axis=1
            )
            jll[:, k] = self.class_log_prior_[k] + log_prob
        return jll

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        proba = np.exp(jll)
        return proba / proba.sum(axis=1, keepdims=True)

    def export_params(self) -> dict:
        check_is_fitted(self)
        # The per-class normalisation constant is precomputed with the exact
        # numpy expression the live joint-log-likelihood evaluates.
        log_norm = [
            float(-0.5 * np.sum(np.log(2.0 * np.pi * self.var_[k])))
            for k in range(len(self.classes_))
        ]
        return {
            "kind": "gaussian_nb",
            "theta": self.theta_.tolist(),
            "var": self.var_.tolist(),
            "class_log_prior": self.class_log_prior_.tolist(),
            "log_norm": log_norm,
            "classes": export_labels(self.classes_),
        }


class NaiveBayesMultinomial(BaseClassifier):
    """Multinomial naive Bayes over non-negative (count-like) features.

    Features are shifted to be non-negative so the learner degrades gracefully
    on standardised inputs rather than crashing.
    """

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        self.alpha = alpha

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        self.shift_ = X.min(axis=0)
        X_shifted = X - self.shift_
        n_classes = len(self.classes_)
        n_features = X.shape[1]
        self.feature_log_prob_ = np.zeros((n_classes, n_features))
        self.class_log_prior_ = np.zeros(n_classes)
        for k in range(n_classes):
            members = X_shifted[y == k]
            if len(members) == 0:
                members = X_shifted
            counts = members.sum(axis=0) + self.alpha
            self.feature_log_prob_[k] = np.log(counts / counts.sum())
            self.class_log_prior_[k] = np.log((np.sum(y == k) + 1.0) / (len(y) + n_classes))

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        X_shifted = np.clip(X - self.shift_, 0.0, None)
        jll = X_shifted @ self.feature_log_prob_.T + self.class_log_prior_
        jll -= jll.max(axis=1, keepdims=True)
        proba = np.exp(jll)
        return proba / proba.sum(axis=1, keepdims=True)

    def export_params(self) -> dict:
        check_is_fitted(self)
        return {
            "kind": "multinomial_nb",
            "shift": self.shift_.tolist(),
            "feature_log_prob": self.feature_log_prob_.tolist(),
            "class_log_prior": self.class_log_prior_.tolist(),
            "classes": export_labels(self.classes_),
        }


class _Discretizer:
    """Equal-frequency discretiser shared by the discrete Bayes learners."""

    def __init__(self, n_bins: int = 5) -> None:
        self.n_bins = max(2, int(n_bins))
        self.edges_: list[np.ndarray] = []

    def fit(self, X: np.ndarray) -> "_Discretizer":
        self.edges_ = []
        quantiles = np.linspace(0, 100, self.n_bins + 1)[1:-1]
        for j in range(X.shape[1]):
            edges = np.unique(np.percentile(X[:, j], quantiles))
            self.edges_.append(edges)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        out = np.zeros(X.shape, dtype=np.int64)
        for j, edges in enumerate(self.edges_):
            out[:, j] = np.searchsorted(edges, X[:, j], side="right")
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def n_values(self, j: int) -> int:
        return len(self.edges_[j]) + 1


class BayesNet(BaseClassifier):
    """Discretised Bayes-network classifier (naive structure + smoothing).

    Weka's ``BayesNet`` with the default K2/naive structure reduces to a
    discretised naive Bayes; that is what is implemented here, which keeps the
    characteristic behaviour (robust on small/categorical-heavy data).
    """

    def __init__(self, n_bins: int = 5, alpha: float = 1.0) -> None:
        super().__init__()
        self.n_bins = n_bins
        self.alpha = alpha

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self.discretizer_ = _Discretizer(self.n_bins)
        X_binned = self.discretizer_.fit_transform(X)
        n_classes = len(self.classes_)
        n_features = X.shape[1]
        self.class_log_prior_ = np.log(
            (np.bincount(y, minlength=n_classes) + 1.0) / (len(y) + n_classes)
        )
        self.tables_: list[np.ndarray] = []
        for j in range(n_features):
            cardinality = self.discretizer_.n_values(j)
            table = np.full((n_classes, cardinality), self.alpha)
            for k in range(n_classes):
                values, counts = np.unique(X_binned[y == k, j], return_counts=True)
                table[k, values] += counts
            table /= table.sum(axis=1, keepdims=True)
            self.tables_.append(np.log(table))

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        X_binned = self.discretizer_.transform(X)
        n_classes = len(self.classes_)
        jll = np.tile(self.class_log_prior_, (X.shape[0], 1))
        for j, table in enumerate(self.tables_):
            bins = np.clip(X_binned[:, j], 0, table.shape[1] - 1)
            jll += table[:, bins].T
        jll -= jll.max(axis=1, keepdims=True)
        proba = np.exp(jll)
        return proba / proba.sum(axis=1, keepdims=True)


class AODE(BaseClassifier):
    """Averaged one-dependence estimators over discretised features.

    Every feature takes a turn as the "super-parent"; the final probability is
    the average of the resulting one-dependence models.  To keep the model
    tractable on wide datasets the number of super-parents is capped.
    """

    def __init__(self, n_bins: int = 4, alpha: float = 1.0, max_parents: int = 8) -> None:
        super().__init__()
        self.n_bins = n_bins
        self.alpha = alpha
        self.max_parents = max_parents

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self.discretizer_ = _Discretizer(self.n_bins)
        X_binned = self.discretizer_.fit_transform(X)
        self._X_binned = X_binned
        self._y = y
        n_features = X.shape[1]
        self.parents_ = list(range(min(n_features, int(self.max_parents))))
        self.cardinalities_ = [self.discretizer_.n_values(j) for j in range(n_features)]
        n_classes = len(self.classes_)
        # Joint counts: P(class, parent_value) and P(child_value | class, parent_value).
        self.parent_tables_: dict[int, np.ndarray] = {}
        self.child_tables_: dict[int, list[np.ndarray]] = {}
        for parent in self.parents_:
            p_card = self.cardinalities_[parent]
            parent_table = np.full((n_classes, p_card), self.alpha)
            for k in range(n_classes):
                values, counts = np.unique(X_binned[y == k, parent], return_counts=True)
                parent_table[k, values] += counts
            self.parent_tables_[parent] = np.log(parent_table / parent_table.sum())
            child_tables: list[np.ndarray] = []
            for child in range(n_features):
                c_card = self.cardinalities_[child]
                table = np.full((n_classes, p_card, c_card), self.alpha)
                if child != parent:
                    for k in range(n_classes):
                        mask = y == k
                        for pv, cv in zip(X_binned[mask, parent], X_binned[mask, child]):
                            table[k, pv, cv] += 1.0
                table /= table.sum(axis=2, keepdims=True)
                child_tables.append(np.log(table))
            self.child_tables_[parent] = child_tables

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        X_binned = self.discretizer_.transform(X)
        n_classes = len(self.classes_)
        n_samples, n_features = X_binned.shape
        total = np.zeros((n_samples, n_classes))
        for parent in self.parents_:
            p_card = self.parent_tables_[parent].shape[1]
            pv = np.clip(X_binned[:, parent], 0, p_card - 1)
            jll = self.parent_tables_[parent][:, pv].T.copy()
            for child in range(n_features):
                if child == parent:
                    continue
                table = self.child_tables_[parent][child]
                cv = np.clip(X_binned[:, child], 0, table.shape[2] - 1)
                jll += table[:, pv, cv].T
            jll -= jll.max(axis=1, keepdims=True)
            proba = np.exp(jll)
            total += proba / proba.sum(axis=1, keepdims=True)
        return total / len(self.parents_)


class HNB(AODE):
    """Hidden naive Bayes approximation: AODE with finer discretisation."""

    def __init__(self, n_bins: int = 6, alpha: float = 0.5, max_parents: int = 10) -> None:
        super().__init__(n_bins=n_bins, alpha=alpha, max_parents=max_parents)
