"""Meta-learner ensembles from the Weka ``meta`` package referenced in Table IV.

Implemented analogues: ``Bagging``, ``AdaBoostM1``, ``LogitBoost``,
``RandomSubSpace``, ``RandomCommittee``, ``RotationForest``, ``MultiBoostAB``
(approximated as AdaBoost with committee restarts), ``StackingC`` and
``VotingEnsemble`` (used by ``ClassificationViaRegression``-style wrappers).
"""

from __future__ import annotations

import numpy as np

from .. import obs
from .base import BaseClassifier, clone
from .tree import DecisionStump, DecisionTreeClassifier, J48, RandomTree

__all__ = [
    "Bagging",
    "AdaBoostM1",
    "MultiBoostAB",
    "LogitBoost",
    "RandomSubSpace",
    "RandomCommittee",
    "RotationForest",
    "StackingC",
    "VotingEnsemble",
]


def _default_base() -> BaseClassifier:
    return DecisionTreeClassifier(criterion="entropy", max_depth=None, min_samples_leaf=2)


def _aligned_proba(model: BaseClassifier, X: np.ndarray, n_classes: int) -> np.ndarray:
    """Return ``model``'s probabilities re-indexed onto the global label range."""
    proba = model.predict_proba(X)
    out = np.zeros((X.shape[0], n_classes))
    for local_index, label in enumerate(model.classes_):
        out[:, int(label)] += proba[:, local_index]
    return out


class Bagging(BaseClassifier):
    """Bootstrap aggregation around an arbitrary base classifier."""

    def __init__(
        self,
        base_estimator: BaseClassifier | None = None,
        n_estimators: int = 10,
        max_samples: float = 1.0,
        random_state: int | None = None,
    ) -> None:
        super().__init__()
        self.base_estimator = base_estimator
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.random_state = random_state

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if not 0.0 < self.max_samples <= 1.0:
            raise ValueError("max_samples must be in (0, 1]")
        rng = np.random.default_rng(self.random_state)
        base = self.base_estimator if self.base_estimator is not None else _default_base()
        n = X.shape[0]
        sample_size = max(2, int(round(self.max_samples * n)))
        self.estimators_: list[BaseClassifier] = []
        for _ in range(int(self.n_estimators)):
            idx = rng.integers(0, n, size=sample_size)
            if len(np.unique(y[idx])) < 2 and len(np.unique(y)) >= 2:
                # Force at least two classes into the bootstrap sample.
                for label in np.unique(y)[:2]:
                    members = np.flatnonzero(y == label)
                    idx[rng.integers(0, sample_size)] = members[rng.integers(0, len(members))]
            model = clone(base)
            model.fit(X[idx], y[idx])
            self.estimators_.append(model)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        n_classes = len(self.classes_)
        total = np.zeros((X.shape[0], n_classes))
        for model in self.estimators_:
            total += _aligned_proba(model, X, n_classes)
        return total / len(self.estimators_)


class AdaBoostM1(BaseClassifier):
    """SAMME-style multiclass AdaBoost over decision stumps (or any base)."""

    def __init__(
        self,
        base_estimator: BaseClassifier | None = None,
        n_estimators: int = 30,
        learning_rate: float = 1.0,
        random_state: int | None = None,
    ) -> None:
        super().__init__()
        self.base_estimator = base_estimator
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.random_state = random_state

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        rng = np.random.default_rng(self.random_state)
        base = self.base_estimator if self.base_estimator is not None else DecisionStump()
        n = X.shape[0]
        n_classes = len(self.classes_)
        weights = np.full(n, 1.0 / n)
        self.estimators_: list[BaseClassifier] = []
        self.estimator_weights_: list[float] = []
        for _ in range(int(self.n_estimators)):
            # Weighted fitting via weighted resampling (base learners here do
            # not accept sample weights directly).
            idx = rng.choice(n, size=n, replace=True, p=weights)
            model = clone(base)
            try:
                model.fit(X[idx], y[idx])
            except Exception as exc:  # noqa: BLE001 — boosting stops at the failed round
                obs.error_event("ensemble.boost_fit", exc)
                break
            predictions = np.zeros(n, dtype=np.int64)
            raw = model.predict(X)
            predictions[:] = raw
            incorrect = predictions != y
            error = float(np.dot(weights, incorrect))
            if error >= 1.0 - 1.0 / n_classes:
                # Worse than chance: discard and stop boosting.
                break
            error = max(error, 1e-10)
            alpha = self.learning_rate * (
                np.log((1.0 - error) / error) + np.log(n_classes - 1.0)
            )
            self.estimators_.append(model)
            self.estimator_weights_.append(float(alpha))
            weights = weights * np.exp(alpha * incorrect)
            weights /= weights.sum()
            if error <= 1e-10:
                break
        if not self.estimators_:
            fallback = clone(base)
            fallback.fit(X, y)
            self.estimators_ = [fallback]
            self.estimator_weights_ = [1.0]

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        n_classes = len(self.classes_)
        scores = np.zeros((X.shape[0], n_classes))
        for model, alpha in zip(self.estimators_, self.estimator_weights_):
            predictions = model.predict(X).astype(np.int64)
            scores[np.arange(X.shape[0]), predictions] += alpha
        total = scores.sum(axis=1, keepdims=True)
        total[total == 0] = 1.0
        return scores / total


class MultiBoostAB(AdaBoostM1):
    """MultiBoost approximation: AdaBoost with periodic weight re-initialisation."""

    def __init__(
        self,
        base_estimator: BaseClassifier | None = None,
        n_estimators: int = 30,
        n_committees: int = 3,
        random_state: int | None = None,
    ) -> None:
        super().__init__(
            base_estimator=base_estimator,
            n_estimators=n_estimators,
            learning_rate=1.0,
            random_state=random_state,
        )
        self.n_committees = n_committees

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        committees = max(1, int(self.n_committees))
        per_committee = max(1, int(self.n_estimators) // committees)
        rng = np.random.default_rng(self.random_state)
        all_models: list[BaseClassifier] = []
        all_weights: list[float] = []
        for c in range(committees):
            sub = AdaBoostM1(
                base_estimator=self.base_estimator,
                n_estimators=per_committee,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            sub.fit(X, self.classes_[y])
            all_models.extend(sub.estimators_)
            all_weights.extend(sub.estimator_weights_)
        self.estimators_ = all_models
        self.estimator_weights_ = all_weights


class LogitBoost(BaseClassifier):
    """Additive logistic regression (LogitBoost) with regression stumps.

    For each class a stage-wise additive model of depth-1 regression trees is
    fitted to the working response of the binomial log-likelihood, following
    Friedman/Hastie/Tibshirani's one-vs-rest formulation.
    """

    def __init__(
        self,
        n_estimators: int = 30,
        learning_rate: float = 0.5,
        random_state: int | None = None,
    ) -> None:
        super().__init__()
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.random_state = random_state

    @staticmethod
    def _fit_stump(X: np.ndarray, residual: np.ndarray) -> tuple[int, float, float, float]:
        """Least-squares depth-1 regression stump on ``residual``."""
        best = (0, float(np.median(X[:, 0])), float(residual.mean()), float(residual.mean()))
        best_sse = np.inf
        n_samples, n_features = X.shape
        for feature in range(n_features):
            values = X[:, feature]
            candidates = np.unique(np.percentile(values, np.linspace(10, 90, 9)))
            for threshold in candidates:
                mask = values <= threshold
                if mask.sum() == 0 or mask.sum() == n_samples:
                    continue
                left = residual[mask].mean()
                right = residual[~mask].mean()
                sse = np.sum((residual[mask] - left) ** 2) + np.sum(
                    (residual[~mask] - right) ** 2
                )
                if sse < best_sse:
                    best_sse = sse
                    best = (feature, float(threshold), float(left), float(right))
        return best

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n_samples = X.shape[0]
        n_classes = len(self.classes_)
        F = np.zeros((n_samples, n_classes))
        Y = np.zeros((n_samples, n_classes))
        Y[np.arange(n_samples), y] = 1.0
        self.stages_: list[list[tuple[int, float, float, float]]] = []
        for _ in range(int(self.n_estimators)):
            expF = np.exp(F - F.max(axis=1, keepdims=True))
            P = expF / expF.sum(axis=1, keepdims=True)
            stage: list[tuple[int, float, float, float]] = []
            for k in range(n_classes):
                w = np.clip(P[:, k] * (1 - P[:, k]), 1e-6, None)
                z = (Y[:, k] - P[:, k]) / w
                z = np.clip(z, -4.0, 4.0)
                stump = self._fit_stump(X, z)
                stage.append(stump)
                feature, threshold, left, right = stump
                update = np.where(X[:, feature] <= threshold, left, right)
                F[:, k] += self.learning_rate * update
            self.stages_.append(stage)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        n_classes = len(self.classes_)
        F = np.zeros((X.shape[0], n_classes))
        for stage in self.stages_:
            for k, (feature, threshold, left, right) in enumerate(stage):
                F[:, k] += self.learning_rate * np.where(
                    X[:, feature] <= threshold, left, right
                )
        expF = np.exp(F - F.max(axis=1, keepdims=True))
        return expF / expF.sum(axis=1, keepdims=True)


class RandomSubSpace(BaseClassifier):
    """Ensemble trained on random feature subspaces (Ho's random subspace method)."""

    def __init__(
        self,
        base_estimator: BaseClassifier | None = None,
        n_estimators: int = 10,
        subspace_fraction: float = 0.5,
        random_state: int | None = None,
    ) -> None:
        super().__init__()
        self.base_estimator = base_estimator
        self.n_estimators = n_estimators
        self.subspace_fraction = subspace_fraction
        self.random_state = random_state

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if not 0.0 < self.subspace_fraction <= 1.0:
            raise ValueError("subspace_fraction must be in (0, 1]")
        rng = np.random.default_rng(self.random_state)
        base = self.base_estimator if self.base_estimator is not None else _default_base()
        n_features = X.shape[1]
        k = max(1, int(round(self.subspace_fraction * n_features)))
        self.estimators_: list[BaseClassifier] = []
        self.subspaces_: list[np.ndarray] = []
        for _ in range(int(self.n_estimators)):
            features = rng.choice(n_features, size=k, replace=False)
            model = clone(base)
            model.fit(X[:, features], y)
            self.estimators_.append(model)
            self.subspaces_.append(features)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        n_classes = len(self.classes_)
        total = np.zeros((X.shape[0], n_classes))
        for model, features in zip(self.estimators_, self.subspaces_):
            total += _aligned_proba(model, X[:, features], n_classes)
        return total / len(self.estimators_)


class RandomCommittee(BaseClassifier):
    """Committee of randomised trees differing only in their random seed."""

    def __init__(
        self, n_estimators: int = 10, max_depth: int | None = None, random_state: int | None = None
    ) -> None:
        super().__init__()
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.random_state = random_state

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.random_state)
        self.estimators_ = []
        for _ in range(int(self.n_estimators)):
            tree = RandomTree(
                max_depth=self.max_depth, random_state=int(rng.integers(0, 2**31 - 1))
            )
            tree.fit(X, y)
            self.estimators_.append(tree)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        n_classes = len(self.classes_)
        total = np.zeros((X.shape[0], n_classes))
        for model in self.estimators_:
            total += _aligned_proba(model, X, n_classes)
        return total / len(self.estimators_)


class RotationForest(BaseClassifier):
    """Rotation Forest: trees trained on PCA-rotated random feature groups."""

    def __init__(
        self,
        n_estimators: int = 10,
        n_groups: int = 3,
        random_state: int | None = None,
    ) -> None:
        super().__init__()
        self.n_estimators = n_estimators
        self.n_groups = n_groups
        self.random_state = random_state

    @staticmethod
    def _pca_rotation(X_group: np.ndarray) -> np.ndarray:
        centered = X_group - X_group.mean(axis=0)
        cov = np.cov(centered, rowvar=False)
        cov = np.atleast_2d(cov)
        _, vectors = np.linalg.eigh(cov)
        return vectors

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.random_state)
        n_features = X.shape[1]
        groups = max(1, min(int(self.n_groups), n_features))
        self.estimators_: list[BaseClassifier] = []
        self.rotations_: list[list[tuple[np.ndarray, np.ndarray]]] = []
        for _ in range(int(self.n_estimators)):
            permutation = rng.permutation(n_features)
            feature_groups = np.array_split(permutation, groups)
            rotation: list[tuple[np.ndarray, np.ndarray]] = []
            transformed_blocks = []
            for feature_idx in feature_groups:
                if len(feature_idx) == 0:
                    continue
                block = X[:, feature_idx]
                vectors = self._pca_rotation(block)
                rotation.append((feature_idx, vectors))
                transformed_blocks.append(block @ vectors)
            rotated = np.hstack(transformed_blocks)
            tree = J48(random_state=int(rng.integers(0, 2**31 - 1)))
            tree.fit(rotated, y)
            self.estimators_.append(tree)
            self.rotations_.append(rotation)

    def _rotate(self, X: np.ndarray, rotation: list[tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
        blocks = [X[:, idx] @ vectors for idx, vectors in rotation]
        return np.hstack(blocks)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        n_classes = len(self.classes_)
        total = np.zeros((X.shape[0], n_classes))
        for model, rotation in zip(self.estimators_, self.rotations_):
            total += _aligned_proba(model, self._rotate(X, rotation), n_classes)
        return total / len(self.estimators_)


class StackingC(BaseClassifier):
    """Two-level stacking: base learners feed a simple logistic meta-learner."""

    def __init__(
        self,
        base_estimators: list[BaseClassifier] | None = None,
        cv: int = 3,
        random_state: int | None = None,
    ) -> None:
        super().__init__()
        self.base_estimators = base_estimators
        self.cv = cv
        self.random_state = random_state

    def _default_bases(self) -> list[BaseClassifier]:
        from .bayes import NaiveBayes
        from .lazy import IBk

        return [J48(), NaiveBayes(), IBk(n_neighbors=5)]

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        from .linear import LogisticRegression
        from .validation import StratifiedKFold

        bases = (
            [clone(m) for m in self.base_estimators]
            if self.base_estimators
            else self._default_bases()
        )
        n_classes = len(self.classes_)
        n = X.shape[0]
        meta_features = np.zeros((n, len(bases) * n_classes))
        n_splits = max(2, min(self.cv, int(np.bincount(y).min()) if np.bincount(y).min() >= 2 else 2))
        splitter = StratifiedKFold(n_splits=n_splits, shuffle=True, random_state=self.random_state)
        for train_idx, test_idx in splitter.split(X, y):
            for b, base in enumerate(bases):
                model = clone(base)
                try:
                    model.fit(X[train_idx], y[train_idx])
                    block = _aligned_proba(model, X[test_idx], n_classes)
                except Exception as exc:  # noqa: BLE001 — a failed base yields uniform meta-features
                    obs.error_event("ensemble.stack_fit", exc)
                    block = np.full((len(test_idx), n_classes), 1.0 / n_classes)
                meta_features[test_idx, b * n_classes : (b + 1) * n_classes] = block
        self.base_models_ = []
        for base in bases:
            model = clone(base)
            model.fit(X, y)
            self.base_models_.append(model)
        self.meta_model_ = LogisticRegression(max_iter=300)
        self.meta_model_.fit(meta_features, y)

    def _meta_features(self, X: np.ndarray) -> np.ndarray:
        n_classes = len(self.classes_)
        blocks = [_aligned_proba(model, X, n_classes) for model in self.base_models_]
        return np.hstack(blocks)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        return _aligned_proba(self.meta_model_, self._meta_features(X), len(self.classes_))


class VotingEnsemble(BaseClassifier):
    """Soft-voting combination of heterogeneous classifiers."""

    def __init__(
        self, estimators: list[BaseClassifier] | None = None, random_state: int | None = None
    ) -> None:
        super().__init__()
        self.estimators = estimators
        self.random_state = random_state

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        from .bayes import NaiveBayes
        from .lazy import IBk

        members = (
            [clone(m) for m in self.estimators]
            if self.estimators
            else [J48(), NaiveBayes(), IBk(n_neighbors=5)]
        )
        self.fitted_: list[BaseClassifier] = []
        for member in members:
            member.fit(X, y)
            self.fitted_.append(member)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        n_classes = len(self.classes_)
        total = np.zeros((X.shape[0], n_classes))
        for model in self.fitted_:
            total += _aligned_proba(model, X, n_classes)
        return total / len(self.fitted_)
