"""Base classes shared by every learner in the catalogue.

The learner substrate replaces the Weka classifier library used by the paper.
Every classifier follows a small, sklearn-like protocol:

* ``fit(X, y)`` — train on a dense float matrix ``X`` (categorical attributes
  are expected to have been encoded upstream) and an integer label vector
  ``y`` in ``{0, ..., n_classes - 1}``.
* ``predict(X)`` — return integer labels.
* ``predict_proba(X)`` — return an ``(n_samples, n_classes)`` probability
  matrix.  Learners that are not naturally probabilistic return one-hot rows.
* ``get_params()`` / ``set_params(**params)`` — hyperparameter access used by
  the HPO layer; constructor keyword arguments are the hyperparameters.

The classes here deliberately avoid any sklearn dependency: the execution
environment has no scikit-learn, so the catalogue is implemented from scratch
on top of numpy.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any

import numpy as np

__all__ = [
    "BaseClassifier",
    "NotFittedError",
    "check_X_y",
    "check_array",
    "check_is_fitted",
    "clone",
    "export_labels",
]


def export_labels(classes: Any) -> list:
    """JSON-able copy of a fitted ``classes_`` vector (numpy scalars → python).

    Part of the ``export_params()`` contract implemented by the exportable
    learner families (see :mod:`repro.export`): every exported label must
    survive a JSON round trip and compare equal to the live prediction.
    """
    return np.asarray(classes).tolist()


class NotFittedError(RuntimeError):
    """Raised when ``predict`` is called before ``fit``."""


def check_array(X: Any) -> np.ndarray:
    """Coerce ``X`` to a 2-D float64 array and validate its shape."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    if X.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {X.shape}")
    if X.shape[0] == 0:
        raise ValueError("X has zero samples")
    if not np.all(np.isfinite(X)):
        raise ValueError("X contains NaN or infinite values; impute first")
    return X


def check_X_y(X: Any, y: Any) -> tuple[np.ndarray, np.ndarray]:
    """Validate a training pair: 2-D float X, 1-D integer y, matching lengths."""
    X = check_array(X)
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"expected a 1-D label vector, got shape {y.shape}")
    if y.shape[0] != X.shape[0]:
        raise ValueError(
            f"X and y have inconsistent lengths: {X.shape[0]} != {y.shape[0]}"
        )
    if y.dtype.kind not in "iu":
        y_int = y.astype(np.int64)
        if not np.array_equal(y_int, y.astype(np.float64)):
            raise ValueError("y must contain integer class labels")
        y = y_int
    return X, y.astype(np.int64)


def check_is_fitted(estimator: Any, attribute: str = "classes_") -> None:
    """Raise :class:`NotFittedError` unless ``estimator`` carries ``attribute``."""
    if getattr(estimator, attribute, None) is None:
        raise NotFittedError(
            f"{type(estimator).__name__} is not fitted yet; call fit() first"
        )


def clone(estimator: "BaseClassifier") -> "BaseClassifier":
    """Return an unfitted copy of ``estimator`` with identical hyperparameters."""
    return type(estimator)(**copy.deepcopy(estimator.get_params()))


class BaseClassifier:
    """Common machinery for every classifier in the catalogue.

    Subclasses implement ``_fit(X, y)`` and ``_predict_proba(X)``; label
    bookkeeping (mapping arbitrary integer labels to a contiguous range and
    back) is handled here so individual learners can assume labels are
    ``0..n_classes-1``.
    """

    def __init__(self) -> None:
        self.classes_: np.ndarray | None = None

    # -- hyperparameter protocol -------------------------------------------------
    def get_params(self) -> dict[str, Any]:
        """Return the constructor keyword arguments of this estimator."""
        signature = inspect.signature(type(self).__init__)
        params = {}
        for name, parameter in signature.parameters.items():
            if name == "self" or parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                continue
            params[name] = getattr(self, name)
        return params

    def set_params(self, **params: Any) -> "BaseClassifier":
        """Set hyperparameters in place and return ``self``."""
        valid = self.get_params()
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid parameters are {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    # -- fit / predict protocol --------------------------------------------------
    def fit(self, X: Any, y: Any) -> "BaseClassifier":
        X, y = check_X_y(X, y)
        self.classes_, y_encoded = np.unique(y, return_inverse=True)
        self.n_features_in_ = X.shape[1]
        self._fit(X, y_encoded.astype(np.int64))
        return self

    def predict_proba(self, X: Any) -> np.ndarray:
        check_is_fitted(self)
        X = check_array(X)
        proba = self._predict_proba(X)
        proba = np.asarray(proba, dtype=np.float64)
        # Guard against degenerate rows produced by numerical underflow.
        row_sums = proba.sum(axis=1, keepdims=True)
        row_sums[row_sums <= 0] = 1.0
        return proba / row_sums

    def predict(self, X: Any) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X: Any, y: Any) -> float:
        """Return the plain accuracy of ``predict(X)`` against ``y``."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))

    # -- subclass hooks ----------------------------------------------------------
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        raise NotImplementedError

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- helpers -----------------------------------------------------------------
    @property
    def n_classes_(self) -> int:
        check_is_fitted(self)
        return int(len(self.classes_))

    def _one_hot(self, labels: np.ndarray) -> np.ndarray:
        """One-hot encode internal labels (already 0..n_classes-1)."""
        out = np.zeros((labels.shape[0], self.n_classes_), dtype=np.float64)
        out[np.arange(labels.shape[0]), labels] = 1.0
        return out

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"
