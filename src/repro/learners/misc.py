"""Misc learners from Weka's ``misc`` and ``meta`` packages.

``HyperPipes`` and ``VFI`` are the two ``weka.classifiers.misc`` entries of
Table IV; ``ClassificationViaClustering`` and ``ClassificationViaRegression``
are the corresponding ``meta`` wrappers that route classification through an
unsupervised or regression model.
"""

from __future__ import annotations

import numpy as np

from .base import BaseClassifier

__all__ = [
    "HyperPipes",
    "VFI",
    "ClassificationViaClustering",
    "ClassificationViaRegression",
]


class HyperPipes(BaseClassifier):
    """Per-class bounding boxes; score = fraction of attributes inside the box."""

    def __init__(self) -> None:
        super().__init__()

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n_classes = len(self.classes_)
        n_features = X.shape[1]
        self.lower_ = np.zeros((n_classes, n_features))
        self.upper_ = np.zeros((n_classes, n_features))
        for k in range(n_classes):
            members = X[y == k]
            if len(members) == 0:
                members = X
            self.lower_[k] = members.min(axis=0)
            self.upper_[k] = members.max(axis=0)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        n_classes = len(self.classes_)
        scores = np.zeros((X.shape[0], n_classes))
        for k in range(n_classes):
            inside = (X >= self.lower_[k]) & (X <= self.upper_[k])
            scores[:, k] = inside.mean(axis=1)
        scores += 1e-6
        return scores / scores.sum(axis=1, keepdims=True)


class VFI(BaseClassifier):
    """Voting feature intervals: each attribute votes through per-class histograms."""

    def __init__(self, n_bins: int = 10) -> None:
        super().__init__()
        self.n_bins = n_bins

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.n_bins < 2:
            raise ValueError("n_bins must be >= 2")
        n_classes = len(self.classes_)
        n_features = X.shape[1]
        self.edges_: list[np.ndarray] = []
        self.votes_: list[np.ndarray] = []
        class_counts = np.bincount(y, minlength=n_classes).astype(np.float64)
        class_counts[class_counts == 0] = 1.0
        for j in range(n_features):
            edges = np.unique(
                np.percentile(X[:, j], np.linspace(0, 100, self.n_bins + 1)[1:-1])
            )
            bins = np.searchsorted(edges, X[:, j], side="right")
            table = np.zeros((len(edges) + 1, n_classes))
            for b, label in zip(bins, y):
                table[b, label] += 1.0
            # Normalise by class size so frequent classes do not dominate votes.
            table = table / class_counts[None, :]
            row_sums = table.sum(axis=1, keepdims=True)
            row_sums[row_sums == 0] = 1.0
            self.edges_.append(edges)
            self.votes_.append(table / row_sums)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        n_classes = len(self.classes_)
        scores = np.zeros((X.shape[0], n_classes))
        for j, (edges, table) in enumerate(zip(self.edges_, self.votes_)):
            bins = np.clip(np.searchsorted(edges, X[:, j], side="right"), 0, len(table) - 1)
            scores += table[bins]
        scores += 1e-6
        return scores / scores.sum(axis=1, keepdims=True)


class ClassificationViaClustering(BaseClassifier):
    """k-means clustering with clusters mapped to their majority class."""

    def __init__(self, n_clusters: int | None = None, random_state: int | None = None) -> None:
        super().__init__()
        self.n_clusters = n_clusters
        self.random_state = random_state

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.random_state)
        n_classes = len(self.classes_)
        k = int(self.n_clusters) if self.n_clusters else max(n_classes, 2)
        k = min(k, X.shape[0])
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        Xs = (X - self._mean) / self._scale
        centers = Xs[rng.choice(Xs.shape[0], size=k, replace=False)]
        for _ in range(25):
            d2 = ((Xs[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            assignment = d2.argmin(axis=1)
            new_centers = centers.copy()
            for j in range(k):
                members = Xs[assignment == j]
                if len(members):
                    new_centers[j] = members.mean(axis=0)
            if np.allclose(new_centers, centers):
                break
            centers = new_centers
        self.centers_ = centers
        self.cluster_distribution_ = np.zeros((k, n_classes))
        global_counts = np.bincount(y, minlength=n_classes).astype(np.float64)
        for j in range(k):
            members = y[assignment == j]
            if len(members):
                counts = np.bincount(members, minlength=n_classes).astype(np.float64)
            else:
                counts = global_counts
            self.cluster_distribution_[j] = counts / counts.sum()

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        Xs = (X - self._mean) / self._scale
        d2 = ((Xs[:, None, :] - self.centers_[None, :, :]) ** 2).sum(axis=2)
        return self.cluster_distribution_[d2.argmin(axis=1)]


class ClassificationViaRegression(BaseClassifier):
    """One-vs-rest ridge regression on class indicators (Weka meta wrapper)."""

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        self.alpha = alpha

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        Xs = np.hstack([(X - self._mean) / self._scale, np.ones((X.shape[0], 1))])
        n_classes = len(self.classes_)
        Y = np.zeros((X.shape[0], n_classes))
        Y[np.arange(X.shape[0]), y] = 1.0
        gram = Xs.T @ Xs + self.alpha * np.eye(Xs.shape[1])
        self.coef_ = np.linalg.solve(gram, Xs.T @ Y)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        Xs = np.hstack([(X - self._mean) / self._scale, np.ones((X.shape[0], 1))])
        scores = Xs @ self.coef_
        scores -= scores.max(axis=1, keepdims=True)
        proba = np.exp(scores)
        return proba / proba.sum(axis=1, keepdims=True)
