"""Decision-tree learners.

A single recursive tree engine (:class:`DecisionTreeClassifier`) supports the
splitting criteria, feature subsampling and depth/size controls needed to
express the Weka tree family referenced by the paper's catalogue (Table IV):
``J48`` (C4.5, gain-ratio), ``SimpleCart`` (Gini), ``REPTree`` (reduced-error
style: information gain + strong size limits), ``RandomTree`` (random feature
subsets per split), ``BFTree`` (best-first expansion approximated by a node
budget) and ``DecisionStump`` (depth 1).

The fitting and prediction inner loops run on the vectorized kernels of
:mod:`repro.learners.kernels`: per-feature stable sort orders are computed
once per fit (and shared across a whole forest) instead of re-sorting at
every node, every candidate threshold of a feature is scored in one
cumulative-bincount pass, and prediction walks the flattened tree arrays for
a whole matrix at a time.  Results are identical to the historical pure-Python
implementation (frozen in :mod:`repro.learners._reference` and pinned by
``tests/learners/test_kernel_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import kernels
from .base import BaseClassifier, check_is_fitted, export_labels

__all__ = [
    "DecisionTreeClassifier",
    "J48",
    "SimpleCart",
    "REPTree",
    "RandomTree",
    "BFTree",
    "DecisionStump",
]


@dataclass
class _Node:
    """A node of the fitted tree; leaves carry a class distribution."""

    prediction: np.ndarray
    feature: int | None = None
    threshold: float | None = None
    left: "_Node | None" = None
    right: "_Node | None" = None
    n_samples: int = 0
    depth: int = 0
    impurity: float = 0.0
    children: list = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _class_distribution(y: np.ndarray, n_classes: int) -> np.ndarray:
    counts = np.bincount(y, minlength=n_classes).astype(np.float64)
    total = counts.sum()
    return counts / total if total > 0 else np.full(n_classes, 1.0 / n_classes)


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-np.sum(p * np.log2(p)))


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


class DecisionTreeClassifier(BaseClassifier):
    """CART/C4.5-style binary decision tree over numeric features.

    Parameters
    ----------
    criterion:
        ``"gini"``, ``"entropy"`` (information gain) or ``"gain_ratio"``.
    max_depth:
        Maximum tree depth; ``None`` means unbounded.
    min_samples_split / min_samples_leaf:
        Pre-pruning size thresholds.
    max_features:
        ``None`` (all), ``"sqrt"``, ``"log2"`` or an int — the number of
        candidate features examined at each split (RandomTree behaviour).
    max_nodes:
        Optional cap on the number of internal nodes (best-first style limit).
    min_impurity_decrease:
        Minimum impurity improvement required to accept a split.
    """

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        max_nodes: int | None = None,
        min_impurity_decrease: float = 0.0,
        random_state: int | None = None,
    ) -> None:
        super().__init__()
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.max_nodes = max_nodes
        self.min_impurity_decrease = min_impurity_decrease
        self.random_state = random_state

    # -- fitting -----------------------------------------------------------------
    def _impurity(self, counts: np.ndarray) -> float:
        if self.criterion == "gini":
            return _gini(counts)
        return _entropy(counts)

    def _n_candidate_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if self.max_features == "log2":
            return max(1, int(np.log2(n_features)) if n_features > 1 else 1)
        return max(1, min(int(self.max_features), n_features))

    def _best_split(
        self,
        X: np.ndarray,
        y: np.ndarray,
        orders: list[np.ndarray],
        rng: np.random.Generator,
    ) -> tuple[int, float, float] | None:
        """Return ``(feature, threshold, impurity_decrease)`` or ``None``.

        ``orders`` holds the node's sample ids (into ``X``/``y``) in stable
        sorted order, one array per feature, so the kernel scores every
        candidate threshold of a feature in one cumulative-bincount pass and
        no ``argsort`` happens here.  Feature candidates are drawn with the
        same RNG calls as the historical per-node loop; ties keep the
        earliest feature and earliest position, as before.
        """
        n_features = X.shape[1]
        parent_counts = np.bincount(y[orders[0]], minlength=self._n_classes)
        parent_impurity = self._impurity(parent_counts)
        k = self._n_candidate_features(n_features)
        candidates = (
            np.arange(n_features)
            if k >= n_features
            else rng.choice(n_features, size=k, replace=False)
        )
        best: tuple[int, float, float] | None = None
        best_score = -np.inf
        for feature in candidates:
            order = orders[feature]
            result = kernels.best_split_classification(
                X[order, feature],
                y[order],
                parent_counts,
                parent_impurity,
                self.criterion,
                int(self.min_samples_leaf),
                self.min_impurity_decrease,
            )
            if result is None:
                continue
            score, threshold, decrease = result
            if score > best_score:
                best_score = score
                best = (int(feature), threshold, decrease)
        return best

    def _build(
        self,
        X: np.ndarray,
        y: np.ndarray,
        orders: list[np.ndarray],
        depth: int,
        rng: np.random.Generator,
    ) -> _Node:
        node_y = y[orders[0]]
        counts = np.bincount(node_y, minlength=self._n_classes)
        node = _Node(
            prediction=_class_distribution(node_y, self._n_classes),
            n_samples=len(node_y),
            depth=depth,
            impurity=self._impurity(counts),
        )
        if (
            np.count_nonzero(counts) <= 1
            or len(node_y) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or (self.max_nodes is not None and self._n_internal >= self.max_nodes)
        ):
            return node
        split = self._best_split(X, y, orders, rng)
        if split is None:
            return node
        feature, threshold, _ = split
        # Base-level membership mask of the left child; node orders only hold
        # node members, so filtering by it partitions exactly this node.
        mask = X[:, feature] <= threshold
        node_mask = mask[orders[0]]
        if node_mask.all() or not node_mask.any():
            return node
        self._n_internal += 1
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X, y, kernels.filter_orders(orders, mask), depth + 1, rng)
        node.right = self._build(X, y, kernels.filter_orders(orders, ~mask), depth + 1, rng)
        return node

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._n_classes = int(len(self.classes_))
        self._n_internal = 0
        rng = np.random.default_rng(self.random_state)
        # Per-feature stable sort orders, computed once per fit and filtered
        # down the recursion — no node ever sorts again.
        orders = kernels.feature_orders(X)
        self.tree_ = self._build(X, y, orders, depth=0, rng=rng)
        self._flat = kernels.flatten_tree(self.tree_, self._n_classes)

    def _fit_from_base(
        self,
        X: np.ndarray,
        y: np.ndarray,
        counts: np.ndarray,
        base_orders: list[np.ndarray],
        n_classes: int,
    ) -> "DecisionTreeClassifier":
        """Forest fast path: fit on a bootstrap multiset of pre-validated rows.

        ``X``/``y`` are the forest's already-encoded training arrays;
        ``counts[i]`` is how many times base row ``i`` appears in this
        member's sample, and ``base_orders`` are the forest-wide sort orders
        computed once per ensemble fit.  The forest guarantees every class
        appears in the sample, so the member's label encoding is the
        identity — exactly what refitting on ``X[idx]`` used to produce.
        """
        self.classes_ = np.arange(n_classes, dtype=np.int64)
        self.n_features_in_ = X.shape[1]
        self._n_classes = int(n_classes)
        self._n_internal = 0
        rng = np.random.default_rng(self.random_state)
        if counts.min() == 1 and counts.max() == 1:
            orders = list(base_orders)
        else:
            orders = kernels.expand_orders(base_orders, counts)
        self.tree_ = self._build(X, y, orders, depth=0, rng=rng)
        self._flat = kernels.flatten_tree(self.tree_, self._n_classes)
        return self

    # -- prediction ----------------------------------------------------------------
    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        leaves = kernels.flat_predict_indices(self._flat, X)
        return self._flat.prediction[leaves]

    def export_params(self) -> dict:
        check_is_fitted(self)

        def _export_node(node: _Node) -> dict:
            if node.is_leaf:
                return {"prediction": node.prediction.tolist()}
            return {
                "prediction": node.prediction.tolist(),
                "feature": int(node.feature),
                "threshold": float(node.threshold),
                "left": _export_node(node.left),
                "right": _export_node(node.right),
            }

        return {
            "kind": "tree",
            "tree": _export_node(self.tree_),
            "classes": export_labels(self.classes_),
        }

    # -- introspection ---------------------------------------------------------------
    def depth(self) -> int:
        """Return the depth of the fitted tree (0 for a single leaf)."""

        def _depth(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self.tree_)

    def n_leaves(self) -> int:
        """Return the number of leaves of the fitted tree."""

        def _count(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return _count(node.left) + _count(node.right)

        return _count(self.tree_)


class J48(DecisionTreeClassifier):
    """C4.5-style tree: gain-ratio splits with a confidence-like leaf floor."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_leaf: int = 2,
        min_samples_split: int = 4,
        min_impurity_decrease: float = 0.0,
        random_state: int | None = None,
    ) -> None:
        super().__init__(
            criterion="gain_ratio",
            max_depth=max_depth,
            min_samples_split=min_samples_split,
            min_samples_leaf=min_samples_leaf,
            min_impurity_decrease=min_impurity_decrease,
            random_state=random_state,
        )


class SimpleCart(DecisionTreeClassifier):
    """CART-style tree: Gini splits, moderate pre-pruning."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_leaf: int = 2,
        min_samples_split: int = 4,
        min_impurity_decrease: float = 0.0,
        random_state: int | None = None,
    ) -> None:
        super().__init__(
            criterion="gini",
            max_depth=max_depth,
            min_samples_split=min_samples_split,
            min_samples_leaf=min_samples_leaf,
            min_impurity_decrease=min_impurity_decrease,
            random_state=random_state,
        )


class REPTree(DecisionTreeClassifier):
    """Reduced-error-pruning style tree: aggressive size limits for low variance."""

    def __init__(
        self,
        max_depth: int | None = 8,
        min_samples_leaf: int = 4,
        min_samples_split: int = 8,
        min_impurity_decrease: float = 1e-4,
        random_state: int | None = None,
    ) -> None:
        super().__init__(
            criterion="entropy",
            max_depth=max_depth,
            min_samples_split=min_samples_split,
            min_samples_leaf=min_samples_leaf,
            min_impurity_decrease=min_impurity_decrease,
            random_state=random_state,
        )


class RandomTree(DecisionTreeClassifier):
    """Unpruned tree that examines a random feature subset at each split."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        random_state: int | None = None,
    ) -> None:
        super().__init__(
            criterion="entropy",
            max_depth=max_depth,
            min_samples_split=2,
            min_samples_leaf=min_samples_leaf,
            max_features=max_features,
            random_state=random_state,
        )


class BFTree(DecisionTreeClassifier):
    """Best-first tree approximated with a cap on the number of internal nodes."""

    def __init__(
        self,
        max_nodes: int = 32,
        min_samples_leaf: int = 2,
        random_state: int | None = None,
    ) -> None:
        super().__init__(
            criterion="gini",
            max_nodes=max_nodes,
            min_samples_split=4,
            min_samples_leaf=min_samples_leaf,
            random_state=random_state,
        )


class DecisionStump(DecisionTreeClassifier):
    """Single-split decision stump (depth 1)."""

    def __init__(self, criterion: str = "entropy", random_state: int | None = None) -> None:
        super().__init__(
            criterion=criterion,
            max_depth=1,
            min_samples_split=2,
            min_samples_leaf=1,
            random_state=random_state,
        )
