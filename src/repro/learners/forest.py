"""Forest-style ensembles: RandomForest and ExtraTrees analogues."""

from __future__ import annotations

import numpy as np

from . import kernels
from .base import BaseClassifier, check_is_fitted, export_labels
from .tree import DecisionTreeClassifier, RandomTree

__all__ = ["RandomForest", "ExtraTrees"]


class RandomForest(BaseClassifier):
    """Bagged ensemble of :class:`RandomTree` learners with feature subsampling.

    Parameters mirror the knobs Weka's ``RandomForest`` exposes: number of
    trees, per-split feature count and maximum depth.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_features: int | str | None = "sqrt",
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        bootstrap: bool = True,
        random_state: int | None = None,
    ) -> None:
        super().__init__()
        self.n_estimators = n_estimators
        self.max_features = max_features
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.bootstrap = bootstrap
        self.random_state = random_state

    def _make_tree(self, seed: int) -> DecisionTreeClassifier:
        return RandomTree(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=seed,
        )

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        rng = np.random.default_rng(self.random_state)
        n = X.shape[0]
        # The per-feature stable sort orders are computed ONCE per forest and
        # shared by every member: each tree expands them by its bootstrap
        # multiplicities instead of re-sorting its sampled matrix at every
        # node.  Split scores only read cumulative label counts at value-run
        # boundaries, which are permutation invariant, so the fitted members
        # are identical to refitting on the materialised ``X[idx]``.
        base_orders = kernels.feature_orders(X)
        self.estimators_: list[DecisionTreeClassifier] = []
        for _ in range(int(self.n_estimators)):
            seed = int(rng.integers(0, 2**31 - 1))
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
                # Guarantee every class appears in the bootstrap sample so the
                # member tree predicts over the full label set.
                for label in range(len(self.classes_)):
                    if not np.any(y[idx] == label):
                        members = np.flatnonzero(y == label)
                        idx[rng.integers(0, n)] = members[rng.integers(0, len(members))]
            else:
                idx = np.arange(n)
            tree = self._make_tree(seed)
            tree._fit_from_base(
                X, y, np.bincount(idx, minlength=n), base_orders, len(self.classes_)
            )
            self.estimators_.append(tree)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        votes = np.zeros((X.shape[0], len(self.classes_)))
        for tree in self.estimators_:
            proba = tree.predict_proba(X)
            for local_index, label in enumerate(tree.classes_):
                votes[:, int(label)] += proba[:, local_index]
        return votes / len(self.estimators_)

    def export_params(self) -> dict:
        check_is_fitted(self)
        trees = []
        for tree in self.estimators_:
            member = tree.export_params()
            # Member trees were fitted on already-encoded labels; their local
            # classes_ are the vote indices into the forest's outer classes.
            trees.append(
                {
                    "tree": member["tree"],
                    "classes": [int(label) for label in tree.classes_],
                }
            )
        return {
            "kind": "forest",
            "trees": trees,
            "classes": export_labels(self.classes_),
        }


class ExtraTrees(RandomForest):
    """Extremely-randomised variant: no bootstrap, deeper random trees.

    Stands in for the "Extremely randomized trees" comparisons cited by the
    paper's corpus (Geurts et al.).
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_features: int | str | None = "sqrt",
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        random_state: int | None = None,
    ) -> None:
        super().__init__(
            n_estimators=n_estimators,
            max_features=max_features,
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            bootstrap=False,
            random_state=random_state,
        )
