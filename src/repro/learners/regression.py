"""Regression learners — the regressor half of the catalogue.

The paper's Table IV catalogue is classification-only; these learners open the
second task type.  Like the classifiers, everything is implemented from
scratch on numpy (the environment has no scikit-learn) behind the same small
estimator protocol: ``fit(X, y)`` / ``predict(X)`` / ``get_params()`` /
``set_params()``, so :func:`repro.learners.base.clone` and the
cross-validation machinery work unchanged.

The family mirrors the regressor sets used by the CASH literature for
regression targets: regularised linear models (ridge/lasso), a support-vector
regressor, instance-based k-NN, variance-reduction trees with their bagged
(random forest / extra trees) and boosted (gradient boosting) ensembles, an
MLP (reused from :mod:`repro.learners.neural`), and a mean/median
:class:`DummyRegressor` playing ZeroR's role as the sanity-check floor.
"""

from __future__ import annotations

import inspect
from typing import Any

import numpy as np

from . import kernels
from .base import NotFittedError, check_array
from .metrics import r2_score

__all__ = [
    "BaseRegressor",
    "check_X_y_regression",
    "DummyRegressor",
    "RidgeRegressor",
    "LassoRegressor",
    "SVR",
    "KNeighborsRegressor",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "ExtraTreesRegressor",
    "GradientBoostingRegressor",
]


def check_X_y_regression(X: Any, y: Any) -> tuple[np.ndarray, np.ndarray]:
    """Validate a regression training pair: 2-D float X, 1-D finite float y."""
    X = check_array(X)
    y = np.asarray(y, dtype=np.float64)
    if y.ndim != 1:
        raise ValueError(f"expected a 1-D target vector, got shape {y.shape}")
    if y.shape[0] != X.shape[0]:
        raise ValueError(
            f"X and y have inconsistent lengths: {X.shape[0]} != {y.shape[0]}"
        )
    if not np.all(np.isfinite(y)):
        raise ValueError("y contains NaN or infinite values")
    return X, y


class BaseRegressor:
    """Common machinery for every regressor in the catalogue.

    Subclasses implement ``_fit(X, y)`` and ``_predict(X)``; input validation
    and the hyperparameter protocol are handled here, mirroring
    :class:`~repro.learners.base.BaseClassifier` so both estimator kinds are
    interchangeable to the HPO and execution layers.
    """

    def __init__(self) -> None:
        self.n_features_in_: int | None = None

    # -- hyperparameter protocol -------------------------------------------------
    def get_params(self) -> dict[str, Any]:
        """Return the constructor keyword arguments of this estimator."""
        signature = inspect.signature(type(self).__init__)
        params = {}
        for name, parameter in signature.parameters.items():
            if name == "self" or parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                continue
            params[name] = getattr(self, name)
        return params

    def set_params(self, **params: Any) -> "BaseRegressor":
        """Set hyperparameters in place and return ``self``."""
        valid = self.get_params()
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid parameters are {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    # -- fit / predict protocol --------------------------------------------------
    def fit(self, X: Any, y: Any) -> "BaseRegressor":
        X, y = check_X_y_regression(X, y)
        self.n_features_in_ = X.shape[1]
        self._fit(X, y)
        return self

    def predict(self, X: Any) -> np.ndarray:
        if self.n_features_in_ is None:
            raise NotFittedError(
                f"{type(self).__name__} is not fitted yet; call fit() first"
            )
        X = check_array(X)
        return np.asarray(self._predict(X), dtype=np.float64).reshape(-1)

    def score(self, X: Any, y: Any) -> float:
        """Return the R² of ``predict(X)`` against ``y``."""
        return r2_score(np.asarray(y, dtype=np.float64), self.predict(X))

    # -- subclass hooks ----------------------------------------------------------
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        raise NotImplementedError

    def _predict(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"


class DummyRegressor(BaseRegressor):
    """Predict the training mean (or median) — the ZeroR of regression."""

    def __init__(self, strategy: str = "mean") -> None:
        super().__init__()
        self.strategy = strategy

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.strategy not in ("mean", "median"):
            raise ValueError(f"unknown strategy {self.strategy!r}; use 'mean' or 'median'")
        self.constant_ = float(np.median(y) if self.strategy == "median" else y.mean())

    def _predict(self, X: np.ndarray) -> np.ndarray:
        return np.full(X.shape[0], self.constant_)


class _StandardizedLinear(BaseRegressor):
    """Shared standardise-then-solve scaffolding for the linear regressors."""

    def _standardize_fit(self, X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        self._x_mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self._x_scale = scale
        self._y_mean = float(y.mean())
        return (X - self._x_mean) / self._x_scale, y - self._y_mean

    def _standardize(self, X: np.ndarray) -> np.ndarray:
        return (X - self._x_mean) / self._x_scale

    def _predict(self, X: np.ndarray) -> np.ndarray:
        return self._standardize(X) @ self.coef_ + self._y_mean


class RidgeRegressor(_StandardizedLinear):
    """L2-regularised linear regression solved in closed form."""

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        self.alpha = alpha

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.alpha < 0:
            raise ValueError("alpha must be >= 0")
        Xs, yc = self._standardize_fit(X, y)
        n_features = Xs.shape[1]
        gram = Xs.T @ Xs + float(self.alpha) * np.eye(n_features)
        self.coef_ = np.linalg.solve(gram + 1e-10 * np.eye(n_features), Xs.T @ yc)


class LassoRegressor(_StandardizedLinear):
    """L1-regularised linear regression trained by cyclic coordinate descent."""

    def __init__(self, alpha: float = 0.1, max_iter: int = 200, tol: float = 1e-5) -> None:
        super().__init__()
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.alpha < 0:
            raise ValueError("alpha must be >= 0")
        Xs, yc = self._standardize_fit(X, y)
        n_samples, n_features = Xs.shape
        threshold = float(self.alpha) * n_samples
        col_norms = (Xs**2).sum(axis=0)
        col_norms[col_norms == 0] = 1.0
        coef = np.zeros(n_features)
        residual = yc.copy()
        for _ in range(int(self.max_iter)):
            max_delta = 0.0
            for j in range(n_features):
                old = coef[j]
                rho = Xs[:, j] @ residual + old * col_norms[j]
                new = np.sign(rho) * max(abs(rho) - threshold, 0.0) / col_norms[j]
                if new != old:
                    residual += Xs[:, j] * (old - new)
                    coef[j] = new
                    max_delta = max(max_delta, abs(new - old))
            if max_delta < self.tol:
                break
        self.coef_ = coef


class SVR(_StandardizedLinear):
    """Linear support-vector regression (epsilon-insensitive loss, subgradient).

    Minimises ``1/(2C) ||w||² + mean(max(0, |Xw - y| - epsilon))`` by averaged
    subgradient descent on standardised inputs — the linear-kernel member of
    the SVR family, adequate at the catalogue's dataset scales.
    """

    def __init__(
        self,
        C: float = 1.0,
        epsilon: float = 0.1,
        max_iter: int = 200,
        learning_rate: float = 0.05,
    ) -> None:
        super().__init__()
        self.C = C
        self.epsilon = epsilon
        self.max_iter = max_iter
        self.learning_rate = learning_rate

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.C <= 0:
            raise ValueError("C must be positive")
        if self.epsilon < 0:
            raise ValueError("epsilon must be >= 0")
        Xs, yc = self._standardize_fit(X, y)
        n_samples, n_features = Xs.shape
        y_scale = max(float(np.abs(yc).max()), 1e-12)
        ys = yc / y_scale
        eps = float(self.epsilon) / y_scale
        l2 = 1.0 / (float(self.C) * n_samples)
        w = np.zeros(n_features)
        averaged = np.zeros(n_features)
        for iteration in range(int(self.max_iter)):
            errors = Xs @ w - ys
            outside = np.abs(errors) > eps
            grad = Xs[outside].T @ np.sign(errors[outside]) / n_samples + l2 * w
            w -= self.learning_rate / np.sqrt(1.0 + iteration) * grad
            averaged += w
        self.coef_ = averaged / max(1, int(self.max_iter)) * y_scale


class KNeighborsRegressor(BaseRegressor):
    """k-nearest-neighbours regression with uniform or distance weighting."""

    def __init__(self, n_neighbors: int = 5, weighting: str = "uniform", p: int = 2) -> None:
        super().__init__()
        self.n_neighbors = n_neighbors
        self.weighting = weighting
        self.p = p

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if self.weighting not in ("uniform", "distance"):
            raise ValueError(f"unknown weighting {self.weighting!r}")
        if self.p not in (1, 2):
            raise ValueError("p must be 1 (manhattan) or 2 (euclidean)")
        self._X = X
        self._y = y

    def _predict(self, X: np.ndarray) -> np.ndarray:
        k = min(int(self.n_neighbors), self._X.shape[0])
        out = np.empty(X.shape[0])
        # Chunks bound the (rows, train, d) broadcast diff tensor; the
        # per-row arithmetic is elementwise, so chunking is value-neutral.
        cols = self._X.shape[0] * self._X.shape[1]
        for rows in kernels.query_chunks(X.shape[0], cols):
            diff = X[rows, None, :] - self._X[None, :, :]
            if self.p == 1:
                distances = np.abs(diff).sum(axis=2)
            else:
                distances = np.sqrt((diff**2).sum(axis=2))
            neighbor_idx = np.argpartition(distances, k - 1, axis=1)[:, :k]
            vals = self._y[neighbor_idx]
            if self.weighting == "distance":
                weights = 1.0 / (np.take_along_axis(distances, neighbor_idx, axis=1) + 1e-9)
                out[rows] = (vals * weights).sum(axis=1) / weights.sum(axis=1)
            else:
                out[rows] = vals.mean(axis=1)
        return out


class _RegressionNode:
    """A node of a fitted regression tree; leaves carry the mean target."""

    __slots__ = ("prediction", "feature", "threshold", "left", "right")

    def __init__(self, prediction: float) -> None:
        self.prediction = prediction
        self.feature: int | None = None
        self.threshold: float | None = None
        self.left: "_RegressionNode | None" = None
        self.right: "_RegressionNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class DecisionTreeRegressor(BaseRegressor):
    """CART-style binary regression tree splitting on variance reduction.

    ``max_features`` follows the classifier tree's convention (``None``,
    ``"sqrt"``, ``"log2"`` or an int) so the forest ensembles can subsample
    candidate features per split.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        random_state: int | None = None,
    ) -> None:
        super().__init__()
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    def _n_candidate_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if self.max_features == "log2":
            return max(1, int(np.log2(n_features)) if n_features > 1 else 1)
        return max(1, min(int(self.max_features), n_features))

    def _best_split(
        self,
        X: np.ndarray,
        y: np.ndarray,
        idx: np.ndarray,
        orders: list[np.ndarray],
        rng: np.random.Generator,
    ) -> tuple[int, float] | None:
        n_features = X.shape[1]
        min_leaf = max(1, int(self.min_samples_leaf))
        k = self._n_candidate_features(n_features)
        candidates = (
            np.arange(n_features)
            if k >= n_features
            else rng.choice(n_features, size=k, replace=False)
        )
        best: tuple[int, float] | None = None
        # ``idx`` holds the node's members in base-row order — the same order
        # the historical implementation reduced over, so the SSE floor (and
        # every prefix sum below, which runs in stable sorted order) is
        # bit-identical to the per-node-sort code path.
        node_y = y[idx]
        best_sse = float(np.sum((node_y - node_y.mean()) ** 2)) - 1e-12
        for j in candidates:
            order = orders[j]
            result = kernels.best_split_regression(
                X[order, j], y[order], min_leaf, best_sse
            )
            if result is None:
                continue
            best_sse, threshold = result
            best = (int(j), threshold)
        return best

    def _grow(
        self,
        X: np.ndarray,
        y: np.ndarray,
        idx: np.ndarray,
        orders: list[np.ndarray],
        depth: int,
        rng: np.random.Generator,
    ) -> _RegressionNode:
        node_y = y[idx]
        node = _RegressionNode(float(node_y.mean()))
        if (
            (self.max_depth is not None and depth >= int(self.max_depth))
            or len(node_y) < max(2, int(self.min_samples_split))
            or np.all(node_y == node_y[0])
        ):
            return node
        split = self._best_split(X, y, idx, orders, rng)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node_mask = mask[idx]
        if not node_mask.any() or node_mask.all():
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(
            X, y, idx[node_mask], kernels.filter_orders(orders, mask), depth + 1, rng
        )
        node.right = self._grow(
            X, y, idx[~node_mask], kernels.filter_orders(orders, ~mask), depth + 1, rng
        )
        return node

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.random_state)
        # Per-feature stable sort orders, computed once per fit and filtered
        # down the recursion — no node ever sorts again.
        orders = kernels.feature_orders(X)
        idx = np.arange(X.shape[0], dtype=np.int64)
        self.root_ = self._grow(X, y, idx, orders, depth=0, rng=rng)
        self._flat = kernels.flatten_tree(self.root_, 1)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        leaves = kernels.flat_predict_indices(self._flat, X)
        return self._flat.prediction[leaves, 0]


class RandomForestRegressor(BaseRegressor):
    """Bagged ensemble of feature-subsampled regression trees."""

    def __init__(
        self,
        n_estimators: int = 50,
        max_features: int | str | None = "sqrt",
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        bootstrap: bool = True,
        random_state: int | None = None,
    ) -> None:
        super().__init__()
        self.n_estimators = n_estimators
        self.max_features = max_features
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.bootstrap = bootstrap
        self.random_state = random_state

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        rng = np.random.default_rng(self.random_state)
        n = X.shape[0]
        self.estimators_: list[DecisionTreeRegressor] = []
        for _ in range(int(self.n_estimators)):
            seed = int(rng.integers(0, 2**31 - 1))
            idx = rng.integers(0, n, size=n) if self.bootstrap else np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=seed,
            )
            tree.fit(X[idx], y[idx])
            self.estimators_.append(tree)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        predictions = np.stack([tree.predict(X) for tree in self.estimators_])
        return predictions.mean(axis=0)


class ExtraTreesRegressor(RandomForestRegressor):
    """Extremely-randomised variant: no bootstrap, full-sample random trees."""

    def __init__(
        self,
        n_estimators: int = 50,
        max_features: int | str | None = "sqrt",
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        random_state: int | None = None,
    ) -> None:
        super().__init__(
            n_estimators=n_estimators,
            max_features=max_features,
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            bootstrap=False,
            random_state=random_state,
        )


class GradientBoostingRegressor(BaseRegressor):
    """Least-squares gradient boosting over shallow regression trees."""

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        subsample: float = 1.0,
        random_state: int | None = None,
    ) -> None:
        super().__init__()
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.random_state = random_state

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        rng = np.random.default_rng(self.random_state)
        n = X.shape[0]
        self.init_ = float(y.mean())
        self.estimators_: list[DecisionTreeRegressor] = []
        residual = y - self.init_
        for _ in range(int(self.n_estimators)):
            seed = int(rng.integers(0, 2**31 - 1))
            if self.subsample < 1.0:
                size = max(2, int(round(self.subsample * n)))
                idx = rng.choice(n, size=size, replace=False)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=max(1, int(self.max_depth)), random_state=seed
            )
            tree.fit(X[idx], residual[idx])
            residual -= self.learning_rate * tree.predict(X)
            self.estimators_.append(tree)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        out = np.full(X.shape[0], self.init_)
        for tree in self.estimators_:
            out += self.learning_rate * tree.predict(X)
        return out
