"""Evaluation metrics used across the reproduction.

The paper evaluates classifiers with k-fold cross-validation accuracy and the
architecture-search step with mean squared error; the additional metrics here
(F1, log-loss, confusion matrix, balanced accuracy) support the wider test and
benchmark suite.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy_score",
    "error_rate",
    "balanced_accuracy_score",
    "confusion_matrix",
    "precision_recall_f1",
    "f1_score",
    "log_loss",
    "mean_squared_error",
    "mean_absolute_error",
    "r2_score",
]


def _check_pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape[0] != y_pred.shape[0]:
        raise ValueError(
            f"y_true and y_pred have different lengths: "
            f"{y_true.shape[0]} != {y_pred.shape[0]}"
        )
    if y_true.shape[0] == 0:
        raise ValueError("empty label arrays")
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly matching labels."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def error_rate(y_true, y_pred) -> float:
    """1 - accuracy."""
    return 1.0 - accuracy_score(y_true, y_pred)


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Return the ``(n_labels, n_labels)`` confusion matrix (rows = truth)."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        if t in index and p in index:
            matrix[index[t], index[p]] += 1
    return matrix


def balanced_accuracy_score(y_true, y_pred) -> float:
    """Mean per-class recall; robust to class imbalance."""
    matrix = confusion_matrix(y_true, y_pred)
    support = matrix.sum(axis=1)
    recalls = np.divide(
        np.diag(matrix), support, out=np.zeros(len(matrix)), where=support > 0
    )
    present = support > 0
    if not np.any(present):
        return 0.0
    return float(recalls[present].mean())


def precision_recall_f1(y_true, y_pred, average: str = "macro") -> tuple[float, float, float]:
    """Return (precision, recall, f1) aggregated with macro or micro averaging."""
    if average not in ("macro", "micro"):
        raise ValueError(f"unknown average {average!r}; use 'macro' or 'micro'")
    matrix = confusion_matrix(y_true, y_pred)
    tp = np.diag(matrix).astype(np.float64)
    fp = matrix.sum(axis=0) - tp
    fn = matrix.sum(axis=1) - tp
    if average == "micro":
        tp_sum, fp_sum, fn_sum = tp.sum(), fp.sum(), fn.sum()
        precision = tp_sum / (tp_sum + fp_sum) if tp_sum + fp_sum > 0 else 0.0
        recall = tp_sum / (tp_sum + fn_sum) if tp_sum + fn_sum > 0 else 0.0
    else:
        with np.errstate(divide="ignore", invalid="ignore"):
            per_precision = np.where(tp + fp > 0, tp / (tp + fp), 0.0)
            per_recall = np.where(tp + fn > 0, tp / (tp + fn), 0.0)
        precision = float(per_precision.mean())
        recall = float(per_recall.mean())
    f1 = 2 * precision * recall / (precision + recall) if precision + recall > 0 else 0.0
    return float(precision), float(recall), float(f1)


def f1_score(y_true, y_pred, average: str = "macro") -> float:
    """Macro- or micro-averaged F1."""
    return precision_recall_f1(y_true, y_pred, average=average)[2]


def log_loss(y_true, proba, labels=None, eps: float = 1e-15) -> float:
    """Cross-entropy between integer labels and a probability matrix."""
    y_true = np.asarray(y_true)
    proba = np.asarray(proba, dtype=np.float64)
    if labels is None:
        labels = np.unique(y_true)
    labels = np.asarray(labels)
    if proba.ndim != 2 or proba.shape[1] != len(labels):
        raise ValueError(
            f"proba has shape {proba.shape}, expected (n_samples, {len(labels)})"
        )
    index = {label: i for i, label in enumerate(labels.tolist())}
    rows = np.array([index[label] for label in y_true.tolist()])
    clipped = np.clip(proba, eps, 1.0)
    clipped = clipped / clipped.sum(axis=1, keepdims=True)
    return float(-np.mean(np.log(clipped[np.arange(len(rows)), rows])))


def mean_squared_error(y_true, y_pred) -> float:
    """Mean squared error; accepts 1-D or 2-D targets."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    return float(np.mean((y_true - y_pred) ** 2))


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean absolute error; accepts 1-D or 2-D targets."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    residual = np.sum((y_true - y_pred) ** 2)
    total = np.sum((y_true - y_true.mean()) ** 2)
    if total == 0:
        return 0.0 if residual > 0 else 1.0
    return float(1.0 - residual / total)
