"""Evaluation metrics used across the reproduction.

The paper evaluates classifiers with k-fold cross-validation accuracy and the
architecture-search step with mean squared error; the additional metrics here
(F1, log-loss, confusion matrix, balanced accuracy) support the wider test and
benchmark suite.  Regression workloads score with R² / RMSE / MAE through the
:class:`Scorer` wrapper, which orients every metric as *greater is better* so
the HPO layer can maximise uniformly regardless of the underlying metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "accuracy_score",
    "error_rate",
    "balanced_accuracy_score",
    "confusion_matrix",
    "precision_recall_f1",
    "f1_score",
    "log_loss",
    "mean_squared_error",
    "mean_absolute_error",
    "root_mean_squared_error",
    "r2_score",
    "Scorer",
    "SCORERS",
    "resolve_scorer",
    "default_metric_for_task",
]


def _check_pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape[0] != y_pred.shape[0]:
        raise ValueError(
            f"y_true and y_pred have different lengths: "
            f"{y_true.shape[0]} != {y_pred.shape[0]}"
        )
    if y_true.shape[0] == 0:
        raise ValueError("empty label arrays")
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly matching labels."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def error_rate(y_true, y_pred) -> float:
    """1 - accuracy."""
    return 1.0 - accuracy_score(y_true, y_pred)


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Return the ``(n_labels, n_labels)`` confusion matrix (rows = truth)."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        if t in index and p in index:
            matrix[index[t], index[p]] += 1
    return matrix


def balanced_accuracy_score(y_true, y_pred) -> float:
    """Mean per-class recall; robust to class imbalance."""
    matrix = confusion_matrix(y_true, y_pred)
    support = matrix.sum(axis=1)
    recalls = np.divide(
        np.diag(matrix), support, out=np.zeros(len(matrix)), where=support > 0
    )
    present = support > 0
    if not np.any(present):
        return 0.0
    return float(recalls[present].mean())


def precision_recall_f1(y_true, y_pred, average: str = "macro") -> tuple[float, float, float]:
    """Return (precision, recall, f1) aggregated with macro or micro averaging."""
    if average not in ("macro", "micro"):
        raise ValueError(f"unknown average {average!r}; use 'macro' or 'micro'")
    matrix = confusion_matrix(y_true, y_pred)
    tp = np.diag(matrix).astype(np.float64)
    fp = matrix.sum(axis=0) - tp
    fn = matrix.sum(axis=1) - tp
    if average == "micro":
        tp_sum, fp_sum, fn_sum = tp.sum(), fp.sum(), fn.sum()
        precision = tp_sum / (tp_sum + fp_sum) if tp_sum + fp_sum > 0 else 0.0
        recall = tp_sum / (tp_sum + fn_sum) if tp_sum + fn_sum > 0 else 0.0
    else:
        with np.errstate(divide="ignore", invalid="ignore"):
            per_precision = np.where(tp + fp > 0, tp / (tp + fp), 0.0)
            per_recall = np.where(tp + fn > 0, tp / (tp + fn), 0.0)
        precision = float(per_precision.mean())
        recall = float(per_recall.mean())
    f1 = 2 * precision * recall / (precision + recall) if precision + recall > 0 else 0.0
    return float(precision), float(recall), float(f1)


def f1_score(y_true, y_pred, average: str = "macro") -> float:
    """Macro- or micro-averaged F1."""
    return precision_recall_f1(y_true, y_pred, average=average)[2]


def log_loss(y_true, proba, labels=None, eps: float = 1e-15) -> float:
    """Cross-entropy between integer labels and a probability matrix."""
    y_true = np.asarray(y_true)
    proba = np.asarray(proba, dtype=np.float64)
    if labels is None:
        labels = np.unique(y_true)
    labels = np.asarray(labels)
    if proba.ndim != 2 or proba.shape[1] != len(labels):
        raise ValueError(
            f"proba has shape {proba.shape}, expected (n_samples, {len(labels)})"
        )
    index = {label: i for i, label in enumerate(labels.tolist())}
    rows = np.array([index[label] for label in y_true.tolist()])
    clipped = np.clip(proba, eps, 1.0)
    clipped = clipped / clipped.sum(axis=1, keepdims=True)
    return float(-np.mean(np.log(clipped[np.arange(len(rows)), rows])))


def mean_squared_error(y_true, y_pred) -> float:
    """Mean squared error; accepts 1-D or 2-D targets."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    return float(np.mean((y_true - y_pred) ** 2))


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean absolute error; accepts 1-D or 2-D targets."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    return float(np.mean(np.abs(y_true - y_pred)))


def root_mean_squared_error(y_true, y_pred) -> float:
    """Square root of the mean squared error."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    residual = np.sum((y_true - y_pred) ** 2)
    total = np.sum((y_true - y_true.mean()) ** 2)
    if total == 0:
        return 0.0 if residual > 0 else 1.0
    return float(1.0 - residual / total)


# -- task-aware scoring ----------------------------------------------------------------


@dataclass(frozen=True)
class Scorer:
    """A metric oriented so that *greater is always better*.

    ``fn`` is the raw metric; when ``greater_is_better`` is ``False`` the
    scorer negates it, so every objective in the HPO layer stays a
    maximisation regardless of the metric chosen.  ``error_score`` is the
    oriented value a crashed fold receives: bounded metrics use their true
    worst (0.0 for accuracy, the seed convention); metrics unbounded below
    (R², negated RMSE/MAE) use a huge finite negative sentinel, so a
    crashing configuration ranks beneath every genuinely-fitted one yet
    never injects ``-inf`` into mean/table statistics.
    """

    name: str
    fn: Callable[..., float]
    greater_is_better: bool = True
    error_score: float = 0.0
    task: str = "classification"

    def __call__(self, y_true, y_pred) -> float:
        value = float(self.fn(y_true, y_pred))
        return value if self.greater_is_better else -value


# Finite "catastrophically bad" sentinel for unbounded-below error metrics:
# it must rank beneath any real negated RMSE/MAE while staying finite, so a
# crash can never score 0.0 (the *best* oriented error score) and never
# injects -inf/NaN into performance-table statistics.
_ERROR_METRIC_WORST = -1e12

SCORERS: dict[str, Scorer] = {
    "accuracy": Scorer("accuracy", accuracy_score, True, 0.0, "classification"),
    "balanced_accuracy": Scorer(
        "balanced_accuracy", balanced_accuracy_score, True, 0.0, "classification"
    ),
    "f1": Scorer("f1", f1_score, True, 0.0, "classification"),
    # R² is unbounded below (a diverging fit can legitimately score -10), so
    # its crash sentinel must sit beneath any real score, not at -1.0.
    "r2": Scorer("r2", r2_score, True, _ERROR_METRIC_WORST, "regression"),
    "rmse": Scorer(
        "rmse", root_mean_squared_error, False, _ERROR_METRIC_WORST, "regression"
    ),
    "mae": Scorer("mae", mean_absolute_error, False, _ERROR_METRIC_WORST, "regression"),
}

_TASK_DEFAULT_METRIC = {"classification": "accuracy", "regression": "r2"}


def _task_key(task: str) -> str:
    """Local task normalisation (this module cannot import datasets.task
    without a circular import: datasets.dataset pulls in the learners
    package)."""
    return str(getattr(task, "value", task)).strip().lower()


def default_metric_for_task(task: str) -> str:
    """The metric a task scores with when none is given (paper default: accuracy)."""
    key = _task_key(task)
    if key not in _TASK_DEFAULT_METRIC:
        raise ValueError(
            f"unknown task {task!r}; known: {sorted(_TASK_DEFAULT_METRIC)}"
        )
    return _TASK_DEFAULT_METRIC[key]


def resolve_scorer(metric: "str | Scorer | None", task: str = "classification") -> Scorer:
    """Look up a :class:`Scorer` by name, defaulting per task type.

    Name-resolved scorers must belong to the requested task — scoring
    label-encoded classes with RMSE (or continuous targets with accuracy)
    is numerically plausible but meaningless, so it raises here instead of
    producing silent nonsense.  A caller-constructed :class:`Scorer`
    instance is trusted as-is.
    """
    if isinstance(metric, Scorer):
        return metric
    name = metric if metric is not None else default_metric_for_task(task)
    if name not in SCORERS:
        raise ValueError(f"unknown metric {name!r}; known: {sorted(SCORERS)}")
    scorer = SCORERS[name]
    key = _task_key(task)
    if scorer.task != key:
        matching = sorted(s.name for s in SCORERS.values() if s.task == key)
        raise ValueError(
            f"metric {name!r} is a {scorer.task} metric and cannot score a "
            f"{key} task; metrics for {key}: {matching}"
        )
    return scorer
