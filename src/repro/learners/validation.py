"""Resampling helpers: train/test splits and (stratified) k-fold CV.

The paper scores every configuration with k-fold cross-validation accuracy
(10-fold in the evaluation, smaller k inside the GA loops), so the splitters
here are the workhorse of both the HPO layer and the benchmark harness.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

from .. import obs
from .base import BaseClassifier, clone
from .metrics import accuracy_score

__all__ = [
    "train_test_split",
    "KFold",
    "StratifiedKFold",
    "stratified_folds",
    "plain_folds",
    "cross_val_score",
    "cross_val_score_folds",
    "cross_val_accuracy",
]


def train_test_split(
    X,
    y,
    test_size: float = 0.25,
    random_state: int | None = None,
    stratify: bool = False,
):
    """Split ``(X, y)`` into train and test partitions.

    Returns ``X_train, X_test, y_train, y_test``.  With ``stratify=True`` the
    class proportions of ``y`` are approximately preserved in both partitions.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y have different lengths")
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    rng = np.random.default_rng(random_state)
    n = X.shape[0]
    if stratify:
        test_idx: list[int] = []
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            members = rng.permutation(members)
            take = max(1, int(round(test_size * len(members)))) if len(members) > 1 else 0
            test_idx.extend(members[:take].tolist())
        test_mask = np.zeros(n, dtype=bool)
        test_mask[test_idx] = True
        if not test_mask.any() or test_mask.all():
            # Degenerate stratification (e.g. every class a singleton): fall back.
            return train_test_split(X, y, test_size, random_state, stratify=False)
    else:
        permutation = rng.permutation(n)
        n_test = max(1, int(round(test_size * n)))
        n_test = min(n_test, n - 1)
        test_mask = np.zeros(n, dtype=bool)
        test_mask[permutation[:n_test]] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


class KFold:
    """Plain k-fold splitter yielding ``(train_idx, test_idx)`` pairs."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state: int | None = None):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y=None) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = np.asarray(X).shape[0]
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} samples into {self.n_splits} folds")
        indices = np.arange(n)
        if self.shuffle:
            indices = np.random.default_rng(self.random_state).permutation(indices)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test_idx = folds[i]
            train_idx = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train_idx, test_idx


class StratifiedKFold:
    """K-fold splitter that preserves class proportions across folds."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state: int | None = None):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        y = np.asarray(y)
        n = y.shape[0]
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} samples into {self.n_splits} folds")
        rng = np.random.default_rng(self.random_state)
        fold_assignment = np.empty(n, dtype=np.int64)
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            if self.shuffle:
                members = rng.permutation(members)
            # Deal members round-robin across the folds so each fold gets an
            # approximately equal share of every class.
            fold_assignment[members] = np.arange(len(members)) % self.n_splits
        for i in range(self.n_splits):
            test_idx = np.flatnonzero(fold_assignment == i)
            train_idx = np.flatnonzero(fold_assignment != i)
            if len(test_idx) == 0 or len(train_idx) == 0:
                continue
            yield train_idx, test_idx


def _effective_splits(y: np.ndarray, requested: int) -> int:
    """Clamp the fold count so every training fold can contain every class."""
    _, counts = np.unique(y, return_counts=True)
    n = len(y)
    return max(2, min(requested, int(counts.min()) if counts.min() >= 2 else 2, n // 2))


def stratified_folds(
    y, cv: int = 5, random_state: int | None = None
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Materialise the stratified CV folds :func:`cross_val_score` would use.

    Fold computation depends only on ``(y, cv, random_state)``, never on the
    configuration being scored, so the execution engine precomputes the folds
    once per dataset and reuses them for every configuration instead of
    re-splitting inside each evaluation.
    """
    y = np.asarray(y)
    n_splits = _effective_splits(y, cv)
    splitter = StratifiedKFold(n_splits=n_splits, shuffle=True, random_state=random_state)
    return list(splitter.split(np.empty((len(y), 0)), y))


def plain_folds(
    y, cv: int = 5, random_state: int | None = None
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Materialise unstratified k-fold CV splits (the regression protocol).

    Continuous targets have no classes to balance, so the splitter is a plain
    shuffled :class:`KFold`; the fold count is clamped so every fold holds at
    least one record.
    """
    n = np.asarray(y).shape[0]
    n_splits = max(2, min(cv, n // 2)) if n >= 4 else 2
    splitter = KFold(n_splits=n_splits, shuffle=True, random_state=random_state)
    return list(splitter.split(np.empty((n, 0))))


def cross_val_score_folds(
    estimator: BaseClassifier,
    X,
    y,
    folds: Sequence[tuple[np.ndarray, np.ndarray]],
    scoring: Callable[[Sequence, Sequence], float] = accuracy_score,
    error_score: float = 0.0,
) -> np.ndarray:
    """Per-fold scores of ``estimator`` over precomputed ``folds``.

    Folds where the estimator raises are scored ``error_score`` (0.0, the
    worst accuracy, by default) — the HPO layer treats a crashing
    configuration as a very bad one rather than aborting the search,
    mirroring how Auto-WEKA handles failed runs.  Regression scorers pass
    their own worst value here (e.g. -1.0 for R²).

    Object-dtype matrices (raw attribute blocks fed to
    :class:`~repro.learners.pipeline.Pipeline` estimators, which own their
    encoding per fold) pass through untouched; anything else is coerced to
    ``float64`` exactly as before.
    """
    X = np.asarray(X)
    if X.dtype != object:
        X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    scores: list[float] = []
    for train_idx, test_idx in folds:
        model = clone(estimator)
        try:
            model.fit(X[train_idx], y[train_idx])
            predictions = model.predict(X[test_idx])
            scores.append(float(scoring(y[test_idx], predictions)))
        except Exception as exc:  # noqa: BLE001 — a failed fold takes error_score
            obs.error_event("validation.fold", exc)
            scores.append(float(error_score))
    if not scores:
        return np.array([float(error_score)])
    return np.array(scores, dtype=np.float64)


def cross_val_score(
    estimator: BaseClassifier,
    X,
    y,
    cv: int = 5,
    scoring: Callable[[Sequence, Sequence], float] = accuracy_score,
    random_state: int | None = None,
) -> np.ndarray:
    """Return the per-fold scores of ``estimator`` under stratified k-fold CV."""
    return cross_val_score_folds(
        estimator, X, y, stratified_folds(y, cv=cv, random_state=random_state), scoring
    )


def cross_val_accuracy(
    estimator: BaseClassifier, X, y, cv: int = 5, random_state: int | None = None
) -> float:
    """Mean k-fold cross-validation accuracy (the paper's ``f(λ, A, D)``)."""
    return float(cross_val_score(estimator, X, y, cv=cv, random_state=random_state).mean())
