"""Vectorized numpy kernels shared by the learner catalogue.

The paper's headline claim is about *trials per wall-clock second*: Auto-Model
wins under a time budget because it spends its seconds tuning one good
algorithm.  That makes the learners' inner loops the hottest code in the whole
system — every CV fold of every trial of every optimizer runs them.  This
module collects those loops as array kernels:

* **Split search** (:func:`best_split_classification`,
  :func:`best_split_regression`) — a LightGBM-style cumulative-count scan:
  one-hot label counts are cumulatively summed along a feature's sort order so
  the impurity of *every* candidate threshold is evaluated in one vectorized
  pass instead of a Python loop over ``n_samples - 1`` positions.
* **Sort-order reuse** (:func:`feature_orders`, :func:`filter_orders`,
  :func:`expand_orders`) — per-feature stable sort orders are computed once
  per fit (once per *forest*, shared by every member tree) and filtered down
  recursively; no node ever calls ``argsort`` again.  Filtering a stable
  full-dataset order by a membership mask yields exactly the stable argsort of
  the subset, so splits are bit-identical to the per-node-sort implementation.
* **Flat tree inference** (:class:`FlatTree`, :func:`flat_predict_indices`) —
  fitted trees are flattened into feature/threshold/child arrays and a whole
  matrix is walked iteratively, level by level, replacing the per-row
  ``_predict_row`` walk + ``np.vstack``.  The layout mirrors the export
  interpreter's array form (``repro.export``), which proved the approach.
* **Distance kernels** (:func:`pairwise_sq_distances`, :func:`query_chunks`,
  :func:`knn_vote`) — batched neighbour search with *chunked* pairwise
  distances so a large predict never materialises an ``O(n·m)`` float64
  intermediate at once, plus per-row class voting via one flattened
  ``bincount`` (accumulation order matches the historical per-row loop, so
  scores are identical).

Every kernel is gated on score-identical results versus the frozen pre-kernel
implementations in :mod:`repro.learners._reference` — see
``tests/learners/test_kernel_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "feature_orders",
    "filter_orders",
    "expand_orders",
    "best_split_classification",
    "best_split_regression",
    "FlatTree",
    "flatten_tree",
    "flat_predict_indices",
    "pairwise_sq_distances",
    "query_chunks",
    "knn_vote",
    "DEFAULT_CHUNK_ELEMENTS",
]

#: Upper bound on the number of float64 elements a chunked distance pass may
#: materialise at once (~32 MB).  Tests shrink it to force multi-chunk paths.
DEFAULT_CHUNK_ELEMENTS = 4_000_000


# ---------------------------------------------------------------------------
# Sort-order management
# ---------------------------------------------------------------------------

def feature_orders(X: np.ndarray) -> list[np.ndarray]:
    """Stable per-feature sort orders of ``X``, computed once per fit.

    Returns one ``int64`` index array per column.  A list (rather than one
    ``(F, n)`` matrix) lets the recursion shrink each feature independently.
    """
    return [np.argsort(X[:, j], kind="stable") for j in range(X.shape[1])]


def filter_orders(orders: list[np.ndarray], keep: np.ndarray) -> list[np.ndarray]:
    """Restrict every feature order to the rows where ``keep`` is True.

    ``keep`` is indexed by the *base-row ids stored in the orders*.  Because
    the parent orders are stable, the filtered arrays are exactly the stable
    argsort of the surviving rows — equal feature values keep their original
    relative order.
    """
    return [order[keep[order]] for order in orders]


def expand_orders(orders: list[np.ndarray], counts: np.ndarray) -> list[np.ndarray]:
    """Expand base-row orders by bootstrap multiplicity ``counts``.

    Rows with ``counts[i] == 0`` drop out; rows drawn ``c`` times appear ``c``
    times consecutively.  Within a run of equal feature values the resulting
    permutation can differ from a stable sort of the materialised bootstrap
    matrix (base order vs draw order), but split scores only ever inspect
    cumulative label counts at run *boundaries*, which are permutation
    invariant — so the chosen splits, and therefore the fitted tree, are
    identical.
    """
    return [
        np.repeat(kept, counts[kept])
        for kept in (order[counts[order] > 0] for order in orders)
    ]


# ---------------------------------------------------------------------------
# Split search
# ---------------------------------------------------------------------------

def _impurity_matrix(counts: np.ndarray, totals: np.ndarray, criterion: str) -> np.ndarray:
    """Impurity of each row of ``counts`` (one candidate split side per row).

    Replicates the scalar helpers of :mod:`repro.learners.tree` operation for
    operation — ``gini``: ``1 - Σ (c/t)²``; ``entropy``: ``-Σ p·log2(p)`` over
    the positive entries (zeros contribute an exact ``0.0``).
    """
    p = counts / totals[:, None]
    if criterion == "gini":
        return 1.0 - np.sum(p * p, axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(counts > 0, p * np.log2(p), 0.0)
    return -np.sum(terms, axis=1)


def best_split_classification(
    values: np.ndarray,
    labels: np.ndarray,
    parent_counts: np.ndarray,
    parent_impurity: float,
    criterion: str,
    min_samples_leaf: int,
    min_impurity_decrease: float,
) -> tuple[float, float, float] | None:
    """Best threshold on one feature via a cumulative-bincount scan.

    ``values``/``labels`` are the node's samples in (stable) feature-sorted
    order.  Returns ``(score, threshold, decrease)`` for the first-best valid
    position, or ``None`` — matching the historical Python loop's strict
    ``score > best`` update rule, which keeps the earliest position among
    equal scores.
    """
    n = values.shape[0]
    n_classes = parent_counts.shape[0]
    if n < 2:
        return None
    # Cumulative one-hot label counts: left side of split position i holds
    # samples 0..i, exactly the loop's running ``left_counts``.
    one_hot = np.zeros((n, n_classes), dtype=np.float64)
    one_hot[np.arange(n), labels] = 1.0
    cum = np.cumsum(one_hot, axis=0)
    left = cum[:-1]
    right = parent_counts.astype(np.float64)[None, :] - left

    n_left = np.arange(1, n, dtype=np.float64)
    n_right = n - n_left
    valid = values[:-1] != values[1:]
    if min_samples_leaf > 1:
        valid &= (n_left >= min_samples_leaf) & (n_right >= min_samples_leaf)
    if not valid.any():
        return None

    weighted = (
        n_left * _impurity_matrix(left, n_left, criterion)
        + n_right * _impurity_matrix(right, n_right, criterion)
    ) / n
    decrease = parent_impurity - weighted
    if criterion == "gain_ratio":
        p_left = n_left / n
        p_right = n_right / n
        split_info = -(p_left * np.log2(p_left) + p_right * np.log2(p_right))
        score = np.where(split_info > 0, decrease / split_info, 0.0)
    else:
        score = decrease
    valid &= decrease > min_impurity_decrease
    if not valid.any():
        return None
    masked = np.where(valid, score, -np.inf)
    i = int(np.argmax(masked))  # first maximum — the loop's tie-breaking rule
    threshold = float((values[i] + values[i + 1]) / 2.0)
    return float(masked[i]), threshold, float(decrease[i])


def best_split_regression(
    xs: np.ndarray,
    ys: np.ndarray,
    min_samples_leaf: int,
    best_sse: float,
) -> tuple[float, float] | None:
    """Best variance-reduction threshold on one feature (vectorized prefix sums).

    Returns ``(sse, threshold)`` for the first position strictly better than
    ``best_sse``, or ``None`` — the same ``sse < best`` / first-of-equals rule
    as the historical loop.
    """
    n = xs.shape[0]
    min_leaf = max(1, int(min_samples_leaf))
    if n - 2 * min_leaf < 0:
        return None
    csum = np.cumsum(ys)
    csum_sq = np.cumsum(ys**2)
    total, total_sq = csum[-1], csum_sq[-1]
    # Candidate left sizes i in [min_leaf, n - min_leaf], positions i-1 of the
    # prefix arrays; a position is splittable only across distinct values.
    i = np.arange(min_leaf, n - min_leaf + 1)
    valid = xs[i - 1] != xs[np.minimum(i, n - 1)]
    if not valid.any():
        return None
    left_sum, left_sq = csum[i - 1], csum_sq[i - 1]
    right_sum, right_sq = total - left_sum, total_sq - left_sq
    left_term = left_sum * left_sum / i
    right_term = right_sum * right_sum / (n - i)
    sse = (left_sq - left_term) + (right_sq - right_term)
    masked = np.where(valid, sse, np.inf)
    # The historical loop squared ``left_sum``/``right_sum`` as np.float64
    # *scalars*, whose ``**2`` routes through libm pow and can differ by one
    # ulp from the correctly-rounded product the array sweep uses.  After
    # cancellation that ulp can flip a near-tie, so re-score every candidate
    # within the propagated-rounding band of the sweep minimum with the
    # loop's exact scalar expression and pick the first exact minimum.
    tol = 8.0 * (
        np.spacing(np.abs(left_sq) + np.abs(left_term))
        + np.spacing(np.abs(right_sq) + np.abs(right_term))
    )
    band = masked.min() + 2.0 * float(np.where(valid, tol, 0.0).max())
    best_exact = np.inf
    best_pos = -1
    for j in np.flatnonzero(valid & (masked <= band)):
        pos = int(i[j])
        ls, lq = csum[pos - 1], csum_sq[pos - 1]
        rs, rq = total - ls, total_sq - lq
        exact = (lq - ls**2 / pos) + (rq - rs**2 / (n - pos))
        if exact < best_exact:  # strict: earliest position wins exact ties
            best_exact = float(exact)
            best_pos = pos
    if not best_exact < best_sse:
        return None
    return best_exact, float((xs[best_pos - 1] + xs[best_pos]) / 2.0)


# ---------------------------------------------------------------------------
# Flat tree inference
# ---------------------------------------------------------------------------

@dataclass
class FlatTree:
    """A fitted binary tree flattened into arrays for batch inference.

    ``feature[i] < 0`` marks node ``i`` as a leaf; ``prediction[i]`` is the
    leaf payload (a class distribution row, or a 1-vector for regression).
    The layout is the array twin of the export interpreter's node walk.
    """

    feature: np.ndarray  # int64, -1 for leaves
    threshold: np.ndarray  # float64
    left: np.ndarray  # int64 child indices
    right: np.ndarray
    prediction: np.ndarray  # (n_nodes, n_outputs) float64


def flatten_tree(root, n_outputs: int) -> FlatTree:
    """Flatten a ``_Node``-style tree (``feature``/``threshold``/``left``/
    ``right``/``prediction`` attributes) into a :class:`FlatTree`."""
    nodes: list = []
    stack = [root]
    while stack:
        node = stack.pop()
        nodes.append(node)
        if node.feature is not None:
            stack.append(node.right)
            stack.append(node.left)
    index = {id(node): i for i, node in enumerate(nodes)}
    n = len(nodes)
    feature = np.full(n, -1, dtype=np.int64)
    threshold = np.zeros(n, dtype=np.float64)
    left = np.zeros(n, dtype=np.int64)
    right = np.zeros(n, dtype=np.int64)
    prediction = np.zeros((n, n_outputs), dtype=np.float64)
    for i, node in enumerate(nodes):
        prediction[i] = node.prediction
        if node.feature is not None:
            feature[i] = node.feature
            threshold[i] = node.threshold
            left[i] = index[id(node.left)]
            right[i] = index[id(node.right)]
    return FlatTree(feature, threshold, left, right, prediction)


def flat_predict_indices(flat: FlatTree, X: np.ndarray) -> np.ndarray:
    """Leaf index reached by every row of ``X`` — an iterative batch walk.

    Each pass advances every still-internal row one level, so the loop runs
    ``depth`` times over shrinking index sets instead of ``n_rows`` times over
    the tree.  Comparisons are the same ``<=`` as the row walk, so the reached
    leaves are identical.
    """
    node = np.zeros(X.shape[0], dtype=np.int64)
    active = np.flatnonzero(flat.feature[node] >= 0)
    while active.size:
        current = node[active]
        go_left = X[active, flat.feature[current]] <= flat.threshold[current]
        node[active] = np.where(go_left, flat.left[current], flat.right[current])
        active = active[flat.feature[node[active]] >= 0]
    return node


# ---------------------------------------------------------------------------
# Distance kernels
# ---------------------------------------------------------------------------

def pairwise_sq_distances(A: np.ndarray, B: np.ndarray, b2: np.ndarray | None = None) -> np.ndarray:
    """Squared Euclidean distances between rows of ``A`` and rows of ``B``.

    ``b2`` (``Σ B²`` per row) can be precomputed once by callers that chunk
    ``A``; the per-element arithmetic is unchanged from the historical helper.
    """
    a2 = np.sum(A * A, axis=1)[:, None]
    if b2 is None:
        b2 = np.sum(B * B, axis=1)
    d2 = a2 + b2[None, :] - 2.0 * (A @ B.T)
    return np.clip(d2, 0.0, None)


def query_chunks(n_rows: int, n_cols: int, max_elements: int | None = None):
    """Yield ``slice`` objects over query rows bounding ``rows × n_cols``.

    With the default budget a 50k-row predict against a 50k-row training set
    walks ~80 chunks of ~80 rows instead of materialising a 20 GB matrix.
    Inputs that fit the budget yield one full slice, keeping small predicts
    on the exact single-shot path.
    """
    budget = DEFAULT_CHUNK_ELEMENTS if max_elements is None else int(max_elements)
    rows = max(1, budget // max(1, n_cols))
    for start in range(0, n_rows, rows):
        yield slice(start, min(start + rows, n_rows))


def knn_vote(
    labels: np.ndarray,
    weights: np.ndarray,
    n_classes: int,
) -> np.ndarray:
    """Per-row weighted class votes via one flattened ``bincount``.

    ``labels``/``weights`` are ``(n_rows, k)``; ``bincount`` accumulates in
    scan order, i.e. per row in neighbour order — the exact addition sequence
    of the historical ``proba[i, y[j]] += w`` loop, so results are
    bit-identical.
    """
    n_rows, k = labels.shape
    flat = np.arange(n_rows, dtype=np.int64)[:, None] * n_classes + labels
    votes = np.bincount(
        flat.ravel(), weights=weights.ravel(), minlength=n_rows * n_classes
    )
    return votes.reshape(n_rows, n_classes)
