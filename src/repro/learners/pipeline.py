"""First-class pipelines: searchable preprocessing + estimator configurations.

The paper's CASH formulation ``P = (D, A, PN)`` treats an "algorithm" as the
whole modelling recipe, but a bare estimator only sees a dense numeric matrix
— imputation, scaling and categorical encoding were hard-wired into
``Dataset`` encoding and invisible to the optimizers.  This module promotes
them into the searched configuration (the Auto-WEKA / auto-sklearn move):

* a :class:`Pipeline` is an estimator-protocol object that owns an ordered
  set of preprocessing steps (imputer → scaler → encoder) plus a final
  estimator, fitting the steps per training fold so e.g. unseen categories
  in a test fold are a *measured* property of the configuration;
* each step contributes a prefixed sub-:class:`~repro.hpo.space.ConfigSpace`
  joined via :meth:`ConfigSpace.join` with activation conditions
  (``imputer:strategy`` is active only when ``imputer:enabled``), so every
  HPO technique searches preprocessing and estimator hyperparameters jointly;
* :func:`pipeline_registry` wraps any algorithm catalogue into its
  pipeline-wrapped twin under the *same algorithm names*, which is what lets
  the corpus generator, the performance table, the DMD and the UDR run the
  whole knowledge loop over pipelines unchanged.

Bare-estimator behaviour is untouched: :func:`pipeline_context_suffix`
returns ``""`` for non-pipeline specs, so existing engine fingerprints and
result-store contexts stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..hpo.space import (
    BoolParam,
    CategoricalParam,
    ConfigSpace,
    Condition,
    IntParam,
)
from .base import NotFittedError
from .preprocessing import MinMaxScaler, OneHotEncoder, SimpleImputer, StandardScaler
from .registry import AlgorithmRegistry, AlgorithmSpec
from .regression_registry import registry_for_task

__all__ = [
    "PIPELINE_SEP",
    "ESTIMATOR_STEP",
    "ImputerStep",
    "ScalerStep",
    "EncoderStep",
    "Pipeline",
    "PipelineStepSpec",
    "PipelineFactory",
    "DEFAULT_PIPELINE_STEPS",
    "default_pipeline_steps",
    "make_pipeline_spec",
    "pipeline_registry",
    "is_pipeline_spec",
    "registry_has_pipelines",
    "pipeline_context_suffix",
    "registry_context_suffix",
    "training_matrix",
    "registry_training_matrix",
    "split_columns",
]

#: Namespace separator inside joined pipeline configurations
#: (``imputer:strategy``, ``estimator:max_depth``).
PIPELINE_SEP = ":"

#: Namespace prefix of the final estimator's hyperparameters.
ESTIMATOR_STEP = "estimator"


# -- raw-matrix column typing ---------------------------------------------------------

def _is_numeric_value(value: Any) -> bool:
    return value is None or isinstance(value, (bool, int, float, np.integer, np.floating))


def split_columns(X: np.ndarray) -> tuple[list[int], list[int]]:
    """Classify the columns of a raw matrix as numeric or categorical.

    Float matrices are entirely numeric; for object matrices a column is
    numeric when every entry is a number, ``None`` or NaN (missing values do
    not make a column categorical) and categorical otherwise.  This is how a
    pipeline — built by the HPO layer with no dataset in sight — recovers the
    numeric/categorical split from the matrix alone.
    """
    X = np.asarray(X)
    if X.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {X.shape}")
    if X.dtype != object:
        return list(range(X.shape[1])), []
    numeric: list[int] = []
    categorical: list[int] = []
    for j in range(X.shape[1]):
        if all(_is_numeric_value(v) for v in X[:, j].tolist()):
            numeric.append(j)
        else:
            categorical.append(j)
    return numeric, categorical


# -- preprocessing steps --------------------------------------------------------------

class ImputerStep:
    """Searchable missing-value handling for the numeric block.

    Disabled, it passes NaNs through — configurations that skip imputation on
    messy data crash-score honestly instead of being silently rescued, which
    is exactly the signal the search needs to learn to enable it.
    """

    def __init__(self, enabled: bool = True, strategy: str = "mean", fill_value: float = 0.0):
        self.enabled = bool(enabled)
        self.strategy = strategy
        self.fill_value = fill_value
        self._imputer: SimpleImputer | None = None

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        if not self.enabled or X.shape[1] == 0:
            self._imputer = None
            return X
        self._imputer = SimpleImputer(strategy=self.strategy, fill_value=self.fill_value)
        return self._imputer.fit_transform(X)

    def transform(self, X: np.ndarray) -> np.ndarray:
        return X if self._imputer is None else self._imputer.transform(X)

    def export_params(self) -> dict[str, Any] | None:
        """Fitted-state export: ``None`` when the step is a pass-through."""
        return None if self._imputer is None else self._imputer.export_params()

    def get_params(self) -> dict[str, Any]:
        return {"enabled": self.enabled, "strategy": self.strategy, "fill_value": self.fill_value}

    def __repr__(self) -> str:
        return f"ImputerStep(enabled={self.enabled}, strategy={self.strategy!r})"


class ScalerStep:
    """Searchable numeric scaling: none (identity), standard or min-max."""

    KINDS = ("none", "standard", "minmax")

    def __init__(self, kind: str = "none"):
        if kind not in self.KINDS:
            raise ValueError(f"kind must be one of {self.KINDS}, got {kind!r}")
        self.kind = kind
        self._scaler: StandardScaler | MinMaxScaler | None = None

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        if self.kind == "none" or X.shape[1] == 0:
            self._scaler = None
            return X
        self._scaler = StandardScaler() if self.kind == "standard" else MinMaxScaler()
        return self._scaler.fit_transform(X)

    def transform(self, X: np.ndarray) -> np.ndarray:
        return X if self._scaler is None else self._scaler.transform(X)

    def export_params(self) -> dict[str, Any] | None:
        """Fitted-state export: ``None`` when the step is a pass-through."""
        return None if self._scaler is None else self._scaler.export_params()

    def get_params(self) -> dict[str, Any]:
        return {"kind": self.kind}

    def __repr__(self) -> str:
        return f"ScalerStep(kind={self.kind!r})"


class EncoderStep:
    """Searchable categorical encoding: one-hot with optional rare grouping.

    The encoder is always applied (estimators need numbers), but *how* it
    handles the long tail is searched: with ``group_rare`` categories seen
    fewer than ``min_frequency`` times — and unseen transform-time values —
    collapse into one rare column instead of zero-encoding.
    """

    def __init__(self, group_rare: bool = False, min_frequency: int = 2):
        self.group_rare = bool(group_rare)
        self.min_frequency = int(min_frequency)
        self._encoder: OneHotEncoder | None = None

    def _make(self) -> OneHotEncoder:
        if self.group_rare:
            return OneHotEncoder(min_frequency=self.min_frequency, handle_unknown="rare")
        return OneHotEncoder()

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        self._encoder = self._make()
        return self._encoder.fit_transform(X)

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self._encoder is None:
            raise NotFittedError("EncoderStep is not fitted yet; call fit_transform first")
        return self._encoder.transform(X)

    def export_params(self) -> dict[str, Any] | None:
        """Fitted-state export: ``None`` when no categorical block exists."""
        return None if self._encoder is None else self._encoder.export_params()

    def get_params(self) -> dict[str, Any]:
        return {"group_rare": self.group_rare, "min_frequency": self.min_frequency}

    def __repr__(self) -> str:
        return f"EncoderStep(group_rare={self.group_rare}, min_frequency={self.min_frequency})"


# -- the pipeline estimator -----------------------------------------------------------

class Pipeline:
    """Preprocessing steps + final estimator behind the estimator protocol.

    ``fit(X, y)`` accepts the *raw* attribute matrix (numeric columns may
    contain NaN, categorical columns hold arbitrary values) produced by
    :meth:`Dataset.to_raw_matrix`; plain float matrices work too (all columns
    numeric).  Each fit re-detects the column split, refits every step on the
    training data only, and hands the estimator a dense float matrix in the
    historical layout (numeric block first, one-hot block after).
    """

    def __init__(
        self,
        estimator: Any,
        imputer: ImputerStep | None = None,
        scaler: ScalerStep | None = None,
        encoder: EncoderStep | None = None,
    ) -> None:
        self.estimator = estimator
        self.imputer = imputer if imputer is not None else ImputerStep()
        self.scaler = scaler if scaler is not None else ScalerStep()
        self.encoder = encoder if encoder is not None else EncoderStep()
        self.numeric_columns_: list[int] | None = None
        self.categorical_columns_: list[int] | None = None

    # -- hyperparameter protocol -------------------------------------------------
    def get_params(self) -> dict[str, Any]:
        return {
            "estimator": self.estimator,
            "imputer": self.imputer,
            "scaler": self.scaler,
            "encoder": self.encoder,
        }

    def set_params(self, **params: Any) -> "Pipeline":
        valid = self.get_params()
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"invalid parameter {name!r} for Pipeline; valid: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    # -- transformation ----------------------------------------------------------
    @staticmethod
    def _as_matrix(X: Any) -> np.ndarray:
        X = np.asarray(X)
        if X.ndim == 1:
            # Match check_array: a 1-D input is one sample, not one column.
            X = X.reshape(1, -1)
        if X.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {X.shape}")
        return X

    def _numeric_block(self, X: np.ndarray) -> np.ndarray:
        if not self.numeric_columns_:
            return np.zeros((X.shape[0], 0))
        block = X[:, self.numeric_columns_]
        if block.dtype != object:
            return block.astype(np.float64)
        out = np.empty(block.shape, dtype=np.float64)
        for j in range(block.shape[1]):
            out[:, j] = [
                np.nan if value is None or (isinstance(value, float) and value != value)
                else float(value)
                for value in block[:, j].tolist()
            ]
        return out

    def _transform(self, X: np.ndarray, fit: bool) -> np.ndarray:
        numeric = self._numeric_block(X)
        if fit:
            numeric = self.scaler.fit_transform(self.imputer.fit_transform(numeric))
        else:
            numeric = self.scaler.transform(self.imputer.transform(numeric))
        if not self.categorical_columns_:
            return numeric
        categorical = X[:, self.categorical_columns_]
        encoded = (
            self.encoder.fit_transform(categorical)
            if fit
            else self.encoder.transform(categorical)
        )
        return np.hstack([numeric, encoded])

    # -- fit / predict protocol ---------------------------------------------------
    def fit(self, X: Any, y: Any) -> "Pipeline":
        X = self._as_matrix(X)
        self.numeric_columns_, self.categorical_columns_ = split_columns(X)
        self.estimator.fit(self._transform(X, fit=True), y)
        return self

    def _check_fitted(self) -> None:
        if self.numeric_columns_ is None:
            raise NotFittedError("Pipeline is not fitted yet; call fit() first")

    def predict(self, X: Any) -> np.ndarray:
        self._check_fitted()
        return self.estimator.predict(self._transform(self._as_matrix(X), fit=False))

    def predict_proba(self, X: Any) -> np.ndarray:
        self._check_fitted()
        if not hasattr(self.estimator, "predict_proba"):
            raise AttributeError(
                f"estimator {type(self.estimator).__name__} does not implement "
                "predict_proba (regression estimators predict values, not class "
                "probabilities); use Pipeline.predict instead"
            )
        return self.estimator.predict_proba(self._transform(self._as_matrix(X), fit=False))

    def score(self, X: Any, y: Any) -> float:
        self._check_fitted()
        return float(self.estimator.score(self._transform(self._as_matrix(X), fit=False), y))

    def export_params(self) -> dict[str, Any]:
        """Step-by-step transform export consumed by :mod:`repro.export`.

        Returns the fitted preprocessing state (column split + per-step
        parameters); the final estimator exports separately through its own
        ``export_params()``.
        """
        self._check_fitted()
        return {
            "numeric_columns": list(self.numeric_columns_),
            "categorical_columns": list(self.categorical_columns_),
            "imputer": self.imputer.export_params(),
            "scaler": self.scaler.export_params(),
            "encoder": self.encoder.export_params(),
        }

    @property
    def classes_(self):
        return getattr(self.estimator, "classes_", None)

    def __repr__(self) -> str:
        return (
            f"Pipeline({self.imputer!r} -> {self.scaler!r} -> {self.encoder!r} "
            f"-> {self.estimator!r})"
        )


# -- step specifications and the searchable catalogue ---------------------------------

@dataclass(frozen=True)
class PipelineStepSpec:
    """One preprocessing step: its name, sub-space and transformer builder.

    ``name`` must be one of the :class:`Pipeline` slots (``imputer``,
    ``scaler``, ``encoder``); the sub-space is joined under that prefix and
    ``builder(sub_config)`` turns the de-prefixed configuration into a
    transformer instance.
    """

    name: str
    space: ConfigSpace
    builder: Callable[[dict[str, Any]], Any]


def _imputer_space() -> ConfigSpace:
    space = ConfigSpace([
        BoolParam("enabled"),
        CategoricalParam("strategy", ["mean", "median", "constant"]),
    ])
    space.add_condition("strategy", Condition("enabled", (True,)))
    return space


def _scaler_space() -> ConfigSpace:
    return ConfigSpace([CategoricalParam("kind", ["none", "standard", "minmax"])])


def _encoder_space() -> ConfigSpace:
    space = ConfigSpace([
        CategoricalParam("group_rare", [False, True]),
        IntParam("min_frequency", 2, 10),
    ])
    space.add_condition("min_frequency", Condition("group_rare", (True,)))
    return space


def default_pipeline_steps() -> tuple[PipelineStepSpec, ...]:
    """The standard imputer → scaler → encoder step set (fresh spaces)."""
    return (
        PipelineStepSpec("imputer", _imputer_space(), lambda cfg: ImputerStep(**cfg)),
        PipelineStepSpec("scaler", _scaler_space(), lambda cfg: ScalerStep(**cfg)),
        PipelineStepSpec("encoder", _encoder_space(), lambda cfg: EncoderStep(**cfg)),
    )


DEFAULT_PIPELINE_STEPS: tuple[PipelineStepSpec, ...] = default_pipeline_steps()


class PipelineFactory:
    """Builds a configured :class:`Pipeline` from a joined configuration.

    Splits the namespaced config (``imputer:strategy``, ``estimator:...``)
    back into per-step groups, fills defaults for absent step parameters, and
    delegates estimator construction to the wrapped bare spec — so partial
    configurations behave exactly like they do for bare estimators.
    """

    def __init__(self, spec: AlgorithmSpec, steps: tuple[PipelineStepSpec, ...]) -> None:
        self.spec = spec
        self.steps = tuple(steps)

    def __call__(self, **config: Any) -> Pipeline:
        groups = ConfigSpace.split_config(config, sep=PIPELINE_SEP)
        transformers: dict[str, Any] = {}
        for step in self.steps:
            sub = {**step.space.default_configuration(), **groups.get(step.name, {})}
            transformers[step.name] = step.builder(sub)
        estimator = self.spec.build(groups.get(ESTIMATOR_STEP, {}))
        return Pipeline(estimator, **transformers)

    @property
    def structure(self) -> str:
        """Stable tag of the step composition, used in store contexts."""
        return "+".join(step.name for step in self.steps)


def is_pipeline_spec(spec: AlgorithmSpec) -> bool:
    """Whether a catalogue entry builds pipelines rather than bare estimators."""
    return isinstance(spec.factory, PipelineFactory)


def registry_has_pipelines(registry: AlgorithmRegistry) -> bool:
    return any(is_pipeline_spec(spec) for spec in registry)


def make_pipeline_spec(
    spec: AlgorithmSpec, steps: tuple[PipelineStepSpec, ...] | None = None
) -> AlgorithmSpec:
    """Wrap one catalogue entry into its pipeline twin (same name/group/cost).

    The search space becomes the join of every step's sub-space plus the
    estimator's own space under the ``estimator`` prefix.  Already-wrapped
    specs pass through unchanged.
    """
    if is_pipeline_spec(spec):
        return spec
    steps = tuple(steps) if steps is not None else DEFAULT_PIPELINE_STEPS
    known = {"imputer", "scaler", "encoder"}
    unknown = [step.name for step in steps if step.name not in known]
    if unknown:
        raise ValueError(f"unknown pipeline step slots {unknown}; known: {sorted(known)}")
    if ESTIMATOR_STEP in {step.name for step in steps}:
        raise ValueError(f"{ESTIMATOR_STEP!r} is reserved for the estimator sub-space")
    parts = [(step.name, step.space) for step in steps] + [(ESTIMATOR_STEP, spec.space)]
    return AlgorithmSpec(
        name=spec.name,
        group=spec.group,
        factory=PipelineFactory(spec, steps),
        space=ConfigSpace.join(parts, sep=PIPELINE_SEP),
        cost=spec.cost,
    )


def pipeline_registry(
    registry: AlgorithmRegistry | None = None,
    task: str = "classification",
    steps: tuple[PipelineStepSpec, ...] | None = None,
) -> AlgorithmRegistry:
    """The pipeline-wrapped twin of a catalogue (default: the task's registry).

    Algorithm names are preserved, so knowledge mined over the bare catalogue
    (corpus experiences, decision-model labels) transfers to pipelines — the
    registry handed to the UDR decides whether "J48" means the bare tree or
    the imputer→scaler→encoder→J48 pipeline.
    """
    base = registry if registry is not None else registry_for_task(task)
    return AlgorithmRegistry([make_pipeline_spec(spec, steps) for spec in base])


# -- store-context / matrix plumbing --------------------------------------------------

def pipeline_context_suffix(spec: AlgorithmSpec) -> str:
    """Store-context suffix fingerprinting a spec's pipeline structure.

    Empty for bare estimator specs, so every pre-existing cache/store context
    stays byte-identical; pipeline specs append their step composition so a
    persistent store never mixes pipeline scores with bare-estimator scores
    recorded under the same algorithm name.
    """
    if not is_pipeline_spec(spec):
        return ""
    return f"-pipeline[{spec.factory.structure}]"


def registry_context_suffix(registry: AlgorithmRegistry) -> str:
    """Store-context suffix for a whole catalogue (empty for bare registries)."""
    structures = sorted({
        spec.factory.structure for spec in registry if is_pipeline_spec(spec)
    })
    return "".join(f"-pipeline[{structure}]" for structure in structures)


def training_matrix(dataset, spec: AlgorithmSpec) -> tuple[np.ndarray, np.ndarray]:
    """``(X, y)`` for tuning ``spec`` on ``dataset``.

    Pipelines receive the raw attribute blocks (their steps own
    preprocessing); bare estimators receive the encoded dense matrix exactly
    as before, so their scores stay byte-identical.
    """
    if is_pipeline_spec(spec):
        return dataset.to_raw_matrix()
    return dataset.to_matrix()


def registry_training_matrix(dataset, registry: AlgorithmRegistry) -> tuple[np.ndarray, np.ndarray]:
    """``(X, y)`` for searches spanning a whole catalogue (joint CASH spaces)."""
    if registry_has_pipelines(registry):
        return dataset.to_raw_matrix()
    return dataset.to_matrix()
