"""Support vector machines: SMO (linear) and LibSVM-style kernel SVM.

``SMO`` follows Weka's default (linear kernel, one-vs-one via one-vs-rest
approximation here) trained with a simplified sequential-minimal-optimisation
loop; ``LibSVMClassifier`` adds an RBF kernel.  Probabilities come from a
softmax over decision values (a light-weight Platt-scaling stand-in).
"""

from __future__ import annotations

import numpy as np

from .base import BaseClassifier

__all__ = ["SMO", "LibSVMClassifier"]


class _BinarySVM:
    """Simplified SMO for a single binary problem with labels in {-1, +1}."""

    def __init__(
        self,
        C: float,
        kernel: str,
        gamma: float,
        max_passes: int,
        tol: float,
        random_state: int | None,
    ) -> None:
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self.max_passes = max_passes
        self.tol = tol
        self.random_state = random_state

    def _kernel_matrix(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            return A @ B.T
        if self.kernel == "rbf":
            a2 = np.sum(A * A, axis=1)[:, None]
            b2 = np.sum(B * B, axis=1)[None, :]
            d2 = np.clip(a2 + b2 - 2.0 * (A @ B.T), 0.0, None)
            return np.exp(-self.gamma * d2)
        raise ValueError(f"unknown kernel {self.kernel!r}")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_BinarySVM":
        rng = np.random.default_rng(self.random_state)
        n = X.shape[0]
        alpha = np.zeros(n)
        b = 0.0
        K = self._kernel_matrix(X, X)
        passes = 0
        while passes < self.max_passes:
            changed = 0
            for i in range(n):
                Ei = np.sum(alpha * y * K[:, i]) + b - y[i]
                if (y[i] * Ei < -self.tol and alpha[i] < self.C) or (
                    y[i] * Ei > self.tol and alpha[i] > 0
                ):
                    j = int(rng.integers(0, n - 1))
                    if j >= i:
                        j += 1
                    Ej = np.sum(alpha * y * K[:, j]) + b - y[j]
                    alpha_i_old, alpha_j_old = alpha[i], alpha[j]
                    if y[i] != y[j]:
                        low = max(0.0, alpha[j] - alpha[i])
                        high = min(self.C, self.C + alpha[j] - alpha[i])
                    else:
                        low = max(0.0, alpha[i] + alpha[j] - self.C)
                        high = min(self.C, alpha[i] + alpha[j])
                    if low >= high:
                        continue
                    eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                    if eta >= 0:
                        continue
                    alpha[j] -= y[j] * (Ei - Ej) / eta
                    alpha[j] = np.clip(alpha[j], low, high)
                    if abs(alpha[j] - alpha_j_old) < 1e-5:
                        continue
                    alpha[i] += y[i] * y[j] * (alpha_j_old - alpha[j])
                    b1 = (
                        b
                        - Ei
                        - y[i] * (alpha[i] - alpha_i_old) * K[i, i]
                        - y[j] * (alpha[j] - alpha_j_old) * K[i, j]
                    )
                    b2 = (
                        b
                        - Ej
                        - y[i] * (alpha[i] - alpha_i_old) * K[i, j]
                        - y[j] * (alpha[j] - alpha_j_old) * K[j, j]
                    )
                    if 0 < alpha[i] < self.C:
                        b = b1
                    elif 0 < alpha[j] < self.C:
                        b = b2
                    else:
                        b = (b1 + b2) / 2.0
                    changed += 1
            passes = passes + 1 if changed == 0 else 0
        support = alpha > 1e-8
        self.support_X_ = X[support]
        self.support_alpha_y_ = (alpha * y)[support]
        self.b_ = b
        if not support.any():
            self.support_X_ = X[:1]
            self.support_alpha_y_ = np.zeros(1)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        K = self._kernel_matrix(X, self.support_X_)
        return K @ self.support_alpha_y_ + self.b_


class SMO(BaseClassifier):
    """One-vs-rest linear SVM trained with simplified SMO (Weka SMO analogue)."""

    kernel_name = "linear"

    def __init__(
        self,
        C: float = 1.0,
        gamma: float = 0.1,
        max_passes: int = 3,
        tol: float = 1e-3,
        max_train_samples: int = 400,
        random_state: int | None = None,
    ) -> None:
        super().__init__()
        self.C = C
        self.gamma = gamma
        self.max_passes = max_passes
        self.tol = tol
        self.max_train_samples = max_train_samples
        self.random_state = random_state

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.C <= 0:
            raise ValueError("C must be positive")
        if self.gamma <= 0:
            raise ValueError("gamma must be positive")
        rng = np.random.default_rng(self.random_state)
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        Xs = (X - self._mean) / self._scale
        # SMO is O(n^2); subsample very large training sets to keep HPO loops
        # tractable, preserving class balance.
        if Xs.shape[0] > int(self.max_train_samples):
            keep: list[int] = []
            per_class = max(2, int(self.max_train_samples) // len(self.classes_))
            for k in range(len(self.classes_)):
                members = np.flatnonzero(y == k)
                take = min(per_class, len(members))
                keep.extend(rng.choice(members, size=take, replace=False).tolist())
            keep_arr = np.array(sorted(keep))
            Xs, y = Xs[keep_arr], y[keep_arr]
        self.models_: list[_BinarySVM] = []
        for k in range(len(self.classes_)):
            binary_y = np.where(y == k, 1.0, -1.0)
            model = _BinarySVM(
                C=self.C,
                kernel=self.kernel_name,
                gamma=self.gamma,
                max_passes=self.max_passes,
                tol=self.tol,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            model.fit(Xs, binary_y)
            self.models_.append(model)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        Xs = (X - self._mean) / self._scale
        scores = np.column_stack([m.decision_function(Xs) for m in self.models_])
        scores -= scores.max(axis=1, keepdims=True)
        proba = np.exp(scores)
        return proba / proba.sum(axis=1, keepdims=True)


class LibSVMClassifier(SMO):
    """RBF-kernel SVM (LibSVM analogue)."""

    kernel_name = "rbf"

    def __init__(
        self,
        C: float = 1.0,
        gamma: float = 0.5,
        max_passes: int = 3,
        tol: float = 1e-3,
        max_train_samples: int = 400,
        random_state: int | None = None,
    ) -> None:
        super().__init__(
            C=C,
            gamma=gamma,
            max_passes=max_passes,
            tol=tol,
            max_train_samples=max_train_samples,
            random_state=random_state,
        )
