"""Frozen pre-kernel learner implementations — the equivalence oracle.

These classes preserve, verbatim, the pure-Python inner loops the live
learners used before the vectorized kernel layer (:mod:`repro.learners.kernels`)
replaced them: per-node ``np.argsort`` + a Python loop over every candidate
threshold in the trees, row-by-row neighbour voting in the lazy family, and
full-matrix pairwise distances.  They exist for exactly two consumers:

* ``tests/learners/test_kernel_equivalence.py`` asserts the kernel-backed
  learners produce *identical* predictions (tie-breaking included), and
* ``benchmarks/test_bench_kernels.py`` measures the kernel speedups against
  them while asserting score-identical outputs in the same run.

Do not use these in production paths and do not "fix" them — their value is
that they never change.
"""

from __future__ import annotations

import numpy as np

from .base import BaseClassifier
from .forest import RandomForest
from .lazy import IBk, KStar, LWL, _pairwise_sq_distances_exact
from .regression import DecisionTreeRegressor, KNeighborsRegressor, _RegressionNode
from .tree import DecisionTreeClassifier, _class_distribution, _entropy, _Node

__all__ = [
    "ReferenceDecisionTree",
    "ReferenceRandomForest",
    "ReferenceIBk",
    "ReferenceKStar",
    "ReferenceLWL",
    "ReferenceDecisionTreeRegressor",
    "ReferenceKNeighborsRegressor",
]


class ReferenceDecisionTree(DecisionTreeClassifier):
    """The pre-kernel tree: per-node stable argsort + Python threshold loop."""

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> tuple[int, float, float] | None:
        n_samples, n_features = X.shape
        parent_counts = np.bincount(y, minlength=self._n_classes)
        parent_impurity = self._impurity(parent_counts)
        k = self._n_candidate_features(n_features)
        candidates = (
            np.arange(n_features)
            if k >= n_features
            else rng.choice(n_features, size=k, replace=False)
        )
        best: tuple[int, float, float] | None = None
        best_score = -np.inf
        for feature in candidates:
            order = np.argsort(X[:, feature], kind="stable")
            values = X[order, feature]
            labels = y[order]
            left_counts = np.zeros(self._n_classes)
            right_counts = parent_counts.astype(np.float64).copy()
            for i in range(n_samples - 1):
                label = labels[i]
                left_counts[label] += 1
                right_counts[label] -= 1
                if values[i] == values[i + 1]:
                    continue
                n_left = i + 1
                n_right = n_samples - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                weighted = (
                    n_left * self._impurity(left_counts)
                    + n_right * self._impurity(right_counts)
                ) / n_samples
                decrease = parent_impurity - weighted
                score = decrease
                if self.criterion == "gain_ratio":
                    split_counts = np.array([n_left, n_right], dtype=np.float64)
                    split_info = _entropy(split_counts)
                    score = decrease / split_info if split_info > 0 else 0.0
                if score > best_score and decrease > self.min_impurity_decrease:
                    best_score = score
                    threshold = float((values[i] + values[i + 1]) / 2.0)
                    best = (int(feature), threshold, float(decrease))
        return best

    def _build(
        self, X: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator
    ) -> _Node:
        distribution = _class_distribution(y, self._n_classes)
        node = _Node(
            prediction=distribution,
            n_samples=len(y),
            depth=depth,
            impurity=self._impurity(np.bincount(y, minlength=self._n_classes)),
        )
        if (
            len(np.unique(y)) <= 1
            or len(y) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or (self.max_nodes is not None and self._n_internal >= self.max_nodes)
        ):
            return node
        split = self._best_split(X, y, rng)
        if split is None:
            return node
        feature, threshold, _ = split
        mask = X[:, feature] <= threshold
        if mask.all() or not mask.any():
            return node
        self._n_internal += 1
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1, rng)
        node.right = self._build(X[~mask], y[~mask], depth + 1, rng)
        return node

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._n_classes = int(len(self.classes_))
        self._n_internal = 0
        rng = np.random.default_rng(self.random_state)
        self.tree_ = self._build(X, y, depth=0, rng=rng)

    def _predict_row(self, node: _Node, row: np.ndarray) -> np.ndarray:
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.prediction

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        return np.vstack([self._predict_row(self.tree_, row) for row in X])


class _ReferenceRandomTree(ReferenceDecisionTree):
    """RandomTree defaults on top of the reference engine (forest member)."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        random_state: int | None = None,
    ) -> None:
        super().__init__(
            criterion="entropy",
            max_depth=max_depth,
            min_samples_split=2,
            min_samples_leaf=min_samples_leaf,
            max_features=max_features,
            random_state=random_state,
        )


class ReferenceRandomForest(RandomForest):
    """The pre-kernel forest: each member re-sorts every node, predicts row-wise."""

    def _make_tree(self, seed: int) -> DecisionTreeClassifier:
        return _ReferenceRandomTree(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=seed,
        )

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        rng = np.random.default_rng(self.random_state)
        n = X.shape[0]
        self.estimators_: list[DecisionTreeClassifier] = []
        for _ in range(int(self.n_estimators)):
            seed = int(rng.integers(0, 2**31 - 1))
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
                for label in range(len(self.classes_)):
                    if not np.any(y[idx] == label):
                        members = np.flatnonzero(y == label)
                        idx[rng.integers(0, n)] = members[rng.integers(0, len(members))]
            else:
                idx = np.arange(n)
            tree = self._make_tree(seed)
            tree.fit(X[idx], y[idx])
            self.estimators_.append(tree)


class ReferenceIBk(IBk):
    """The pre-kernel IBk: full distance matrix + per-row neighbour loop."""

    def _distances(self, X: np.ndarray) -> np.ndarray:
        Xs = (X - self._mean) / self._scale
        if self.p == 1:
            return np.abs(Xs[:, None, :] - self._X[None, :, :]).sum(axis=2)
        return np.sqrt(_pairwise_sq_distances_exact(Xs, self._X))

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        k = min(int(self.n_neighbors), self._X.shape[0])
        distances = self._distances(X)
        n_classes = len(self.classes_)
        proba = np.zeros((X.shape[0], n_classes))
        neighbor_idx = np.argpartition(distances, kth=k - 1, axis=1)[:, :k]
        for i in range(X.shape[0]):
            idx = neighbor_idx[i]
            if self.weighting == "distance":
                weights = 1.0 / (distances[i, idx] + 1e-8)
            else:
                weights = np.ones(k)
            for j, w in zip(idx, weights):
                proba[i, self._y[j]] += w
        return proba / proba.sum(axis=1, keepdims=True)


class ReferenceKStar(KStar):
    """The pre-kernel KStar: one full query-by-train kernel matrix."""

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        Xs = (X - self._mean) / self._scale
        distances = np.sqrt(_pairwise_sq_distances_exact(Xs, self._X))
        kernel = np.exp(-0.5 * (distances / self._bandwidth) ** 2) + 1e-12
        n_classes = len(self.classes_)
        proba = np.zeros((X.shape[0], n_classes))
        for k in range(n_classes):
            proba[:, k] = kernel[:, self._y == k].sum(axis=1)
        return proba / proba.sum(axis=1, keepdims=True)


class ReferenceLWL(LWL):
    """The pre-kernel LWL: per-query Python loop over local class weights."""

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        Xs = (X - self._mean) / self._scale
        k = min(int(self.n_neighbors), self._X.shape[0])
        distances = np.sqrt(_pairwise_sq_distances_exact(Xs, self._X))
        n_classes = len(self.classes_)
        proba = np.zeros((X.shape[0], n_classes))
        neighbor_idx = np.argpartition(distances, kth=k - 1, axis=1)[:, :k]
        for i in range(X.shape[0]):
            idx = neighbor_idx[i]
            local_d = distances[i, idx]
            bandwidth = local_d.max() + 1e-8
            weights = np.clip(1.0 - (local_d / bandwidth) ** 2, 0.0, None) + 1e-8
            for k_label in range(n_classes):
                mask = self._y[idx] == k_label
                proba[i, k_label] = weights[mask].sum()
        proba += 1e-8
        return proba / proba.sum(axis=1, keepdims=True)


class ReferenceDecisionTreeRegressor(DecisionTreeRegressor):
    """The pre-kernel regression tree: per-node sort + Python prefix-sum loop."""

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> tuple[int, float] | None:
        n, n_features = X.shape
        min_leaf = max(1, int(self.min_samples_leaf))
        k = self._n_candidate_features(n_features)
        candidates = (
            np.arange(n_features)
            if k >= n_features
            else rng.choice(n_features, size=k, replace=False)
        )
        best: tuple[int, float] | None = None
        best_sse = float(np.sum((y - y.mean()) ** 2)) - 1e-12
        for j in candidates:
            order = np.argsort(X[:, j], kind="stable")
            xs, ys = X[order, j], y[order]
            csum = np.cumsum(ys)
            csum_sq = np.cumsum(ys**2)
            total, total_sq = csum[-1], csum_sq[-1]
            for i in range(min_leaf, n - min_leaf + 1):
                if i == n or xs[i - 1] == xs[min(i, n - 1)]:
                    continue
                left_sum, left_sq = csum[i - 1], csum_sq[i - 1]
                right_sum, right_sq = total - left_sum, total_sq - left_sq
                sse = (left_sq - left_sum**2 / i) + (right_sq - right_sum**2 / (n - i))
                if sse < best_sse:
                    best_sse = sse
                    best = (int(j), float((xs[i - 1] + xs[i]) / 2.0))
        return best

    def _grow(
        self, X: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator
    ) -> _RegressionNode:
        node = _RegressionNode(float(y.mean()))
        if (
            (self.max_depth is not None and depth >= int(self.max_depth))
            or len(y) < max(2, int(self.min_samples_split))
            or np.all(y == y[0])
        ):
            return node
        split = self._best_split(X, y, rng)
        if split is None:
            return node
        feature, threshold = split
        left_mask = X[:, feature] <= threshold
        if not left_mask.any() or left_mask.all():
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[left_mask], y[left_mask], depth + 1, rng)
        node.right = self._grow(X[~left_mask], y[~left_mask], depth + 1, rng)
        return node

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.random_state)
        self.root_ = self._grow(X, y, depth=0, rng=rng)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return out


class ReferenceKNeighborsRegressor(KNeighborsRegressor):
    """The pre-kernel kNN regressor: one distance pass per query row."""

    def _predict(self, X: np.ndarray) -> np.ndarray:
        k = min(int(self.n_neighbors), self._X.shape[0])
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            diff = self._X - row
            if self.p == 1:
                distances = np.abs(diff).sum(axis=1)
            else:
                distances = np.sqrt((diff**2).sum(axis=1))
            neighbor_idx = np.argpartition(distances, k - 1)[:k]
            if self.weighting == "distance":
                weights = 1.0 / (distances[neighbor_idx] + 1e-9)
                out[i] = float(np.average(self._y[neighbor_idx], weights=weights))
            else:
                out[i] = float(self._y[neighbor_idx].mean())
        return out
