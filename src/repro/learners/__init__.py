"""Learner substrate: the classifier catalogue replacing Weka's library.

Everything is implemented from scratch on top of numpy (the environment has no
scikit-learn); the public surface mirrors a small slice of the familiar
estimator API: ``fit`` / ``predict`` / ``predict_proba`` / ``get_params`` /
``set_params``.
"""

from .base import BaseClassifier, NotFittedError, check_array, check_X_y, clone
from .bayes import AODE, HNB, BayesNet, NaiveBayes, NaiveBayesMultinomial
from .ensemble import (
    AdaBoostM1,
    Bagging,
    LogitBoost,
    MultiBoostAB,
    RandomCommittee,
    RandomSubSpace,
    RotationForest,
    StackingC,
    VotingEnsemble,
)
from .forest import ExtraTrees, RandomForest
from .lazy import IB1, IBk, KStar, LWL
from .linear import LDA, LogisticRegression, SimpleLogistic
from .metrics import (
    accuracy_score,
    balanced_accuracy_score,
    confusion_matrix,
    error_rate,
    f1_score,
    log_loss,
    mean_absolute_error,
    mean_squared_error,
    precision_recall_f1,
    r2_score,
)
from .misc import ClassificationViaClustering, ClassificationViaRegression, HyperPipes, VFI
from .neural import MLPClassifier, MLPNetwork, MLPRegressor, MultilayerPerceptron, RBFNetwork
from .preprocessing import (
    LabelEncoder,
    MinMaxScaler,
    OneHotEncoder,
    SimpleImputer,
    StandardScaler,
    encode_mixed_matrix,
)
from .registry import AlgorithmRegistry, AlgorithmSpec, CAList, default_registry
from .rules import JRip, OneR, PART, Ridor, ZeroR
from .svm import SMO, LibSVMClassifier
from .tree import BFTree, DecisionStump, DecisionTreeClassifier, J48, RandomTree, REPTree, SimpleCart
from .validation import (
    KFold,
    StratifiedKFold,
    cross_val_accuracy,
    cross_val_score,
    cross_val_score_folds,
    stratified_folds,
    train_test_split,
)

__all__ = [
    # base
    "BaseClassifier", "NotFittedError", "check_array", "check_X_y", "clone",
    # bayes
    "AODE", "HNB", "BayesNet", "NaiveBayes", "NaiveBayesMultinomial",
    # ensembles
    "AdaBoostM1", "Bagging", "LogitBoost", "MultiBoostAB", "RandomCommittee",
    "RandomSubSpace", "RotationForest", "StackingC", "VotingEnsemble",
    "ExtraTrees", "RandomForest",
    # lazy
    "IB1", "IBk", "KStar", "LWL",
    # linear
    "LDA", "LogisticRegression", "SimpleLogistic",
    # metrics
    "accuracy_score", "balanced_accuracy_score", "confusion_matrix", "error_rate",
    "f1_score", "log_loss", "mean_absolute_error", "mean_squared_error",
    "precision_recall_f1", "r2_score",
    # misc
    "ClassificationViaClustering", "ClassificationViaRegression", "HyperPipes", "VFI",
    # neural
    "MLPClassifier", "MLPNetwork", "MLPRegressor", "MultilayerPerceptron", "RBFNetwork",
    # preprocessing
    "LabelEncoder", "MinMaxScaler", "OneHotEncoder", "SimpleImputer", "StandardScaler",
    "encode_mixed_matrix",
    # registry
    "AlgorithmRegistry", "AlgorithmSpec", "CAList", "default_registry",
    # rules
    "JRip", "OneR", "PART", "Ridor", "ZeroR",
    # svm
    "SMO", "LibSVMClassifier",
    # trees
    "BFTree", "DecisionStump", "DecisionTreeClassifier", "J48", "RandomTree",
    "REPTree", "SimpleCart",
    # validation
    "KFold", "StratifiedKFold", "cross_val_accuracy", "cross_val_score",
    "cross_val_score_folds", "stratified_folds", "train_test_split",
]
