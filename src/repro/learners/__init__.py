"""Learner substrate: the classifier and regressor catalogues replacing Weka's library.

Everything is implemented from scratch on top of numpy (the environment has no
scikit-learn); the public surface mirrors a small slice of the familiar
estimator API: ``fit`` / ``predict`` / ``predict_proba`` (classifiers) /
``get_params`` / ``set_params``.  :func:`registry_for_task` switches between
the classification catalogue (the paper's Table IV stand-in) and the
regression catalogue.
"""

from .base import BaseClassifier, NotFittedError, check_array, check_X_y, clone
from .bayes import AODE, HNB, BayesNet, NaiveBayes, NaiveBayesMultinomial
from .ensemble import (
    AdaBoostM1,
    Bagging,
    LogitBoost,
    MultiBoostAB,
    RandomCommittee,
    RandomSubSpace,
    RotationForest,
    StackingC,
    VotingEnsemble,
)
from .forest import ExtraTrees, RandomForest
from .lazy import IB1, IBk, KStar, LWL
from .linear import LDA, LogisticRegression, SimpleLogistic
from .metrics import (
    SCORERS,
    Scorer,
    accuracy_score,
    balanced_accuracy_score,
    confusion_matrix,
    default_metric_for_task,
    error_rate,
    f1_score,
    log_loss,
    mean_absolute_error,
    mean_squared_error,
    precision_recall_f1,
    r2_score,
    resolve_scorer,
    root_mean_squared_error,
)
from .misc import ClassificationViaClustering, ClassificationViaRegression, HyperPipes, VFI
from .neural import MLPClassifier, MLPNetwork, MLPRegressor, MultilayerPerceptron, RBFNetwork
from .pipeline import (
    DEFAULT_PIPELINE_STEPS,
    EncoderStep,
    ImputerStep,
    Pipeline,
    PipelineFactory,
    PipelineStepSpec,
    ScalerStep,
    default_pipeline_steps,
    is_pipeline_spec,
    make_pipeline_spec,
    pipeline_context_suffix,
    pipeline_registry,
    registry_context_suffix,
    registry_has_pipelines,
    registry_training_matrix,
    training_matrix,
)
from .preprocessing import (
    LabelEncoder,
    MinMaxScaler,
    OneHotEncoder,
    SimpleImputer,
    StandardScaler,
    encode_mixed_matrix,
)
from .registry import AlgorithmRegistry, AlgorithmSpec, CAList, default_registry
from .regression import (
    BaseRegressor,
    DecisionTreeRegressor,
    DummyRegressor,
    ExtraTreesRegressor,
    GradientBoostingRegressor,
    KNeighborsRegressor,
    LassoRegressor,
    RandomForestRegressor,
    RidgeRegressor,
    SVR,
    check_X_y_regression,
)
from .regression_registry import RAList, default_regression_registry, registry_for_task
from .rules import JRip, OneR, PART, Ridor, ZeroR
from .svm import SMO, LibSVMClassifier
from .tree import BFTree, DecisionStump, DecisionTreeClassifier, J48, RandomTree, REPTree, SimpleCart
from .validation import (
    KFold,
    StratifiedKFold,
    cross_val_accuracy,
    cross_val_score,
    cross_val_score_folds,
    plain_folds,
    stratified_folds,
    train_test_split,
)

__all__ = [
    # base
    "BaseClassifier", "NotFittedError", "check_array", "check_X_y", "clone",
    # bayes
    "AODE", "HNB", "BayesNet", "NaiveBayes", "NaiveBayesMultinomial",
    # ensembles
    "AdaBoostM1", "Bagging", "LogitBoost", "MultiBoostAB", "RandomCommittee",
    "RandomSubSpace", "RotationForest", "StackingC", "VotingEnsemble",
    "ExtraTrees", "RandomForest",
    # lazy
    "IB1", "IBk", "KStar", "LWL",
    # linear
    "LDA", "LogisticRegression", "SimpleLogistic",
    # metrics
    "accuracy_score", "balanced_accuracy_score", "confusion_matrix", "error_rate",
    "f1_score", "log_loss", "mean_absolute_error", "mean_squared_error",
    "precision_recall_f1", "r2_score", "root_mean_squared_error",
    "Scorer", "SCORERS", "resolve_scorer", "default_metric_for_task",
    # misc
    "ClassificationViaClustering", "ClassificationViaRegression", "HyperPipes", "VFI",
    # neural
    "MLPClassifier", "MLPNetwork", "MLPRegressor", "MultilayerPerceptron", "RBFNetwork",
    # preprocessing
    "LabelEncoder", "MinMaxScaler", "OneHotEncoder", "SimpleImputer", "StandardScaler",
    "encode_mixed_matrix",
    # pipelines
    "Pipeline", "PipelineFactory", "PipelineStepSpec", "ImputerStep", "ScalerStep",
    "EncoderStep", "DEFAULT_PIPELINE_STEPS", "default_pipeline_steps",
    "make_pipeline_spec", "pipeline_registry", "is_pipeline_spec",
    "registry_has_pipelines", "pipeline_context_suffix", "registry_context_suffix",
    "training_matrix", "registry_training_matrix",
    # registry
    "AlgorithmRegistry", "AlgorithmSpec", "CAList", "default_registry",
    "RAList", "default_regression_registry", "registry_for_task",
    # regression learners
    "BaseRegressor", "check_X_y_regression", "DummyRegressor", "RidgeRegressor",
    "LassoRegressor", "SVR", "KNeighborsRegressor", "DecisionTreeRegressor",
    "RandomForestRegressor", "ExtraTreesRegressor", "GradientBoostingRegressor",
    # rules
    "JRip", "OneR", "PART", "Ridor", "ZeroR",
    # svm
    "SMO", "LibSVMClassifier",
    # trees
    "BFTree", "DecisionStump", "DecisionTreeClassifier", "J48", "RandomTree",
    "REPTree", "SimpleCart",
    # validation
    "KFold", "StratifiedKFold", "cross_val_accuracy", "cross_val_score",
    "cross_val_score_folds", "plain_folds", "stratified_folds", "train_test_split",
]
