"""The classifier catalogue ("CAList") and its hyperparameter spaces.

This is the reproduction's stand-in for Table IV: the set of classification
algorithms the CASH techniques choose between.  Every entry declares

* a factory that builds the estimator from a configuration dict, and
* a :class:`~repro.hpo.space.ConfigSpace` describing its tunable
  hyperparameters,

which is exactly the information both Auto-Model's UDR step (tune one selected
algorithm) and the Auto-WEKA baseline (tune the joint algorithm+hyperparameter
space) need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..hpo.space import CategoricalParam, ConfigSpace, Condition, FloatParam, IntParam
from .base import BaseClassifier
from .bayes import AODE, HNB, BayesNet, NaiveBayes, NaiveBayesMultinomial
from .ensemble import (
    AdaBoostM1,
    Bagging,
    LogitBoost,
    MultiBoostAB,
    RandomCommittee,
    RandomSubSpace,
    RotationForest,
    StackingC,
    VotingEnsemble,
)
from .forest import ExtraTrees, RandomForest
from .lazy import IB1, IBk, KStar, LWL
from .linear import LDA, LogisticRegression, SimpleLogistic
from .misc import ClassificationViaClustering, ClassificationViaRegression, HyperPipes, VFI
from .neural import MLPClassifier, MultilayerPerceptron, RBFNetwork
from .rules import JRip, OneR, PART, Ridor, ZeroR
from .svm import SMO, LibSVMClassifier
from .tree import BFTree, DecisionStump, J48, REPTree, RandomTree, SimpleCart

__all__ = ["AlgorithmSpec", "AlgorithmRegistry", "default_registry", "CAList"]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One catalogue entry: name, Weka-style group, factory and search space."""

    name: str
    group: str
    factory: Callable[..., BaseClassifier]
    space: ConfigSpace
    # Relative cost class used by tests/benchmarks to pick cheap subsets.
    cost: str = "cheap"

    def build(self, config: dict[str, Any] | None = None) -> BaseClassifier:
        """Instantiate the estimator from a (possibly partial) configuration."""
        config = dict(config or {})
        unknown = [k for k in config if k not in self.space.names]
        if unknown:
            raise ValueError(f"{self.name}: unknown hyperparameters {unknown}")
        estimator = self.factory(**config)
        if getattr(estimator, "random_state", 0) is None:
            # An unseeded stochastic learner draws fresh OS entropy on every
            # fit, so identical configurations score differently across
            # engines, workers and warm restarts — breaking the evaluation
            # layer's replay-equivalence contract.  Catalogue builds pin a
            # fixed seed; an explicit integer seed is never overridden.
            estimator.random_state = 0
        return estimator

    def default_config(self) -> dict[str, Any]:
        return self.space.default_configuration()


def _space(*params, conditions: dict[str, Condition] | None = None) -> ConfigSpace:
    space = ConfigSpace(list(params))
    for name, condition in (conditions or {}).items():
        space.add_condition(name, condition)
    return space


def _tree_space(include_criterion: bool = False) -> ConfigSpace:
    params = [
        IntParam("max_depth", 2, 25),
        IntParam("min_samples_leaf", 1, 10),
        IntParam("min_samples_split", 2, 20),
    ]
    if include_criterion:
        params.append(CategoricalParam("criterion", ["gini", "entropy"]))
    return ConfigSpace(params)


def _build_specs() -> list[AlgorithmSpec]:
    specs: list[AlgorithmSpec] = []

    # -- trees ---------------------------------------------------------------------
    specs.append(
        AlgorithmSpec("J48", "trees", J48, _space(
            IntParam("max_depth", 2, 25),
            IntParam("min_samples_leaf", 1, 10),
            IntParam("min_samples_split", 2, 20),
            FloatParam("min_impurity_decrease", 0.0, 0.05),
        ))
    )
    specs.append(
        AlgorithmSpec("SimpleCart", "trees", SimpleCart, _space(
            IntParam("max_depth", 2, 25),
            IntParam("min_samples_leaf", 1, 10),
            IntParam("min_samples_split", 2, 20),
            FloatParam("min_impurity_decrease", 0.0, 0.05),
        ))
    )
    specs.append(
        AlgorithmSpec("REPTree", "trees", REPTree, _space(
            IntParam("max_depth", 2, 15),
            IntParam("min_samples_leaf", 2, 12),
            IntParam("min_samples_split", 4, 24),
        ))
    )
    specs.append(
        AlgorithmSpec("RandomTree", "trees", RandomTree, _space(
            IntParam("max_depth", 2, 25),
            IntParam("min_samples_leaf", 1, 8),
            CategoricalParam("max_features", ["sqrt", "log2", None]),
        ))
    )
    specs.append(
        AlgorithmSpec("BFTree", "trees", BFTree, _space(
            IntParam("max_nodes", 4, 64),
            IntParam("min_samples_leaf", 1, 10),
        ))
    )
    specs.append(
        AlgorithmSpec("DecisionStump", "trees", DecisionStump, _space(
            CategoricalParam("criterion", ["gini", "entropy"]),
        ))
    )

    # -- forests / meta ensembles -----------------------------------------------------
    specs.append(
        AlgorithmSpec("RandomForest", "meta", RandomForest, _space(
            IntParam("n_estimators", 10, 80),
            CategoricalParam("max_features", ["sqrt", "log2"]),
            IntParam("max_depth", 3, 25),
            IntParam("min_samples_leaf", 1, 6),
        ), cost="moderate")
    )
    specs.append(
        AlgorithmSpec("ExtraTrees", "meta", ExtraTrees, _space(
            IntParam("n_estimators", 10, 80),
            CategoricalParam("max_features", ["sqrt", "log2"]),
            IntParam("max_depth", 3, 25),
        ), cost="moderate")
    )
    specs.append(
        AlgorithmSpec("Bagging", "meta", Bagging, _space(
            IntParam("n_estimators", 5, 30),
            FloatParam("max_samples", 0.5, 1.0),
        ), cost="moderate")
    )
    specs.append(
        AlgorithmSpec("AdaBoostM1", "meta", AdaBoostM1, _space(
            IntParam("n_estimators", 10, 60),
            FloatParam("learning_rate", 0.1, 2.0),
        ), cost="moderate")
    )
    specs.append(
        AlgorithmSpec("MultiBoostAB", "meta", MultiBoostAB, _space(
            IntParam("n_estimators", 10, 60),
            IntParam("n_committees", 2, 6),
        ), cost="moderate")
    )
    specs.append(
        AlgorithmSpec("LogitBoost", "meta", LogitBoost, _space(
            IntParam("n_estimators", 10, 60),
            FloatParam("learning_rate", 0.05, 1.0),
        ), cost="moderate")
    )
    specs.append(
        AlgorithmSpec("RandomSubSpace", "meta", RandomSubSpace, _space(
            IntParam("n_estimators", 5, 30),
            FloatParam("subspace_fraction", 0.3, 1.0),
        ), cost="moderate")
    )
    specs.append(
        AlgorithmSpec("RandomCommittee", "meta", RandomCommittee, _space(
            IntParam("n_estimators", 5, 30),
            IntParam("max_depth", 3, 25),
        ), cost="moderate")
    )
    specs.append(
        AlgorithmSpec("RotationForest", "meta", RotationForest, _space(
            IntParam("n_estimators", 4, 20),
            IntParam("n_groups", 2, 5),
        ), cost="expensive")
    )
    specs.append(
        AlgorithmSpec("StackingC", "meta", StackingC, _space(
            IntParam("cv", 2, 5),
        ), cost="expensive")
    )
    specs.append(
        AlgorithmSpec("VotingEnsemble", "meta", VotingEnsemble, _space(
            CategoricalParam("estimators", [None]),
        ), cost="moderate")
    )
    specs.append(
        AlgorithmSpec(
            "ClassificationViaRegression", "meta", ClassificationViaRegression, _space(
                FloatParam("alpha", 0.01, 10.0, log=True),
            )
        )
    )
    specs.append(
        AlgorithmSpec(
            "ClassificationViaClustering", "meta", ClassificationViaClustering, _space(
                IntParam("n_clusters", 2, 16),
            )
        )
    )

    # -- bayes ----------------------------------------------------------------------
    specs.append(
        AlgorithmSpec("NaiveBayes", "bayes", NaiveBayes, _space(
            FloatParam("var_smoothing", 1e-10, 1e-4, log=True),
        ))
    )
    specs.append(
        AlgorithmSpec("NaiveBayesMultinomial", "bayes", NaiveBayesMultinomial, _space(
            FloatParam("alpha", 0.01, 10.0, log=True),
        ))
    )
    specs.append(
        AlgorithmSpec("BayesNet", "bayes", BayesNet, _space(
            IntParam("n_bins", 3, 10),
            FloatParam("alpha", 0.1, 5.0),
        ))
    )
    specs.append(
        AlgorithmSpec("AODE", "bayes", AODE, _space(
            IntParam("n_bins", 3, 8),
            FloatParam("alpha", 0.1, 5.0),
            IntParam("max_parents", 2, 10),
        ), cost="moderate")
    )
    specs.append(
        AlgorithmSpec("HNB", "bayes", HNB, _space(
            IntParam("n_bins", 4, 10),
            FloatParam("alpha", 0.1, 5.0),
            IntParam("max_parents", 2, 12),
        ), cost="moderate")
    )

    # -- lazy -----------------------------------------------------------------------
    specs.append(
        AlgorithmSpec("IBk", "lazy", IBk, _space(
            IntParam("n_neighbors", 1, 30),
            CategoricalParam("weighting", ["uniform", "distance"]),
            CategoricalParam("p", [1, 2]),
        ))
    )
    specs.append(AlgorithmSpec("IB1", "lazy", IB1, _space(CategoricalParam("_dummy", [0]))))
    specs.append(
        AlgorithmSpec("KStar", "lazy", KStar, _space(
            FloatParam("blend", 0.05, 1.0),
        ))
    )
    specs.append(
        AlgorithmSpec("LWL", "lazy", LWL, _space(
            IntParam("n_neighbors", 5, 60),
        ))
    )

    # -- functions --------------------------------------------------------------------
    specs.append(
        AlgorithmSpec("Logistic", "functions", LogisticRegression, _space(
            FloatParam("C", 0.01, 100.0, log=True),
            IntParam("max_iter", 50, 400),
        ))
    )
    specs.append(
        AlgorithmSpec("SimpleLogistic", "functions", SimpleLogistic, _space(
            FloatParam("C", 0.001, 1.0, log=True),
            IntParam("max_iter", 20, 150),
        ))
    )
    specs.append(
        AlgorithmSpec("LDA", "functions", LDA, _space(
            FloatParam("shrinkage", 0.0, 0.9),
        ))
    )
    specs.append(
        AlgorithmSpec("SMO", "functions", SMO, _space(
            FloatParam("C", 0.01, 100.0, log=True),
            IntParam("max_passes", 1, 5),
        ), cost="expensive")
    )
    specs.append(
        AlgorithmSpec("LibSVM", "functions", LibSVMClassifier, _space(
            FloatParam("C", 0.01, 100.0, log=True),
            FloatParam("gamma", 0.001, 10.0, log=True),
            IntParam("max_passes", 1, 5),
        ), cost="expensive")
    )
    specs.append(
        AlgorithmSpec("MultilayerPerceptron", "functions", MultilayerPerceptron, _space(
            IntParam("hidden_layer_size", 4, 64),
            FloatParam("learning_rate_init", 0.001, 0.5, log=True),
            IntParam("max_iter", 50, 300),
            FloatParam("momentum", 0.1, 0.95),
        ), cost="expensive")
    )
    specs.append(
        AlgorithmSpec("MLP", "functions", MLPClassifier, _space(
            IntParam("hidden_layer", 1, 3),
            IntParam("hidden_layer_size", 5, 100),
            CategoricalParam("activation", ["relu", "tanh", "logistic"]),
            CategoricalParam("solver", ["adam", "sgd"]),
            FloatParam("learning_rate_init", 0.001, 0.3, log=True),
            IntParam("max_iter", 50, 300),
            FloatParam("momentum", 0.1, 0.95),
        ), cost="expensive", )
    )
    specs.append(
        AlgorithmSpec("RBFNetwork", "functions", RBFNetwork, _space(
            IntParam("n_centers", 3, 40),
            IntParam("max_iter", 50, 250),
        ), cost="moderate")
    )

    # -- rules ----------------------------------------------------------------------
    specs.append(AlgorithmSpec("ZeroR", "rules", ZeroR, _space(CategoricalParam("_dummy", [0]))))
    specs.append(
        AlgorithmSpec("OneR", "rules", OneR, _space(
            IntParam("n_bins", 2, 12),
        ))
    )
    specs.append(AlgorithmSpec("JRip", "rules", JRip, _space(CategoricalParam("random_state", [None]))))
    specs.append(AlgorithmSpec("PART", "rules", PART, _space(CategoricalParam("random_state", [None]))))
    specs.append(AlgorithmSpec("Ridor", "rules", Ridor, _space(CategoricalParam("random_state", [None]))))

    # -- misc -----------------------------------------------------------------------
    specs.append(AlgorithmSpec("HyperPipes", "misc", HyperPipes, _space(CategoricalParam("_dummy", [0]))))
    specs.append(
        AlgorithmSpec("VFI", "misc", VFI, _space(
            IntParam("n_bins", 4, 20),
        ))
    )
    return specs


class _DummyStripper:
    """Strip the placeholder '_dummy' hyperparameter used by parameter-free learners."""

    def __init__(self, factory: Callable[..., BaseClassifier]) -> None:
        self.factory = factory

    def __call__(self, **config: Any) -> BaseClassifier:
        config.pop("_dummy", None)
        return self.factory(**config)


class AlgorithmRegistry:
    """Named lookup over the algorithm catalogue."""

    def __init__(self, specs: list[AlgorithmSpec] | None = None) -> None:
        raw = specs if specs is not None else _build_specs()
        self._specs: dict[str, AlgorithmSpec] = {}
        for spec in raw:
            if "_dummy" in spec.space.names:
                spec = AlgorithmSpec(
                    name=spec.name,
                    group=spec.group,
                    factory=_DummyStripper(spec.factory),
                    space=spec.space,
                    cost=spec.cost,
                )
            if spec.name in self._specs:
                raise ValueError(f"duplicate algorithm name {spec.name!r}")
            self._specs[spec.name] = spec

    # -- lookup ---------------------------------------------------------------------
    @property
    def names(self) -> list[str]:
        return list(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self):
        return iter(self._specs.values())

    def get(self, name: str) -> AlgorithmSpec:
        if name not in self._specs:
            raise KeyError(f"unknown algorithm {name!r}; known: {sorted(self._specs)}")
        return self._specs[name]

    def build(self, name: str, config: dict[str, Any] | None = None) -> BaseClassifier:
        return self.get(name).build(config)

    def space(self, name: str) -> ConfigSpace:
        return self.get(name).space

    def subset(self, names: list[str]) -> "AlgorithmRegistry":
        """Return a registry restricted to ``names`` (order preserved)."""
        return AlgorithmRegistry([self.get(name) for name in names])

    def by_cost(self, *costs: str) -> "AlgorithmRegistry":
        """Return a registry restricted to the given cost classes."""
        return AlgorithmRegistry([s for s in self._specs.values() if s.cost in costs])

    def groups(self) -> dict[str, list[str]]:
        """Map Weka-style group -> list of algorithm names."""
        out: dict[str, list[str]] = {}
        for spec in self._specs.values():
            out.setdefault(spec.group, []).append(spec.name)
        return out


_DEFAULT: AlgorithmRegistry | None = None


def default_registry() -> AlgorithmRegistry:
    """Return the shared default catalogue (built lazily once)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = AlgorithmRegistry()
    return _DEFAULT


def CAList() -> list[str]:
    """Names of every algorithm in the default catalogue (paper's ``CAList``)."""
    return default_registry().names
