"""Evaluation substrate: performance tables, PORatio analysis, CASH comparisons."""

from .cash_eval import (
    CASHEvaluation,
    ComparisonResult,
    compare_tools,
    evaluate_cash_tool,
)
from .performance import PerformanceTable, evaluate_algorithm, tune_algorithm
from .poratio import HISTOGRAM_EDGES, PORatioAnalysis, analyze_selection, poratio_histogram
from .reporting import format_histogram, format_key_values, format_table

__all__ = [
    "CASHEvaluation",
    "ComparisonResult",
    "compare_tools",
    "evaluate_cash_tool",
    "PerformanceTable",
    "evaluate_algorithm",
    "tune_algorithm",
    "HISTOGRAM_EDGES",
    "PORatioAnalysis",
    "analyze_selection",
    "poratio_histogram",
    "format_histogram",
    "format_key_values",
    "format_table",
]
