"""Per-(algorithm, dataset) performance tables.

The paper's Section IV notation ``P(A, D)`` is the 10-fold cross-validation
accuracy of algorithm ``A`` on dataset ``D`` after tuning its hyperparameters
with a GA under a time limit.  A :class:`PerformanceTable` materialises this
quantity for a catalogue of algorithms over a collection of datasets; it backs

* the PORatio / Pmax / Pavg statistics of Tables VI–IX and XII–XIII,
* the synthetic paper-corpus generator (papers "report" noisy observations of
  these accuracies), and
* the single-best-algorithm baselines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .. import obs
from ..datasets.dataset import Dataset
from ..datasets.task import resolve_task
from ..execution import EvaluationEngine, ResultStore, WorkCoordinator, estimator_engine
from ..execution.objectives import objective_context_suffix
from ..hpo.base import Budget, HPOProblem
from ..hpo.genetic import GeneticAlgorithm
from ..learners.metrics import resolve_scorer
from ..learners.pipeline import registry_context_suffix, training_matrix
from ..learners.registry import AlgorithmRegistry
from ..learners.regression_registry import registry_for_task
from ..learners.validation import (
    cross_val_accuracy,
    cross_val_score_folds,
    plain_folds,
    stratified_folds,
)

__all__ = ["PerformanceTable", "evaluate_algorithm", "tune_algorithm"]


def _worst_score(task: str, metric: str | None) -> float:
    """Finite fallback score for a failed cell (0.0 for accuracy, as always)."""
    if resolve_task(task).is_classification and metric is None:
        return 0.0
    error = resolve_scorer(metric, task).error_score
    return error if np.isfinite(error) else 0.0


def evaluate_algorithm(
    registry: AlgorithmRegistry,
    algorithm: str,
    dataset: Dataset,
    config: dict | None = None,
    cv: int = 5,
    max_records: int | None = 400,
    random_state: int | None = 0,
    task: str = "classification",
    metric: str | None = None,
) -> float:
    """Cross-validation score of one algorithm configuration on one dataset.

    Classification (the default) scores stratified-CV accuracy exactly as
    before; ``task="regression"`` scores unstratified-CV R² (or the given
    metric, oriented greater-is-better).  Failures (an algorithm that cannot
    handle the dataset) score the metric's worst finite value — 0.0 for
    accuracy, matching how the CASH searches treat crashed configurations.
    Pipeline catalogue entries are scored on the raw attribute blocks (their
    steps preprocess per fold); bare estimators keep the encoded matrix.
    """
    data = dataset.subsample(max_records, random_state=random_state) if max_records else dataset
    try:
        spec = registry.get(algorithm)
    except KeyError:
        # Unknown algorithms have always scored as failures, not raised.
        return _worst_score(task, metric)
    X, y = training_matrix(data, spec)
    task = resolve_task(task).value
    if task == "classification" and metric is None:
        try:
            estimator = registry.build(algorithm, config)
            return cross_val_accuracy(estimator, X, y, cv=cv, random_state=random_state)
        except Exception as exc:  # noqa: BLE001 — failed algorithms score worst
            obs.error_event("performance.evaluate", exc)
            return 0.0
    scorer = resolve_scorer(metric, task)
    try:
        estimator = registry.build(algorithm, config)
        # Same fold protocol as cross_val_objective: stratified for
        # classification (whatever the metric), plain k-fold for regression.
        if task == "classification":
            folds = stratified_folds(y, cv=cv, random_state=random_state)
        else:
            folds = plain_folds(y, cv=cv, random_state=random_state)
        scores = cross_val_score_folds(
            estimator, X, y, folds, scorer, error_score=scorer.error_score
        )
        return float(scores.mean())
    except Exception as exc:  # noqa: BLE001 — failed algorithms score worst
        obs.error_event("performance.evaluate", exc)
        return _worst_score(task, metric)


def tune_algorithm(
    registry: AlgorithmRegistry,
    algorithm: str,
    dataset: Dataset,
    max_evaluations: int = 12,
    time_limit: float | None = None,
    cv: int = 3,
    max_records: int | None = 300,
    random_state: int | None = 0,
    task: str = "classification",
    metric: str | None = None,
) -> tuple[dict, float]:
    """GA-tune one algorithm on one dataset; return (best config, CV score).

    This reproduces the paper's ``P(A, D)`` protocol (GA with a time limit);
    the default budget is expressed in evaluations so results are deterministic
    across machines, but a wall-clock ``time_limit`` can be given as well.
    """
    spec = registry.get(algorithm)
    data = dataset.subsample(max_records, random_state=random_state) if max_records else dataset
    X, y = training_matrix(data, spec)
    # One engine per (algorithm, dataset) cell: the CV folds are computed once
    # and shared by every configuration the GA proposes.
    engine = estimator_engine(
        spec.build,
        X,
        y,
        cv=cv,
        random_state=random_state,
        name=f"tune-{algorithm}-{dataset.name}",
        task=task,
        metric=metric,
    )
    problem = HPOProblem(spec.space, name=f"tune-{algorithm}-{dataset.name}", engine=engine)
    optimizer = GeneticAlgorithm(
        population_size=min(8, max(4, max_evaluations // 2)),
        n_generations=max(1, max_evaluations // 4),
        random_state=random_state,
    )
    budget = Budget(max_evaluations=max_evaluations, time_limit=time_limit)
    result = optimizer.optimize(problem, budget)
    if not np.isfinite(result.best_score):
        return spec.default_config(), _worst_score(task, metric)
    return result.best_config, float(result.best_score)


@dataclass
class PerformanceTable:
    """Dense table of ``P(A, D)`` scores with the paper's summary statistics."""

    algorithms: list[str]
    datasets: list[str]
    scores: np.ndarray  # shape (n_datasets, n_algorithms)
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.scores = np.asarray(self.scores, dtype=np.float64)
        if self.scores.shape != (len(self.datasets), len(self.algorithms)):
            raise ValueError(
                f"scores shape {self.scores.shape} does not match "
                f"({len(self.datasets)}, {len(self.algorithms)})"
            )

    # -- construction ---------------------------------------------------------------
    @classmethod
    def compute(
        cls,
        datasets: list[Dataset],
        registry: AlgorithmRegistry | None = None,
        tune: bool = False,
        cv: int = 3,
        max_records: int | None = 300,
        max_evaluations: int = 8,
        random_state: int = 0,
        n_workers: int = 1,
        store: ResultStore | None = None,
        warm_start: bool = True,
        task: str = "classification",
        metric: str | None = None,
        coordinator: WorkCoordinator | None = None,
    ) -> "PerformanceTable":
        """Evaluate every catalogue algorithm on every dataset.

        With ``tune=False`` (default) each algorithm is scored with its default
        configuration — far cheaper and sufficient for corpus generation and
        relative comparisons.  With ``tune=True`` each entry is GA-tuned first,
        matching the paper's ``P(A, D)`` definition more closely.

        The (algorithm, dataset) cells are independent, so they run through
        one :class:`EvaluationEngine` batch: ``n_workers > 1`` evaluates cells
        concurrently.  Per-cell seeds are drawn from one generator in a fixed
        order, so parallelism adds no nondeterminism of its own (learners that
        default to an unseeded ``random_state``, e.g. ``RandomTree``, vary
        between runs at any worker count, exactly as they always have).

        With a ``store``, every finished cell is persisted and (under
        ``warm_start``, the default) reloaded on the next call, so a repeat —
        or a run interrupted midway, or one extended with more datasets
        appended to the list — resumes from the cells already on disk instead
        of recomputing the whole table.  Cells are keyed by dataset name,
        algorithm and per-cell seed, and the shard context fingerprints the
        measurement protocol, so a store can never leak scores between
        incompatible tables.

        ``task="regression"`` computes the same table over a regressor
        catalogue with CV R² cells (or the given ``metric``); every dataset
        must carry the matching task type.

        A ``coordinator`` replaces the in-process engine with the fleet
        protocol: this call becomes one worker of a fleet whose members all
        invoke ``compute`` with identical arguments over a shared store
        backend (the coordinator's own store; ``store``/``n_workers`` are
        ignored).  Cells are leased, stolen and persisted through the store
        under the *same* context and fingerprints as the engine path, so
        coordinated and serial builds produce identical tables and resume
        each other's partial progress.
        """
        task = resolve_task(task).value
        registry = registry if registry is not None else registry_for_task(task)
        rng = np.random.default_rng(random_state)
        names = registry.names
        dataset_by_name = {dataset.name: dataset for dataset in datasets}
        if len(dataset_by_name) != len(datasets):
            # Cells (and table rows) are keyed by name; silently collapsing
            # duplicates would score the wrong data.
            raise ValueError("dataset names must be unique to compute a table")
        mismatched = [d.name for d in datasets if getattr(d.task, "value", d.task) != task]
        if mismatched:
            raise ValueError(
                f"datasets {mismatched} do not carry task={task!r}; "
                "a performance table mixes one task type only"
            )
        cells = []
        for dataset in datasets:
            # The cell fingerprint carries the dataset's shape so a store
            # never replays scores for a same-named dataset whose contents
            # changed (e.g. the suite was regenerated with more records).
            # Classification keeps its historical class-count suffix so
            # existing store fingerprints stay valid.
            target_tag = dataset.n_classes if task == "classification" else "reg"
            shape = f"{dataset.n_records}x{dataset.n_attributes}x{target_tag}"
            for algorithm in names:
                seed = int(rng.integers(0, 2**31 - 1))
                cells.append(
                    {
                        "dataset": dataset.name,
                        "shape": shape,
                        "algorithm": algorithm,
                        "seed": seed,
                    }
                )

        def cell_objective(cell: dict) -> float:
            dataset = dataset_by_name[cell["dataset"]]
            if tune:
                _, score = tune_algorithm(
                    registry,
                    cell["algorithm"],
                    dataset,
                    max_evaluations=max_evaluations,
                    cv=cv,
                    max_records=max_records,
                    random_state=cell["seed"],
                    task=task,
                    metric=metric,
                )
                return score
            return evaluate_algorithm(
                registry,
                cell["algorithm"],
                dataset,
                cv=cv,
                max_records=max_records,
                random_state=cell["seed"],
                task=task,
                metric=metric,
            )

        # Pipeline catalogues append their structure tag: cells are keyed by
        # algorithm *name*, and "J48" the pipeline is a different measurement
        # than "J48" the bare tree.  Bare registries contribute nothing, so
        # historical shard contexts stay byte-identical.
        context = (
            f"performance-table-tune{tune}-cv{cv}-sub{max_records}"
            f"-evals{max_evaluations if tune else 0}-rs{random_state}"
            f"{objective_context_suffix(task, metric)}"
            f"{registry_context_suffix(registry)}"
        )
        dataset_index = {dataset.name: i for i, dataset in enumerate(datasets)}
        scores = np.zeros((len(datasets), len(names)))
        with obs.span(
            "table.compute",
            attrs={
                "n_datasets": len(datasets),
                "n_algorithms": len(names),
                "tuned": tune,
                "mode": "coordinator" if coordinator is not None else "engine",
            },
        ):
            if coordinator is not None:
                by_key = coordinator.run(
                    context, cells, cell_objective, crash_score=_worst_score(task, metric)
                )
                for cell in cells:
                    j = names.index(cell["algorithm"])
                    score = by_key[WorkCoordinator.cell_key(cell)]
                    scores[dataset_index[cell["dataset"]], j] = score
                execution_stats = {"coordinator": coordinator.stats.as_dict()}
            else:
                engine = EvaluationEngine(
                    cell_objective,
                    n_workers=n_workers,
                    crash_score=_worst_score(task, metric),
                    name="performance-table",
                    store=store,
                    store_context=context,
                    warm_start=warm_start,
                )
                outcomes = engine.evaluate_many(cells)
                for cell, outcome in zip(cells, outcomes):
                    j = names.index(cell["algorithm"])
                    scores[dataset_index[cell["dataset"]], j] = outcome.score
                execution_stats = {"engine": engine.stats.as_dict()}
        table_metadata = {
            "tuned": tune,
            "cv": cv,
            "max_records": max_records,
            **execution_stats,
        }
        if task != "classification" or metric is not None:
            table_metadata["task"] = task
            table_metadata["metric"] = resolve_scorer(metric, task).name
        return cls(
            algorithms=list(names),
            datasets=[d.name for d in datasets],
            scores=scores,
            metadata=table_metadata,
        )

    # -- lookups --------------------------------------------------------------------
    def _dataset_index(self, dataset: str) -> int:
        try:
            return self.datasets.index(dataset)
        except ValueError as exc:
            raise KeyError(f"unknown dataset {dataset!r}") from exc

    def _algorithm_index(self, algorithm: str) -> int:
        try:
            return self.algorithms.index(algorithm)
        except ValueError as exc:
            raise KeyError(f"unknown algorithm {algorithm!r}") from exc

    def score(self, algorithm: str, dataset: str) -> float:
        """``P(A, D)``."""
        return float(self.scores[self._dataset_index(dataset), self._algorithm_index(algorithm)])

    def dataset_scores(self, dataset: str) -> dict[str, float]:
        row = self.scores[self._dataset_index(dataset)]
        return {a: float(s) for a, s in zip(self.algorithms, row)}

    def best_algorithm(self, dataset: str) -> str:
        """``argmax_A P(A, D)``."""
        row = self.scores[self._dataset_index(dataset)]
        return self.algorithms[int(np.argmax(row))]

    def p_max(self, dataset: str) -> float:
        """``Pmax(D)`` — the best score any catalogue algorithm achieves on D."""
        return float(self.scores[self._dataset_index(dataset)].max())

    def p_avg(self, dataset: str) -> float:
        """``Pavg(D)`` — average score of the algorithms that can process D (score > 0)."""
        row = self.scores[self._dataset_index(dataset)]
        valid = row[row > 0]
        return float(valid.mean()) if valid.size else 0.0

    def poratio(self, algorithm: str, dataset: str) -> float:
        """Definition 1 (PORatio): fraction of catalogue algorithms not better than A on D."""
        row = self.scores[self._dataset_index(dataset)]
        score = self.score(algorithm, dataset)
        return float(np.mean(row <= score + 1e-12))

    def ranking(self, dataset: str) -> list[str]:
        """Algorithms sorted from best to worst on ``dataset``."""
        row = self.scores[self._dataset_index(dataset)]
        return [self.algorithms[i] for i in np.argsort(row)[::-1]]

    def average_poratio_of_algorithm(self, algorithm: str) -> float:
        """Average PORatio of one algorithm across all datasets in the table."""
        return float(np.mean([self.poratio(algorithm, d) for d in self.datasets]))

    def average_score_of_algorithm(self, algorithm: str) -> float:
        """Average ``P(A, D)`` of one algorithm across all datasets in the table."""
        j = self._algorithm_index(algorithm)
        return float(self.scores[:, j].mean())

    def top_algorithms(self, k: int = 3, by: str = "poratio") -> list[tuple[str, float]]:
        """Top-k single algorithms by average PORatio or average score (Tables VIII/IX)."""
        if by == "poratio":
            values = [(a, self.average_poratio_of_algorithm(a)) for a in self.algorithms]
        elif by == "score":
            values = [(a, self.average_score_of_algorithm(a)) for a in self.algorithms]
        else:
            raise ValueError("by must be 'poratio' or 'score'")
        return sorted(values, key=lambda t: t[1], reverse=True)[:k]

    # -- persistence -------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "algorithms": self.algorithms,
            "datasets": self.datasets,
            "scores": self.scores.tolist(),
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PerformanceTable":
        return cls(
            algorithms=list(payload["algorithms"]),
            datasets=list(payload["datasets"]),
            scores=np.array(payload["scores"], dtype=np.float64),
            metadata=dict(payload.get("metadata", {})),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "PerformanceTable":
        return cls.from_dict(json.loads(Path(path).read_text()))
