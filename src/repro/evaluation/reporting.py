"""Plain-text rendering of the paper's tables and figures.

The benchmark harness prints the same rows/series the paper reports; these
helpers format them without any plotting dependency (Fig. 3 is rendered as an
ASCII bar chart).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_histogram", "format_key_values"]


def format_table(
    rows: Sequence[Mapping],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(r[i]) for r in rendered)) for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_histogram(
    histogram: Mapping[str, float],
    title: str | None = None,
    width: int = 40,
    unit: str = "%",
) -> str:
    """Render a {bin label: percentage} mapping as an ASCII bar chart (Fig. 3)."""
    if not histogram:
        return (title + "\n" if title else "") + "(empty histogram)"
    lines = []
    if title:
        lines.append(title)
    peak = max(histogram.values()) or 1.0
    label_width = max(len(label) for label in histogram)
    for label, value in histogram.items():
        bar = "#" * int(round(width * value / peak))
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.1f}{unit}")
    return "\n".join(lines)


def format_key_values(values: Mapping[str, object], title: str | None = None) -> str:
    """Render a flat mapping as aligned ``key : value`` lines."""
    lines = []
    if title:
        lines.append(title)
    if not values:
        lines.append("(empty)")
        return "\n".join(lines)
    key_width = max(len(str(key)) for key in values)
    for key, value in values.items():
        if isinstance(value, float):
            value = f"{value:.4f}"
        lines.append(f"{str(key).ljust(key_width)} : {value}")
    return "\n".join(lines)
