"""Evaluation of CASH tools under time limits (the Table X protocol).

Table XIV defines ``f(T, D)`` as the 10-fold cross-validation accuracy of the
solution ``T(D)`` (the algorithm + hyperparameter setting a CASH technique
returns for ``D``).  :func:`evaluate_cash_tool` runs a tool under a time limit,
re-fits the returned configuration and scores it with k-fold CV on the full
dataset; :func:`compare_tools` runs several tools over several datasets and
budgets, producing the rows of Table X.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from .. import obs
from ..datasets.dataset import Dataset
from ..learners.pipeline import training_matrix
from ..learners.registry import AlgorithmRegistry, default_registry
from ..learners.validation import cross_val_accuracy

__all__ = ["CASHTool", "CASHEvaluation", "evaluate_cash_tool", "compare_tools", "ComparisonResult"]


class CASHTool(Protocol):
    """Anything that answers a CASH query: Auto-Model's responder or a baseline."""

    def run(self, dataset: Dataset, time_limit: float | None, max_evaluations: int | None): ...


@dataclass
class CASHEvaluation:
    """Outcome of one (tool, dataset, budget) cell."""

    tool: str
    dataset: str
    time_limit: float | None
    algorithm: str
    config: dict
    f_score: float
    search_score: float
    n_evaluations: int
    elapsed: float


def _run_tool(tool, dataset: Dataset, time_limit: float | None, max_evaluations: int | None):
    """Dispatch over the two solution interfaces (UDR uses respond, baselines use run)."""
    if hasattr(tool, "respond"):
        return tool.respond(dataset, time_limit=time_limit, max_evaluations=max_evaluations)
    return tool.run(dataset, time_limit=time_limit, max_evaluations=max_evaluations)


def evaluate_cash_tool(
    tool,
    dataset: Dataset,
    tool_name: str,
    time_limit: float | None = 30.0,
    max_evaluations: int | None = None,
    cv: int = 10,
    registry: AlgorithmRegistry | None = None,
    eval_max_records: int | None = 800,
    random_state: int | None = 0,
) -> CASHEvaluation:
    """Run a CASH tool on ``dataset`` and compute ``f(T, D)`` for its solution."""
    registry = registry or default_registry()
    start = time.monotonic()
    solution = _run_tool(tool, dataset, time_limit, max_evaluations)
    elapsed = time.monotonic() - start
    data = (
        dataset.subsample(eval_max_records, random_state=random_state)
        if eval_max_records
        else dataset
    )
    try:
        X, y = training_matrix(data, registry.get(solution.algorithm))
        estimator = registry.build(solution.algorithm, solution.config)
        f_score = cross_val_accuracy(estimator, X, y, cv=cv, random_state=random_state)
    except Exception as exc:  # noqa: BLE001 — a failed re-evaluation scores 0
        obs.error_event("cash.evaluate", exc)
        f_score = 0.0
    return CASHEvaluation(
        tool=tool_name,
        dataset=dataset.name,
        time_limit=time_limit,
        algorithm=solution.algorithm,
        config=dict(solution.config),
        f_score=float(f_score),
        search_score=float(solution.cv_score),
        n_evaluations=solution.n_evaluations,
        elapsed=elapsed,
    )


@dataclass
class ComparisonResult:
    """Grid of evaluations over tools × datasets × time limits (Table X shape)."""

    evaluations: list[CASHEvaluation] = field(default_factory=list)

    def add(self, evaluation: CASHEvaluation) -> None:
        self.evaluations.append(evaluation)

    def f_score(self, tool: str, dataset: str, time_limit: float | None) -> float:
        for evaluation in self.evaluations:
            if (
                evaluation.tool == tool
                and evaluation.dataset == dataset
                and evaluation.time_limit == time_limit
            ):
                return evaluation.f_score
        raise KeyError(f"no evaluation for ({tool}, {dataset}, {time_limit})")

    def tools(self) -> list[str]:
        seen: dict[str, None] = {}
        for evaluation in self.evaluations:
            seen.setdefault(evaluation.tool, None)
        return list(seen)

    def datasets(self) -> list[str]:
        seen: dict[str, None] = {}
        for evaluation in self.evaluations:
            seen.setdefault(evaluation.dataset, None)
        return list(seen)

    def time_limits(self) -> list[float | None]:
        seen: dict[float | None, None] = {}
        for evaluation in self.evaluations:
            seen.setdefault(evaluation.time_limit, None)
        return list(seen)

    def table(self) -> list[dict]:
        """Rows: one per (time limit, tool) with per-dataset f scores (Table X layout)."""
        rows = []
        for time_limit in self.time_limits():
            for tool in self.tools():
                row: dict = {"time_limit": time_limit, "tool": tool}
                for dataset in self.datasets():
                    try:
                        row[dataset] = round(self.f_score(tool, dataset, time_limit), 3)
                    except KeyError:
                        row[dataset] = None
                rows.append(row)
        return rows

    def win_counts(self, time_limit: float | None = None) -> dict[str, int]:
        """How many datasets each tool wins (or ties) on, per time limit."""
        wins = {tool: 0 for tool in self.tools()}
        limits = [time_limit] if time_limit is not None else self.time_limits()
        for limit in limits:
            for dataset in self.datasets():
                scores = {}
                for tool in self.tools():
                    try:
                        scores[tool] = self.f_score(tool, dataset, limit)
                    except KeyError:
                        continue
                if not scores:
                    continue
                best = max(scores.values())
                for tool, score in scores.items():
                    if np.isclose(score, best, atol=1e-9):
                        wins[tool] += 1
        return wins

    def mean_f_score(self, tool: str, time_limit: float | None = None) -> float:
        values = [
            evaluation.f_score
            for evaluation in self.evaluations
            if evaluation.tool == tool
            and (time_limit is None or evaluation.time_limit == time_limit)
        ]
        if not values:
            raise KeyError(f"no evaluations for tool {tool!r}")
        return float(np.mean(values))


def compare_tools(
    tools: dict[str, object],
    datasets: list[Dataset],
    time_limits: list[float | None] = (30.0,),
    max_evaluations: int | None = None,
    cv: int = 10,
    registry: AlgorithmRegistry | None = None,
    eval_max_records: int | None = 800,
    random_state: int | None = 0,
) -> ComparisonResult:
    """Evaluate every tool on every dataset under every time limit."""
    result = ComparisonResult()
    for time_limit in time_limits:
        for dataset in datasets:
            for name, tool in tools.items():
                result.add(
                    evaluate_cash_tool(
                        tool,
                        dataset,
                        tool_name=name,
                        time_limit=time_limit,
                        max_evaluations=max_evaluations,
                        cv=cv,
                        registry=registry,
                        eval_max_records=eval_max_records,
                        random_state=random_state,
                    )
                )
    return result
