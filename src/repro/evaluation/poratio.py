"""PORatio analysis (Definition 1) and the summary statistics of Section IV-A.

``PORatio(A, D)`` is the fraction of catalogue algorithms whose performance on
``D`` does not exceed that of ``A`` — 1.0 means nothing in the catalogue beats
``A`` on that dataset.  The module computes, on top of a
:class:`~repro.evaluation.performance.PerformanceTable`:

* the per-dataset PORatio of a selection map (CRelations or SNA picks),
* its average and distribution histogram (Table VIII + Fig. 3, Table XII), and
* the average-performance counterparts (Tables IX and XIII).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .performance import PerformanceTable

__all__ = ["PORatioAnalysis", "poratio_histogram", "analyze_selection"]

# Fig. 3's bin edges: [0, .2), [.2, .4), [.4, .6), [.6, .8), [.8, 1.0]
HISTOGRAM_EDGES = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def poratio_histogram(poratios: list[float]) -> dict[str, float]:
    """Percentage of datasets whose PORatio falls in each Fig. 3 bin."""
    values = np.asarray(poratios, dtype=np.float64)
    if values.size == 0:
        raise ValueError("empty PORatio list")
    edges = np.asarray(HISTOGRAM_EDGES)
    counts, _ = np.histogram(values, bins=edges)
    # np.histogram makes the last bin closed on the right, matching [0.8, 1.0].
    percentages = counts / values.size * 100.0
    labels = [
        f"[{low:.1f},{high:.1f})" if i < len(edges) - 2 else f"[{low:.1f},{high:.1f}]"
        for i, (low, high) in enumerate(zip(edges[:-1], edges[1:]))
    ]
    return dict(zip(labels, percentages.tolist()))


@dataclass
class PORatioAnalysis:
    """PORatio / performance statistics of one selection map over one table."""

    selection: dict[str, str]
    poratios: dict[str, float]
    performances: dict[str, float]
    p_max: dict[str, float]
    p_avg: dict[str, float]
    top_by_poratio: list[tuple[str, float]] = field(default_factory=list)
    top_by_score: list[tuple[str, float]] = field(default_factory=list)

    @property
    def average_poratio(self) -> float:
        return float(np.mean(list(self.poratios.values())))

    @property
    def average_performance(self) -> float:
        return float(np.mean(list(self.performances.values())))

    def histogram(self) -> dict[str, float]:
        return poratio_histogram(list(self.poratios.values()))

    def beats_single_algorithms(self) -> bool:
        """True when the selection's average PORatio beats the best single algorithm."""
        if not self.top_by_poratio:
            return True
        return self.average_poratio >= self.top_by_poratio[0][1]

    def per_dataset_rows(self) -> list[dict]:
        """Rows in the layout of Tables VI/VII."""
        rows = []
        for dataset in self.selection:
            rows.append(
                {
                    "dataset": dataset,
                    "selected": self.selection[dataset],
                    "poratio": round(self.poratios[dataset], 2),
                    "performance": round(self.performances[dataset], 2),
                    "p_max": round(self.p_max[dataset], 2),
                    "p_avg": round(self.p_avg[dataset], 2),
                }
            )
        return rows


def analyze_selection(
    selection: dict[str, str],
    performance: PerformanceTable,
    top_k: int = 3,
) -> PORatioAnalysis:
    """Analyse a dataset→algorithm selection map against a performance table.

    ``selection`` may be the knowledge pairs (``CRelations``) or the decision
    model's picks (``SNA(D)``); datasets missing from the performance table are
    ignored.
    """
    known = {d: a for d, a in selection.items() if d in performance.datasets}
    if not known:
        raise ValueError("no dataset of the selection appears in the performance table")
    poratios, performances, p_max, p_avg = {}, {}, {}, {}
    for dataset, algorithm in known.items():
        if algorithm not in performance.algorithms:
            # Selection outside the catalogue: count it as a complete miss.
            poratios[dataset] = 0.0
            performances[dataset] = 0.0
        else:
            poratios[dataset] = performance.poratio(algorithm, dataset)
            performances[dataset] = performance.score(algorithm, dataset)
        p_max[dataset] = performance.p_max(dataset)
        p_avg[dataset] = performance.p_avg(dataset)
    return PORatioAnalysis(
        selection=known,
        poratios=poratios,
        performances=performances,
        p_max=p_max,
        p_avg=p_avg,
        top_by_poratio=performance.top_algorithms(k=top_k, by="poratio"),
        top_by_score=performance.top_algorithms(k=top_k, by="score"),
    )
