"""The unified trial-execution engine.

Every configuration score in this reproduction — the paper's ``f(λ, A, D)``
— used to be computed through ad-hoc closures calling cross-validation
serially.  :class:`EvaluationEngine` is the single execution path shared by
the HPO optimizers, the UDR, the corpus generator and the CASH baselines.
It provides

* **memoization** — a config-fingerprint cache with hit/miss statistics, so
  GA elites, BO incumbent perturbations and selector probes are never paid
  for twice (:mod:`repro.execution.cache`);
* **batch evaluation** — :meth:`EvaluationEngine.evaluate_many` evaluates a
  list of configurations with optional thread/process parallelism via
  :mod:`concurrent.futures`, returning outcomes in deterministic input
  order regardless of completion order;
* **centralized budget enforcement** — every evaluation (including cache
  hits, which are still logical evaluations) is recorded against the
  :class:`~repro.execution.budget.Budget`; batches stop scheduling work the
  moment the budget is exhausted, and skipped items come back as ``None``;
* **crash accounting** — objectives that raise score ``crash_score`` (the
  HPO convention is ``-inf``, the table-building convention is ``0.0``)
  instead of aborting the search, and the engine counts them.

Parallel batches are *replay-equivalent* to serial ones: a batch is always
fully scheduled before its scores are consumed, so GA generations, BO
initial designs and successive-halving rungs produce identical trajectories
at any worker count (given a fixed ``random_state``).
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from .. import obs
from . import dataplane
from .budget import Budget
from .cache import EvaluationCache, config_fingerprint
from .store import ResultStore, fingerprint_key

__all__ = [
    "EvalOutcome",
    "EngineStats",
    "EvaluationEngine",
    "timed_call",
    "traced_timed_call",
    "plane_timed_call",
    "traced_plane_timed_call",
]

_BACKENDS = ("serial", "thread", "process")


def timed_call(objective: Callable[[dict], float], config: dict) -> tuple[float | None, float, str | None]:
    """Run one objective call, returning ``(score, elapsed, error)``.

    Module-level so the process backend can pickle it; exceptions are
    converted to an error string because the engine treats crashes as data.
    The :class:`~repro.execution.coordinator.WorkCoordinator` shares this
    exact call path so distributed cells score identically to engine cells.
    """
    start = time.monotonic()
    try:
        score = float(objective(config))
        return score, time.monotonic() - start, None
    except Exception as exc:  # noqa: BLE001 — crash accounting, not control flow
        return None, time.monotonic() - start, repr(exc)


_timed_call = timed_call  # historical private name, kept for callers/tests


def traced_timed_call(
    objective: Callable[[dict], float], config: dict, header: str | None
) -> tuple[float | None, float, str | None]:
    """:func:`timed_call` under the submitting batch's trace context.

    Executor workers — thread pools do not inherit contextvars, process
    pools not even memory — re-establish the caller's span from the header
    and record their own child span, so per-trial work lands in the trace
    tree under ``evaluate_many``.  Module-level so the process backend can
    pickle it.
    """
    with obs.attach(obs.parse_header(header)):
        with obs.span("engine.trial"):
            return timed_call(objective, config)


def plane_timed_call(
    objective: Callable[[dict], float], config: dict
) -> tuple[float | None, float, str | None, bool]:
    """:func:`timed_call` plus a data-plane flag (4-tuple).

    The final element reports whether the objective re-bound its dataset
    payload from the worker-local registry — i.e. the submit pickled only
    the light config machinery and no dataset bytes crossed the process
    boundary.  The parent aggregates it into ``EngineStats.data_plane_hits``.
    """
    score, elapsed, error = timed_call(objective, config)
    return score, elapsed, error, bool(getattr(objective, "plane_attached", False))


def traced_plane_timed_call(
    objective: Callable[[dict], float], config: dict, header: str | None
) -> tuple[float | None, float, str | None, bool]:
    """:func:`plane_timed_call` under the submitting batch's trace context."""
    with obs.attach(obs.parse_header(header)):
        with obs.span("engine.trial"):
            return plane_timed_call(objective, config)


@dataclass
class EvalOutcome:
    """Result of evaluating one configuration through the engine."""

    config: dict[str, Any]
    score: float
    elapsed: float = 0.0
    cached: bool = False
    error: str | None = None

    @property
    def crashed(self) -> bool:
        return self.error is not None


@dataclass
class EngineStats:
    """Counters the engine accumulates across its lifetime."""

    n_executions: int = 0  # real objective calls
    n_cache_hits: int = 0
    n_store_hits: int = 0  # subset of cache hits served from the result store
    n_crashes: int = 0
    n_batches: int = 0
    largest_batch: int = 0
    objective_time: float = 0.0  # summed per-evaluation wall time
    wall_time: float = 0.0  # engine-side wall time spent evaluating
    last_error: str | None = None
    backend: str = "serial"
    requested_backend: str = "serial"
    n_workers: int = 1
    crash_classes: dict[str, int] = field(default_factory=dict)
    # Data-plane accounting (process backend): payload blocks registered with
    # the pool initializer (shipped at most once per worker spawn) and trials
    # whose submit carried no dataset bytes because the worker re-bound its
    # payload from the process-local registry.
    data_plane_payloads: int = 0
    data_plane_hits: int = 0

    @property
    def n_evaluations(self) -> int:
        """Logical evaluations served (executions + cache hits)."""
        return self.n_executions + self.n_cache_hits

    @property
    def hit_rate(self) -> float:
        total = self.n_evaluations
        return self.n_cache_hits / total if total else 0.0

    @property
    def evals_per_second(self) -> float:
        return self.n_evaluations / self.wall_time if self.wall_time > 0 else 0.0

    @property
    def parallel_speedup(self) -> float:
        """Summed objective time over engine wall time (>1 ⇒ parallel/cached win)."""
        return self.objective_time / self.wall_time if self.wall_time > 0 else 1.0

    def as_dict(self) -> dict:
        out = {
            "backend": self.backend,
            "n_workers": self.n_workers,
            "n_evaluations": self.n_evaluations,
            "n_executions": self.n_executions,
            "n_cache_hits": self.n_cache_hits,
            "n_store_hits": self.n_store_hits,
            "cache_hit_rate": round(self.hit_rate, 4),
            "n_crashes": self.n_crashes,
            "crash_taxonomy": dict(self.crash_classes),
            "n_batches": self.n_batches,
            "largest_batch": self.largest_batch,
            "objective_time": round(self.objective_time, 4),
            "wall_time": round(self.wall_time, 4),
            "evals_per_second": round(self.evals_per_second, 2),
            "parallel_speedup": round(self.parallel_speedup, 2),
        }
        if self.data_plane_payloads:
            out["data_plane_payloads"] = self.data_plane_payloads
            out["data_plane_hits"] = self.data_plane_hits
        if self.backend != self.requested_backend:
            out["backend_fallback_from"] = self.requested_backend
        return out


class EvaluationEngine:
    """Cached, parallel, budget-aware executor for one objective function.

    Parameters
    ----------
    objective:
        The black-box ``f(config) -> float`` being maximised.
    cache:
        Memoize scores by configuration fingerprint (default on).  Cache hits
        still count as evaluations against the budget, so search trajectories
        are identical with and without the cache — only cheaper.
    n_workers / backend:
        ``backend="thread"``/``"process"`` with ``n_workers > 1`` evaluates
        batches concurrently; ``"serial"`` (or ``n_workers=1``) runs inline.
        The process backend requires a picklable objective and falls back to
        threads otherwise.
    crash_score:
        Score assigned to configurations whose evaluation raises.
    store / store_context / warm_start:
        An optional :class:`~repro.execution.store.ResultStore` makes results
        durable across runs.  With a store, every real execution is persisted
        (write-through, exactly one line per fingerprint); ``store_context``
        names the shard (defaults to ``name`` — callers should fold the
        dataset/objective identity into it).  ``warm_start=True`` additionally
        serves memory-cache misses from the store, so a repeat run replays a
        prior run's scores without paying for the objective.  Store hits
        count as cache hits (and against the budget), which keeps search
        trajectories identical to a cold run — only faster.
    """

    def __init__(
        self,
        objective: Callable[[dict[str, Any]], float],
        *,
        cache: bool = True,
        n_workers: int = 1,
        backend: str = "thread",
        crash_score: float = float("-inf"),
        name: str = "engine",
        store: ResultStore | None = None,
        store_context: str | None = None,
        warm_start: bool = False,
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.objective = objective
        self.use_cache = cache
        self.n_workers = n_workers
        self.requested_backend = backend
        self.backend = self._resolve_backend(backend, n_workers, objective)
        self.crash_score = float(crash_score)
        self.name = name
        self.store = store
        self.store_context = store_context if store_context is not None else name
        self.warm_start = bool(warm_start) and store is not None
        self.cache = EvaluationCache()
        self._stats = EngineStats(
            backend=self.backend,
            requested_backend=backend if n_workers > 1 else self.backend,
            n_workers=self.n_workers,
        )
        self._executor: Executor | None = None
        self._plane_active = False

    @staticmethod
    def _resolve_backend(backend: str, n_workers: int, objective: Callable) -> str:
        if n_workers == 1:
            return "serial"
        if backend == "process":
            try:
                pickle.dumps(objective)
            except Exception as exc:  # noqa: BLE001 — probe, not control flow
                # Closures over datasets are not picklable; threads still help
                # because numpy releases the GIL during the heavy linear algebra.
                obs.error_event("engine.pickle_probe", exc)
                return "thread"
        return backend

    # -- introspection -----------------------------------------------------------------
    @property
    def stats(self) -> EngineStats:
        return self._stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EvaluationEngine(name={self.name!r}, backend={self.backend!r}, "
            f"n_workers={self.n_workers}, evaluations={self._stats.n_evaluations})"
        )

    # -- seeding -----------------------------------------------------------------------
    def seed(self, config: dict[str, Any], score: float) -> None:
        """Pre-populate the cache with an externally obtained score."""
        self.cache.store(config_fingerprint(config), float(score))

    def cached_score(self, config: dict[str, Any]) -> float | None:
        """Peek at the cached score for ``config`` without counting a hit."""
        return self.cache.peek(config_fingerprint(config))

    def warm_start_configs(self, k: int = 5) -> list[dict[str, Any]]:
        """The k best prior-run configurations stored for this engine's context.

        Empty without a store; optimizers use this to seed their initial
        designs (see ``BaseOptimizer``).
        """
        if self.store is None:
            return []
        return [config for config, _ in self.store.top_k(self.store_context, k)]

    def _lookup(self, fingerprint: tuple) -> float | None:
        """Two-tier lookup: memory cache first, then (if warm-start) the store.

        A store hit is promoted into the memory cache so subsequent repeats
        stay in-process; callers count the returned hit against
        ``n_cache_hits`` exactly like a memory hit.
        """
        hit = self.cache.lookup(fingerprint)
        if hit is not None:
            return hit
        if self.warm_start and self.store is not None:
            score = self.store.get(self.store_context, fingerprint)
            if score is not None:
                self.cache.store(fingerprint, score)
                self._stats.n_store_hits += 1
                return score
        return None

    # -- single evaluation ----------------------------------------------------------------
    def evaluate(
        self,
        config: dict[str, Any],
        *,
        budget: Budget | None = None,
        use_cache: bool | None = None,
    ) -> EvalOutcome:
        """Evaluate one configuration, recording it against ``budget``.

        ``use_cache=False`` forces a real objective call (the selector's cost
        probe needs genuine timings) but still stores the result for reuse.
        """
        read_cache = self.use_cache if use_cache is None else use_cache
        fingerprint = config_fingerprint(config)
        t0 = time.monotonic()
        if budget is not None:
            budget.record_evaluation()
        if read_cache:
            hit = self._lookup(fingerprint)
            if hit is not None:
                self._stats.n_cache_hits += 1
                self._stats.wall_time += time.monotonic() - t0
                self._emit_cached(fingerprint, hit)
                return EvalOutcome(config=dict(config), score=hit, cached=True)
        outcome = self._execute(config, fingerprint)
        self._stats.wall_time += time.monotonic() - t0
        return outcome

    def _execute(self, config: dict[str, Any], fingerprint: tuple) -> EvalOutcome:
        score, elapsed, error = _timed_call(self.objective, config)
        return self._record_execution(config, fingerprint, score, elapsed, error)

    def _record_execution(
        self,
        config: dict[str, Any],
        fingerprint: tuple,
        score: float | None,
        elapsed: float,
        error: str | None,
    ) -> EvalOutcome:
        self._stats.n_executions += 1
        self._stats.objective_time += elapsed
        exc_class: str | None = None
        if error is not None:
            self._stats.n_crashes += 1
            self._stats.last_error = error
            # ``error`` is repr(exc) — "ValueError('bad')" — so the class
            # name is the prefix before the first parenthesis.
            exc_class = error.partition("(")[0].rpartition(".")[2] or "Exception"
            self._stats.crash_classes[exc_class] = (
                self._stats.crash_classes.get(exc_class, 0) + 1
            )
            score = self.crash_score
        # Crashes are cached too: re-proposing a known-bad configuration
        # should not pay for the crash twice.
        self.cache.store(fingerprint, float(score))
        if self.store is not None:
            # Write-through; ResultStore.put is idempotent and swallows I/O
            # errors, so persistence can never break or duplicate a search.
            self.store.put(
                self.store_context, fingerprint, float(score), config=config
            )
        if obs.enabled():
            fields = {
                "engine": self.name,
                "key": fingerprint_key(fingerprint),
                "status": "crashed" if error is not None else "ok",
                "score": float(score),
                "elapsed": round(elapsed, 6),
                "cached": False,
            }
            if exc_class is not None:
                fields["exc_class"] = exc_class
            obs.emit("trial_finish", **fields)
        return EvalOutcome(
            config=dict(config), score=float(score), elapsed=elapsed, error=error
        )

    def _emit_cached(self, fingerprint: tuple, score: float) -> None:
        """Cache hits are trials too: record their status when tracing."""
        if obs.enabled():
            obs.emit(
                "trial_finish",
                engine=self.name,
                key=fingerprint_key(fingerprint),
                status="cached",
                score=float(score),
                cached=True,
            )

    # -- batch evaluation ----------------------------------------------------------------
    def evaluate_many(
        self,
        configs: Iterable[dict[str, Any]],
        *,
        budget: Budget | None = None,
        use_cache: bool | None = None,
    ) -> list[EvalOutcome | None]:
        """Evaluate a batch; returns outcomes aligned with the input order.

        Configurations the budget cannot afford are skipped and come back as
        ``None`` (always a suffix of the batch, since items are scheduled in
        order).  Duplicate configurations within a batch execute once and
        share the result.  With ``n_workers > 1`` the distinct configurations
        of each scheduling wave run concurrently.
        """
        read_cache = self.use_cache if use_cache is None else use_cache
        configs = [dict(config) for config in configs]
        outcomes: list[EvalOutcome | None] = [None] * len(configs)
        t0 = time.monotonic()
        # tracer().span is a no-op singleton when tracing is off, so the
        # disabled path costs one attribute check per *batch*, not per trial.
        tr = obs.tracer()
        with tr.span(
            "engine.evaluate_many",
            attrs={
                "engine": self.name,
                "n_configs": len(configs),
                "backend": self.backend,
            },
        ):
            executor = self._get_executor(len(configs))
            index = 0
            while index < len(configs):
                if budget is not None and budget.exhausted():
                    break
                index = self._run_wave(
                    configs, outcomes, index, budget, read_cache, executor
                )
        self._stats.n_batches += 1
        self._stats.largest_batch = max(self._stats.largest_batch, len(configs))
        self._stats.wall_time += time.monotonic() - t0
        return outcomes

    def _get_executor(self, batch_size: int) -> Executor | None:
        """Lazily created, reused across batches — pool startup (worker spawn,
        objective pickling) is paid once per engine, not once per GA generation
        or halving rung.  :meth:`close` releases it."""
        if self.backend == "serial" or self.n_workers == 1 or batch_size <= 1:
            return None
        if self._executor is None:
            if self.backend == "process":
                blocks = self._plane_blocks()
                if blocks:
                    # Zero-copy data plane: the payload rides the pool
                    # initializer (pickled once per spawned worker); every
                    # per-trial submit afterwards pickles the objective
                    # *without* its matrices.
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.n_workers,
                        initializer=dataplane.seed_worker,
                        initargs=(blocks,),
                    )
                    self.objective.detach_payload = True
                    self._plane_active = True
                    self._stats.data_plane_payloads += len(blocks)
                else:
                    self._executor = ProcessPoolExecutor(max_workers=self.n_workers)
            else:
                self._executor = ThreadPoolExecutor(max_workers=self.n_workers)
        return self._executor

    def _plane_blocks(self) -> dict[str, dict] | None:
        """The objective's data-plane payload, if it participates.

        An objective opts in by exposing ``data_key``/``payload()`` and a
        ``detach_payload`` switch (see
        :class:`~repro.execution.objectives.CrossValObjective`).
        """
        obj = self.objective
        if (
            hasattr(obj, "data_key")
            and hasattr(obj, "payload")
            and hasattr(obj, "detach_payload")
        ):
            return {obj.data_key: obj.payload()}
        return None

    def close(self) -> None:
        """Shut down the worker pool (no-op for serial engines)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            if self._executor is not None:
                self._executor.shutdown(wait=False)
        except Exception as exc:  # noqa: BLE001 — teardown must stay silent
            obs.error_event("engine.del", exc)

    def _run_wave(
        self,
        configs: list[dict[str, Any]],
        outcomes: list[EvalOutcome | None],
        start: int,
        budget: Budget | None,
        read_cache: bool,
        executor: Executor | None,
    ) -> int:
        """Schedule up to ``n_workers`` distinct pending configs from ``start``.

        Cache hits and in-batch duplicates are resolved inline (they cost no
        worker); the budget is charged per scheduled item, in input order, so
        exhaustion cuts the batch at a deterministic point.  Returns the index
        of the first unscheduled configuration.
        """
        trace_on = obs.enabled()
        wave: list[tuple[int, tuple]] = []
        wave_by_fp: dict[tuple, int] = {}
        duplicates: list[tuple[int, tuple]] = []
        index = start
        while index < len(configs) and len(wave) < self.n_workers:
            if budget is not None and budget.exhausted():
                break
            config = configs[index]
            fingerprint = config_fingerprint(config)
            if budget is not None:
                budget.record_evaluation()
            if read_cache:
                hit = self._lookup(fingerprint)
                if hit is not None:
                    self._stats.n_cache_hits += 1
                    outcomes[index] = EvalOutcome(config=config, score=hit, cached=True)
                    if trace_on:
                        self._emit_cached(fingerprint, hit)
                    index += 1
                    continue
            if fingerprint in wave_by_fp:
                duplicates.append((index, fingerprint))
                self._stats.n_cache_hits += 1
                index += 1
                continue
            wave.append((index, fingerprint))
            wave_by_fp[fingerprint] = index
            index += 1

        if executor is None:
            executed = [
                _timed_call(self.objective, configs[i]) for i, _ in wave
            ]
        else:
            # Pool workers do not inherit the batch span's contextvar, so
            # when tracing is on the trial call re-attaches it from a header.
            header = obs.trace_header() if trace_on else None
            if self._plane_active:
                # Light submits: the objective pickles without its matrices;
                # the 4th tuple element confirms the worker re-bound them
                # from its process-local registry.
                if header is not None:
                    futures = [
                        executor.submit(
                            traced_plane_timed_call, self.objective, configs[i], header
                        )
                        for i, _ in wave
                    ]
                else:
                    futures = [
                        executor.submit(plane_timed_call, self.objective, configs[i])
                        for i, _ in wave
                    ]
                executed = []
                for future in futures:
                    score, elapsed, error, plane_hit = future.result()
                    if plane_hit:
                        self._stats.data_plane_hits += 1
                    executed.append((score, elapsed, error))
            elif header is not None:
                futures = [
                    executor.submit(traced_timed_call, self.objective, configs[i], header)
                    for i, _ in wave
                ]
                executed = [future.result() for future in futures]
            else:
                futures = [
                    executor.submit(_timed_call, self.objective, configs[i])
                    for i, _ in wave
                ]
                executed = [future.result() for future in futures]
        for (i, fingerprint), (score, elapsed, error) in zip(wave, executed):
            outcomes[i] = self._record_execution(
                configs[i], fingerprint, score, elapsed, error
            )
        for i, fingerprint in duplicates:
            score = self.cache.peek(fingerprint)
            outcomes[i] = EvalOutcome(
                config=configs[i],
                score=self.crash_score if score is None else score,
                cached=True,
            )
            if trace_on:
                self._emit_cached(fingerprint, outcomes[i].score)
        return index
