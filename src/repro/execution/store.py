"""Persistent cross-run result store — the disk tier behind the score cache.

PR 1's :class:`~repro.execution.cache.EvaluationCache` proved that memoizing
``f(λ, A, D)`` pays (GA elites alone are ~60% of a tuning run), but the memo
died with the process: every new run of the corpus generator, the performance
tables, the UDR or a baseline re-paid every cross-validation from scratch.
:class:`ResultStore` makes those scores durable, the same way
:mod:`repro.core.persistence` already makes the trained decision model
durable.

Design
------
* **Sharded JSONL.**  Results are grouped by a *context* string — the
  dataset/objective fingerprint, e.g. ``"udr-J48-blobs-200x8-cv5-rs0"`` —
  and each context owns one append-only JSONL shard under the store root.
  A shard starts with a header record carrying ``format_version`` and the
  context name; data records map a canonical configuration-fingerprint key to
  a score (and, when JSON-serialisable, the configuration itself, which is
  what powers warm-start seeding).
* **Corruption tolerance.**  Loading never raises on bad data: truncated
  lines, interleaved half-writes from concurrent processes, garbage bytes and
  unreadable files all degrade to cache misses and are counted in
  :class:`StoreStats`.  A shard whose header carries the wrong format version
  is ignored wholesale (counted, never deleted).
* **Idempotent appends.**  ``put`` skips the append when the key is already
  present with an equal score, so N threads racing to record the same
  evaluation produce exactly one line on disk.
* **Compaction.**  Shards are append-only (re-puts with a different score
  append a superseding line; the latest line wins on load), so a long-lived
  store accumulates dead lines.  :meth:`compact` atomically rewrites shards
  to one line per live key.

The engine uses the store as a *write-through second tier*: every real
execution is appended, and — when ``warm_start`` is enabled — memory-cache
misses fall back to the store before paying for the objective.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from hashlib import blake2s
from pathlib import Path
from typing import Any, Iterator

import numpy as np

__all__ = ["FORMAT_VERSION", "StoreStats", "ResultStore", "fingerprint_key"]

FORMAT_VERSION = 1

_KEY_FIELD = "k"
_SCORE_FIELD = "s"
_CONFIG_FIELD = "c"


def fingerprint_key(fingerprint: tuple) -> str:
    """Serialise a :func:`~repro.execution.cache.config_fingerprint` to a stable string.

    Fingerprints contain only JSON-safe scalars (floats are already ``repr``
    strings), so the compact JSON encoding is canonical: equal fingerprints
    produce equal keys across processes and platforms.
    """
    return json.dumps(fingerprint, separators=(",", ":"), ensure_ascii=True)


def _jsonify(value: Any) -> Any:
    """Best-effort conversion of config values to JSON-native types."""
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, (list, tuple, np.ndarray)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    return value


@dataclass
class StoreStats:
    """Counters a :class:`ResultStore` accumulates across its lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    duplicate_writes: int = 0  # idempotent re-puts that skipped the append
    write_errors: int = 0
    corrupt_records: int = 0  # unparseable / truncated lines skipped on load
    version_skips: int = 0  # shards ignored for a format-version mismatch
    contexts_loaded: int = 0
    compactions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "writes": self.writes,
            "duplicate_writes": self.duplicate_writes,
            "write_errors": self.write_errors,
            "corrupt_records": self.corrupt_records,
            "version_skips": self.version_skips,
            "contexts_loaded": self.contexts_loaded,
            "compactions": self.compactions,
        }


class _Context:
    """In-memory image of one shard: key → (score, config), plus file state."""

    __slots__ = ("scores", "configs", "header_on_disk", "live_lines")

    def __init__(self) -> None:
        self.scores: dict[str, float] = {}
        self.configs: dict[str, dict | None] = {}
        self.header_on_disk = False
        self.live_lines = 0  # data lines currently in the file (incl. superseded)


class ResultStore:
    """Disk-backed, sharded, versioned store of configuration scores.

    Parameters
    ----------
    root:
        Directory holding the shards (created if missing).
    format_version:
        Version stamped into shard headers; shards written with a different
        version are ignored on load (counted in ``stats.version_skips``).
    """

    def __init__(self, root: str | Path, *, format_version: int = FORMAT_VERSION) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.format_version = int(format_version)
        self.stats = StoreStats()
        self._lock = threading.RLock()
        self._contexts: dict[str, _Context] = {}

    # -- shard layout ----------------------------------------------------------------
    def shard_path(self, context: str) -> Path:
        """Shard file for ``context``: readable slug + collision-proof digest."""
        digest = blake2s(context.encode("utf-8"), digest_size=8).hexdigest()
        slug = "".join(ch if ch.isalnum() or ch in "-_." else "-" for ch in context)[:48]
        return self.root / f"{slug or 'shard'}.{digest}.jsonl"

    def _header(self, context: str) -> dict:
        return {"format_version": self.format_version, "context": context}

    # -- loading ----------------------------------------------------------------------
    def _load(self, context: str) -> _Context:
        """Load (once) the shard for ``context``; never raises on bad data."""
        ctx = self._contexts.get(context)
        if ctx is not None:
            return ctx
        ctx = _Context()
        self._contexts[context] = ctx
        path = self.shard_path(context)
        try:
            raw = path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            return ctx
        self.stats.contexts_loaded += 1
        header_seen = False
        version_ok = True
        records: list[tuple[str, float, dict | None]] = []
        n_data_lines = 0
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                self.stats.corrupt_records += 1
                continue
            if not isinstance(record, dict):
                self.stats.corrupt_records += 1
                continue
            if "format_version" in record:
                header_seen = True
                if record.get("format_version") != self.format_version:
                    version_ok = False
                continue
            key = record.get(_KEY_FIELD)
            score = record.get(_SCORE_FIELD)
            if not isinstance(key, str) or not isinstance(score, (int, float)):
                self.stats.corrupt_records += 1
                continue
            config = record.get(_CONFIG_FIELD)
            records.append((key, float(score), config if isinstance(config, dict) else None))
            n_data_lines += 1
        if not header_seen or not version_ok:
            # Unversioned (header lost to truncation) or foreign-version shards
            # contribute nothing — every lookup is a miss, never a crash.
            if n_data_lines:
                self.stats.version_skips += 1
            return ctx
        for key, score, config in records:  # later lines supersede earlier ones
            ctx.scores[key] = score
            if config is not None or key not in ctx.configs:
                ctx.configs[key] = config
        ctx.header_on_disk = True
        ctx.live_lines = n_data_lines
        return ctx

    # -- core API ----------------------------------------------------------------------
    def get(self, context: str, fingerprint: tuple) -> float | None:
        """Stored score for ``fingerprint`` under ``context``, or ``None``."""
        key = fingerprint_key(fingerprint)
        with self._lock:
            ctx = self._load(context)
            if key in ctx.scores:
                self.stats.hits += 1
                return ctx.scores[key]
            self.stats.misses += 1
            return None

    def put(
        self,
        context: str,
        fingerprint: tuple,
        score: float,
        config: dict[str, Any] | None = None,
    ) -> bool:
        """Record one result; returns True when a line was appended.

        Idempotent: a key already stored with an equal score is skipped, so
        concurrent evaluators of the same configuration write exactly once.
        A key re-put with a *different* score appends a superseding line
        (latest wins on load; :meth:`compact` reclaims the dead one).
        Write failures are counted, never raised — persistence must not be
        able to break a search.
        """
        key = fingerprint_key(fingerprint)
        score = float(score)
        with self._lock:
            ctx = self._load(context)
            existing = ctx.scores.get(key)
            if existing is not None and (
                existing == score or (np.isnan(existing) and np.isnan(score))
            ):
                self.stats.duplicate_writes += 1
                return False
            record = {_KEY_FIELD: key, _SCORE_FIELD: score}
            stored_config: dict | None = None
            if config is not None:
                try:
                    stored_config = _jsonify(dict(config))
                    json.dumps(stored_config)  # reject non-serialisable values
                except (TypeError, ValueError):
                    stored_config = None
                else:
                    record[_CONFIG_FIELD] = stored_config
            try:
                self._append(context, ctx, record)
            except OSError:
                self.stats.write_errors += 1
                return False
            ctx.scores[key] = score
            ctx.configs[key] = stored_config
            ctx.live_lines += 1
            self.stats.writes += 1
            return True

    def _append(self, context: str, ctx: _Context, record: dict) -> None:
        path = self.shard_path(context)
        with path.open("a", encoding="utf-8") as handle:
            if not ctx.header_on_disk:
                handle.write(json.dumps(self._header(context)) + "\n")
                ctx.header_on_disk = True
            handle.write(json.dumps(record) + "\n")
            handle.flush()

    # -- warm-start support ------------------------------------------------------------
    def top_k(self, context: str, k: int = 5) -> list[tuple[dict[str, Any], float]]:
        """The k best stored ``(config, score)`` pairs for ``context``.

        Only entries with a finite score *and* a stored configuration qualify
        (a score alone cannot seed a search).  Ties break by key for
        determinism across runs.
        """
        with self._lock:
            ctx = self._load(context)
            ranked = sorted(
                (
                    (key, score)
                    for key, score in ctx.scores.items()
                    if np.isfinite(score) and ctx.configs.get(key) is not None
                ),
                key=lambda pair: (-pair[1], pair[0]),
            )
            return [(dict(ctx.configs[key]), score) for key, score in ranked[: max(0, k)]]

    def size(self, context: str) -> int:
        """Number of distinct stored results for ``context``."""
        with self._lock:
            return len(self._load(context).scores)

    def contexts(self) -> list[str]:
        """Every context present on disk (plus any loaded in memory)."""
        found = set(self._contexts)
        for path in sorted(self.root.glob("*.jsonl")):
            try:
                with path.open("r", encoding="utf-8", errors="replace") as handle:
                    first = handle.readline().strip()
                record = json.loads(first) if first else None
            except (OSError, ValueError):
                continue
            if isinstance(record, dict) and isinstance(record.get("context"), str):
                found.add(record["context"])
        return sorted(found)

    # -- maintenance -------------------------------------------------------------------
    def compact(self, context: str | None = None) -> int:
        """Rewrite shards to one line per live key; returns lines reclaimed.

        The rewrite goes through a temp file + ``os.replace`` so a crash
        mid-compaction leaves either the old or the new shard, never a
        half-written one.
        """
        with self._lock:
            targets = [context] if context is not None else self.contexts()
            reclaimed = 0
            for name in targets:
                ctx = self._load(name)
                if not ctx.scores:
                    continue
                path = self.shard_path(name)
                tmp = path.with_name(path.name + ".tmp")  # matches *.jsonl.tmp ignores
                lines = [json.dumps(self._header(name))]
                for key in sorted(ctx.scores):
                    record = {_KEY_FIELD: key, _SCORE_FIELD: ctx.scores[key]}
                    if ctx.configs.get(key) is not None:
                        record[_CONFIG_FIELD] = ctx.configs[key]
                    lines.append(json.dumps(record))
                try:
                    tmp.write_text("\n".join(lines) + "\n", encoding="utf-8")
                    os.replace(tmp, path)
                except OSError:
                    self.stats.write_errors += 1
                    continue
                reclaimed += max(0, ctx.live_lines - len(ctx.scores))
                ctx.live_lines = len(ctx.scores)
                ctx.header_on_disk = True
                self.stats.compactions += 1
            return reclaimed

    def clear_memory(self) -> None:
        """Drop the in-memory images (next access re-reads the disk)."""
        with self._lock:
            self._contexts.clear()

    # -- introspection -----------------------------------------------------------------
    def __contains__(self, context: str) -> bool:
        with self._lock:
            return self.size(context) > 0

    def items(self, context: str) -> Iterator[tuple[str, float]]:
        """Snapshot of ``(key, score)`` pairs for ``context``."""
        with self._lock:
            return iter(list(self._load(context).scores.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore(root={str(self.root)!r}, contexts={len(self._contexts)})"
