"""Persistent cross-run result store — the disk tier behind the score cache.

PR 1's :class:`~repro.execution.cache.EvaluationCache` proved that memoizing
``f(λ, A, D)`` pays (GA elites alone are ~60% of a tuning run), but the memo
died with the process: every new run of the corpus generator, the performance
tables, the UDR or a baseline re-paid every cross-validation from scratch.
:class:`ResultStore` makes those scores durable, the same way
:mod:`repro.core.persistence` already makes the trained decision model
durable.

Design
------
* **Pluggable backends.**  Results are grouped by a *context* string — the
  dataset/objective fingerprint, e.g. ``"udr-J48-blobs-200x8-cv5-rs0"`` —
  and storage is delegated to a :class:`~repro.execution.store_backends.StoreBackend`:
  append-only JSONL shards (the default), a WAL-mode sqlite database for
  many local processes, or an HTTP client against a
  :mod:`repro.service.store_server` for writers on other hosts.  The store
  keeps one in-memory image per loaded context and writes through on every
  ``put``; :meth:`refresh` drops an image so cross-process writes become
  visible.
* **Corruption tolerance.**  Loading never raises on bad data: truncated
  lines, interleaved half-writes from concurrent processes, garbage bytes and
  unreadable files all degrade to cache misses and are counted in
  :class:`StoreStats`.  A shard whose header carries the wrong format version
  is ignored wholesale (counted, never deleted) — and writes rotate to a
  fresh sidecar shard so they survive the next reload instead of vanishing
  behind the foreign header.
* **Idempotent appends.**  ``put`` skips the append when the key is already
  present with an equal score *and* an equally-informative config, so N
  threads racing to record the same evaluation produce exactly one line on
  disk — but a re-put that finally carries the config for a previously
  score-only key still appends, so warm-start seeding never loses a
  configuration to an accidental ordering of writers.
* **Compaction.**  JSONL shards are append-only (re-puts with a different
  score append a superseding line; the latest line wins on load), so a
  long-lived store accumulates dead lines.  :meth:`compact` atomically
  rewrites shards to one line per live key, after merging the current
  on-disk state so concurrent writers' appends are never clobbered.

The engine uses the store as a *write-through second tier*: every real
execution is appended, and — when ``warm_start`` is enabled — memory-cache
misses fall back to the store before paying for the objective.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from .. import obs
from ..obs.profiler import profiled
from .store_backends import ShardImage, StoreBackend, resolve_backend

__all__ = ["FORMAT_VERSION", "StoreStats", "ResultStore", "fingerprint_key"]

FORMAT_VERSION = 1


def fingerprint_key(fingerprint: tuple) -> str:
    """Serialise a :func:`~repro.execution.cache.config_fingerprint` to a stable string.

    Fingerprints contain only JSON-safe scalars (floats are already ``repr``
    strings), so the compact JSON encoding is canonical: equal fingerprints
    produce equal keys across processes and platforms.
    """
    return json.dumps(fingerprint, separators=(",", ":"), ensure_ascii=True)


def _jsonify(value: Any) -> Any:
    """Best-effort conversion of config values to JSON-native types."""
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, (list, tuple, np.ndarray)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    return value


@dataclass
class StoreStats:
    """Counters a :class:`ResultStore` accumulates across its lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    duplicate_writes: int = 0  # idempotent re-puts that skipped the append
    write_errors: int = 0
    corrupt_records: int = 0  # unparseable / truncated lines skipped on load
    version_skips: int = 0  # shards ignored for a format-version mismatch
    load_errors: int = 0  # whole-context loads that failed (server down, db locked)
    contexts_loaded: int = 0
    compactions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "writes": self.writes,
            "duplicate_writes": self.duplicate_writes,
            "write_errors": self.write_errors,
            "corrupt_records": self.corrupt_records,
            "version_skips": self.version_skips,
            "load_errors": self.load_errors,
            "contexts_loaded": self.contexts_loaded,
            "compactions": self.compactions,
        }


class ResultStore:
    """Durable, sharded, versioned store of configuration scores.

    Parameters
    ----------
    root:
        Directory holding the shards (created if missing), or an
        ``http(s)://`` URL of a :mod:`repro.service.store_server`.
    format_version:
        Version stamped into shard headers; shards written with a different
        version are ignored on load (counted in ``stats.version_skips``).
    backend:
        ``"jsonl"`` (default), ``"sqlite"`` for a WAL-mode database safe for
        many local processes, or a ready-made
        :class:`~repro.execution.store_backends.StoreBackend` instance.  An
        ``http(s)://`` root selects the HTTP client backend automatically.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        format_version: int = FORMAT_VERSION,
        backend: str | StoreBackend = "jsonl",
    ) -> None:
        self.root = Path(root) if not str(root).startswith(("http://", "https://")) else root
        self.format_version = int(format_version)
        self.stats = StoreStats()
        self._backend = resolve_backend(root, backend, self.format_version, self.stats)
        self._lock = threading.RLock()
        self._contexts: dict[str, ShardImage] = {}

    @property
    def backend(self) -> StoreBackend:
        return self._backend

    def describe(self) -> dict:
        """JSON-safe identity of this store (backend kind + location)."""
        return self._backend.describe()

    # -- shard layout ----------------------------------------------------------------
    def shard_path(self, context: str) -> Path:
        """Shard file for ``context`` (JSONL backend only)."""
        shard_path = getattr(self._backend, "shard_path", None)
        if shard_path is None:
            raise NotImplementedError(
                f"{self._backend.name!r} backend has no per-context shard files"
            )
        return shard_path(context)

    # -- loading ----------------------------------------------------------------------
    def _load(self, context: str) -> ShardImage:
        """Load (once) the image for ``context``; never raises on bad data."""
        image = self._contexts.get(context)
        if image is None:
            image = self._backend.load(context)
            self._contexts[context] = image
        return image

    def refresh(self, context: str | None = None) -> None:
        """Drop the in-memory image(s) so the next access re-reads the backend.

        This is how cross-process readers observe each other's writes: the
        store intentionally serves from its image between refreshes (cheap,
        deterministic), and coordination layers — the
        :class:`~repro.execution.coordinator.WorkCoordinator`, resumable
        table builds — call ``refresh`` at their sync points.
        """
        with self._lock:
            if context is None:
                self._contexts.clear()
            else:
                self._contexts.pop(context, None)

    # -- core API ----------------------------------------------------------------------
    def get(self, context: str, fingerprint: tuple) -> float | None:
        """Stored score for ``fingerprint`` under ``context``, or ``None``."""
        return self.get_key(context, fingerprint_key(fingerprint))

    def get_key(self, context: str, key: str) -> float | None:
        """Stored score for a pre-serialised fingerprint key."""
        with self._lock:
            image = self._load(context)
            if key in image.scores:
                self.stats.hits += 1
                return image.scores[key]
            self.stats.misses += 1
            return None

    def put(
        self,
        context: str,
        fingerprint: tuple,
        score: float,
        config: dict[str, Any] | None = None,
    ) -> bool:
        """Record one result; returns True when a line was appended.

        Idempotent: a key already stored with an equal score is skipped, so
        concurrent evaluators of the same configuration write exactly once —
        unless the stored record has no configuration and this put carries
        one, in which case the config-bearing record is appended anyway
        (``top_k`` warm-start seeding must not lose configs to write
        ordering).  A key re-put with a *different* score appends a
        superseding line (latest wins on load; :meth:`compact` reclaims the
        dead one).  Write failures are counted, never raised — persistence
        must not be able to break a search.
        """
        return self.put_key(context, fingerprint_key(fingerprint), score, config)

    def put_key(
        self,
        context: str,
        key: str,
        score: float,
        config: dict[str, Any] | None = None,
    ) -> bool:
        """Record one result under a pre-serialised fingerprint key."""
        score = float(score)
        with self._lock:
            image = self._load(context)
            stored_config: dict | None = None
            if config is not None:
                try:
                    stored_config = _jsonify(dict(config))
                    json.dumps(stored_config)  # reject non-serialisable values
                except (TypeError, ValueError):
                    stored_config = None
            existing = image.scores.get(key)
            if existing is not None and (
                existing == score or (np.isnan(existing) and np.isnan(score))
            ):
                # Equal-score re-puts are duplicates — except when this one
                # finally carries the config a score-only record was missing.
                if stored_config is None or image.configs.get(key) is not None:
                    self.stats.duplicate_writes += 1
                    return False
            try:
                with profiled("store_put"):
                    self._backend.append(context, key, score, stored_config)
            except OSError as exc:
                self.stats.write_errors += 1
                obs.error_event("store.append", exc)
                return False
            if obs.enabled():
                obs.emit(
                    "store_put",
                    context=context,
                    key=key,
                    backend=self._backend.name,
                )
            image.scores[key] = score
            if stored_config is not None or key not in image.configs:
                image.configs[key] = stored_config
            image.live_lines += 1
            self.stats.writes += 1
            return True

    # -- warm-start support ------------------------------------------------------------
    def top_k(self, context: str, k: int = 5) -> list[tuple[dict[str, Any], float]]:
        """The k best stored ``(config, score)`` pairs for ``context``.

        Only entries with a finite score *and* a stored configuration qualify
        (a score alone cannot seed a search).  Ties break by key for
        determinism across runs.
        """
        with self._lock:
            image = self._load(context)
            ranked = sorted(
                (
                    (key, score)
                    for key, score in image.scores.items()
                    if np.isfinite(score) and image.configs.get(key) is not None
                ),
                key=lambda pair: (-pair[1], pair[0]),
            )
            return [(dict(image.configs[key]), score) for key, score in ranked[: max(0, k)]]

    def size(self, context: str) -> int:
        """Number of distinct stored results for ``context``."""
        with self._lock:
            return len(self._load(context).scores)

    def contexts(self) -> list[str]:
        """Every context present in the backend (plus any loaded in memory)."""
        with self._lock:
            found = {name for name, image in self._contexts.items() if image.scores}
            found.update(self._backend.contexts())
            return sorted(found)

    # -- maintenance -------------------------------------------------------------------
    def compact(self, context: str | None = None) -> int:
        """Rewrite storage to one record per live key; returns lines reclaimed.

        The rewrite merges the backend's *current* state first, so records
        appended by other processes after this store loaded a context are
        folded in rather than clobbered; it then goes through a temp file +
        ``os.replace`` (JSONL) or stays transactional (sqlite/HTTP), so a
        crash mid-compaction leaves either the old or the new state, never a
        half-written one.
        """
        with self._lock:
            targets = [context] if context is not None else self.contexts()
            reclaimed = 0
            for name in targets:
                image = self._load(name)
                try:
                    result = self._backend.compact(name, image)
                except OSError as exc:
                    self.stats.write_errors += 1
                    obs.error_event("store.compact", exc)
                    continue
                if result is None:
                    continue
                freed, merged = result
                reclaimed += freed
                self._contexts[name] = merged
                self.stats.compactions += 1
                if obs.enabled():
                    obs.emit(
                        "store_compact",
                        context=name,
                        reclaimed=freed,
                        backend=self._backend.name,
                    )
            return reclaimed

    def clear_memory(self) -> None:
        """Drop the in-memory images (next access re-reads the backend)."""
        self.refresh()

    def close(self) -> None:
        """Release backend handles (sqlite connections, sockets)."""
        self._backend.close()

    # -- introspection -----------------------------------------------------------------
    def __contains__(self, context: str) -> bool:
        with self._lock:
            return self.size(context) > 0

    def items(self, context: str) -> Iterator[tuple[str, float]]:
        """Snapshot of ``(key, score)`` pairs for ``context``."""
        with self._lock:
            return iter(list(self._load(context).scores.items()))

    def image(self, context: str) -> tuple[dict[str, float], dict[str, dict | None], int]:
        """Snapshot of the full context image (used by the HTTP store server)."""
        with self._lock:
            with profiled("store_image"):
                current = self._load(context)
                return dict(current.scores), dict(current.configs), current.live_lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultStore(root={str(self.root)!r}, backend={self._backend.name!r}, "
            f"contexts={len(self._contexts)})"
        )
